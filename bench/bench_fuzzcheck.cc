/**
 * @file
 * Fuzzing-budget bench: oracle throughput per property tier. Not a
 * paper figure — this keeps the `fuzz_smoke`/`fuzz_long` budgets
 * honest by measuring cases/sec for each oracle configuration
 * (structural+replay only, + metamorphic, + exact LP differential,
 * everything incl. the kube-lifecycle replay) over the same
 * deterministic case stream the gates run. A tier that regresses here
 * silently shrinks how many cases a fixed CI budget actually covers.
 */

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "check/generator.h"
#include "check/oracle.h"
#include "util/table.h"

using namespace phoenix;

namespace {

struct Tier
{
    const char *name;
    check::OracleOptions oracle;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fuzzcheck");
    bench::applyObs(options);
    const size_t cases = static_cast<size_t>(options.trialsOr(500));
    const uint64_t seed = options.seedOr(1);

    check::OracleOptions structural;
    structural.runLp = false;
    structural.metamorphic = false;
    structural.lifecycle = false;
    check::OracleOptions metamorphic = structural;
    metamorphic.metamorphic = true;
    check::OracleOptions differential = metamorphic;
    differential.runLp = true;
    check::OracleOptions everything = differential;
    everything.lifecycle = true;

    const Tier tiers[] = {
        {"structural+replay", structural},
        {"+metamorphic", metamorphic},
        {"+lp-differential", differential},
        {"+kube-lifecycle", everything},
    };

    bench::banner("fuzzcheck oracle throughput, " +
                  std::to_string(cases) + " cases, seed " +
                  std::to_string(seed));

    exp::Report report("fuzzcheck");
    report.meta("cases", static_cast<int64_t>(cases));
    report.meta("seed", static_cast<int64_t>(seed));

    util::Table table({"tier", "cases/sec", "seconds", "schemes_s",
                       "lp_s", "meta_s", "lifecycle_s", "violations",
                       "lp-solves", "lifecycle-runs"});
    size_t tier_index = 0;
    for (const Tier &tier : tiers) {
        using Clock = std::chrono::steady_clock;
        // One trace track per tier; the oracle's phase histograms
        // (check.phase_seconds{phase=...}) accumulate per tier too.
        obs::setCurrentTrack(static_cast<uint32_t>(tier_index++));
        const auto start = Clock::now();
        size_t violations = 0;
        size_t lp_solves = 0;
        size_t lifecycle_runs = 0;
        double schemes_s = 0.0, lp_s = 0.0, meta_s = 0.0,
               lifecycle_s = 0.0;
        for (size_t i = 0; i < cases; ++i) {
            const check::CheckCase c =
                check::generateCase(util::cellSeed(seed, i));
            const auto result = check::checkCase(c, tier.oracle);
            violations += result.violations.size();
            lp_solves += (result.lpCostRan ? 1 : 0) +
                         (result.lpFairRan ? 1 : 0);
            lifecycle_runs += result.lifecycleRan ? 1 : 0;
            schemes_s += result.schemesSeconds;
            lp_s += result.lpSeconds;
            meta_s += result.metamorphicSeconds;
            lifecycle_s += result.lifecycleSeconds;
        }
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        table.row()
            .cell(tier.name)
            .cell(seconds > 0.0 ? static_cast<double>(cases) / seconds
                                : 0.0)
            .cell(seconds)
            .cell(schemes_s)
            .cell(lp_s)
            .cell(meta_s)
            .cell(lifecycle_s)
            .cell(static_cast<double>(violations), 0)
            .cell(static_cast<double>(lp_solves), 0)
            .cell(static_cast<double>(lifecycle_runs), 0);
        report.meta(std::string(tier.name) + ".seconds", seconds);
        report.meta(std::string(tier.name) + ".schemes_seconds",
                    schemes_s);
        report.meta(std::string(tier.name) + ".lp_seconds", lp_s);
        report.meta(std::string(tier.name) + ".metamorphic_seconds",
                    meta_s);
        report.meta(std::string(tier.name) + ".lifecycle_seconds",
                    lifecycle_s);
    }
    table.print(std::cout);
    report.addTable("throughput", table);
    bench::finishReport(report, options);
    return 0;
}
