/**
 * @file
 * Figure 5 (+ Appendix F.1): resilience schemes on the CloudLab-style
 * 200-CPU cluster with five application instances, cluster capacity
 * reduced to 42% (the breaking point). Reports, per scheme:
 *
 *   (a) operator revenue vs critical service availability,
 *   (b) fair-share deviation (positive/negative) vs availability,
 *
 * for PhoenixFair/PhoenixCost, their exact LP counterparts
 * LPFair/LPCost, the non-cooperative Fair and Priority baselines,
 * Kubernetes Default, and the "no diagonal scaling" marker (x in the
 * paper's plot: applications cannot adapt, availability 0).
 *
 * Also prints the Appendix F.1 breaking-point sweep that motivates the
 * 42% operating point.
 */

#include <iostream>

#include "apps/cloudlab.h"
#include "bench/bench_common.h"
#include "core/schemes.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::core;

namespace {

struct Row
{
    std::string scheme;
    double availability = 0.0;
    double revenue = 0.0;
    double fairPos = 0.0;
    double fairNeg = 0.0;
};

Row
evaluate(ResilienceScheme &scheme,
         const std::vector<sim::Application> &apps,
         const sim::ClusterState &failed)
{
    Row row;
    row.scheme = scheme.name();
    const SchemeResult result = scheme.apply(apps, failed);
    if (result.failed)
        return row;
    const sim::ActiveSet active = result.activeSet(apps);
    row.availability = sim::criticalServiceAvailability(apps, active);
    row.revenue = sim::revenueNormalized(apps, active);
    const auto dev = sim::fairShareDeviation(
        apps, active, result.pack.state.healthyCapacity());
    row.fairPos = dev.positive;
    row.fairNeg = dev.negative;
    return row;
}

} // namespace

int
main()
{
    bench::banner("Figure 5 | CloudLab testbed, capacity reduced to 42%");

    const apps::CloudLabTestbed testbed = apps::makeCloudLabTestbed();
    const auto applications = testbed.applications();

    // Steady state, then fail 58% of capacity.
    PhoenixScheme bootstrap(Objective::Fair);
    sim::ClusterState cluster =
        bootstrap.apply(applications, testbed.makeCluster()).pack.state;

    // 14 of 25 nodes down leaves 42-44% of capacity — the paper's
    // operating point (whole nodes fail, so exactly 42% is not
    // reachable on homogeneous 8-CPU nodes).
    sim::FailureInjector injector{util::Rng(2025)};
    injector.failNodeCount(cluster, 14);
    std::cout << "healthy capacity after failure: "
              << cluster.healthyCapacity() << " / "
              << testbed.totalCapacity() << " CPUs\n";

    LpSchemeOptions lp_options;
    lp_options.timeLimitSec = 30.0;
    auto schemes = makeAllSchemes(true, lp_options);

    util::Table table({"scheme", "critical-availability",
                       "norm-revenue", "fair-dev(+)", "fair-dev(-)"});
    for (auto &scheme : schemes) {
        const Row row = evaluate(*scheme, applications, cluster);
        table.row()
            .cell(row.scheme)
            .cell(row.availability)
            .cell(row.revenue)
            .cell(row.fairPos)
            .cell(row.fairNeg);
    }
    // The paper's "x" marker: no diagonal scaling at all.
    table.row()
        .cell("NoDiagonalScaling")
        .cell(0.0)
        .cell(0.0)
        .cell(0.0)
        .cell(1.0);
    table.print(std::cout);

    bench::banner("Appendix F.1 | breaking-point sweep");
    util::Table sweep({"capacity-left", "PhoenixFair-availability",
                       "PhoenixCost-availability"});
    for (double keep : {0.8, 0.6, 0.5, 0.42, 0.40, 0.35, 0.30}) {
        sim::ClusterState state =
            bootstrap.apply(applications, testbed.makeCluster())
                .pack.state;
        sim::FailureInjector inj{util::Rng(7)};
        inj.failCapacityFraction(state, 1.0 - keep);
        PhoenixScheme fair(Objective::Fair);
        PhoenixScheme cost(Objective::Cost);
        sweep.row()
            .cell(keep)
            .cell(evaluate(fair, applications, state).availability)
            .cell(evaluate(cost, applications, state).availability);
    }
    sweep.print(std::cout);
    std::cout << "All C1 services need ~42% of the cluster "
                 "(Fig 9 mix); availability collapses below it.\n";
    return 0;
}
