/**
 * @file
 * Figure 5 (+ Appendix F.1): resilience schemes on the CloudLab-style
 * 200-CPU cluster with five application instances, cluster capacity
 * reduced to 42% (the breaking point). Reports, per scheme:
 *
 *   (a) operator revenue vs critical service availability,
 *   (b) fair-share deviation (positive/negative) vs availability,
 *
 * for PhoenixFair/PhoenixCost, their exact LP counterparts
 * LPFair/LPCost, the non-cooperative Fair and Priority baselines,
 * Kubernetes Default, and the "no diagonal scaling" marker (x in the
 * paper's plot: applications cannot adapt, availability 0).
 *
 * Also prints the Appendix F.1 breaking-point sweep that motivates the
 * 42% operating point. --jobs parallelizes across schemes (the LP
 * solves dominate) and across the sweep's capacity points.
 */

#include <iostream>

#include "apps/cloudlab.h"
#include "bench/bench_common.h"
#include "core/schemes.h"
#include "exp/grid.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::core;

namespace {

struct Row
{
    std::string scheme;
    double availability = 0.0;
    double revenue = 0.0;
    double fairPos = 0.0;
    double fairNeg = 0.0;
};

Row
evaluate(ResilienceScheme &scheme,
         const std::vector<sim::Application> &apps,
         const sim::ClusterState &failed)
{
    Row row;
    row.scheme = scheme.name();
    const SchemeResult result = scheme.apply(apps, failed);
    if (result.failed)
        return row;
    const sim::ActiveSet active = result.activeSet(apps);
    row.availability = sim::criticalServiceAvailability(apps, active);
    row.revenue = sim::revenueNormalized(apps, active);
    const auto dev = sim::fairShareDeviation(
        apps, active, result.pack.state.healthyCapacity());
    row.fairPos = dev.positive;
    row.fairNeg = dev.negative;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig5");
    bench::applyObs(options);
    bench::banner("Figure 5 | CloudLab testbed, capacity reduced to 42%");

    const apps::CloudLabTestbed testbed = apps::makeCloudLabTestbed();
    const auto applications = testbed.applications();

    // Steady state, then fail 58% of capacity.
    PhoenixScheme bootstrap(Objective::Fair);
    const sim::ClusterState steady =
        bootstrap.apply(applications, testbed.makeCluster()).pack.state;

    // 14 of 25 nodes down leaves 42-44% of capacity — the paper's
    // operating point (whole nodes fail, so exactly 42% is not
    // reachable on homogeneous 8-CPU nodes).
    sim::ClusterState cluster = steady;
    sim::FailureInjector injector{util::Rng(options.seedOr(2025))};
    injector.failNodeCount(cluster, 14);
    std::cout << "healthy capacity after failure: "
              << cluster.healthyCapacity() << " / "
              << testbed.totalCapacity() << " CPUs\n";

    LpSchemeOptions lp_options;
    lp_options.timeLimitSec = 30.0;
    auto specs = exp::paperSchemeSpecs(true, lp_options);
    {
        exp::SweepGridSpec probe;
        probe.schemes = std::move(specs);
        specs = exp::filterSchemes(probe, options.filter).schemes;
    }

    // One task per scheme: each constructs its own instance and reads
    // the shared post-failure state.
    std::vector<Row> rows(specs.size());
    exp::parallelFor(options.jobs, specs.size(), [&](size_t i) {
        const auto scheme = specs[i].make();
        rows[i] = evaluate(*scheme, applications, cluster);
    });

    util::Table table({"scheme", "critical-availability",
                       "norm-revenue", "fair-dev(+)", "fair-dev(-)"});
    for (const Row &row : rows) {
        table.row()
            .cell(row.scheme)
            .cell(row.availability)
            .cell(row.revenue)
            .cell(row.fairPos)
            .cell(row.fairNeg);
    }
    // The paper's "x" marker: no diagonal scaling at all.
    table.row()
        .cell("NoDiagonalScaling")
        .cell(0.0)
        .cell(0.0)
        .cell(0.0)
        .cell(1.0);
    table.print(std::cout);

    bench::banner("Appendix F.1 | breaking-point sweep");
    const std::vector<double> keeps{0.8,  0.6,  0.5, 0.42,
                                    0.40, 0.35, 0.30};
    struct SweepPoint
    {
        double fair = 0.0;
        double cost = 0.0;
    };
    std::vector<SweepPoint> points(keeps.size());
    exp::parallelFor(options.jobs, keeps.size(), [&](size_t i) {
        sim::ClusterState state = steady;
        sim::FailureInjector inj{util::Rng(7)};
        inj.failCapacityFraction(state, 1.0 - keeps[i]);
        PhoenixScheme fair(Objective::Fair);
        PhoenixScheme cost(Objective::Cost);
        points[i].fair =
            evaluate(fair, applications, state).availability;
        points[i].cost =
            evaluate(cost, applications, state).availability;
    });

    util::Table sweep({"capacity-left", "PhoenixFair-availability",
                       "PhoenixCost-availability"});
    for (size_t i = 0; i < keeps.size(); ++i) {
        sweep.row()
            .cell(keeps[i])
            .cell(points[i].fair)
            .cell(points[i].cost);
    }
    sweep.print(std::cout);
    std::cout << "All C1 services need ~42% of the cluster "
                 "(Fig 9 mix); availability collapses below it.\n";

    exp::Report report("fig5");
    report.meta("capacity_after_failure", cluster.healthyCapacity());
    report.meta("total_capacity", testbed.totalCapacity());
    report.addTable("fig5_schemes", table);
    report.addTable("breaking_point_sweep", sweep);
    bench::finishReport(report, options);
    return 0;
}
