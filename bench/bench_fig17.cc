/**
 * @file
 * Figure 17 (Appendix G): analysis of the Alibaba-style workload.
 *  (a) dependency-graph size vs user requests served per application
 *      (few large apps serve most requests);
 *  (b) call-graph size distribution of the top four applications
 *      (most call graphs touch < 10 microservices);
 *  (c) fraction of requests serveable vs fraction of microservices
 *      enabled, from the coverage optimization (App1: >80% of requests
 *      with ~3% of services). Greedy max-coverage stands in for the
 *      paper's Gurobi LP; the exact MILP is used on apps small enough
 *      to solve.
 * Also reports the single-upstream fraction (§3.2: 74-82%).
 *
 * --jobs parallelizes the per-app coverage optimizations of panel (c).
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/alibaba.h"
#include "workloads/coverage.h"

using namespace phoenix;
using namespace phoenix::workloads;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig17");
    bench::applyObs(options);
    AlibabaConfig config;
    config.appCount = 18;
    config.sizeScale = bench::fullScale() ? 1.0 : 0.3;
    bench::banner("Figure 17 | Alibaba-style workload analysis (" +
                  std::to_string(config.appCount) + " apps, scale " +
                  util::formatDouble(config.sizeScale, 2) + ")");

    const auto apps = AlibabaGenerator(config).generate();

    bench::banner("(a) DG size vs requests served");
    util::Table a({"app", "microservices", "requests/day",
                   "single-upstream-fraction"});
    for (const auto &generated : apps) {
        a.row()
            .cell(generated.app.name)
            .cell(generated.app.services.size())
            .cell(generated.requestRate, 0)
            .cell(generated.app.dag.singleUpstreamFraction());
    }
    a.print(std::cout);

    double upstream = 0.0;
    for (const auto &generated : apps)
        upstream += generated.app.dag.singleUpstreamFraction();
    const double mean_upstream =
        upstream / static_cast<double>(apps.size());
    std::cout << "mean single-upstream fraction: " << mean_upstream
              << " (paper: 0.74-0.82)\n";

    bench::banner("(b) call-graph size distribution, top 4 apps");
    util::Table b({"app", "p50-size", "p90-size", "max-size",
                   "weight(size<10)"});
    for (size_t i = 0; i < 4 && i < apps.size(); ++i) {
        std::vector<double> sizes;
        double small_weight = 0.0;
        for (const auto &tpl : apps[i].callGraphs) {
            sizes.push_back(static_cast<double>(tpl.services.size()));
            if (tpl.services.size() < 10)
                small_weight += tpl.weight;
        }
        b.row()
            .cell(apps[i].app.name)
            .cell(util::percentile(sizes, 50), 1)
            .cell(util::percentile(sizes, 90), 1)
            .cell(*std::max_element(sizes.begin(), sizes.end()), 0)
            .cell(small_weight);
    }
    b.print(std::cout);

    bench::banner("(c) requests covered vs microservices enabled");
    // The greedy max-coverage solves are independent per app and
    // target — fan them out on the shared pool.
    struct Coverage
    {
        size_t services = 0;
        size_t for50 = 0;
        size_t for80 = 0;
        size_t for90 = 0;
    };
    const size_t panel_apps = std::min<size_t>(6, apps.size());
    std::vector<Coverage> coverage(panel_apps);
    exp::parallelFor(options.jobs, panel_apps, [&](size_t i) {
        const auto &generated = apps[i];
        const size_t n = generated.app.services.size();
        coverage[i].services = n;
        coverage[i].for50 =
            minServicesForCoverage(generated.callGraphs, n, 0.5).size();
        coverage[i].for80 =
            minServicesForCoverage(generated.callGraphs, n, 0.8).size();
        coverage[i].for90 =
            minServicesForCoverage(generated.callGraphs, n, 0.9).size();
    });

    util::Table c({"app", "services", "ms-for-50%", "ms-for-80%",
                   "ms-for-90%", "frac-of-services-for-80%"});
    for (size_t i = 0; i < panel_apps; ++i) {
        c.row()
            .cell(apps[i].app.name)
            .cell(coverage[i].services)
            .cell(coverage[i].for50)
            .cell(coverage[i].for80)
            .cell(coverage[i].for90)
            .cell(static_cast<double>(coverage[i].for80) /
                  static_cast<double>(coverage[i].services));
    }
    c.print(std::cout);

    // Exact-vs-greedy spot check on a small app.
    const auto &tail = apps.back();
    const auto greedy = minServicesForCoverage(
        tail.callGraphs, tail.app.services.size(), 0.8);
    const auto exact = exactMinServicesForCoverage(
        tail.callGraphs, tail.app.services.size(), 0.8);
    std::cout << "greedy vs exact (smallest app, 80% target): greedy="
              << greedy.size() << " services, exact="
              << (exact ? std::to_string(exact->size())
                        : std::string("n/a"))
              << "\n";

    exp::Report report("fig17");
    report.meta("apps", static_cast<int64_t>(config.appCount));
    report.meta("size_scale", config.sizeScale);
    report.meta("mean_single_upstream_fraction", mean_upstream);
    report.addTable("dg_size_vs_requests", a);
    report.addTable("call_graph_sizes", b);
    report.addTable("coverage", c);
    bench::finishReport(report, options);
    return 0;
}
