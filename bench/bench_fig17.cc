/**
 * @file
 * Figure 17 (Appendix G): analysis of the Alibaba-style workload.
 *  (a) dependency-graph size vs user requests served per application
 *      (few large apps serve most requests);
 *  (b) call-graph size distribution of the top four applications
 *      (most call graphs touch < 10 microservices);
 *  (c) fraction of requests serveable vs fraction of microservices
 *      enabled, from the coverage optimization (App1: >80% of requests
 *      with ~3% of services). Greedy max-coverage stands in for the
 *      paper's Gurobi LP; the exact MILP is used on apps small enough
 *      to solve.
 * Also reports the single-upstream fraction (§3.2: 74-82%).
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/alibaba.h"
#include "workloads/coverage.h"

using namespace phoenix;
using namespace phoenix::workloads;

int
main()
{
    AlibabaConfig config;
    config.appCount = 18;
    config.sizeScale = bench::fullScale() ? 1.0 : 0.3;
    bench::banner("Figure 17 | Alibaba-style workload analysis (" +
                  std::to_string(config.appCount) + " apps, scale " +
                  util::formatDouble(config.sizeScale, 2) + ")");

    const auto apps = AlibabaGenerator(config).generate();

    bench::banner("(a) DG size vs requests served");
    util::Table a({"app", "microservices", "requests/day",
                   "single-upstream-fraction"});
    for (const auto &generated : apps) {
        a.row()
            .cell(generated.app.name)
            .cell(generated.app.services.size())
            .cell(generated.requestRate, 0)
            .cell(generated.app.dag.singleUpstreamFraction());
    }
    a.print(std::cout);

    double upstream = 0.0;
    for (const auto &generated : apps)
        upstream += generated.app.dag.singleUpstreamFraction();
    std::cout << "mean single-upstream fraction: "
              << upstream / static_cast<double>(apps.size())
              << " (paper: 0.74-0.82)\n";

    bench::banner("(b) call-graph size distribution, top 4 apps");
    util::Table b({"app", "p50-size", "p90-size", "max-size",
                   "weight(size<10)"});
    for (size_t i = 0; i < 4 && i < apps.size(); ++i) {
        std::vector<double> sizes;
        double small_weight = 0.0;
        for (const auto &tpl : apps[i].callGraphs) {
            sizes.push_back(static_cast<double>(tpl.services.size()));
            if (tpl.services.size() < 10)
                small_weight += tpl.weight;
        }
        b.row()
            .cell(apps[i].app.name)
            .cell(util::percentile(sizes, 50), 1)
            .cell(util::percentile(sizes, 90), 1)
            .cell(*std::max_element(sizes.begin(), sizes.end()), 0)
            .cell(small_weight);
    }
    b.print(std::cout);

    bench::banner("(c) requests covered vs microservices enabled");
    util::Table c({"app", "services", "ms-for-50%", "ms-for-80%",
                   "ms-for-90%", "frac-of-services-for-80%"});
    for (size_t i = 0; i < 6 && i < apps.size(); ++i) {
        const auto &generated = apps[i];
        const size_t n = generated.app.services.size();
        const auto at = [&](double target) {
            return minServicesForCoverage(generated.callGraphs, n,
                                          target)
                .size();
        };
        const size_t for80 = at(0.8);
        c.row()
            .cell(generated.app.name)
            .cell(n)
            .cell(at(0.5))
            .cell(for80)
            .cell(at(0.9))
            .cell(static_cast<double>(for80) / static_cast<double>(n));
    }
    c.print(std::cout);

    // Exact-vs-greedy spot check on a small app.
    const auto &tail = apps.back();
    const auto greedy = minServicesForCoverage(
        tail.callGraphs, tail.app.services.size(), 0.8);
    const auto exact = exactMinServicesForCoverage(
        tail.callGraphs, tail.app.services.size(), 0.8);
    std::cout << "greedy vs exact (smallest app, 80% target): greedy="
              << greedy.size() << " services, exact="
              << (exact ? std::to_string(exact->size())
                        : std::string("n/a"))
              << "\n";
    return 0;
}
