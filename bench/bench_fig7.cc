/**
 * @file
 * Figure 7: AdaptLab at scale — Alibaba-style workload with
 * Service-Level-P90 tagging and CPM resources. For failure rates
 * 10..90% and every scheme, reports:
 *   (a) critical service availability (normalized, averaged over apps),
 *   (b) normalized revenue,
 *   (c) deviation from water-fill fair share (positive / negative).
 * 5 trials per point, as in the paper. LPFair/LPCost are excluded for
 * scalability (Fig 8b) exactly as the paper does.
 *
 * Default: 2,000-node cluster (same trends); ADAPTLAB_FULL_SCALE=1
 * runs the paper's 100,000 nodes.
 */

#include <iostream>

#include "adaptlab/runner.h"
#include "core/preemption.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main()
{
    const auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    bench::banner("Figure 7 | AdaptLab, Service-Level-P90 + CPM, " +
                  std::to_string(config.nodeCount) + " nodes");

    const Environment env = buildEnvironment(config);
    const std::vector<double> rates{0.1, 0.3, 0.5, 0.7, 0.9};
    const int trials = 5;

    auto schemes = core::makeAllSchemes(false);
    // The paper's §2 foil: Kubernetes PriorityClass preemption, the
    // existing infrastructure-level mechanism.
    schemes.push_back(std::make_unique<core::KubePreemptionScheme>());
    util::Table table({"scheme", "failure-rate", "availability",
                       "availability(strict)", "norm-revenue",
                       "fair-dev(+)", "fair-dev(-)"});
    for (auto &scheme : schemes) {
        const auto rows = sweepScheme(env, *scheme, rates, trials);
        for (const auto &row : rows) {
            table.row()
                .cell(row.scheme)
                .cell(row.metrics.failureRate, 1)
                .cell(row.metrics.availability)
                .cell(row.metrics.availabilityStrict)
                .cell(row.metrics.revenue)
                .cell(row.metrics.fairnessPositive)
                .cell(row.metrics.fairnessNegative);
        }
    }
    table.print(std::cout);
    std::cout << "(a) availability: PhoenixFair/PhoenixCost stay on "
                 "top; Priority collapses at high failure;\n"
                 "(b) revenue: PhoenixCost maximal; (c) PhoenixFair "
                 "has the least total fair-share deviation.\n";
    return 0;
}
