/**
 * @file
 * Figure 7: AdaptLab at scale — Alibaba-style workload with
 * Service-Level-P90 tagging and CPM resources. For failure rates
 * 10..90% and every scheme, reports:
 *   (a) critical service availability (normalized, averaged over apps),
 *   (b) normalized revenue,
 *   (c) deviation from water-fill fair share (positive / negative).
 * 5 trials per point, as in the paper. LPFair/LPCost are excluded for
 * scalability (Fig 8b) exactly as the paper does.
 *
 * Default: 2,000-node cluster (same trends); ADAPTLAB_FULL_SCALE=1
 * runs the paper's 100,000 nodes. The (scheme x rate x trial) grid
 * runs on the exp engine: --jobs N parallelizes the cells with
 * bit-identical output for every N.
 */

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "core/preemption.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig7");
    bench::applyObs(options);
    const auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    bench::banner("Figure 7 | AdaptLab, Service-Level-P90 + CPM, " +
                  std::to_string(config.nodeCount) + " nodes");

    const Environment env = buildEnvironment(config);

    exp::SweepGridSpec spec;
    spec.schemes = exp::paperSchemeSpecs(false);
    // The paper's §2 foil: Kubernetes PriorityClass preemption, the
    // existing infrastructure-level mechanism.
    spec.schemes.push_back(
        exp::schemeSpec<core::KubePreemptionScheme>("K8sPreemption"));
    spec.failureRates = {0.1, 0.3, 0.5, 0.7, 0.9};
    spec.trials = options.trialsOr(5);
    spec.seedBase = options.seedOr(100);
    spec = exp::filterSchemes(spec, options.filter);

    const auto started = std::chrono::steady_clock::now();
    const auto aggregates =
        exp::runGrid(env, spec, bench::engineOptions(options));
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started)
            .count();

    util::Table table({"scheme", "failure-rate", "availability",
                       "availability(strict)", "norm-revenue",
                       "fair-dev(+)", "fair-dev(-)"});
    for (const auto &agg : aggregates) {
        table.row()
            .cell(agg.scheme)
            .cell(agg.mean.failureRate, 1)
            .cell(agg.mean.availability)
            .cell(agg.mean.availabilityStrict)
            .cell(agg.mean.revenue)
            .cell(agg.mean.fairnessPositive)
            .cell(agg.mean.fairnessNegative);
    }
    table.print(std::cout);
    std::cout << "(a) availability: PhoenixFair/PhoenixCost stay on "
                 "top; Priority collapses at high failure;\n"
                 "(b) revenue: PhoenixCost maximal; (c) PhoenixFair "
                 "has the least total fair-share deviation.\n";
    std::cout << "grid: " << spec.cellCount() << " cells in "
              << util::formatDouble(wall, 2) << " s\n";

    exp::Report report("fig7");
    report.meta("nodes", static_cast<int64_t>(config.nodeCount));
    report.meta("full_scale", bench::fullScale() ? "yes" : "no");
    report.meta("trials", static_cast<int64_t>(spec.trials));
    report.meta("seed_base", static_cast<int64_t>(spec.seedBase));
    report.meta("grid_wall_seconds", wall);
    report.addSweep("fig7", aggregates);
    bench::finishReport(report, options);
    return 0;
}
