/**
 * @file
 * Table 1 (Appendix H): end-to-end P95 latencies for HotelReservation
 * and Overleaf services before and after diagonal scaling. "Before" is
 * the fully-running cluster at moderate load; "after" is the degraded
 * state Phoenix reaches in the Fig 6 run (non-critical services
 * pruned, cluster hot). Pruned services are reported as "-" exactly as
 * in the paper; partially pruned 'reserve' loses its optional user
 * call and gets *faster* (gRPC fail-fast).
 */

#include <iostream>
#include <set>

#include "apps/cloudlab.h"
#include "apps/hotel.h"
#include "apps/overleaf.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::apps;

namespace {

std::set<sim::MsId>
allOf(const ServiceApp &sapp)
{
    std::set<sim::MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);
    return running;
}

/** Keep only the C1 services (Phoenix's degraded state at 42%). */
std::set<sim::MsId>
criticalOnly(const ServiceApp &sapp)
{
    std::set<sim::MsId> running;
    for (const auto &ms : sapp.app.services) {
        if (ms.criticality == sim::kC1)
            running.insert(ms.id);
    }
    return running;
}

std::string
cellOf(double p95)
{
    return p95 < 0 ? "-" : util::formatDouble(p95, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "table1");
    bench::applyObs(options);
    bench::banner("Table 1 | P95 latency before/after diagonal scaling");

    // Before: everything running, cluster at ~50% utilization.
    // After: only C1 services, cluster ~95% utilized (degraded).
    const double util_before = 0.5;
    const double util_after = 0.95;

    util::Table table(
        {"application", "service", "P95 before (ms)", "P95 after (ms)"});

    const ServiceApp overleaf = makeOverleaf(0);
    const auto ol_before =
        evaluateTraffic(overleaf, allOf(overleaf), util_before);
    const auto ol_after =
        evaluateTraffic(overleaf, criticalOnly(overleaf), util_after);
    for (const std::string name : {"edits", "compile", "spell_check"}) {
        for (size_t i = 0; i < ol_before.size(); ++i) {
            if (ol_before[i].request != name)
                continue;
            table.row()
                .cell("Overleaf")
                .cell(name)
                .cell(cellOf(ol_before[i].p95Ms))
                .cell(cellOf(ol_after[i].p95Ms));
        }
    }

    // HR1 (reserve-critical): prune everything but C1 plus... the
    // paper's run keeps 'reserve' serving with 'user' pruned.
    const ServiceApp hr = makeHotelReservation(1);
    const auto hr_before = evaluateTraffic(hr, allOf(hr), util_before);
    const auto hr_after =
        evaluateTraffic(hr, criticalOnly(hr), util_after);
    for (const std::string name :
         {"reserve", "recommend", "search", "login"}) {
        for (size_t i = 0; i < hr_before.size(); ++i) {
            if (hr_before[i].request != name)
                continue;
            table.row()
                .cell("HR")
                .cell(name)
                .cell(cellOf(hr_before[i].p95Ms))
                .cell(cellOf(hr_after[i].p95Ms));
        }
    }
    table.print(std::cout);
    std::cout << "Paper reference: edits 141 -> 144; compile 4317.9 -> "
                 "-; spell_check 2296.7 -> -; reserve 55.33 -> 50.11; "
                 "recommend/search/login pruned.\n";

    exp::Report report("table1");
    report.meta("utilization_before", util_before);
    report.meta("utilization_after", util_after);
    report.addTable("p95_latencies", table);
    bench::finishReport(report, options);
    return 0;
}
