/**
 * @file
 * Figure 8(a): capacity-trace replay. Cluster capacity swings over a
 * ~10-minute window (full -> 40% -> 70% -> 50% -> full); each scheme
 * replans at every change, and the platform reports requests served
 * per second by replaying the call-graph mix. The paper runs this on
 * 10,000 nodes; the default here is 2,000 (ADAPTLAB_FULL_SCALE=1 for
 * paper scale) — trends are identical.
 *
 * The replay is inherently sequential per scheme (each step depends on
 * the previous state), so --jobs parallelizes across schemes: each
 * worker replays one scheme's whole trace with its own fresh scheme
 * instance.
 */

#include <iostream>

#include "adaptlab/replay.h"
#include "bench/bench_common.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig8a");
    bench::applyObs(options);
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    if (bench::fullScale())
        config.nodeCount = 10000; // the paper's Fig 8a scale
    bench::banner("Figure 8(a) | capacity-trace replay, " +
                  std::to_string(config.nodeCount) + " nodes");

    const Environment env = buildEnvironment(config);
    const auto trace = defaultCapacityTrace();
    const uint64_t seed = options.seedOr(99);

    auto specs = exp::paperSchemeSpecs(false);
    {
        exp::SweepGridSpec filter_probe;
        filter_probe.schemes = std::move(specs);
        specs = exp::filterSchemes(filter_probe, options.filter)
                    .schemes;
    }
    if (specs.empty()) {
        std::cerr << "--filter matched no scheme\n";
        return 2;
    }

    std::vector<std::vector<ReplayPoint>> series(specs.size());
    std::vector<std::string> names(specs.size());
    exp::parallelFor(options.jobs, specs.size(), [&](size_t i) {
        const auto scheme = specs[i].make();
        series[i] = replayTrace(env, *scheme, trace, seed);
        names[i] = specs[i].name;
    });

    std::vector<std::string> header{"t(s)", "capacity"};
    header.insert(header.end(), names.begin(), names.end());
    util::Table table(header);
    for (size_t i = 0; i < trace.size(); ++i) {
        table.row()
            .cell(series[0][i].timeSec, 0)
            .cell(series[0][i].capacityFraction, 2);
        for (const auto &s : series)
            table.cell(s[i].requestsServed, 1);
    }
    table.print(std::cout);

    util::Table totals({"scheme", "total-requests-served",
                        "vs-Fair", "vs-Priority"});
    std::vector<double> sums(series.size(), 0.0);
    size_t fair_index = series.size();
    size_t priority_index = series.size();
    for (size_t s = 0; s < series.size(); ++s) {
        for (const auto &point : series[s])
            sums[s] += point.requestsServed;
        if (names[s] == "Fair")
            fair_index = s;
        if (names[s] == "Priority")
            priority_index = s;
    }
    for (size_t s = 0; s < series.size(); ++s) {
        const double vs_fair =
            fair_index < sums.size() && sums[fair_index] > 0
                ? sums[s] / sums[fair_index]
                : 0.0;
        const double vs_priority =
            priority_index < sums.size() && sums[priority_index] > 0
                ? sums[s] / sums[priority_index]
                : 0.0;
        totals.row()
            .cell(names[s])
            .cell(sums[s], 1)
            .cell(vs_fair, 2)
            .cell(vs_priority, 2);
    }
    totals.print(std::cout);

    exp::Report report("fig8a");
    report.meta("nodes", static_cast<int64_t>(config.nodeCount));
    report.meta("seed", static_cast<int64_t>(seed));
    report.addTable("replay_series", table);
    report.addTable("totals", totals);
    bench::finishReport(report, options);
    return 0;
}
