/**
 * @file
 * Figure 8(a): capacity-trace replay. Cluster capacity swings over a
 * ~10-minute window (full -> 40% -> 70% -> 50% -> full); each scheme
 * replans at every change, and the platform reports requests served
 * per second by replaying the call-graph mix. The paper runs this on
 * 10,000 nodes; the default here is 2,000 (ADAPTLAB_FULL_SCALE=1 for
 * paper scale) — trends are identical.
 */

#include <iostream>

#include "adaptlab/replay.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main()
{
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    if (bench::fullScale())
        config.nodeCount = 10000; // the paper's Fig 8a scale
    bench::banner("Figure 8(a) | capacity-trace replay, " +
                  std::to_string(config.nodeCount) + " nodes");

    const Environment env = buildEnvironment(config);
    const auto trace = defaultCapacityTrace();

    auto schemes = core::makeAllSchemes(false);
    std::vector<std::vector<ReplayPoint>> series;
    std::vector<std::string> names;
    for (auto &scheme : schemes) {
        series.push_back(replayTrace(env, *scheme, trace));
        names.push_back(scheme->name());
    }

    std::vector<std::string> header{"t(s)", "capacity"};
    header.insert(header.end(), names.begin(), names.end());
    util::Table table(header);
    for (size_t i = 0; i < trace.size(); ++i) {
        table.row()
            .cell(series[0][i].timeSec, 0)
            .cell(series[0][i].capacityFraction, 2);
        for (const auto &s : series)
            table.cell(s[i].requestsServed, 1);
    }
    table.print(std::cout);

    util::Table totals({"scheme", "total-requests-served",
                        "vs-Fair", "vs-Priority"});
    std::vector<double> sums(series.size(), 0.0);
    for (size_t s = 0; s < series.size(); ++s) {
        for (const auto &point : series[s])
            sums[s] += point.requestsServed;
    }
    for (size_t s = 0; s < series.size(); ++s) {
        totals.row()
            .cell(names[s])
            .cell(sums[s], 1)
            .cell(sums[2] > 0 ? sums[s] / sums[2] : 0.0, 2)
            .cell(sums[3] > 0 ? sums[s] / sums[3] : 0.0, 2);
    }
    totals.print(std::cout);
    return 0;
}
