/**
 * @file
 * Figure 6: end-to-end recovery time-series on the mini-Kubernetes
 * substrate. The run mirrors the paper's: five application instances
 * on a 25-node / 200-CPU cluster; at t1=600 s kubelet is stopped on 14
 * nodes (capacity drops to ~42-44%); at t5=1500 s the kubelets
 * restart. PhoenixCost and Kubernetes Default are each run once;
 * --jobs 2 runs the two simulations concurrently.
 *
 * Output:
 *  (a/b) critical-service availability over time for both schemes,
 *        with the t1..t5 event markers;
 *  (c/d) Overleaf0 per-request-type RPS and utility over time;
 *  (e/f) HR1 per-request-type RPS and utility over time.
 */

#include <iostream>
#include <map>
#include <memory>
#include <set>

#include "apps/cloudlab.h"
#include "bench/bench_common.h"
#include "core/controller.h"
#include "core/schemes.h"
#include "kube/kube.h"
#include "sim/metrics.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::PodRef;

namespace {

constexpr double kFailAt = 600.0;
constexpr double kRecoverAt = 1500.0;
constexpr double kEnd = 2000.0;
constexpr double kSample = 30.0;
constexpr size_t kFailedNodes = 14;

struct RunResult
{
    /** time -> critical availability (fraction of apps OK). */
    std::map<double, double> availability;
    /** time -> request name -> served RPS, for Overleaf0 and HR1. */
    std::map<double, std::map<std::string, double>> overleafRps;
    std::map<double, std::map<std::string, double>> hrRps;
    std::map<double, std::map<std::string, double>> overleafUtil;
    std::map<double, std::map<std::string, double>> hrUtil;
    std::vector<ReplanRecord> history;
};

RunResult
run(bool with_phoenix)
{
    sim::EventQueue events;
    kube::KubeCluster cluster(events);
    const apps::CloudLabTestbed testbed = apps::makeCloudLabTestbed();
    for (size_t n = 0; n < testbed.config.nodeCount; ++n)
        cluster.addNode(testbed.config.cpusPerNode);
    for (const auto &sapp : testbed.serviceApps)
        cluster.addApplication(sapp.app);

    std::unique_ptr<PhoenixController> controller;
    if (with_phoenix) {
        controller = std::make_unique<PhoenixController>(
            events, cluster,
            std::make_unique<PhoenixScheme>(Objective::Cost));
    }

    RunResult result;
    auto sample = [&] {
        const double t = events.now();
        sim::ActiveSet active = sim::emptyActiveSet(cluster.apps());
        std::set<sim::MsId> overleaf_up;
        std::set<sim::MsId> hr_up;
        for (const PodRef &pod : cluster.runningPods()) {
            active[pod.app][pod.ms] = true;
            if (pod.app == 0)
                overleaf_up.insert(pod.ms);
            if (pod.app == 4)
                hr_up.insert(pod.ms);
        }
        result.availability[t] =
            sim::criticalServiceAvailability(cluster.apps(), active);
        const double util = cluster.liveState().utilization();
        for (const auto &point : apps::evaluateTraffic(
                 testbed.serviceApps[0], overleaf_up, util)) {
            result.overleafRps[t][point.request] = point.servedRps;
            result.overleafUtil[t][point.request] = point.utility;
        }
        for (const auto &point : apps::evaluateTraffic(
                 testbed.serviceApps[4], hr_up, util)) {
            result.hrRps[t][point.request] = point.servedRps;
            result.hrUtil[t][point.request] = point.utility;
        }
    };

    for (double t = kSample; t <= kEnd; t += kSample)
        events.schedule(t, sample);
    events.schedule(kFailAt, [&] {
        for (sim::NodeId n = 0; n < kFailedNodes; ++n)
            cluster.stopKubelet(n);
    });
    events.schedule(kRecoverAt, [&] {
        for (sim::NodeId n = 0; n < kFailedNodes; ++n)
            cluster.startKubelet(n);
    });

    events.runUntil(kEnd);
    if (controller)
        result.history = controller->history();
    return result;
}

util::Table
seriesTable(const std::string &title,
            const std::map<double, std::map<std::string, double>> &series)
{
    bench::banner(title);
    std::vector<std::string> keys;
    if (!series.empty()) {
        for (const auto &[name, value] : series.begin()->second) {
            (void)value;
            keys.push_back(name);
        }
    }
    std::vector<std::string> header{"t(s)"};
    header.insert(header.end(), keys.begin(), keys.end());
    util::Table table(header);
    for (const auto &[t, row] : series) {
        if (std::fmod(t, 90.0) != 0.0)
            continue; // thin the series for print
        table.row().cell(t, 0);
        for (const auto &key : keys)
            table.cell(row.at(key), 2);
    }
    table.print(std::cout);
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig6");
    bench::applyObs(options);
    bench::banner(
        "Figure 6 | recovery run: fail 14/25 nodes at t=600 s, "
        "restore at t=1500 s");
    std::cout << "events: t1=600 failure injected; detection after the "
                 "~100 s node grace;\n        t5=1500 nodes return\n";

    // The two recovery simulations are independent; run them as two
    // tasks on the shared pool.
    RunResult results[2];
    exp::parallelFor(options.jobs, 2, [&](size_t i) {
        results[i] = run(i == 0);
    });
    const RunResult &phoenix = results[0];
    const RunResult &fallback = results[1];

    bench::banner("(a)/(b) critical service availability over time");
    util::Table avail({"t(s)", "PhoenixCost", "Default"});
    for (const auto &[t, value] : phoenix.availability) {
        if (std::fmod(t, 90.0) != 0.0)
            continue;
        avail.row().cell(t, 0).cell(value, 2).cell(
            fallback.availability.at(t), 2);
    }
    avail.print(std::cout);

    bench::banner("Phoenix replanning timeline");
    util::Table timeline({"detected(t2)", "plan(s)", "deletes",
                          "migrations", "restarts", "recovered(t4)"});
    for (const auto &record : phoenix.history) {
        timeline.row()
            .cell(record.detectedAt, 0)
            .cell(record.planSeconds, 4)
            .cell(record.deletes)
            .cell(record.migrations)
            .cell(record.restarts)
            .cell(record.recoveredAt, 0);
    }
    timeline.print(std::cout);

    const auto overleaf_rps = seriesTable(
        "(c) Overleaf0 served RPS under Phoenix", phoenix.overleafRps);
    const auto overleaf_util =
        seriesTable("(d) Overleaf0 end-user utility under Phoenix",
                    phoenix.overleafUtil);
    const auto hr_rps =
        seriesTable("(e) HR1 served RPS under Phoenix", phoenix.hrRps);
    const auto hr_util = seriesTable(
        "(f) HR1 end-user utility under Phoenix", phoenix.hrUtil);

    // Headline numbers.
    double phoenix_min = 1.0;
    double default_min = 1.0;
    for (const auto &[t, value] : phoenix.availability) {
        if (t > kFailAt + 300 && t < kRecoverAt) {
            phoenix_min = std::min(phoenix_min, value);
            default_min =
                std::min(default_min, fallback.availability.at(t));
        }
    }
    std::cout << "\nDuring the failure window Phoenix keeps "
              << phoenix_min * 5 << "/5 apps critically available vs "
              << default_min * 5 << "/5 for Default ("
              << (default_min > 0 ? phoenix_min / default_min : 0)
              << "x).\n";

    exp::Report report("fig6");
    report.meta("fail_at_s", kFailAt);
    report.meta("recover_at_s", kRecoverAt);
    report.meta("phoenix_min_availability", phoenix_min);
    report.meta("default_min_availability", default_min);
    report.addTable("availability", avail);
    report.addTable("replan_timeline", timeline);
    report.addTable("overleaf_rps", overleaf_rps);
    report.addTable("overleaf_utility", overleaf_util);
    report.addTable("hr_rps", hr_rps);
    report.addTable("hr_utility", hr_util);
    bench::finishReport(report, options);
    return 0;
}
