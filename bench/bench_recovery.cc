/**
 * @file
 * Recovery-dynamics bench (Fig 6, §6.1): drives the CloudLab testbed
 * through four failure-scenario shapes — a 50%-capacity failure with
 * staggered recovery, a correlated two-zone outage, rolling node
 * failures, and kubelet flaps inside/outside the grace period — under
 * PhoenixCost, PhoenixFair, and the Kubernetes Default baseline.
 *
 * Every cell records the per-tick time series (ready capacity,
 * Running-critical count, availability, utility, pending pods) and the
 * derived time-to-critical-recovery / time-to-full-recovery. The JSON
 * report (BENCH_recovery.json) carries one sweep section per scenario
 * so tools/perfdiff can compare plan-time across runs, plus the
 * per-cell recovery metrics and the headline timelines. The kube
 * invariant checker is active in every cell.
 *
 * RECOVERY_SMOKE=1 restricts the grid to the 50%-capacity scenario
 * and asserts the Fig 6 storyline: Phoenix restores all critical
 * services within bounded time, Default cannot until capacity
 * returns, and no cell violates a cluster invariant.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exp/recovery.h"
#include "util/table.h"

using namespace phoenix;
using exp::RecoveryConfig;
using exp::RecoveryResult;
using exp::RecoveryScheme;

namespace {

struct ScenarioSpec
{
    std::string name;
    /** Fraction of cluster capacity the scenario takes down (the
     * sweep section's failure_rate key). */
    double failureRate = 0.0;
    sim::Scenario scenario;
    sim::ScenarioOptions options;
    double endTime = 2400.0;
    /** Explicit node zones + the spread/PDB overlay on C1 services
     * (RecoveryConfig::zoneCount); 0 = classic untopologied testbed. */
    size_t zoneCount = 0;
};

struct CellResult
{
    size_t scenarioIndex = 0;
    RecoveryScheme scheme = RecoveryScheme::Default;
    RecoveryResult recovery;
    double wallSeconds = 0.0;
};

std::vector<ScenarioSpec>
buildScenarios(uint64_t seed)
{
    std::vector<ScenarioSpec> specs;

    {
        // The paper's headline run: capacity halved at t=600 s, nodes
        // return one by one from t=1500 s (staggered recovery).
        ScenarioSpec spec;
        spec.name = "cap50";
        spec.failureRate = 0.5;
        spec.options.seed = seed;
        spec.scenario.failCapacityFraction(600.0, 0.5)
            .recoverAll(1500.0, 30.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Correlated sub-datacenter outage: two of five zones fail a
        // minute apart (40% of nodes), everything returns at once.
        ScenarioSpec spec;
        spec.name = "zones";
        spec.failureRate = 0.4;
        spec.options.seed = seed;
        spec.options.zoneCount = 5;
        spec.scenario.failZone(600.0, 0)
            .failZone(660.0, 1)
            .recoverAll(1500.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Spread-constrained zone outage: nodes carry explicit zone
        // labels, every C1 service is split into a two-replica
        // minZoneSpread=2 pair (same aggregate demand), and one whole
        // zone dies. Placement honoring the implied per-zone cap
        // keeps a survivor of every critical pair outside the dead
        // zone, so the outage should be a non-event for critical
        // availability — the bench-level version of the pinned
        // zone-kill demo in test_constraints.
        ScenarioSpec spec;
        spec.name = "spreadzone";
        spec.failureRate = 0.2;
        spec.options.seed = seed;
        spec.options.zoneCount = 5;
        spec.zoneCount = 5;
        spec.scenario.failZone(600.0, 0).recoverAll(1500.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Rolling failure: one random node per minute for 8 minutes,
        // then staggered recovery.
        ScenarioSpec spec;
        spec.name = "rolling";
        spec.failureRate = 8.0 / 25.0;
        spec.options.seed = seed;
        spec.scenario.rollingFail(600.0, 8, 60.0)
            .recoverAll(1800.0, 15.0);
        spec.endTime = 2600.0;
        specs.push_back(std::move(spec));
    }
    {
        // Kubelet flaps: three nodes flap inside the 100 s grace
        // period (must be a non-event), five flap well outside it.
        ScenarioSpec spec;
        spec.name = "flap";
        spec.failureRate = 5.0 / 25.0;
        spec.options.seed = seed;
        for (sim::NodeId n = 0; n < 3; ++n)
            spec.scenario.flapKubelet(600.0, n, 50.0);
        for (sim::NodeId n = 3; n < 8; ++n)
            spec.scenario.flapKubelet(900.0, n, 300.0);
        spec.endTime = 2000.0;
        specs.push_back(std::move(spec));
    }
    return specs;
}

exp::MetricStats
statsOf(const std::vector<double> &values)
{
    exp::MetricStats stats;
    if (values.empty())
        return stats;
    stats.min = values.front();
    stats.max = values.front();
    double sum = 0.0;
    for (double v : values) {
        sum += v;
        stats.min = std::min(stats.min, v);
        stats.max = std::max(stats.max, v);
    }
    stats.mean = sum / static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values)
        var += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(var / static_cast<double>(values.size()));
    return stats;
}

/** Cell -> perfdiff-compatible sweep aggregate. */
exp::SweepAggregate
toAggregate(const ScenarioSpec &spec, const CellResult &cell)
{
    exp::SweepAggregate agg;
    agg.scheme = exp::recoverySchemeName(cell.scheme);
    agg.failureRate = spec.failureRate;
    agg.trials = 1;
    agg.wallSeconds = cell.wallSeconds;

    // Per-cell obs metric deltas (--metrics), with the kube
    // invariant-violation count always present so a regression to
    // nonzero is visible in the JSON diff.
    agg.obs = cell.recovery.obsMetrics;
    if (!agg.obs.empty()) {
        bool has_violations = false;
        for (const auto &[name, value] : agg.obs) {
            (void)value;
            has_violations =
                has_violations || name == "kube.invariant_violations";
        }
        if (!has_violations) {
            agg.obs.emplace_back(
                "kube.invariant_violations",
                static_cast<double>(
                    cell.recovery.invariantViolations));
            std::sort(agg.obs.begin(), agg.obs.end());
        }
    }

    std::vector<double> avail;
    std::vector<double> util;
    for (const auto &sample : cell.recovery.samples) {
        if (sample.t >= cell.recovery.firstFailureAt) {
            avail.push_back(sample.availability);
            util.push_back(sample.utility);
        }
    }
    agg.availability = statsOf(avail);
    agg.requestsServed = statsOf(util);
    agg.availabilityStrict =
        statsOf({cell.recovery.finalAvailability});
    if (cell.recovery.replans > 0) {
        agg.planSeconds = statsOf({cell.recovery.planSecondsTotal /
                                   static_cast<double>(
                                       cell.recovery.replans)});
    }
    return agg;
}

bool
smokeMode()
{
    const char *env = std::getenv("RECOVERY_SMOKE");
    return env && std::string(env) == "1";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "recovery");
    bench::applyObs(options);
    const bool smoke = smokeMode();
    bench::banner(
        "Recovery dynamics | scenario-driven Fig 6 timelines on the "
        "25-node CloudLab testbed");

    const auto scenarios = buildScenarios(options.seedOr(42));
    std::vector<RecoveryScheme> schemes{RecoveryScheme::PhoenixCost,
                                        RecoveryScheme::PhoenixFair,
                                        RecoveryScheme::Default};
    if (smoke)
        schemes = {RecoveryScheme::PhoenixCost,
                   RecoveryScheme::Default};

    // Build the cell list (scenario-major, matching report order).
    std::vector<CellResult> cells;
    for (size_t s = 0; s < scenarios.size(); ++s) {
        if (smoke && scenarios[s].name != "cap50" &&
            scenarios[s].name != "spreadzone")
            continue;
        for (RecoveryScheme scheme : schemes) {
            if (!options.filter.empty()) {
                std::string name =
                    exp::recoverySchemeName(scheme);
                std::string filter = options.filter;
                for (auto &c : name)
                    c = static_cast<char>(std::tolower(c));
                for (auto &c : filter)
                    c = static_cast<char>(std::tolower(c));
                if (name.find(filter) == std::string::npos)
                    continue;
            }
            CellResult cell;
            cell.scenarioIndex = s;
            cell.scheme = scheme;
            cells.push_back(cell);
        }
    }

    exp::parallelFor(options.jobs, cells.size(), [&](size_t i) {
        CellResult &cell = cells[i];
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        // One trace track per cell, keyed by the canonical cell index
        // so the trace layout is identical for any --jobs value.
        obs::setCurrentTrack(static_cast<uint32_t>(i));
        if (obs::traceEnabled()) {
            obs::Tracer::global().nameTrack(
                static_cast<uint32_t>(i),
                spec.name + "/" +
                    exp::recoverySchemeName(cell.scheme));
        }
        RecoveryConfig config;
        config.scheme = cell.scheme;
        config.scenario = spec.scenario;
        config.scenarioOptions = spec.options;
        config.endTime = spec.endTime;
        config.zoneCount = spec.zoneCount;
        const auto start = std::chrono::steady_clock::now();
        cell.recovery = exp::runRecovery(config);
        cell.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
    });

    // ---- Per-cell recovery metrics -------------------------------
    bench::banner("time-to-recovery per (scenario, scheme)");
    util::Table table({"scenario", "scheme", "ttcr(s)", "ttfr(s)",
                       "min_avail", "final_avail", "max_pending",
                       "replans", "violations"});
    for (const CellResult &cell : cells) {
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        table.row()
            .cell(spec.name)
            .cell(exp::recoverySchemeName(cell.scheme))
            .cell(cell.recovery.timeToCriticalRecovery, 0)
            .cell(cell.recovery.timeToFullRecovery, 0)
            .cell(cell.recovery.minAvailability, 2)
            .cell(cell.recovery.finalAvailability, 2)
            .cell(cell.recovery.maxPending)
            .cell(cell.recovery.replans)
            .cell(cell.recovery.invariantViolations);
    }
    table.print(std::cout);

    // ---- Headline timeline (cap50, PhoenixCost vs Default) -------
    util::Table timeline({"t(s)", "scheme", "ready_cpu", "crit_up",
                          "running", "pending", "avail", "utility"});
    for (const CellResult &cell : cells) {
        if (scenarios[cell.scenarioIndex].name != "cap50")
            continue;
        if (cell.scheme == RecoveryScheme::PhoenixFair)
            continue;
        for (const auto &sample : cell.recovery.samples) {
            if (std::fmod(sample.t, 90.0) != 0.0)
                continue;
            timeline.row()
                .cell(sample.t, 0)
                .cell(exp::recoverySchemeName(cell.scheme))
                .cell(sample.readyCapacity, 0)
                .cell(sample.runningCritical)
                .cell(sample.running)
                .cell(sample.pending)
                .cell(sample.availability, 2)
                .cell(sample.utility, 2);
        }
    }
    bench::banner("cap50 recovery timeline");
    timeline.print(std::cout);

    // ---- Report --------------------------------------------------
    exp::Report report("recovery");
    report.meta("nodes",
                static_cast<int64_t>(apps::CloudLabConfig{}.nodeCount));
    report.meta("smoke", static_cast<int64_t>(smoke ? 1 : 0));
    for (const CellResult &cell : cells) {
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        const std::string prefix =
            spec.name + "_" + exp::recoverySchemeName(cell.scheme);
        report.meta(prefix + "_ttcr_s",
                    cell.recovery.timeToCriticalRecovery);
        report.meta(prefix + "_ttfr_s",
                    cell.recovery.timeToFullRecovery);
    }
    report.addTable("recovery_cells", table);
    report.addTable("timeline_cap50", timeline);
    for (size_t s = 0; s < scenarios.size(); ++s) {
        std::vector<exp::SweepAggregate> sweep;
        for (const CellResult &cell : cells) {
            if (cell.scenarioIndex == s)
                sweep.push_back(toAggregate(scenarios[s], cell));
        }
        if (!sweep.empty())
            report.addSweep(scenarios[s].name, sweep);
    }
    bench::finishReport(report, options);

    // ---- Smoke gate ----------------------------------------------
    if (smoke) {
        const CellResult *phoenix = nullptr;
        const CellResult *fallback = nullptr;
        const CellResult *spread = nullptr;
        for (const CellResult &cell : cells) {
            const std::string &name =
                scenarios[cell.scenarioIndex].name;
            if (name == "cap50") {
                if (cell.scheme == RecoveryScheme::PhoenixCost)
                    phoenix = &cell;
                if (cell.scheme == RecoveryScheme::Default)
                    fallback = &cell;
            } else if (name == "spreadzone" &&
                       cell.scheme == RecoveryScheme::PhoenixCost) {
                spread = &cell;
            }
        }
        size_t failures = 0;
        auto expect = [&failures](bool ok, const std::string &what) {
            if (!ok) {
                std::cerr << "[smoke] FAIL: " << what << "\n";
                ++failures;
            }
        };
        for (const CellResult &cell : cells) {
            expect(cell.recovery.invariantViolations == 0,
                   std::string("invariant violations under ") +
                       exp::recoverySchemeName(cell.scheme));
        }
        expect(phoenix && fallback, "both smoke cells ran");
        if (phoenix && fallback) {
            const RecoveryResult &p = phoenix->recovery;
            const RecoveryResult &d = fallback->recovery;
            expect(p.minAvailability < 1.0,
                   "phoenix availability dipped during detection");
            expect(p.timeToCriticalRecovery > 0.0,
                   "phoenix ttcr derived");
            expect(p.timeToCriticalRecovery <= 420.0,
                   "phoenix restores critical services within 420 s "
                   "(grace + poll + replan + pod startup)");
            expect(p.finalAvailability >= 1.0 - 1e-9,
                   "phoenix ends fully available");
            expect(p.timeToFullRecovery > 0.0 &&
                       p.timeToFullRecovery <= 1800.0,
                   "phoenix full recovery after capacity returns");
            expect(d.timeToCriticalRecovery < 0.0 ||
                       d.timeToCriticalRecovery >
                           p.timeToCriticalRecovery + 120.0,
                   "default cannot protect critical services before "
                   "capacity returns");
        }
        expect(spread != nullptr, "spreadzone smoke cell ran");
        if (spread) {
            const RecoveryResult &s = spread->recovery;
            // Every critical pair has a spread-placed survivor, so a
            // whole zone dying never drops a critical service: the
            // outage is a non-event for critical availability and the
            // cluster is fully available again within the Fig 6
            // recovery envelope.
            expect(s.minAvailability >= 1.0 - 1e-9,
                   "spread-constrained criticals ride out the zone "
                   "kill (no availability dip)");
            expect(s.timeToCriticalRecovery == 0.0,
                   "spreadzone ttcr is 0 (never dropped)");
            expect(s.finalAvailability >= 1.0 - 1e-9,
                   "spreadzone ends fully available");
            expect(s.timeToFullRecovery >= 0.0 &&
                       s.timeToFullRecovery <= 1800.0,
                   "spreadzone full recovery after the zone returns");
        }
        if (failures > 0) {
            std::cerr << "[smoke] " << failures << " check(s) failed\n";
            return 1;
        }
        std::cout << "[smoke] recovery bounds OK\n";
    }
    return 0;
}
