/**
 * @file
 * Recovery-dynamics bench (Fig 6, §6.1): drives the CloudLab testbed
 * through four failure-scenario shapes — a 50%-capacity failure with
 * staggered recovery, a correlated two-zone outage, rolling node
 * failures, and kubelet flaps inside/outside the grace period — under
 * PhoenixCost, PhoenixFair, and the Kubernetes Default baseline.
 *
 * Every cell records the per-tick time series (ready capacity,
 * Running-critical count, availability, utility, pending pods) and the
 * derived time-to-critical-recovery / time-to-full-recovery. The JSON
 * report (BENCH_recovery.json) carries one sweep section per scenario
 * so tools/perfdiff can compare plan-time across runs, plus the
 * per-cell recovery metrics and the headline timelines. The kube
 * invariant checker is active in every cell.
 *
 * Two anticipated-fault scenarios (decayzone, graydecay) inject
 * precursor signals — partial zone loss, gradual capacity decay —
 * before the main fault; the Phoenix cells run twice there, reactive
 * and with the forecast subsystem attached (--forecast extends the
 * forecast cells to every scenario). --sample-period overrides the
 * harness sampling cadence.
 *
 * RECOVERY_SMOKE=1 restricts the grid to the 50%-capacity scenario
 * plus the constrained/anticipated scenarios and asserts the Fig 6
 * storyline: Phoenix restores all critical services within bounded
 * time, Default cannot until capacity returns, the forecast cells
 * recover strictly faster than reactive on the anticipated faults
 * (>= 2x on the pre-staged zone kill), and no cell violates a
 * cluster invariant.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exp/recovery.h"
#include "util/table.h"

using namespace phoenix;
using exp::RecoveryConfig;
using exp::RecoveryResult;
using exp::RecoveryScheme;

namespace {

struct ScenarioSpec
{
    std::string name;
    /** Fraction of cluster capacity the scenario takes down (the
     * sweep section's failure_rate key). */
    double failureRate = 0.0;
    sim::Scenario scenario;
    sim::ScenarioOptions options;
    double endTime = 2400.0;
    /** Explicit node zones + the spread/PDB overlay on C1 services
     * (RecoveryConfig::zoneCount); 0 = classic untopologied testbed. */
    size_t zoneCount = 0;
    /** Precursor signals precede the main fault: the forecast cells
     * run here by default (reactive vs forecast ttcr is the story). */
    bool anticipated = false;
};

struct CellResult
{
    size_t scenarioIndex = 0;
    RecoveryScheme scheme = RecoveryScheme::Default;
    bool forecast = false;
    RecoveryResult recovery;
    double wallSeconds = 0.0;
};

/** Sweep/report label: the forecast cells are distinct schemes, so
 * perfdiff treats them as added/removed cells (never an ops
 * regression) against pre-forecast baselines. */
std::string
cellSchemeName(const CellResult &cell)
{
    std::string name = exp::recoverySchemeName(cell.scheme);
    if (cell.forecast)
        name += "+forecast";
    return name;
}

std::vector<ScenarioSpec>
buildScenarios(uint64_t seed)
{
    std::vector<ScenarioSpec> specs;

    {
        // The paper's headline run: capacity halved at t=600 s, nodes
        // return one by one from t=1500 s (staggered recovery).
        ScenarioSpec spec;
        spec.name = "cap50";
        spec.failureRate = 0.5;
        spec.options.seed = seed;
        spec.scenario.failCapacityFraction(600.0, 0.5)
            .recoverAll(1500.0, 30.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Correlated sub-datacenter outage: two of five zones fail a
        // minute apart (40% of nodes), everything returns at once.
        ScenarioSpec spec;
        spec.name = "zones";
        spec.failureRate = 0.4;
        spec.options.seed = seed;
        spec.options.zoneCount = 5;
        spec.scenario.failZone(600.0, 0)
            .failZone(660.0, 1)
            .recoverAll(1500.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Spread-constrained zone outage: nodes carry explicit zone
        // labels, every C1 service is split into a two-replica
        // minZoneSpread=2 pair (same aggregate demand), and one whole
        // zone dies. Placement honoring the implied per-zone cap
        // keeps a survivor of every critical pair outside the dead
        // zone, so the outage should be a non-event for critical
        // availability — the bench-level version of the pinned
        // zone-kill demo in test_constraints.
        ScenarioSpec spec;
        spec.name = "spreadzone";
        spec.failureRate = 0.2;
        spec.options.seed = seed;
        spec.options.zoneCount = 5;
        spec.zoneCount = 5;
        spec.scenario.failZone(600.0, 0).recoverAll(1500.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Anticipated zone loss: three of zone 0's five nodes die as
        // precursors (t=400, t=500), then the whole zone goes at
        // t=900. The zone-loss detector arms on the precursor deficit
        // and pre-moves the survivors off the at-risk zone, so the
        // full kill should be a non-event for the forecast cell;
        // reactive cells eat a second detection + replan + restart
        // cycle.
        ScenarioSpec spec;
        spec.name = "decayzone";
        spec.failureRate = 0.2;
        spec.options.seed = seed;
        spec.options.zoneCount = 5;
        spec.anticipated = true;
        spec.scenario.failNodes(400.0, {0, 5})
            .failNodes(500.0, {10})
            .failZone(900.0, 0)
            .recoverAll(1500.0, 30.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Anticipated gray failure: one failure domain's nodes decay
        // gradually (factor 0.6 at t=400, 0.25 at t=600) before dying
        // outright at t=900. The gray set is one zone under the
        // forecaster's fallback striping (id % 5), so the zone-loss
        // and capacity-decay detectors agree on the at-risk node set:
        // the proactive drain empties exactly the nodes that later
        // die, and the kill should be a non-event for the forecast
        // cell. The reactive controller sees no capacity *loss* while
        // the pods still fit the decayed nodes, so it eats the full
        // detection + replan cycle at the kill.
        ScenarioSpec spec;
        spec.name = "graydecay";
        spec.failureRate = 5.0 / 25.0;
        spec.options.seed = seed;
        spec.anticipated = true;
        std::vector<sim::NodeId> gray{0, 5, 10, 15, 20};
        spec.scenario.degradeNodes(400.0, gray, 0.6)
            .degradeNodes(600.0, gray, 0.25)
            .failNodes(900.0, gray)
            .recoverAll(1500.0, 15.0);
        spec.endTime = 2400.0;
        specs.push_back(std::move(spec));
    }
    {
        // Rolling failure: one random node per minute for 8 minutes,
        // then staggered recovery.
        ScenarioSpec spec;
        spec.name = "rolling";
        spec.failureRate = 8.0 / 25.0;
        spec.options.seed = seed;
        spec.scenario.rollingFail(600.0, 8, 60.0)
            .recoverAll(1800.0, 15.0);
        spec.endTime = 2600.0;
        specs.push_back(std::move(spec));
    }
    {
        // Kubelet flaps: three nodes flap inside the 100 s grace
        // period (must be a non-event), five flap well outside it.
        ScenarioSpec spec;
        spec.name = "flap";
        spec.failureRate = 5.0 / 25.0;
        spec.options.seed = seed;
        for (sim::NodeId n = 0; n < 3; ++n)
            spec.scenario.flapKubelet(600.0, n, 50.0);
        for (sim::NodeId n = 3; n < 8; ++n)
            spec.scenario.flapKubelet(900.0, n, 300.0);
        spec.endTime = 2000.0;
        specs.push_back(std::move(spec));
    }
    return specs;
}

exp::MetricStats
statsOf(const std::vector<double> &values)
{
    exp::MetricStats stats;
    if (values.empty())
        return stats;
    stats.min = values.front();
    stats.max = values.front();
    double sum = 0.0;
    for (double v : values) {
        sum += v;
        stats.min = std::min(stats.min, v);
        stats.max = std::max(stats.max, v);
    }
    stats.mean = sum / static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values)
        var += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(var / static_cast<double>(values.size()));
    return stats;
}

/** Cell -> perfdiff-compatible sweep aggregate. */
exp::SweepAggregate
toAggregate(const ScenarioSpec &spec, const CellResult &cell)
{
    exp::SweepAggregate agg;
    agg.scheme = cellSchemeName(cell);
    agg.failureRate = spec.failureRate;
    agg.trials = 1;
    agg.wallSeconds = cell.wallSeconds;

    // Per-cell obs metric deltas (--metrics), with the kube
    // invariant-violation count always present so a regression to
    // nonzero is visible in the JSON diff.
    agg.obs = cell.recovery.obsMetrics;
    if (!agg.obs.empty()) {
        bool has_violations = false;
        for (const auto &[name, value] : agg.obs) {
            (void)value;
            has_violations =
                has_violations || name == "kube.invariant_violations";
        }
        if (!has_violations) {
            agg.obs.emplace_back(
                "kube.invariant_violations",
                static_cast<double>(
                    cell.recovery.invariantViolations));
            std::sort(agg.obs.begin(), agg.obs.end());
        }
    }

    std::vector<double> avail;
    std::vector<double> util;
    for (const auto &sample : cell.recovery.samples) {
        if (sample.t >= cell.recovery.firstFailureAt) {
            avail.push_back(sample.availability);
            util.push_back(sample.utility);
        }
    }
    agg.availability = statsOf(avail);
    agg.requestsServed = statsOf(util);
    agg.availabilityStrict =
        statsOf({cell.recovery.finalAvailability});
    if (cell.recovery.replans > 0) {
        agg.planSeconds = statsOf({cell.recovery.planSecondsTotal /
                                   static_cast<double>(
                                       cell.recovery.replans)});
    }
    return agg;
}

bool
smokeMode()
{
    const char *env = std::getenv("RECOVERY_SMOKE");
    return env && std::string(env) == "1";
}

} // namespace

int
main(int argc, char **argv)
{
    // Harness-specific flags are stripped before the shared parser
    // (which exits on anything it does not know).
    bool forecastAll = false;
    double samplePeriod = 0.0; // 0 = RecoveryConfig default
    std::vector<char *> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--forecast") {
            forecastAll = true;
        } else if (arg == "--sample-period") {
            char *end = nullptr;
            const char *value = i + 1 < argc ? argv[++i] : "";
            samplePeriod = std::strtod(value, &end);
            if (*value == '\0' || end == nullptr || *end != '\0' ||
                samplePeriod <= 0.0) {
                std::cerr << "bench_recovery: --sample-period expects "
                             "a positive number of seconds, got '"
                          << value << "'\n";
                return 2;
            }
        } else {
            pass.push_back(argv[i]);
        }
    }

    const auto options = bench::parseOptions(
        static_cast<int>(pass.size()), pass.data(), "recovery");
    bench::applyObs(options);
    const bool smoke = smokeMode();
    bench::banner(
        "Recovery dynamics | scenario-driven Fig 6 timelines on the "
        "25-node CloudLab testbed");

    const auto scenarios = buildScenarios(options.seedOr(42));
    std::vector<RecoveryScheme> schemes{RecoveryScheme::PhoenixCost,
                                        RecoveryScheme::PhoenixFair,
                                        RecoveryScheme::Default};
    if (smoke)
        schemes = {RecoveryScheme::PhoenixCost,
                   RecoveryScheme::Default};

    // Build the cell list (scenario-major, matching report order).
    // Phoenix schemes additionally run with the forecast subsystem on
    // the anticipated-fault scenarios (everywhere with --forecast).
    std::vector<CellResult> cells;
    for (size_t s = 0; s < scenarios.size(); ++s) {
        if (smoke && scenarios[s].name != "cap50" &&
            scenarios[s].name != "spreadzone" &&
            !scenarios[s].anticipated)
            continue;
        for (RecoveryScheme scheme : schemes) {
            for (int forecast = 0; forecast < 2; ++forecast) {
                if (forecast &&
                    (scheme == RecoveryScheme::Default ||
                     !(forecastAll || scenarios[s].anticipated)))
                    continue;
                if (smoke && forecast &&
                    scheme != RecoveryScheme::PhoenixCost)
                    continue;
                CellResult cell;
                cell.scenarioIndex = s;
                cell.scheme = scheme;
                cell.forecast = forecast != 0;
                if (!options.filter.empty()) {
                    std::string name = cellSchemeName(cell);
                    std::string filter = options.filter;
                    for (auto &c : name)
                        c = static_cast<char>(std::tolower(c));
                    for (auto &c : filter)
                        c = static_cast<char>(std::tolower(c));
                    if (name.find(filter) == std::string::npos)
                        continue;
                }
                cells.push_back(cell);
            }
        }
    }

    exp::parallelFor(options.jobs, cells.size(), [&](size_t i) {
        CellResult &cell = cells[i];
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        // One trace track per cell, keyed by the canonical cell index
        // so the trace layout is identical for any --jobs value.
        obs::setCurrentTrack(static_cast<uint32_t>(i));
        if (obs::traceEnabled()) {
            obs::Tracer::global().nameTrack(
                static_cast<uint32_t>(i),
                spec.name + "/" + cellSchemeName(cell));
        }
        RecoveryConfig config;
        config.scheme = cell.scheme;
        config.scenario = spec.scenario;
        config.scenarioOptions = spec.options;
        config.endTime = spec.endTime;
        config.zoneCount = spec.zoneCount;
        config.forecast = cell.forecast;
        if (samplePeriod > 0.0)
            config.samplePeriod = samplePeriod;
        const auto start = std::chrono::steady_clock::now();
        cell.recovery = exp::runRecovery(config);
        cell.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
    });

    // ---- Per-cell recovery metrics -------------------------------
    bench::banner("time-to-recovery per (scenario, scheme)");
    util::Table table({"scenario", "scheme", "ttcr(s)", "ttfr(s)",
                       "min_avail", "final_avail", "max_pending",
                       "replans", "warm", "proactive", "violations"});
    for (const CellResult &cell : cells) {
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        table.row()
            .cell(spec.name)
            .cell(cellSchemeName(cell))
            .cell(cell.recovery.timeToCriticalRecovery, 0)
            .cell(cell.recovery.timeToFullRecovery, 0)
            .cell(cell.recovery.minAvailability, 2)
            .cell(cell.recovery.finalAvailability, 2)
            .cell(cell.recovery.maxPending)
            .cell(cell.recovery.replans)
            .cell(cell.recovery.warmReplans)
            .cell(cell.recovery.proactiveReplans)
            .cell(cell.recovery.invariantViolations);
    }
    table.print(std::cout);

    // ---- Headline timeline (cap50, PhoenixCost vs Default) -------
    util::Table timeline({"t(s)", "scheme", "ready_cpu", "crit_up",
                          "running", "pending", "avail", "utility"});
    for (const CellResult &cell : cells) {
        if (scenarios[cell.scenarioIndex].name != "cap50")
            continue;
        if (cell.scheme == RecoveryScheme::PhoenixFair)
            continue;
        for (const auto &sample : cell.recovery.samples) {
            if (std::fmod(sample.t, 90.0) != 0.0)
                continue;
            timeline.row()
                .cell(sample.t, 0)
                .cell(exp::recoverySchemeName(cell.scheme))
                .cell(sample.readyCapacity, 0)
                .cell(sample.runningCritical)
                .cell(sample.running)
                .cell(sample.pending)
                .cell(sample.availability, 2)
                .cell(sample.utility, 2);
        }
    }
    bench::banner("cap50 recovery timeline");
    timeline.print(std::cout);

    // ---- Report --------------------------------------------------
    exp::Report report("recovery");
    report.meta("nodes",
                static_cast<int64_t>(apps::CloudLabConfig{}.nodeCount));
    report.meta("smoke", static_cast<int64_t>(smoke ? 1 : 0));
    for (const CellResult &cell : cells) {
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        const std::string prefix =
            spec.name + "_" + cellSchemeName(cell);
        report.meta(prefix + "_ttcr_s",
                    cell.recovery.timeToCriticalRecovery);
        report.meta(prefix + "_ttfr_s",
                    cell.recovery.timeToFullRecovery);
    }
    report.addTable("recovery_cells", table);
    report.addTable("timeline_cap50", timeline);
    for (size_t s = 0; s < scenarios.size(); ++s) {
        std::vector<exp::SweepAggregate> sweep;
        for (const CellResult &cell : cells) {
            if (cell.scenarioIndex == s)
                sweep.push_back(toAggregate(scenarios[s], cell));
        }
        if (!sweep.empty())
            report.addSweep(scenarios[s].name, sweep);
    }
    bench::finishReport(report, options);

    // ---- Smoke gate ----------------------------------------------
    if (smoke) {
        const CellResult *phoenix = nullptr;
        const CellResult *fallback = nullptr;
        const CellResult *spread = nullptr;
        const CellResult *decayReactive = nullptr;
        const CellResult *decayForecast = nullptr;
        const CellResult *grayReactive = nullptr;
        const CellResult *grayForecast = nullptr;
        for (const CellResult &cell : cells) {
            const std::string &name =
                scenarios[cell.scenarioIndex].name;
            if (name == "cap50" && !cell.forecast) {
                if (cell.scheme == RecoveryScheme::PhoenixCost)
                    phoenix = &cell;
                if (cell.scheme == RecoveryScheme::Default)
                    fallback = &cell;
            } else if (name == "spreadzone" && !cell.forecast &&
                       cell.scheme == RecoveryScheme::PhoenixCost) {
                spread = &cell;
            } else if (cell.scheme == RecoveryScheme::PhoenixCost &&
                       name == "decayzone") {
                (cell.forecast ? decayForecast : decayReactive) =
                    &cell;
            } else if (cell.scheme == RecoveryScheme::PhoenixCost &&
                       name == "graydecay") {
                (cell.forecast ? grayForecast : grayReactive) = &cell;
            }
        }
        size_t failures = 0;
        auto expect = [&failures](bool ok, const std::string &what) {
            if (!ok) {
                std::cerr << "[smoke] FAIL: " << what << "\n";
                ++failures;
            }
        };
        for (const CellResult &cell : cells) {
            expect(cell.recovery.invariantViolations == 0,
                   std::string("invariant violations under ") +
                       exp::recoverySchemeName(cell.scheme));
        }
        expect(phoenix && fallback, "both smoke cells ran");
        if (phoenix && fallback) {
            const RecoveryResult &p = phoenix->recovery;
            const RecoveryResult &d = fallback->recovery;
            expect(p.minAvailability < 1.0,
                   "phoenix availability dipped during detection");
            expect(p.timeToCriticalRecovery > 0.0,
                   "phoenix ttcr derived");
            expect(p.timeToCriticalRecovery <= 420.0,
                   "phoenix restores critical services within 420 s "
                   "(grace + poll + replan + pod startup)");
            expect(p.finalAvailability >= 1.0 - 1e-9,
                   "phoenix ends fully available");
            expect(p.timeToFullRecovery > 0.0 &&
                       p.timeToFullRecovery <= 1800.0,
                   "phoenix full recovery after capacity returns");
            expect(d.timeToCriticalRecovery < 0.0 ||
                       d.timeToCriticalRecovery >
                           p.timeToCriticalRecovery + 120.0,
                   "default cannot protect critical services before "
                   "capacity returns");
        }
        // Forecast storyline: on both anticipated-fault scenarios the
        // forecast cell recovers strictly faster than reactive (a ttcr
        // of 0 — the fault became a non-event — counts), and on the
        // pre-staged zone kill the margin is at least 2x.
        auto beats = [](const RecoveryResult &reactive,
                        const RecoveryResult &forecast) {
            if (forecast.timeToCriticalRecovery < 0.0)
                return false; // forecast never recovered
            return reactive.timeToCriticalRecovery < 0.0 ||
                   forecast.timeToCriticalRecovery <
                       reactive.timeToCriticalRecovery;
        };
        expect(decayReactive && decayForecast &&
                   grayReactive && grayForecast,
               "anticipated-fault smoke cells ran");
        if (decayReactive && decayForecast) {
            const RecoveryResult &r = decayReactive->recovery;
            const RecoveryResult &f = decayForecast->recovery;
            expect(r.timeToCriticalRecovery > 0.0,
                   "decayzone reactive ttcr derived (dip happened)");
            expect(beats(r, f),
                   "decayzone forecast ttcr strictly below reactive");
            expect(f.timeToCriticalRecovery * 2.0 <=
                       r.timeToCriticalRecovery,
                   "decayzone forecast recovers >= 2x faster");
            expect(f.forecast.prestagedPlans >= 1,
                   "decayzone forecast pre-staged a plan");
            expect(f.proactiveReplans + f.warmReplans >= 1,
                   "decayzone forecast acted on a staged plan "
                   "(proactive execution or warm apply)");
        }
        if (grayReactive && grayForecast) {
            const RecoveryResult &r = grayReactive->recovery;
            const RecoveryResult &f = grayForecast->recovery;
            expect(beats(r, f),
                   "graydecay forecast ttcr strictly below reactive");
            expect(f.forecast.prestagedPlans >= 1,
                   "graydecay forecast pre-staged a plan");
        }
        expect(spread != nullptr, "spreadzone smoke cell ran");
        if (spread) {
            const RecoveryResult &s = spread->recovery;
            // Every critical pair has a spread-placed survivor, so a
            // whole zone dying never drops a critical service: the
            // outage is a non-event for critical availability and the
            // cluster is fully available again within the Fig 6
            // recovery envelope.
            expect(s.minAvailability >= 1.0 - 1e-9,
                   "spread-constrained criticals ride out the zone "
                   "kill (no availability dip)");
            expect(s.timeToCriticalRecovery == 0.0,
                   "spreadzone ttcr is 0 (never dropped)");
            expect(s.finalAvailability >= 1.0 - 1e-9,
                   "spreadzone ends fully available");
            expect(s.timeToFullRecovery >= 0.0 &&
                       s.timeToFullRecovery <= 1800.0,
                   "spreadzone full recovery after the zone returns");
        }
        if (failures > 0) {
            std::cerr << "[smoke] " << failures << " check(s) failed\n";
            return 1;
        }
        std::cout << "[smoke] recovery bounds OK\n";
    }
    return 0;
}
