/**
 * @file
 * Figure 9 (Appendix F.1): aggregate resource consumption per
 * criticality level across the five CloudLab application instances.
 * The paper's mix: C1 vs non-critical roughly 60:40 within the ~70% of
 * the cluster the applications demand, putting all C1 services at
 * ~40% of cluster capacity.
 */

#include <iostream>
#include <map>

#include "apps/cloudlab.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig9");
    bench::applyObs(options);
    bench::banner("Figure 9 | resource breakdown across criticalities");

    const apps::CloudLabTestbed testbed = apps::makeCloudLabTestbed();

    std::map<int, double> per_level;
    std::map<std::string, std::map<int, double>> per_app;
    double total = 0.0;
    for (const auto &sapp : testbed.serviceApps) {
        for (const auto &ms : sapp.app.services) {
            per_level[ms.criticality] += ms.cpu;
            per_app[sapp.app.name][ms.criticality] += ms.cpu;
            total += ms.cpu;
        }
    }

    util::Table table({"criticality", "CPUs", "share-of-demand",
                       "share-of-cluster"});
    for (const auto &[level, cpus] : per_level) {
        table.row()
            .cell("C" + std::to_string(level))
            .cell(cpus, 1)
            .cell(cpus / total)
            .cell(cpus / testbed.totalCapacity());
    }
    table.print(std::cout);

    util::Table apps_table({"app", "C1", "C2", "C3", "C4", "C5"});
    for (const auto &[name, levels] : per_app) {
        apps_table.row().cell(name);
        for (int level = 1; level <= 5; ++level) {
            auto it = levels.find(level);
            apps_table.cell(it == levels.end() ? 0.0 : it->second, 1);
        }
    }
    apps_table.print(std::cout);

    const double critical = per_level[1];
    std::cout << "C1 : non-critical = " << critical / total << " : "
              << (total - critical) / total << " of the apps' demand; "
              << "all C1 = " << critical / testbed.totalCapacity()
              << " of the cluster (breaking point for the Fig 5/6 "
                 "failures).\n";

    exp::Report report("fig9");
    report.meta("total_demand_cpus", total);
    report.meta("c1_fraction_of_cluster",
                critical / testbed.totalCapacity());
    report.addTable("per_criticality", table);
    report.addTable("per_app", apps_table);
    bench::finishReport(report, options);
    return 0;
}
