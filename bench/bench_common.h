/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Every binary regenerates one table or figure of the paper and prints
 * the same rows/series. Scale control: the AdaptLab figures default to
 * a reduced cluster that preserves every trend; set
 * ADAPTLAB_FULL_SCALE=1 to run at the paper's size (100,000 nodes /
 * full 18-application mix).
 */

#ifndef PHOENIX_BENCH_BENCH_COMMON_H
#define PHOENIX_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "adaptlab/environment.h"
#include "exp/engine.h"
#include "exp/options.h"
#include "exp/pool.h"
#include "exp/report.h"
#include "obs/obs.h"

namespace phoenix::bench {

/**
 * Parse the shared harness flags (--jobs, --json, --csv, --filter,
 * --trials, --seed). The JSON report defaults to BENCH_<name>.json in
 * the working directory so CI tracks every run; pass --json none to
 * disable.
 */
inline exp::Options
parseOptions(int argc, char **argv, const std::string &name)
{
    return exp::parseOptions(argc, argv, name);
}

/** Engine options for the parsed --jobs value. */
inline exp::EngineOptions
engineOptions(const exp::Options &options)
{
    exp::EngineOptions engine;
    engine.jobs = options.jobs;
    return engine;
}

/**
 * Apply the obs flags before any cells run: --metrics switches the
 * metrics registry on, --trace-out switches sim-time tracing on (the
 * trace file itself is written by finishReport). Without either flag
 * this leaves obs fully disabled — the default state test_hotpath and
 * the committed baselines measure.
 */
inline void
applyObs(const exp::Options &options)
{
    if (options.metrics)
        obs::setMetricsEnabled(true);
    if (!options.traceOut.empty())
        obs::setTraceEnabled(true);
}

/**
 * Write the report wherever the flags asked for it and say so on
 * stdout (the ASCII tables above remain the human-readable output).
 */
inline void
finishReport(exp::Report &report, const exp::Options &options)
{
    report.meta("jobs", static_cast<int64_t>(
                            exp::resolveJobs(options.jobs)));
    if (options.metrics) {
        // Merged process-wide snapshot; per-cell deltas live in the
        // sweep sections' "obs" objects.
        util::Table table({"metric", "kind", "count", "value", "p50",
                           "p90", "p99"});
        for (const auto &m : obs::Registry::global().snapshot()) {
            const char *kind =
                m.kind == obs::MetricKind::Counter   ? "counter"
                : m.kind == obs::MetricKind::Gauge   ? "gauge"
                                                     : "histogram";
            table.row()
                .cell(m.name)
                .cell(kind)
                .cell(static_cast<size_t>(m.count))
                .cell(exp::jsonNumber(m.value))
                .cell(exp::jsonNumber(m.p50))
                .cell(exp::jsonNumber(m.p90))
                .cell(exp::jsonNumber(m.p99));
        }
        report.addTable("obs.metrics", table);
    }
    if (report.writeJsonFile(options.jsonPath))
        std::cout << "[report] JSON written to " << options.jsonPath
                  << "\n";
    if (report.writeCsvFile(options.csvPath))
        std::cout << "[report] CSV written to " << options.csvPath
                  << "\n";
    if (!options.traceOut.empty()) {
        std::ofstream trace(options.traceOut);
        if (trace) {
            obs::Tracer::global().exportChromeJson(trace);
            std::cout << "[trace] Chrome trace written to "
                      << options.traceOut << " ("
                      << obs::Tracer::global().size() << " events, "
                      << obs::Tracer::global().dropped()
                      << " dropped)\n";
        } else {
            std::cerr << "warning: cannot write trace to "
                      << options.traceOut << "\n";
        }
    }
}

/** True when ADAPTLAB_FULL_SCALE=1 is exported. */
inline bool
fullScale()
{
    const char *env = std::getenv("ADAPTLAB_FULL_SCALE");
    return env && std::string(env) == "1";
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/**
 * AdaptLab environment matching §6.2 (Alibaba-style apps, chosen
 * tagging/resource model). Reduced scale by default; paper scale with
 * ADAPTLAB_FULL_SCALE=1.
 */
inline adaptlab::EnvironmentConfig
paperEnvironment(workloads::TaggingScheme tagging, double percentile,
                 workloads::ResourceModel resources)
{
    adaptlab::EnvironmentConfig config;
    if (fullScale()) {
        config.nodeCount = 100000;
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale = 1.0;
        // ~16 replica pods per 16-CPU node: realistic density, and it
        // keeps the 100k-node environment at ~1M pods.
        config.nodeCapacity = 16.0;
        config.resources.minCpu = 0.5;
        config.resources.maxCpu = 8.0;
    } else {
        config.nodeCount = 2000;
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale = 0.12; // 360 .. ~4 services
        config.nodeCapacity = 64.0;
    }
    config.demandFraction = 0.8;
    config.tagging.scheme = tagging;
    config.tagging.percentile = percentile;
    config.resources.model = resources;
    return config;
}

} // namespace phoenix::bench

#endif // PHOENIX_BENCH_BENCH_COMMON_H
