/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Every binary regenerates one table or figure of the paper and prints
 * the same rows/series. Scale control: the AdaptLab figures default to
 * a reduced cluster that preserves every trend; set
 * ADAPTLAB_FULL_SCALE=1 to run at the paper's size (100,000 nodes /
 * full 18-application mix).
 */

#ifndef PHOENIX_BENCH_BENCH_COMMON_H
#define PHOENIX_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <iostream>
#include <string>

#include "adaptlab/environment.h"

namespace phoenix::bench {

/** True when ADAPTLAB_FULL_SCALE=1 is exported. */
inline bool
fullScale()
{
    const char *env = std::getenv("ADAPTLAB_FULL_SCALE");
    return env && std::string(env) == "1";
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/**
 * AdaptLab environment matching §6.2 (Alibaba-style apps, chosen
 * tagging/resource model). Reduced scale by default; paper scale with
 * ADAPTLAB_FULL_SCALE=1.
 */
inline adaptlab::EnvironmentConfig
paperEnvironment(workloads::TaggingScheme tagging, double percentile,
                 workloads::ResourceModel resources)
{
    adaptlab::EnvironmentConfig config;
    if (fullScale()) {
        config.nodeCount = 100000;
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale = 1.0;
        // ~16 replica pods per 16-CPU node: realistic density, and it
        // keeps the 100k-node environment at ~1M pods.
        config.nodeCapacity = 16.0;
        config.resources.minCpu = 0.5;
        config.resources.maxCpu = 8.0;
    } else {
        config.nodeCount = 2000;
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale = 0.12; // 360 .. ~4 services
        config.nodeCapacity = 64.0;
    }
    config.demandFraction = 0.8;
    config.tagging.scheme = tagging;
    config.tagging.percentile = percentile;
    config.resources.model = resources;
    return config;
}

} // namespace phoenix::bench

#endif // PHOENIX_BENCH_BENCH_COMMON_H
