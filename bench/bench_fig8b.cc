/**
 * @file
 * Figure 8(b): time to compute a new target state vs cluster size.
 * Phoenix (planner + packing) and Default are timed on clusters from
 * 100 to 100,000 nodes; the LP formulations are attempted up to 1,000
 * nodes where — as in the paper — they stop scaling (the solver hits
 * its wall-clock limit; larger instances are refused outright).
 *
 * The 100,000-node Phoenix point is the paper's headline (<10 s) and
 * is always measured, regardless of ADAPTLAB_FULL_SCALE.
 *
 * Besides the plan/pack wall-clock phase breakdown, every cell reports
 * the deterministic hot-path operation counters (planner/packer queue
 * pushes, best-fit probes, reference-only child-sort elements) — these
 * are seed-stable, so regressions show up as exact integer diffs even
 * on noisy machines — and the run records its peak RSS.
 *
 * FIG8B_SMOKE=1 turns the harness into a ctest smoke gate: only the
 * 1,000-node Phoenix cells run, and their op counters are asserted
 * against recorded bounds (exit 1 on violation). A counter above the
 * bound means the hot path got algorithmically heavier; zero counters
 * mean the instrumentation broke.
 *
 * This harness measures wall-clock planning time, so unlike the other
 * grids it defaults to --jobs 1: concurrent cells would contend for
 * cores and inflate the very numbers being reported. Pass --jobs N
 * explicitly to trade timing fidelity for throughput.
 */

#include <sys/resource.h>

#include <iostream>

#include "bench/bench_common.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

namespace {

EnvironmentConfig
sizedConfig(size_t nodes)
{
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    config.nodeCount = nodes;
    // Match application mix to cluster size the way the paper's
    // benchmarking harness does (small clusters cannot host the
    // 3000-service giants).
    if (nodes <= 1000) {
        config.alibaba.appCount = 5;
        config.alibaba.sizeScale = 0.005 * static_cast<double>(nodes) /
                                   10.0;
        if (config.alibaba.sizeScale < 0.004)
            config.alibaba.sizeScale = 0.004;
        // Single-replica so the exact LPs apply (they place each
        // microservice on one node, Eq. 3).
        config.maxReplicas = 1;
    } else {
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale =
            nodes >= 100000 ? 1.0 : static_cast<double>(nodes) / 100000.0;
        if (config.alibaba.sizeScale < 0.05)
            config.alibaba.sizeScale = 0.05;
        // Realistic pod density at scale (~16 pods per 16-CPU node).
        config.nodeCapacity = 16.0;
        config.resources.minCpu = 0.5;
        config.resources.maxCpu = 8.0;
    }
    return config;
}

/** Peak resident set size of this process, in MiB. */
double
peakRssMiB()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    // Linux reports ru_maxrss in KiB.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/**
 * Smoke bounds for the 1,000-node Phoenix cells (seedBase 1234, rate
 * 0.5, one trial): the counters are deterministic, so these are the
 * recorded values with ~30% headroom. childSortElems must be exactly
 * zero — the flat hot path never copies/sorts successor lists.
 */
struct SmokeBound
{
    double maxHeapPushes;
    double maxBestFitProbes;
};

// Observed at the 1,000-node point: 3,596 pushes / 649 probes for both
// Phoenix schemes (the counters are seed-deterministic, so any drift
// is a real algorithmic change). Bounds leave ~1.4x headroom.
constexpr SmokeBound kSmokeBound{5000.0, 1000.0};

bool
smokeCheck(const exp::SweepAggregate &agg)
{
    bool ok = true;
    const auto check = [&](const char *what, double value, double low,
                           double high) {
        if (value < low || value > high) {
            std::cerr << "FIG8B_SMOKE: " << agg.scheme << " " << what
                      << " = " << value << " outside [" << low << ", "
                      << high << "]\n";
            ok = false;
        }
    };
    check("ops_heap_pushes", agg.mean.opsHeapPushes, 1.0,
          kSmokeBound.maxHeapPushes);
    check("ops_best_fit_probes", agg.mean.opsBestFitProbes, 1.0,
          kSmokeBound.maxBestFitProbes);
    check("ops_child_sort_elems", agg.mean.opsChildSortElems, 0.0, 0.0);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *smoke_env = std::getenv("FIG8B_SMOKE");
    const bool smoke = smoke_env && std::string(smoke_env) == "1";

    auto options = bench::parseOptions(argc, argv, "fig8b");
    bench::applyObs(options);
    if (options.jobs == 0)
        options.jobs = 1; // timing fidelity; see file header
    bench::banner(smoke
                      ? "Figure 8(b) smoke | 1,000-node counter gate"
                      : "Figure 8(b) | time to adapt vs cluster size");
    if (options.jobs != 1)
        std::cout << "note: --jobs " << options.jobs
                  << " overlaps timed cells; reported times include "
                     "contention\n";

    util::Table table({"nodes", "scheme", "plan(s)", "pack(s)",
                       "total(s)", "pushes", "probes", "sortelems",
                       "status"});
    exp::Report report("fig8b");

    const std::vector<size_t> sizes =
        smoke ? std::vector<size_t>{1000ul}
              : std::vector<size_t>{100ul, 1000ul, 10000ul, 100000ul};
    bool smoke_ok = true;

    for (size_t nodes : sizes) {
        const Environment env = buildEnvironment(sizedConfig(nodes));

        exp::SweepGridSpec spec;
        spec.schemes = exp::paperSchemeSpecs(false);
        if (smoke) {
            const auto all = exp::paperSchemeSpecs(false);
            spec.schemes = {all[0], all[1]}; // PhoenixFair/PhoenixCost
        } else if (nodes <= 1000) {
            core::LpSchemeOptions lp_options;
            lp_options.timeLimitSec = 10.0;
            const auto with_lps =
                exp::paperSchemeSpecs(true, lp_options);
            // Keep only PhoenixFair/PhoenixCost/Default + the LPs —
            // the series the paper's panel shows.
            spec.schemes = {with_lps[0], with_lps[1], with_lps[4],
                            with_lps[5], with_lps[6]};
        } else {
            const auto all = exp::paperSchemeSpecs(false);
            spec.schemes = {all[0], all[1], all[4]};
        }
        spec.failureRates = {0.5};
        spec.trials = options.trialsOr(1);
        spec.seedBase = options.seedOr(1234);
        spec = exp::filterSchemes(spec, options.filter);

        const auto aggregates =
            exp::runGrid(env, spec, bench::engineOptions(options));
        for (const auto &agg : aggregates) {
            const bool failed = agg.failedTrials == agg.trials;
            table.row()
                .cell(nodes)
                .cell(agg.scheme)
                .cell(agg.mean.planSeconds, 4)
                .cell(agg.mean.packSeconds, 4)
                .cell(agg.mean.planSeconds + agg.mean.packSeconds, 4)
                .cell(agg.mean.opsHeapPushes, 0)
                .cell(agg.mean.opsBestFitProbes, 0)
                .cell(agg.mean.opsChildSortElems, 0)
                .cell(failed ? "gave-up" : "ok");
            if (smoke)
                smoke_ok = smokeCheck(agg) && smoke_ok;
        }
        if (!smoke && nodes > 1000 && options.filter.empty()) {
            table.row().cell(nodes).cell("LPFair").cell("-").cell("-")
                .cell("-").cell("-").cell("-").cell("-")
                .cell("does-not-scale");
            table.row().cell(nodes).cell("LPCost").cell("-").cell("-")
                .cell("-").cell("-").cell("-").cell("-")
                .cell("does-not-scale");
        }
        report.addSweep("nodes_" + std::to_string(nodes), aggregates);
    }
    table.print(std::cout);
    const double rss = peakRssMiB();
    std::cout << "Peak RSS: " << rss << " MiB\n";
    if (!smoke) {
        std::cout
            << "Headline: Phoenix replans a 100,000-node cluster in "
               "under 10 s; the LPs hit their wall-clock limit at "
               "1,000 nodes already.\n";
    }

    report.meta("peak_rss_mib", rss);
    report.addTable("fig8b_times", table);
    bench::finishReport(report, options);

    if (smoke && !smoke_ok) {
        std::cerr << "FIG8B_SMOKE: counter bounds violated\n";
        return 1;
    }
    if (smoke)
        std::cout << "FIG8B_SMOKE: counters within recorded bounds\n";
    return 0;
}
