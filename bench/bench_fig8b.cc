/**
 * @file
 * Figure 8(b): time to compute a new target state vs cluster size.
 * Phoenix (planner + packing) and Default are timed on clusters from
 * 100 to 100,000 nodes; the LP formulations are attempted up to 1,000
 * nodes where — as in the paper — they stop scaling (the solver hits
 * its wall-clock limit; larger instances are refused outright).
 *
 * The 100,000-node Phoenix point is the paper's headline (<10 s) and
 * is always measured, regardless of ADAPTLAB_FULL_SCALE.
 *
 * This harness measures wall-clock planning time, so unlike the other
 * grids it defaults to --jobs 1: concurrent cells would contend for
 * cores and inflate the very numbers being reported. Pass --jobs N
 * explicitly to trade timing fidelity for throughput.
 */

#include <iostream>

#include "bench/bench_common.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

namespace {

EnvironmentConfig
sizedConfig(size_t nodes)
{
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    config.nodeCount = nodes;
    // Match application mix to cluster size the way the paper's
    // benchmarking harness does (small clusters cannot host the
    // 3000-service giants).
    if (nodes <= 1000) {
        config.alibaba.appCount = 5;
        config.alibaba.sizeScale = 0.005 * static_cast<double>(nodes) /
                                   10.0;
        if (config.alibaba.sizeScale < 0.004)
            config.alibaba.sizeScale = 0.004;
        // Single-replica so the exact LPs apply (they place each
        // microservice on one node, Eq. 3).
        config.maxReplicas = 1;
    } else {
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale =
            nodes >= 100000 ? 1.0 : static_cast<double>(nodes) / 100000.0;
        if (config.alibaba.sizeScale < 0.05)
            config.alibaba.sizeScale = 0.05;
        // Realistic pod density at scale (~16 pods per 16-CPU node).
        config.nodeCapacity = 16.0;
        config.resources.minCpu = 0.5;
        config.resources.maxCpu = 8.0;
    }
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv, "fig8b");
    if (options.jobs == 0)
        options.jobs = 1; // timing fidelity; see file header
    bench::banner("Figure 8(b) | time to adapt vs cluster size");
    if (options.jobs != 1)
        std::cout << "note: --jobs " << options.jobs
                  << " overlaps timed cells; reported times include "
                     "contention\n";

    util::Table table({"nodes", "scheme", "plan(s)", "pack(s)",
                       "total(s)", "status"});
    exp::Report report("fig8b");

    for (size_t nodes : {100ul, 1000ul, 10000ul, 100000ul}) {
        const Environment env = buildEnvironment(sizedConfig(nodes));

        exp::SweepGridSpec spec;
        spec.schemes = exp::paperSchemeSpecs(false);
        if (nodes <= 1000) {
            core::LpSchemeOptions lp_options;
            lp_options.timeLimitSec = 10.0;
            const auto with_lps =
                exp::paperSchemeSpecs(true, lp_options);
            // Keep only PhoenixFair/PhoenixCost/Default + the LPs —
            // the series the paper's panel shows.
            spec.schemes = {with_lps[0], with_lps[1], with_lps[4],
                            with_lps[5], with_lps[6]};
        } else {
            const auto all = exp::paperSchemeSpecs(false);
            spec.schemes = {all[0], all[1], all[4]};
        }
        spec.failureRates = {0.5};
        spec.trials = options.trialsOr(1);
        spec.seedBase = options.seedOr(1234);
        spec = exp::filterSchemes(spec, options.filter);

        const auto aggregates =
            exp::runGrid(env, spec, bench::engineOptions(options));
        for (const auto &agg : aggregates) {
            const bool failed = agg.failedTrials == agg.trials;
            table.row()
                .cell(nodes)
                .cell(agg.scheme)
                .cell(agg.mean.planSeconds, 4)
                .cell(agg.mean.packSeconds, 4)
                .cell(agg.mean.planSeconds + agg.mean.packSeconds, 4)
                .cell(failed ? "gave-up" : "ok");
        }
        if (nodes > 1000 && options.filter.empty()) {
            table.row().cell(nodes).cell("LPFair").cell("-").cell("-")
                .cell("-").cell("does-not-scale");
            table.row().cell(nodes).cell("LPCost").cell("-").cell("-")
                .cell("-").cell("does-not-scale");
        }
        report.addSweep("nodes_" + std::to_string(nodes), aggregates);
    }
    table.print(std::cout);
    std::cout << "Headline: Phoenix replans a 100,000-node cluster in "
                 "under 10 s; the LPs hit their wall-clock limit at "
                 "1,000 nodes already.\n";

    report.addTable("fig8b_times", table);
    bench::finishReport(report, options);
    return 0;
}
