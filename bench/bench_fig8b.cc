/**
 * @file
 * Figure 8(b): time to compute a new target state vs cluster size.
 * Phoenix (planner + packing) and Default are timed on clusters from
 * 100 to 100,000 nodes; the LP formulations are attempted up to 1,000
 * nodes where — as in the paper — they stop scaling (the solver hits
 * its wall-clock limit; larger instances are refused outright).
 *
 * The 100,000-node Phoenix point is the paper's headline (<10 s) and
 * is always measured, regardless of ADAPTLAB_FULL_SCALE.
 */

#include <iostream>

#include "adaptlab/runner.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

namespace {

EnvironmentConfig
sizedConfig(size_t nodes)
{
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    config.nodeCount = nodes;
    // Match application mix to cluster size the way the paper's
    // benchmarking harness does (small clusters cannot host the
    // 3000-service giants).
    if (nodes <= 1000) {
        config.alibaba.appCount = 5;
        config.alibaba.sizeScale = 0.005 * static_cast<double>(nodes) /
                                   10.0;
        if (config.alibaba.sizeScale < 0.004)
            config.alibaba.sizeScale = 0.004;
        // Single-replica so the exact LPs apply (they place each
        // microservice on one node, Eq. 3).
        config.maxReplicas = 1;
    } else {
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale =
            nodes >= 100000 ? 1.0 : static_cast<double>(nodes) / 100000.0;
        if (config.alibaba.sizeScale < 0.05)
            config.alibaba.sizeScale = 0.05;
        // Realistic pod density at scale (~16 pods per 16-CPU node).
        config.nodeCapacity = 16.0;
        config.resources.minCpu = 0.5;
        config.resources.maxCpu = 8.0;
    }
    return config;
}

} // namespace

int
main()
{
    bench::banner("Figure 8(b) | time to adapt vs cluster size");

    util::Table table({"nodes", "scheme", "plan(s)", "pack(s)",
                       "total(s)", "status"});

    for (size_t nodes : {100ul, 1000ul, 10000ul, 100000ul}) {
        const Environment env = buildEnvironment(sizedConfig(nodes));

        auto time_scheme = [&](core::ResilienceScheme &scheme) {
            const TrialMetrics m =
                runFailureTrial(env, scheme, 0.5, 1234);
            table.row()
                .cell(nodes)
                .cell(scheme.name())
                .cell(m.planSeconds, 4)
                .cell(m.packSeconds, 4)
                .cell(m.planSeconds + m.packSeconds, 4)
                .cell(m.schemeFailed ? "gave-up" : "ok");
        };

        core::PhoenixScheme fair(core::Objective::Fair);
        core::PhoenixScheme cost(core::Objective::Cost);
        core::DefaultScheme def;
        time_scheme(fair);
        time_scheme(cost);
        time_scheme(def);

        if (nodes <= 1000) {
            core::LpSchemeOptions lp_options;
            lp_options.timeLimitSec = 10.0;
            core::LpScheme lp_fair(core::Objective::Fair, lp_options);
            core::LpScheme lp_cost(core::Objective::Cost, lp_options);
            time_scheme(lp_fair);
            time_scheme(lp_cost);
        } else {
            table.row().cell(nodes).cell("LPFair").cell("-").cell("-")
                .cell("-").cell("does-not-scale");
            table.row().cell(nodes).cell("LPCost").cell("-").cell("-")
                .cell("-").cell("does-not-scale");
        }
    }
    table.print(std::cout);
    std::cout << "Headline: Phoenix replans a 100,000-node cluster in "
                 "under 10 s; the LPs hit their wall-clock limit at "
                 "1,000 nodes already.\n";
    return 0;
}
