/**
 * @file
 * Figure 8(b): time to compute a new target state vs cluster size.
 * Phoenix (planner + packing) and Default are timed on clusters from
 * 100 to 100,000 nodes; the LP formulations are attempted up to 1,000
 * nodes where — as in the paper — they stop scaling (the solver hits
 * its wall-clock limit; larger instances are refused outright).
 *
 * The 100,000-node Phoenix point is the paper's headline (<10 s) and
 * is always measured, regardless of ADAPTLAB_FULL_SCALE.
 *
 * Besides the plan/pack wall-clock phase breakdown, every cell reports
 * the deterministic hot-path operation counters (planner/packer queue
 * pushes, best-fit probes, reference-only child-sort elements) — these
 * are seed-stable, so regressions show up as exact integer diffs even
 * on noisy machines — and the run records its peak RSS.
 *
 * FIG8B_SMOKE=1 turns the harness into a ctest smoke gate: only the
 * 1,000-node Phoenix cells run, and their op counters are asserted
 * against recorded bounds (exit 1 on violation). A counter above the
 * bound means the hot path got algorithmically heavier; zero counters
 * mean the instrumentation broke.
 *
 * Beyond the shared flags, this harness accepts:
 *
 *   --nodes N     run a single cluster size instead of the sweep
 *                 (N >= 1,000,000 restricts the grid to the Phoenix
 *                 schemes; the baselines' bookkeeping does not reach
 *                 that scale)
 *   --zones Z     failure-domain count for the incremental-replan
 *                 demo (default max(2, nodes/50): ~rack-sized zones)
 *   --1m-smoke    opt-in 1,000,000-node gate for ctest: requires
 *                 FIG8B_1M=1 in the environment (exits 77 — the ctest
 *                 SKIP code — otherwise), runs the 1M-node Phoenix
 *                 cells plus the 100k incremental demo, and asserts
 *                 the recorded op-counter bounds and the >= 10x
 *                 incremental op reduction
 *
 * Every run also measures the incremental-replan demo: two controller
 * epochs on one long-lived PhoenixCost scheme with the incremental +
 * sharded options on, a single zone failing between them. The second
 * epoch must be bit-identical to a from-scratch scheme on the same
 * state while spending a fraction of its heap pushes and best-fit
 * probes (the planner serves its ranking from cache; packing
 * reconciles the capacity index instead of rebuilding it).
 *
 * This harness measures wall-clock planning time, so unlike the other
 * grids it defaults to --jobs 1: concurrent cells would contend for
 * cores and inflate the very numbers being reported. Pass --jobs N
 * explicitly to trade timing fidelity for throughput.
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/schemes.h"
#include "exp/grid.h"
#include "exp/pool.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

namespace {

EnvironmentConfig
sizedConfig(size_t nodes)
{
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    config.nodeCount = nodes;
    // Match application mix to cluster size the way the paper's
    // benchmarking harness does (small clusters cannot host the
    // 3000-service giants).
    if (nodes <= 1000) {
        config.alibaba.appCount = 5;
        config.alibaba.sizeScale = 0.005 * static_cast<double>(nodes) /
                                   10.0;
        if (config.alibaba.sizeScale < 0.004)
            config.alibaba.sizeScale = 0.004;
        // Single-replica so the exact LPs apply (they place each
        // microservice on one node, Eq. 3).
        config.maxReplicas = 1;
    } else {
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale =
            nodes >= 100000 ? 1.0 : static_cast<double>(nodes) / 100000.0;
        if (config.alibaba.sizeScale < 0.05)
            config.alibaba.sizeScale = 0.05;
        // Realistic pod density at scale (~16 pods per 16-CPU node).
        config.nodeCapacity = 16.0;
        config.resources.minCpu = 0.5;
        config.resources.maxCpu = 8.0;
    }
    return config;
}

/** Peak resident set size of this process, in MiB. */
double
peakRssMiB()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    // Linux reports ru_maxrss in KiB.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/**
 * Smoke bounds for the 1,000-node Phoenix cells (seedBase 1234, rate
 * 0.5, one trial): the counters are deterministic, so these are the
 * recorded values with ~30% headroom. childSortElems must be exactly
 * zero — the flat hot path never copies/sorts successor lists.
 */
struct SmokeBound
{
    double maxHeapPushes;
    double maxBestFitProbes;
};

// Observed at the 1,000-node point: 3,596 pushes / 649 probes for both
// Phoenix schemes (the counters are seed-deterministic, so any drift
// is a real algorithmic change). Bounds leave ~1.4x headroom.
constexpr SmokeBound kSmokeBound{5000.0, 1000.0};

// Observed at the 1,000,000-node point (seedBase 1234, rate 0.5, one
// trial): 19,169 pushes for both Phoenix schemes, 12,555,185 probes
// (Fair) / 7,000,531 (Cost); same deterministic counters, ~1.4x
// headroom over the larger. Gated behind FIG8B_1M=1 via --1m-smoke.
constexpr SmokeBound k1mBound{27000.0, 18000000.0};

bool
smokeCheck(const exp::SweepAggregate &agg, const SmokeBound &bound,
           const char *gate)
{
    bool ok = true;
    const auto check = [&](const char *what, double value, double low,
                           double high) {
        if (value < low || value > high) {
            std::cerr << gate << ": " << agg.scheme << " " << what
                      << " = " << value << " outside [" << low << ", "
                      << high << "]\n";
            ok = false;
        }
    };
    check("ops_heap_pushes", agg.mean.opsHeapPushes, 1.0,
          bound.maxHeapPushes);
    check("ops_best_fit_probes", agg.mean.opsBestFitProbes, 1.0,
          bound.maxBestFitProbes);
    check("ops_child_sort_elems", agg.mean.opsChildSortElems, 0.0, 0.0);
    return ok;
}

/**
 * Zone-sharded Phoenix cell: estimator partitioned over 8 shards,
 * capacity index split into 8 zones, shards run on the pool. Outputs
 * and op counters are bit-identical to the plain Phoenix cells (the
 * BitIdentity suite proves it); only wall-clock may differ.
 */
exp::SchemeSpec
shardedSpec(core::Objective objective, int jobs)
{
    core::PlannerOptions planner_opts;
    planner_opts.shardCount = 8;
    planner_opts.shardRunner = exp::shardRunner(jobs);
    core::PackingOptions packing_opts;
    packing_opts.zoneShards = 8;
    packing_opts.shardRunner = exp::shardRunner(jobs);
    const std::string name = objective == core::Objective::Fair
                                 ? "PhoenixFair-sharded"
                                 : "PhoenixCost-sharded";
    return exp::schemeSpec<core::PhoenixScheme>(name, objective,
                                                planner_opts,
                                                packing_opts);
}

double
combinedOps(const core::SchemeResult &r)
{
    return static_cast<double>(r.planOps.heapPushes +
                               r.pack.ops.heapPushes +
                               r.pack.ops.bestFitProbes);
}

/**
 * Incremental-replan demo: one long-lived warm scheme across two
 * epochs with a single-zone failure in between, against a cold
 * from-scratch scheme on the identical second-epoch state. Returns
 * whether the outputs were bit-identical AND the warm epoch spent
 * <= 1/10 of the cold scheme's heap pushes + best-fit probes.
 */
bool
runIncrementalDemo(size_t nodes, size_t zones, int jobs,
                   util::Table &table, exp::Report &report)
{
    using Clock = std::chrono::steady_clock;
    const Environment env = buildEnvironment(sizedConfig(nodes));

    // The demo uses the Cost objective: its keys are capacity-blind,
    // so the planner's rejection-free grant replay can prove the
    // cached ranking still valid after the zone's capacity vanished.
    core::PlannerOptions planner_opts;
    planner_opts.incremental = true;
    planner_opts.shardCount = 8;
    planner_opts.shardRunner = exp::shardRunner(jobs);
    core::PackingOptions packing_opts;
    packing_opts.incremental = true;
    packing_opts.zoneShards = 8;
    packing_opts.shardRunner = exp::shardRunner(jobs);
    core::PhoenixScheme warm(core::Objective::Cost, planner_opts,
                             packing_opts);
    core::PhoenixScheme fresh(core::Objective::Cost);

    // Epoch 1 primes the caches; its packed state is what the cluster
    // looks like once the agent executed the plan.
    const core::SchemeResult first = warm.apply(env.apps, env.cluster);

    // One failure domain (nodes with id % zones == 0) goes dark.
    sim::ClusterState failed = first.pack.state;
    size_t failed_nodes = 0;
    for (size_t id = 0; id < nodes; id += zones) {
        failed.failNode(static_cast<sim::NodeId>(id));
        ++failed_nodes;
    }

    const auto inc_start = Clock::now();
    const core::SchemeResult inc = warm.apply(env.apps, failed);
    const double inc_seconds =
        std::chrono::duration<double>(Clock::now() - inc_start).count();
    const auto ref_start = Clock::now();
    const core::SchemeResult ref = fresh.apply(env.apps, failed);
    const double ref_seconds =
        std::chrono::duration<double>(Clock::now() - ref_start).count();

    const bool identical =
        inc.plan == ref.plan &&
        inc.pack.state.assignment() == ref.pack.state.assignment() &&
        inc.pack.placed == ref.pack.placed &&
        inc.pack.complete == ref.pack.complete;
    const double inc_ops = combinedOps(inc);
    const double ref_ops = combinedOps(ref);
    const double ratio = ref_ops / std::max(inc_ops, 1.0);

    table.row()
        .cell(nodes)
        .cell("PhoenixCost-incr")
        .cell(inc.planSeconds, 4)
        .cell(inc.packSeconds, 4)
        .cell(inc_seconds, 4)
        .cell(inc.planOps.heapPushes + inc.pack.ops.heapPushes, 0)
        .cell(inc.pack.ops.bestFitProbes, 0)
        .cell(inc.planOps.childSortElems, 0)
        .cell(identical ? "ok" : "MISMATCH");
    table.row()
        .cell(nodes)
        .cell("PhoenixCost-scratch")
        .cell(ref.planSeconds, 4)
        .cell(ref.packSeconds, 4)
        .cell(ref_seconds, 4)
        .cell(ref.planOps.heapPushes + ref.pack.ops.heapPushes, 0)
        .cell(ref.pack.ops.bestFitProbes, 0)
        .cell(ref.planOps.childSortElems, 0)
        .cell("ok");

    std::cout << "Incremental demo (" << nodes << " nodes, " << zones
              << " zones, " << failed_nodes
              << " failed): ops " << ref_ops << " -> " << inc_ops
              << " (" << ratio << "x), kv " << ref.pack.ops.kvOps
              << " -> " << inc.pack.ops.kvOps << ", reconcile "
              << ref.pack.reconcileSeconds << "s -> "
              << inc.pack.reconcileSeconds << "s, epoch "
              << ref_seconds << "s -> " << inc_seconds << "s, outputs "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";

    report.meta("incremental_demo_nodes",
                static_cast<int64_t>(nodes));
    report.meta("incremental_demo_zones",
                static_cast<int64_t>(zones));
    report.meta("incremental_demo_failed_nodes",
                static_cast<int64_t>(failed_nodes));
    report.meta("incremental_demo_ops_scratch", ref_ops);
    report.meta("incremental_demo_ops_incremental", inc_ops);
    report.meta("incremental_demo_ops_ratio", ratio);
    report.meta("incremental_demo_kv_ops_scratch",
                static_cast<int64_t>(ref.pack.ops.kvOps));
    report.meta("incremental_demo_kv_ops_incremental",
                static_cast<int64_t>(inc.pack.ops.kvOps));
    report.meta("incremental_demo_reconcile_seconds_scratch",
                ref.pack.reconcileSeconds);
    report.meta("incremental_demo_reconcile_seconds_incremental",
                inc.pack.reconcileSeconds);
    report.meta("incremental_demo_identical",
                static_cast<int64_t>(identical ? 1 : 0));

    if (!identical)
        std::cerr << "incremental demo: outputs diverged from "
                     "from-scratch\n";
    if (ratio < 10.0)
        std::cerr << "incremental demo: op reduction " << ratio
                  << "x below the 10x requirement\n";
    return identical && ratio >= 10.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *smoke_env = std::getenv("FIG8B_SMOKE");
    const bool smoke = smoke_env && std::string(smoke_env) == "1";

    // Harness-specific flags are stripped before the shared parser
    // (which exits on anything it does not know).
    size_t nodes_override = 0;
    size_t zones_override = 0;
    bool smoke_1m = false;
    std::vector<char *> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--nodes" && i + 1 < argc) {
            nodes_override = static_cast<size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--zones" && i + 1 < argc) {
            zones_override = static_cast<size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--1m-smoke") {
            smoke_1m = true;
        } else {
            pass.push_back(argv[i]);
        }
    }
    if (smoke_1m) {
        const char *gate = std::getenv("FIG8B_1M");
        if (!gate || std::string(gate) != "1") {
            std::cout << "fig8b --1m-smoke: FIG8B_1M=1 not set; "
                         "skipping (exit 77)\n";
            return 77;
        }
        nodes_override = 1000000;
    }

    auto options = bench::parseOptions(
        static_cast<int>(pass.size()), pass.data(), "fig8b");
    bench::applyObs(options);
    // Per-cell obs deltas (core.shards_planned, core.dirty_zones,
    // core.replans_incremental, core.reconcile_seconds) are part of
    // this figure's report: metrics stay on regardless of --metrics.
    obs::setMetricsEnabled(true);
    if (options.jobs == 0)
        options.jobs = 1; // timing fidelity; see file header
    bench::banner(smoke
                      ? "Figure 8(b) smoke | 1,000-node counter gate"
                  : smoke_1m
                      ? "Figure 8(b) | 1,000,000-node counter gate"
                      : "Figure 8(b) | time to adapt vs cluster size");
    if (options.jobs != 1)
        std::cout << "note: --jobs " << options.jobs
                  << " overlaps timed cells; reported times include "
                     "contention\n";

    util::Table table({"nodes", "scheme", "plan(s)", "pack(s)",
                       "total(s)", "pushes", "probes", "sortelems",
                       "status"});
    exp::Report report("fig8b");

    const std::vector<size_t> sizes =
        nodes_override > 0 ? std::vector<size_t>{nodes_override}
        : smoke            ? std::vector<size_t>{1000ul}
                           : std::vector<size_t>{100ul, 1000ul, 10000ul,
                                                 100000ul};
    bool smoke_ok = true;

    for (size_t nodes : sizes) {
        const Environment env = buildEnvironment(sizedConfig(nodes));

        exp::SweepGridSpec spec;
        spec.schemes = exp::paperSchemeSpecs(false);
        if (smoke) {
            const auto all = exp::paperSchemeSpecs(false);
            spec.schemes = {all[0], all[1]}; // PhoenixFair/PhoenixCost
        } else if (nodes >= 1000000) {
            // The baselines' bookkeeping (and the trial's state
            // copies) are the bottleneck at this scale; the panel the
            // 1M point exists for is Phoenix anyway.
            const auto all = exp::paperSchemeSpecs(false);
            spec.schemes = {all[0], all[1]};
        } else if (nodes <= 1000) {
            core::LpSchemeOptions lp_options;
            lp_options.timeLimitSec = 10.0;
            const auto with_lps =
                exp::paperSchemeSpecs(true, lp_options);
            // Keep only PhoenixFair/PhoenixCost/Default + the LPs —
            // the series the paper's panel shows.
            spec.schemes = {with_lps[0], with_lps[1], with_lps[4],
                            with_lps[5], with_lps[6]};
        } else {
            const auto all = exp::paperSchemeSpecs(false);
            spec.schemes = {all[0], all[1], all[4]};
        }
        // Zone-sharded Phoenix cells ride along at every size: same
        // outputs and counters as the plain cells, A/B wall-clock.
        spec.schemes.push_back(
            shardedSpec(core::Objective::Fair, options.jobs));
        spec.schemes.push_back(
            shardedSpec(core::Objective::Cost, options.jobs));
        spec.failureRates = {0.5};
        spec.trials = options.trialsOr(1);
        spec.seedBase = options.seedOr(1234);
        spec = exp::filterSchemes(spec, options.filter);

        const auto aggregates =
            exp::runGrid(env, spec, bench::engineOptions(options));
        for (const auto &agg : aggregates) {
            const bool failed = agg.failedTrials == agg.trials;
            table.row()
                .cell(nodes)
                .cell(agg.scheme)
                .cell(agg.mean.planSeconds, 4)
                .cell(agg.mean.packSeconds, 4)
                .cell(agg.mean.planSeconds + agg.mean.packSeconds, 4)
                .cell(agg.mean.opsHeapPushes, 0)
                .cell(agg.mean.opsBestFitProbes, 0)
                .cell(agg.mean.opsChildSortElems, 0)
                .cell(failed ? "gave-up" : "ok");
            if (smoke)
                smoke_ok =
                    smokeCheck(agg, kSmokeBound, "FIG8B_SMOKE") &&
                    smoke_ok;
            if (smoke_1m)
                smoke_ok = smokeCheck(agg, k1mBound, "FIG8B_1M") &&
                           smoke_ok;
        }
        if (!smoke && nodes > 1000 && options.filter.empty()) {
            table.row().cell(nodes).cell("LPFair").cell("-").cell("-")
                .cell("-").cell("-").cell("-").cell("-")
                .cell("does-not-scale");
            table.row().cell(nodes).cell("LPCost").cell("-").cell("-")
                .cell("-").cell("-").cell("-").cell("-")
                .cell("does-not-scale");
        }
        report.addSweep("nodes_" + std::to_string(nodes), aggregates);
    }

    // Incremental-replan demo: AC scale is the 100k-node single-zone
    // epoch; the smoke gate uses its 1,000-node environment, and an
    // explicit --nodes below 100k demos at that size.
    const size_t demo_nodes =
        smoke ? 1000ul
              : std::min<size_t>(
                    nodes_override > 0 ? nodes_override : 100000ul,
                    100000ul);
    // Rack-sized zones (~50 nodes): a single-zone failure then
    // displaces few enough pods that the fixed repacking cost does not
    // dilute the saved planning work below the 10x gate.
    const size_t demo_zones =
        zones_override > 0
            ? zones_override
            : std::max<size_t>(2, demo_nodes / (smoke ? 20 : 50));
    const bool demo_ok = runIncrementalDemo(
        demo_nodes, demo_zones, options.jobs, table, report);

    table.print(std::cout);
    const double rss = peakRssMiB();
    std::cout << "Peak RSS: " << rss << " MiB\n";
    if (!smoke) {
        std::cout
            << "Headline: Phoenix replans a 100,000-node cluster in "
               "under 10 s; the LPs hit their wall-clock limit at "
               "1,000 nodes already.\n";
    }

    report.meta("peak_rss_mib", rss);
    report.addTable("fig8b_times", table);
    bench::finishReport(report, options);

    if ((smoke || smoke_1m) && !(smoke_ok && demo_ok)) {
        std::cerr << (smoke ? "FIG8B_SMOKE" : "FIG8B_1M")
                  << ": gate violated\n";
        return 1;
    }
    if (smoke || smoke_1m)
        std::cout << (smoke ? "FIG8B_SMOKE" : "FIG8B_1M")
                  << ": counters within recorded bounds\n";
    return 0;
}
