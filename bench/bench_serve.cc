/**
 * @file
 * Serving-layer bench: drives the live request front end (src/serve)
 * over the CloudLab testbed through a scheme x load-shape x
 * failure-scenario grid and reports what the traffic experienced —
 * per-class goodput, SLO-violation seconds split critical vs
 * non-critical, and the admission shed fraction.
 *
 * Grid: {zone outage, 50%-capacity failure} x {steady, diurnal,
 * burst} x {PhoenixCost, PhoenixFair, Default}. Admission control is
 * active under the Phoenix schemes only — the Default baseline admits
 * everything, which is exactly the paper's comparison: cooperative
 * degradation (plan-aware shedding + criticality-ranked recovery)
 * versus a scheduler that lets every class fail organically.
 *
 * The JSON report (BENCH_serve.json) is finished locally rather than
 * through bench::finishReport: no "jobs" metadata and zero wall-clock
 * fields, so the file is byte-identical across --jobs values at a
 * fixed seed (the serve determinism gate diffs it for jobs 1/4/16).
 *
 * SERVE_SMOKE=1 restricts the grid to the diurnal shape under the two
 * failure scenarios with PhoenixCost vs Default, re-runs every smoke
 * cell serially to assert schedule-independence, and gates on the
 * serving storyline: zero invariant violations, exact admission
 * accounting (offered == served + shed + failed), plan-aware shedding
 * under the capacity crunch, and strictly less critical-class SLO
 * damage under Phoenix than under Default in both scenarios.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "serve/harness.h"
#include "util/table.h"

using namespace phoenix;
using serve::ServeResult;
using serve::ServeScheme;

namespace {

struct ScenarioSpec
{
    std::string name;
    /** Fraction of cluster capacity the scenario takes down. */
    double failureRate = 0.0;
    sim::Scenario scenario;
    sim::ScenarioOptions options;
};

struct ShapeSpec
{
    std::string name;
    apps::RateCurve curve;
};

struct Cell
{
    size_t scenarioIndex = 0;
    size_t shapeIndex = 0;
    ServeScheme scheme = ServeScheme::Default;
    ServeResult result;
};

/** Serving window shared by every cell: placement settles during
 * [0, 300), traffic runs over [300, 1800]. */
constexpr double kWarmupSec = 300.0;
constexpr double kEndTime = 1800.0;

/** Shift a curve's control points by @p offset seconds (shapes are
 * authored relative to the serving window). */
apps::RateCurve
shiftCurve(const apps::RateCurve &curve, double offset)
{
    apps::RateCurve shifted;
    for (const auto &[t, v] : curve.points())
        shifted.point(t + offset, v);
    return shifted;
}

std::vector<ScenarioSpec>
buildScenarios(uint64_t seed)
{
    std::vector<ScenarioSpec> specs;
    {
        // Correlated sub-datacenter outage: one of five zones (20% of
        // nodes) fails mid-trace; spare capacity covers the demand, so
        // this measures pure recovery speed under live load.
        ScenarioSpec spec;
        spec.name = "zone";
        spec.failureRate = 0.2;
        spec.options.seed = util::cellSeed(seed, 0);
        spec.options.zoneCount = 5;
        spec.scenario.failZone(600.0, 0).recoverAll(1500.0);
        specs.push_back(std::move(spec));
    }
    {
        // The paper's headline crunch: capacity halved, ready CPU (100)
        // below total demand (140), so the planner must sacrifice
        // low-criticality services — the admission controller's
        // plan-aware shed path fires.
        ScenarioSpec spec;
        spec.name = "cap50";
        spec.failureRate = 0.5;
        spec.options.seed = util::cellSeed(seed, 1);
        spec.scenario.failCapacityFraction(600.0, 0.5)
            .recoverAll(1500.0, 15.0);
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<ShapeSpec>
buildShapes()
{
    std::vector<ShapeSpec> shapes;
    shapes.push_back({"steady", apps::RateCurve()});
    shapes.push_back(
        {"diurnal",
         shiftCurve(apps::RateCurve::diurnal(kEndTime - kWarmupSec,
                                             0.6, 1.5),
                    kWarmupSec)});
    // Burst rides on top of the degraded period: ramp starts while
    // the failure is still being repaired.
    shapes.push_back({"burst", apps::RateCurve::burst(900.0, 450.0,
                                                      1.0, 2.0)});
    return shapes;
}

serve::ServeConfig
cellConfig(const ScenarioSpec &scenario, const ShapeSpec &shape,
           ServeScheme scheme, uint64_t seed, size_t scenarioIndex,
           size_t shapeIndex)
{
    serve::ServeConfig config;
    config.scheme = scheme;
    config.scenario = scenario.scenario;
    config.scenarioOptions = scenario.options;
    config.warmupSec = kWarmupSec;
    config.endTime = kEndTime;
    config.frontend.curve = shape.curve;
    config.frontend.windowSec = 5.0;
    // Admission control is the cooperative half of the design; the
    // Default baseline serves whatever survives, unprotected.
    config.frontend.admission.enabled = scheme != ServeScheme::Default;
    config.frontend.seed = util::cellSeed(
        seed, scenarioIndex, shapeIndex, static_cast<size_t>(scheme));
    return config;
}

/** Canonical byte string of one cell's deterministic outputs (exact
 * hex-float doubles); the smoke gate compares the parallel run
 * against a serial re-run to prove schedule-independence. */
std::string
canonicalResultString(const Cell &cell)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << serve::serveSchemeName(cell.scheme) << '|'
       << cell.result.offered << '|' << cell.result.served << '|'
       << cell.result.shed << '|' << cell.result.failed << '|'
       << cell.result.criticalViolationSeconds << '|'
       << cell.result.nonCriticalViolationSeconds << '|'
       << cell.result.replans << '|'
       << cell.result.invariantViolations << '\n';
    for (const serve::ClassReport &rep : cell.result.classes) {
        os << rep.meta.label() << '|' << rep.offered << '|'
           << rep.served << '|' << rep.shed << '|' << rep.failed
           << '|' << rep.p95Ms << '|' << rep.sloViolationSeconds
           << '\n';
    }
    return os.str();
}

/** Cell -> perfdiff-compatible sweep aggregate. The serving headline
 * numbers ride in the aggregate's "obs" object (name-sorted), always
 * present so the JSON diff tracks them with metrics off. */
exp::SweepAggregate
toAggregate(const ScenarioSpec &spec, const Cell &cell)
{
    exp::SweepAggregate agg;
    agg.scheme = serve::serveSchemeName(cell.scheme);
    agg.failureRate = spec.failureRate;
    agg.trials = 1;
    // wallSeconds stays 0: BENCH_serve.json must be byte-identical
    // across --jobs values.

    const ServeResult &r = cell.result;
    agg.obs = r.obsMetrics;
    agg.obs.emplace_back("serve.offered",
                         static_cast<double>(r.offered));
    agg.obs.emplace_back("serve.served", static_cast<double>(r.served));
    agg.obs.emplace_back("serve.shed_total",
                         static_cast<double>(r.shed));
    agg.obs.emplace_back("serve.failed_total",
                         static_cast<double>(r.failed));
    agg.obs.emplace_back("serve.critical_violation_seconds",
                         r.criticalViolationSeconds);
    agg.obs.emplace_back("serve.noncritical_violation_seconds",
                         r.nonCriticalViolationSeconds);
    agg.obs.emplace_back("serve.critical_goodput", r.criticalGoodput);
    agg.obs.emplace_back("serve.shed_fraction", r.shedFraction);
    agg.obs.emplace_back(
        "kube.invariant_violations",
        static_cast<double>(r.invariantViolations));
    std::sort(agg.obs.begin(), agg.obs.end());

    agg.availability = [&] {
        exp::MetricStats s;
        s.mean = s.min = s.max = r.criticalGoodput;
        return s;
    }();
    agg.requestsServed = [&] {
        exp::MetricStats s;
        s.mean = s.min = s.max = static_cast<double>(r.served);
        return s;
    }();
    return agg;
}

/** Local report finish: same outputs as bench::finishReport but with
 * no "jobs" metadata, so the JSON is --jobs-independent. */
void
finishDeterministicReport(exp::Report &report,
                          const exp::Options &options)
{
    if (options.metrics) {
        util::Table table({"metric", "kind", "count", "value", "p50",
                           "p90", "p99"});
        for (const auto &m : obs::Registry::global().snapshot()) {
            const char *kind =
                m.kind == obs::MetricKind::Counter   ? "counter"
                : m.kind == obs::MetricKind::Gauge   ? "gauge"
                                                     : "histogram";
            table.row()
                .cell(m.name)
                .cell(kind)
                .cell(static_cast<size_t>(m.count))
                .cell(exp::jsonNumber(m.value))
                .cell(exp::jsonNumber(m.p50))
                .cell(exp::jsonNumber(m.p90))
                .cell(exp::jsonNumber(m.p99));
        }
        report.addTable("obs.metrics", table);
    }
    if (report.writeJsonFile(options.jsonPath))
        std::cout << "[report] JSON written to " << options.jsonPath
                  << "\n";
    if (report.writeCsvFile(options.csvPath))
        std::cout << "[report] CSV written to " << options.csvPath
                  << "\n";
    if (!options.traceOut.empty()) {
        std::ofstream trace(options.traceOut);
        if (trace) {
            obs::Tracer::global().exportChromeJson(trace);
            std::cout << "[trace] Chrome trace written to "
                      << options.traceOut << "\n";
        } else {
            std::cerr << "warning: cannot write trace to "
                      << options.traceOut << "\n";
        }
    }
}

bool
smokeMode()
{
    const char *env = std::getenv("SERVE_SMOKE");
    return env && std::string(env) == "1";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "serve");
    bench::applyObs(options);
    const bool smoke = smokeMode();
    bench::banner(
        "Serving layer | live load + SLOs + admission control under "
        "degradation on the 25-node CloudLab testbed");

    const uint64_t seed = options.seedOr(42);
    const auto scenarios = buildScenarios(seed);
    const auto shapes = buildShapes();
    std::vector<ServeScheme> schemes{ServeScheme::PhoenixCost,
                                     ServeScheme::PhoenixFair,
                                     ServeScheme::Default};
    if (smoke)
        schemes = {ServeScheme::PhoenixCost, ServeScheme::Default};

    std::vector<Cell> cells;
    for (size_t s = 0; s < scenarios.size(); ++s) {
        for (size_t h = 0; h < shapes.size(); ++h) {
            if (smoke && shapes[h].name != "diurnal")
                continue;
            for (ServeScheme scheme : schemes) {
                if (!options.filter.empty()) {
                    std::string name = serve::serveSchemeName(scheme);
                    std::string filter = options.filter;
                    for (auto &c : name)
                        c = static_cast<char>(std::tolower(c));
                    for (auto &c : filter)
                        c = static_cast<char>(std::tolower(c));
                    if (name.find(filter) == std::string::npos)
                        continue;
                }
                Cell cell;
                cell.scenarioIndex = s;
                cell.shapeIndex = h;
                cell.scheme = scheme;
                cells.push_back(cell);
            }
        }
    }

    exp::parallelFor(options.jobs, cells.size(), [&](size_t i) {
        Cell &cell = cells[i];
        const ScenarioSpec &spec = scenarios[cell.scenarioIndex];
        const ShapeSpec &shape = shapes[cell.shapeIndex];
        // One trace track per cell, keyed by the canonical cell index
        // so the trace layout is identical for any --jobs value.
        obs::setCurrentTrack(static_cast<uint32_t>(i));
        if (obs::traceEnabled()) {
            obs::Tracer::global().nameTrack(
                static_cast<uint32_t>(i),
                spec.name + "/" + shape.name + "/" +
                    serve::serveSchemeName(cell.scheme));
        }
        cell.result = serve::runServe(
            cellConfig(spec, shape, cell.scheme, seed,
                       cell.scenarioIndex, cell.shapeIndex));
    });

    // ---- Per-cell serving outcomes -------------------------------
    bench::banner("traffic outcome per (scenario, shape, scheme)");
    util::Table table({"scenario", "shape", "scheme", "offered",
                       "served", "shed", "failed", "shed%",
                       "crit_viol_s", "other_viol_s", "crit_goodput",
                       "replans", "violations"});
    for (const Cell &cell : cells) {
        const ServeResult &r = cell.result;
        table.row()
            .cell(scenarios[cell.scenarioIndex].name)
            .cell(shapes[cell.shapeIndex].name)
            .cell(serve::serveSchemeName(cell.scheme))
            .cell(r.offered)
            .cell(r.served)
            .cell(r.shed)
            .cell(r.failed)
            .cell(100.0 * r.shedFraction, 1)
            .cell(r.criticalViolationSeconds, 0)
            .cell(r.nonCriticalViolationSeconds, 0)
            .cell(r.criticalGoodput, 3)
            .cell(r.replans)
            .cell(r.invariantViolations);
    }
    table.print(std::cout);

    // ---- Headline per-class view (cap50/diurnal, Phoenix) --------
    util::Table classes({"class", "crit", "offered", "served", "shed",
                         "failed", "p95_ms", "viol_s"});
    for (const Cell &cell : cells) {
        if (scenarios[cell.scenarioIndex].name != "cap50" ||
            shapes[cell.shapeIndex].name != "diurnal" ||
            cell.scheme != ServeScheme::PhoenixCost)
            continue;
        for (const serve::ClassReport &rep : cell.result.classes) {
            classes.row()
                .cell(rep.meta.label())
                .cell(static_cast<size_t>(rep.meta.criticality))
                .cell(rep.offered)
                .cell(rep.served)
                .cell(rep.shed)
                .cell(rep.failed)
                .cell(rep.p95Ms, 1)
                .cell(rep.sloViolationSeconds, 0);
        }
    }
    bench::banner("cap50/diurnal per-class detail (PhoenixCost)");
    classes.print(std::cout);

    // ---- Report --------------------------------------------------
    exp::Report report("serve");
    report.meta("nodes",
                static_cast<int64_t>(apps::CloudLabConfig{}.nodeCount));
    report.meta("warmup_s", kWarmupSec);
    report.meta("end_s", kEndTime);
    report.meta("smoke", static_cast<int64_t>(smoke ? 1 : 0));
    for (const Cell &cell : cells) {
        const std::string prefix =
            scenarios[cell.scenarioIndex].name + "_" +
            shapes[cell.shapeIndex].name + "_" +
            serve::serveSchemeName(cell.scheme);
        report.meta(prefix + "_crit_viol_s",
                    cell.result.criticalViolationSeconds);
        report.meta(prefix + "_shed_fraction",
                    cell.result.shedFraction);
    }
    report.addTable("serve_cells", table);
    report.addTable("classes_cap50_diurnal", classes);
    for (size_t s = 0; s < scenarios.size(); ++s) {
        for (size_t h = 0; h < shapes.size(); ++h) {
            std::vector<exp::SweepAggregate> sweep;
            for (const Cell &cell : cells) {
                if (cell.scenarioIndex == s && cell.shapeIndex == h)
                    sweep.push_back(
                        toAggregate(scenarios[s], cell));
            }
            if (!sweep.empty())
                report.addSweep(scenarios[s].name + "_" +
                                    shapes[h].name,
                                sweep);
        }
    }
    finishDeterministicReport(report, options);

    // ---- Smoke gate ----------------------------------------------
    if (smoke) {
        size_t failures = 0;
        auto expect = [&failures](bool ok, const std::string &what) {
            if (!ok) {
                std::cerr << "[smoke] FAIL: " << what << "\n";
                ++failures;
            }
        };

        // Schedule-independence: every smoke cell re-run serially
        // must reproduce the parallel run byte-for-byte.
        for (size_t i = 0; i < cells.size(); ++i) {
            Cell rerun = cells[i];
            const ScenarioSpec &spec =
                scenarios[rerun.scenarioIndex];
            obs::setCurrentTrack(static_cast<uint32_t>(i));
            rerun.result = serve::runServe(cellConfig(
                spec, shapes[rerun.shapeIndex], rerun.scheme, seed,
                rerun.scenarioIndex, rerun.shapeIndex));
            expect(canonicalResultString(rerun) ==
                       canonicalResultString(cells[i]),
                   spec.name + "/" +
                       serve::serveSchemeName(rerun.scheme) +
                       " deterministic across schedules");
        }

        auto find = [&](const std::string &scenario,
                        ServeScheme scheme) -> const Cell * {
            for (const Cell &cell : cells) {
                if (scenarios[cell.scenarioIndex].name == scenario &&
                    cell.scheme == scheme)
                    return &cell;
            }
            return nullptr;
        };

        for (const Cell &cell : cells) {
            const ServeResult &r = cell.result;
            const std::string tag =
                scenarios[cell.scenarioIndex].name + "/" +
                serve::serveSchemeName(cell.scheme);
            expect(r.invariantViolations == 0,
                   "no kube invariant violations under " + tag);
            expect(r.offered == r.served + r.shed + r.failed,
                   "admission accounting exact under " + tag);
            expect(r.offered > 0, "traffic offered under " + tag);
        }

        for (const std::string scenario : {"zone", "cap50"}) {
            const Cell *phoenix =
                find(scenario, ServeScheme::PhoenixCost);
            const Cell *fallback =
                find(scenario, ServeScheme::Default);
            expect(phoenix && fallback,
                   scenario + ": both smoke cells ran");
            if (!phoenix || !fallback)
                continue;
            const ServeResult &p = phoenix->result;
            const ServeResult &d = fallback->result;
            expect(d.criticalViolationSeconds > 0.0,
                   scenario +
                       ": default takes critical SLO damage");
            expect(p.criticalViolationSeconds <
                       d.criticalViolationSeconds,
                   scenario + ": phoenix keeps critical "
                              "SLO-violation seconds strictly below "
                              "default");
            expect(d.shed == 0,
                   scenario + ": default never sheds (no admission)");
        }

        const Cell *crunch = find("cap50", ServeScheme::PhoenixCost);
        if (crunch) {
            expect(crunch->result.shed > 0,
                   "cap50: phoenix admission sheds sacrificed "
                   "classes (plan-aware fail-fast)");
            expect(crunch->result.shedFraction < 0.5,
                   "cap50: phoenix sheds a minority of traffic");
        }

        if (failures > 0) {
            std::cerr << "[smoke] " << failures << " check(s) failed\n";
            return 1;
        }
        std::cout << "[smoke] serving bounds OK\n";
    }
    return 0;
}
