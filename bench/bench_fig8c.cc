/**
 * @file
 * Figure 8(c): cluster utilization under varying failure rates, broken
 * down into the Phoenix planner's target (aggregate demand of the
 * ranked list against healthy capacity), the Phoenix scheduler's
 * placed state, and the Default scheduler. The paper's observations:
 * Phoenix's placement loses almost nothing relative to the planner's
 * target, and packs at least as well as Default while spending the
 * capacity on critical services.
 *
 * The (scheme x rate x trial) grid runs on the exp engine (--jobs).
 */

#include <iostream>

#include "bench/bench_common.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "fig8c");
    bench::applyObs(options);
    const auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    bench::banner("Figure 8(c) | utilization breakdown, " +
                  std::to_string(config.nodeCount) + " nodes");

    const Environment env = buildEnvironment(config);

    exp::SweepGridSpec spec;
    spec.schemes = {
        exp::SchemeSpec{"PhoenixFair",
                        [] {
                            return std::make_unique<
                                core::PhoenixScheme>(
                                core::Objective::Fair);
                        }},
        exp::schemeSpec<core::DefaultScheme>("Default"),
    };
    spec.failureRates = {0.1, 0.3, 0.5, 0.7, 0.9};
    spec.trials = options.trialsOr(5);
    spec.seedBase = options.seedOr(500);
    spec = exp::filterSchemes(spec, options.filter);

    const auto aggregates =
        exp::runGrid(env, spec, bench::engineOptions(options));

    // Aggregates arrive scheme-major: PhoenixFair rows first, then
    // Default, one per rate — pair them up per failure rate.
    const size_t rate_count = spec.failureRates.size();
    util::Table table({"failure-rate", "Phoenix-planner",
                       "Phoenix-scheduler", "Default",
                       "planner-to-scheduler-drop"});
    if (spec.schemes.size() == 2) {
        for (size_t r = 0; r < rate_count; ++r) {
            const auto &px = aggregates[r];
            const auto &df = aggregates[rate_count + r];
            table.row()
                .cell(px.failureRate, 1)
                .cell(px.mean.plannerUtilization)
                .cell(px.mean.utilization)
                .cell(df.mean.utilization)
                .cell(px.mean.plannerUtilization -
                      px.mean.utilization);
        }
    } else {
        // --filter left a single scheme: print what remains.
        for (const auto &agg : aggregates) {
            table.row()
                .cell(agg.failureRate, 1)
                .cell(agg.mean.plannerUtilization)
                .cell(agg.mean.utilization)
                .cell(0.0)
                .cell(agg.mean.plannerUtilization -
                      agg.mean.utilization);
        }
    }
    table.print(std::cout);

    exp::Report report("fig8c");
    report.meta("nodes", static_cast<int64_t>(config.nodeCount));
    report.meta("trials", static_cast<int64_t>(spec.trials));
    report.meta("seed_base", static_cast<int64_t>(spec.seedBase));
    report.addSweep("fig8c", aggregates);
    report.addTable("fig8c_breakdown", table);
    bench::finishReport(report, options);
    return 0;
}
