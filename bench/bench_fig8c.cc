/**
 * @file
 * Figure 8(c): cluster utilization under varying failure rates, broken
 * down into the Phoenix planner's target (aggregate demand of the
 * ranked list against healthy capacity), the Phoenix scheduler's
 * placed state, and the Default scheduler. The paper's observations:
 * Phoenix's placement loses almost nothing relative to the planner's
 * target, and packs at least as well as Default while spending the
 * capacity on critical services.
 */

#include <iostream>

#include "adaptlab/runner.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main()
{
    const auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    bench::banner("Figure 8(c) | utilization breakdown, " +
                  std::to_string(config.nodeCount) + " nodes");

    const Environment env = buildEnvironment(config);
    core::PhoenixScheme phoenix(core::Objective::Fair);
    core::DefaultScheme def;

    util::Table table({"failure-rate", "Phoenix-planner",
                       "Phoenix-scheduler", "Default",
                       "planner-to-scheduler-drop"});
    for (double rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        std::vector<TrialMetrics> px_batch;
        std::vector<TrialMetrics> df_batch;
        for (uint64_t t = 0; t < 5; ++t) {
            px_batch.push_back(
                runFailureTrial(env, phoenix, rate, 500 + t));
            df_batch.push_back(
                runFailureTrial(env, def, rate, 500 + t));
        }
        const TrialMetrics px = averageTrials(px_batch);
        const TrialMetrics df = averageTrials(df_batch);
        table.row()
            .cell(rate, 1)
            .cell(px.plannerUtilization)
            .cell(px.utilization)
            .cell(df.utilization)
            .cell(px.plannerUtilization - px.utilization);
    }
    table.print(std::cout);
    return 0;
}
