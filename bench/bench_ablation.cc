/**
 * @file
 * Ablations of the DESIGN.md-called-out choices:
 *
 *  1. Planner DFS descent rule: equal-tag descent (default; provably
 *     criticality-monotone output) vs the paper-literal eager descent
 *     (tags(child) >= tags(node)).
 *  2. Planner overflow rule: stop at first non-fitting container
 *     (Alg. 1 literal) vs skip-app-and-continue.
 *  3. Packer stages: best-fit only, +migrations, +deletions, and the
 *     paper-literal abort-on-unplaceable.
 */

#include <iostream>

#include "adaptlab/runner.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;
using namespace phoenix::core;

namespace {

void
report(util::Table &table, const std::string &variant,
       const Environment &env, ResilienceScheme &scheme, double rate)
{
    std::vector<TrialMetrics> batch;
    for (uint64_t t = 0; t < 3; ++t)
        batch.push_back(runFailureTrial(env, scheme, rate, 900 + t));
    const TrialMetrics m = averageTrials(batch);
    table.row()
        .cell(variant)
        .cell(rate, 1)
        .cell(m.availability)
        .cell(m.utilization)
        .cell(m.planSeconds + m.packSeconds, 4);
}

} // namespace

int
main()
{
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    bench::banner("Ablations | " + std::to_string(config.nodeCount) +
                  " nodes, Service-Level-P90 + CPM");
    const Environment env = buildEnvironment(config);

    bench::banner("1+2: planner variants (PhoenixFair)");
    util::Table planner_table({"variant", "failure-rate", "availability",
                               "utilization", "time(s)"});
    for (double rate : {0.5, 0.9}) {
        {
            PhoenixScheme scheme(Objective::Fair);
            report(planner_table, "default(equal-tag,stop)", env,
                   scheme, rate);
        }
        {
            PlannerOptions options;
            options.eagerDfsDescend = true;
            PhoenixScheme scheme(Objective::Fair, options);
            report(planner_table, "eager-dfs(paper-literal)", env,
                   scheme, rate);
        }
        {
            PlannerOptions options;
            options.stopAtFirstOverflow = false;
            PhoenixScheme scheme(Objective::Fair, options);
            report(planner_table, "skip-overflow", env, scheme, rate);
        }
    }
    planner_table.print(std::cout);

    bench::banner("3: packer stages (PhoenixFair)");
    util::Table packer_table({"variant", "failure-rate", "availability",
                              "utilization", "time(s)"});
    for (double rate : {0.5, 0.9}) {
        {
            PhoenixScheme scheme(Objective::Fair);
            report(packer_table, "bestfit+migrate+delete", env, scheme,
                   rate);
        }
        {
            PackingOptions options;
            options.allowMigrations = false;
            PhoenixScheme scheme(Objective::Fair, {}, options);
            report(packer_table, "no-migrations", env, scheme, rate);
        }
        {
            PackingOptions options;
            options.allowDeletions = false;
            PhoenixScheme scheme(Objective::Fair, {}, options);
            report(packer_table, "no-deletions", env, scheme, rate);
        }
        {
            PackingOptions options;
            options.allowMigrations = false;
            options.allowDeletions = false;
            PhoenixScheme scheme(Objective::Fair, {}, options);
            report(packer_table, "bestfit-only", env, scheme, rate);
        }
        {
            PackingOptions options;
            options.abortOnUnplaceable = true;
            PhoenixScheme scheme(Objective::Fair, {}, options);
            report(packer_table, "abort-on-unplaceable(paper)", env,
                   scheme, rate);
        }
    }
    packer_table.print(std::cout);
    return 0;
}
