/**
 * @file
 * Ablations of the DESIGN.md-called-out choices:
 *
 *  1. Planner DFS descent rule: equal-tag descent (default; provably
 *     criticality-monotone output) vs the paper-literal eager descent
 *     (tags(child) >= tags(node)).
 *  2. Planner overflow rule: stop at first non-fitting container
 *     (Alg. 1 literal) vs skip-app-and-continue.
 *  3. Packer stages: best-fit only, +migrations, +deletions, and the
 *     paper-literal abort-on-unplaceable.
 *
 * Each variant is a scheme spec on the exp engine's grid; --jobs
 * parallelizes (variant x rate x trial) cells.
 */

#include <iostream>

#include "bench/bench_common.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;
using namespace phoenix::core;

namespace {

exp::SchemeSpec
variantSpec(const std::string &name, PlannerOptions planner_options,
            PackingOptions packing_options = {})
{
    return exp::SchemeSpec{
        name, [planner_options, packing_options] {
            return std::make_unique<PhoenixScheme>(
                Objective::Fair, planner_options, packing_options);
        }};
}

void
printGrid(const std::vector<exp::SweepAggregate> &aggregates,
          util::Table &table)
{
    for (const auto &agg : aggregates) {
        table.row()
            .cell(agg.scheme)
            .cell(agg.failureRate, 1)
            .cell(agg.mean.availability)
            .cell(agg.mean.utilization)
            .cell(agg.mean.planSeconds + agg.mean.packSeconds, 4);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "ablation");
    bench::applyObs(options);
    auto config = bench::paperEnvironment(
        workloads::TaggingScheme::ServiceLevel, 0.9,
        workloads::ResourceModel::CallsPerMinute);
    bench::banner("Ablations | " + std::to_string(config.nodeCount) +
                  " nodes, Service-Level-P90 + CPM");
    const Environment env = buildEnvironment(config);

    exp::Report report("ablation");
    report.meta("nodes", static_cast<int64_t>(config.nodeCount));

    const std::vector<double> rates{0.5, 0.9};
    const int trials = options.trialsOr(3);
    const uint64_t seed_base = options.seedOr(900);

    {
        bench::banner("1+2: planner variants (PhoenixFair)");
        exp::SweepGridSpec spec;
        spec.schemes.push_back(
            variantSpec("default(equal-tag,stop)", {}));
        PlannerOptions eager;
        eager.eagerDfsDescend = true;
        spec.schemes.push_back(
            variantSpec("eager-dfs(paper-literal)", eager));
        PlannerOptions skip;
        skip.stopAtFirstOverflow = false;
        spec.schemes.push_back(variantSpec("skip-overflow", skip));
        spec.failureRates = rates;
        spec.trials = trials;
        spec.seedBase = seed_base;
        spec = exp::filterSchemes(spec, options.filter);

        const auto aggregates =
            exp::runGrid(env, spec, bench::engineOptions(options));
        util::Table table({"variant", "failure-rate", "availability",
                           "utilization", "time(s)"});
        printGrid(aggregates, table);
        table.print(std::cout);
        report.addSweep("planner_variants", aggregates);
    }

    {
        bench::banner("3: packer stages (PhoenixFair)");
        exp::SweepGridSpec spec;
        spec.schemes.push_back(
            variantSpec("bestfit+migrate+delete", {}));
        PackingOptions no_migrations;
        no_migrations.allowMigrations = false;
        spec.schemes.push_back(
            variantSpec("no-migrations", {}, no_migrations));
        PackingOptions no_deletions;
        no_deletions.allowDeletions = false;
        spec.schemes.push_back(
            variantSpec("no-deletions", {}, no_deletions));
        PackingOptions bestfit;
        bestfit.allowMigrations = false;
        bestfit.allowDeletions = false;
        spec.schemes.push_back(
            variantSpec("bestfit-only", {}, bestfit));
        PackingOptions abort_unplaceable;
        abort_unplaceable.abortOnUnplaceable = true;
        spec.schemes.push_back(variantSpec(
            "abort-on-unplaceable(paper)", {}, abort_unplaceable));
        spec.failureRates = rates;
        spec.trials = trials;
        spec.seedBase = seed_base;
        spec = exp::filterSchemes(spec, options.filter);

        const auto aggregates =
            exp::runGrid(env, spec, bench::engineOptions(options));
        util::Table table({"variant", "failure-rate", "availability",
                           "utilization", "time(s)"});
        printGrid(aggregates, table);
        table.print(std::cout);
        report.addSweep("packer_stages", aggregates);
    }

    bench::finishReport(report, options);
    return 0;
}
