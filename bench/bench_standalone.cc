/**
 * @file
 * Figures 10-16 (Appendix F.2 "Standalone Testing"): the full cross of
 * criticality tagging schemes (Service-Level / Freq-Based at P50 and
 * P90) and resource models (CPM, LongTailed), each swept across
 * failure rates with all schemes — 8 configuration panels, each
 * reporting availability, revenue and fair-share deviation. The paper
 * finds Phoenix on top in every panel.
 */

#include <iostream>

#include "adaptlab/runner.h"
#include "bench/bench_common.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main()
{
    const std::vector<double> rates{0.1, 0.5, 0.9};
    const int trials = bench::fullScale() ? 5 : 3;

    for (auto resources : {workloads::ResourceModel::CallsPerMinute,
                           workloads::ResourceModel::LongTailed}) {
        for (const auto &tagging : workloads::paperTaggingConfigs()) {
            auto config = bench::paperEnvironment(
                tagging.scheme, tagging.percentile, resources);
            bench::banner(
                "Figs 10-16 | " + workloads::taggingName(tagging) +
                " + " + workloads::resourceModelName(resources) + ", " +
                std::to_string(config.nodeCount) + " nodes");

            const Environment env = buildEnvironment(config);
            auto schemes = core::makeAllSchemes(false);
            util::Table table({"scheme", "failure-rate", "availability",
                               "norm-revenue", "fair-dev(+)",
                               "fair-dev(-)"});
            for (auto &scheme : schemes) {
                for (const auto &row :
                     sweepScheme(env, *scheme, rates, trials)) {
                    table.row()
                        .cell(row.scheme)
                        .cell(row.metrics.failureRate, 1)
                        .cell(row.metrics.availability)
                        .cell(row.metrics.revenue)
                        .cell(row.metrics.fairnessPositive)
                        .cell(row.metrics.fairnessNegative);
                }
            }
            table.print(std::cout);
        }
    }
    return 0;
}
