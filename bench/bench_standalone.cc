/**
 * @file
 * Figures 10-16 (Appendix F.2 "Standalone Testing"): the full cross of
 * criticality tagging schemes (Service-Level / Freq-Based at P50 and
 * P90) and resource models (CPM, LongTailed), each swept across
 * failure rates with all schemes — 8 configuration panels, each
 * reporting availability, revenue and fair-share deviation. The paper
 * finds Phoenix on top in every panel.
 *
 * Each panel's (scheme x rate x trial) grid runs on the exp engine;
 * --jobs parallelizes within a panel.
 */

#include <iostream>

#include "bench/bench_common.h"
#include "exp/grid.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv, "standalone");
    bench::applyObs(options);
    const std::vector<double> rates{0.1, 0.5, 0.9};
    const int trials = options.trialsOr(bench::fullScale() ? 5 : 3);

    exp::Report report("standalone");
    report.meta("trials", static_cast<int64_t>(trials));

    for (auto resources : {workloads::ResourceModel::CallsPerMinute,
                           workloads::ResourceModel::LongTailed}) {
        for (const auto &tagging : workloads::paperTaggingConfigs()) {
            auto config = bench::paperEnvironment(
                tagging.scheme, tagging.percentile, resources);
            const std::string panel =
                workloads::taggingName(tagging) + " + " +
                workloads::resourceModelName(resources);
            bench::banner("Figs 10-16 | " + panel + ", " +
                          std::to_string(config.nodeCount) + " nodes");

            const Environment env = buildEnvironment(config);

            exp::SweepGridSpec spec;
            spec.schemes = exp::paperSchemeSpecs(false);
            spec.failureRates = rates;
            spec.trials = trials;
            spec.seedBase = options.seedOr(100);
            spec = exp::filterSchemes(spec, options.filter);

            const auto aggregates = exp::runGrid(
                env, spec, bench::engineOptions(options));

            util::Table table({"scheme", "failure-rate",
                               "availability", "norm-revenue",
                               "fair-dev(+)", "fair-dev(-)"});
            for (const auto &agg : aggregates) {
                table.row()
                    .cell(agg.scheme)
                    .cell(agg.mean.failureRate, 1)
                    .cell(agg.mean.availability)
                    .cell(agg.mean.revenue)
                    .cell(agg.mean.fairnessPositive)
                    .cell(agg.mean.fairnessNegative);
            }
            table.print(std::cout);
            report.addSweep(panel, aggregates);
        }
    }
    bench::finishReport(report, options);
    return 0;
}
