/**
 * @file
 * Microbenchmarks for the hot components behind the Fig 8(b)
 * planning-time numbers.
 *
 * The default mode is a self-contained harness that races the old
 * container-based data structures against their flat replacements —
 * util::SortedKv (std::multiset) vs util::BucketedKv, and
 * std::set<pair> vs util::IndexedDaryHeap — on insert/erase/best-fit
 * mixes from 1e3 to 1e6 elements, reporting ops/sec and allocations
 * per operation (this binary installs the util/alloc_counter hook),
 * and exporting BENCH_micro.json through exp::Report like every other
 * harness.
 *
 * MICRO_GBENCH=1 switches to the google-benchmark suite covering the
 * planner stages, the packing scheduler, the simplex solver, and the
 * graph traversals (pass regular google-benchmark flags through).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <set>

#include "adaptlab/environment.h"
#include "core/packing.h"
#include "core/planner.h"
#include "exp/options.h"
#include "exp/report.h"
#include "lp/simplex.h"
#include "sim/failure.h"
#include "util/alloc_counter.h"
#include "util/bucketed_kv.h"
#include "util/heap.h"
#include "util/rng.h"
#include "util/sorted_kv.h"
#include "util/table.h"

PHOENIX_INSTALL_ALLOC_COUNTER();

using namespace phoenix;
using namespace phoenix::core;

namespace {

adaptlab::Environment &
environmentForNodes(size_t nodes)
{
    static std::map<size_t, adaptlab::Environment> cache;
    auto it = cache.find(nodes);
    if (it == cache.end()) {
        adaptlab::EnvironmentConfig config;
        config.nodeCount = nodes;
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale =
            std::max(0.01, static_cast<double>(nodes) / 100000.0);
        it = cache.emplace(nodes,
                           adaptlab::buildEnvironment(config)).first;
    }
    return it->second;
}

void
BM_PriorityEstimator(benchmark::State &state)
{
    const auto &env =
        environmentForNodes(static_cast<size_t>(state.range(0)));
    size_t services = 0;
    for (const auto &app : env.apps)
        services += app.services.size();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Planner::priorityEstimator(env.apps));
    }
    state.counters["services"] = static_cast<double>(services);
}
BENCHMARK(BM_PriorityEstimator)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void
BM_GlobalRank(benchmark::State &state)
{
    const auto &env =
        environmentForNodes(static_cast<size_t>(state.range(0)));
    const auto ranks = Planner::priorityEstimator(env.apps);
    Planner planner;
    for (auto _ : state) {
        FairObjective fair;
        benchmark::DoNotOptimize(planner.globalRank(
            env.apps, ranks, fair,
            env.cluster.healthyCapacity() * 0.5));
    }
}
BENCHMARK(BM_GlobalRank)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void
BM_PackAfterFailure(benchmark::State &state)
{
    const auto &env =
        environmentForNodes(static_cast<size_t>(state.range(0)));
    sim::ClusterState failed = env.cluster;
    sim::FailureInjector injector{util::Rng(5)};
    injector.failCapacityFraction(failed, 0.5);
    Planner planner;
    FairObjective fair;
    const GlobalRank rank =
        planner.plan(env.apps, fair, failed.healthyCapacity());
    PackingScheduler packer;
    for (auto _ : state) {
        benchmark::DoNotOptimize(packer.pack(env.apps, failed, rank));
    }
    state.counters["ranked"] = static_cast<double>(rank.size());
}
BENCHMARK(BM_PackAfterFailure)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void
BM_SimplexDense(benchmark::State &state)
{
    // A transportation-style LP: n suppliers x n consumers.
    const int n = static_cast<int>(state.range(0));
    util::Rng rng(9);
    lp::Model model;
    std::vector<std::vector<lp::VarId>> x(n,
                                          std::vector<lp::VarId>(n));
    lp::LinExpr objective;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            x[i][j] = model.addVar(0.0, 10.0);
            objective.push_back({x[i][j], rng.uniform(1.0, 5.0)});
        }
    }
    for (int i = 0; i < n; ++i) {
        lp::LinExpr row;
        for (int j = 0; j < n; ++j)
            row.push_back({x[i][j], 1.0});
        model.addConstraint(row, lp::Relation::LessEq, 5.0 * n);
        lp::LinExpr col;
        for (int j = 0; j < n; ++j)
            col.push_back({x[j][i], 1.0});
        model.addConstraint(col, lp::Relation::GreaterEq, 1.0 * n);
    }
    model.setObjective(objective, false);

    for (auto _ : state) {
        lp::SimplexSolver solver(model);
        const auto solution = solver.solve();
        if (solution.status != lp::SolveStatus::Optimal)
            state.SkipWithError("simplex failed");
        benchmark::DoNotOptimize(solution);
    }
    state.counters["vars"] = static_cast<double>(n) * n;
}
BENCHMARK(BM_SimplexDense)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void
BM_GraphTopoSort(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    util::Rng rng(11);
    graph::DiGraph g(n);
    for (graph::NodeId v = 1; v < n; ++v) {
        const int parents = static_cast<int>(rng.uniformInt(1, 3));
        for (int p = 0; p < parents; ++p) {
            g.addEdge(static_cast<graph::NodeId>(
                          rng.uniformInt(0, v - 1)),
                      v);
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(g.topologicalOrder());
    state.counters["edges"] = static_cast<double>(g.edgeCount());
}
BENCHMARK(BM_GraphTopoSort)->Arg(3000)->Arg(30000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Container race: old vs flat structures, ops/sec + allocations/op.
// ---------------------------------------------------------------------

constexpr double kMaxKey = 64.0;

/** One timed phase of a container mix. */
struct PhaseResult
{
    const char *phase;
    size_t ops = 0;
    double seconds = 0.0;
    uint64_t allocs = 0;

    double
    opsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
    }

    double
    allocsPerOp() const
    {
        return ops > 0 ? static_cast<double>(allocs) /
                             static_cast<double>(ops)
                       : 0.0;
    }
};

template <typename Fn>
PhaseResult
timedPhase(const char *phase, size_t ops, Fn &&fn)
{
    PhaseResult result;
    result.phase = phase;
    result.ops = ops;
    const uint64_t allocs_before = util::allocCount();
    const auto started = std::chrono::steady_clock::now();
    fn();
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    result.allocs = util::allocCount() - allocs_before;
    return result;
}

/**
 * Fill + churn mix shared by both key/value containers: @p n inserts,
 * then churn rounds of (erase one live entry, insert a fresh one,
 * best-fit query) — the packer's steady-state access pattern. The
 * checksum keeps the optimizer honest and doubles as an old-vs-new
 * agreement check.
 */
template <typename Kv>
std::pair<std::vector<PhaseResult>, double>
runKvMix(Kv &kv, size_t n, size_t churn)
{
    util::Rng rng(2718);
    std::vector<std::pair<double, uint32_t>> live;
    live.reserve(n);
    double checksum = 0.0;

    std::vector<PhaseResult> phases;
    phases.push_back(timedPhase("insert", n, [&] {
        for (size_t i = 0; i < n; ++i) {
            const double key =
                kMaxKey * static_cast<double>(rng.uniformInt(0, 4096)) /
                4096.0;
            const auto value = static_cast<uint32_t>(i);
            kv.insert(key, value);
            live.emplace_back(key, value);
        }
    }));

    // erase + insert + firstAtLeast per round: 3 container ops.
    phases.push_back(timedPhase("churn", churn * 3, [&] {
        for (size_t i = 0; i < churn; ++i) {
            const size_t pick = static_cast<size_t>(
                rng.uniformInt(0, live.size() - 1));
            kv.erase(live[pick].first, live[pick].second);
            const double key =
                kMaxKey * static_cast<double>(rng.uniformInt(0, 4096)) /
                4096.0;
            kv.insert(key, live[pick].second);
            live[pick].first = key;
            const auto hit = kv.firstAtLeast(rng.uniform(0.0, kMaxKey));
            if (hit)
                checksum += hit->first;
        }
    }));
    return {phases, checksum};
}

void
addRows(util::Table &table, exp::Report &report, const char *section,
        const char *container, size_t elements,
        const std::vector<PhaseResult> &phases)
{
    (void)report;
    (void)section;
    for (const PhaseResult &phase : phases) {
        table.row()
            .cell(container)
            .cell(elements)
            .cell(phase.phase)
            .cell(phase.opsPerSec() / 1e6, 3)
            .cell(phase.allocsPerOp(), 3);
    }
}

void
kvRace(util::Table &table, exp::Report &report)
{
    for (const size_t n : {1000ul, 10000ul, 100000ul, 1000000ul}) {
        const size_t churn = std::min<size_t>(n, 100000);

        util::SortedKv<double, uint32_t> sorted;
        const auto [sorted_phases, sorted_sum] =
            runKvMix(sorted, n, churn);
        addRows(table, report, "kv", "SortedKv(multiset)", n,
                sorted_phases);

        util::BucketedKv<uint32_t> bucketed;
        bucketed.configure(kMaxKey, n);
        const auto [bucketed_phases, bucketed_sum] =
            runKvMix(bucketed, n, churn);
        addRows(table, report, "kv", "BucketedKv(flat)", n,
                bucketed_phases);

        if (sorted_sum != bucketed_sum) {
            std::cerr << "warning: kv containers disagree at n=" << n
                      << " (" << sorted_sum << " vs " << bucketed_sum
                      << ")\n";
        }
    }
}

void
heapRace(util::Table &table, exp::Report &report)
{
    for (const size_t n : {1000ul, 10000ul, 100000ul, 1000000ul}) {
        const size_t churn = std::min<size_t>(n, 100000);
        util::Rng keys_rng(31337);
        std::vector<double> keys(n);
        for (double &key : keys)
            key = keys_rng.uniform(0.0, 1.0);

        // Old: std::set<pair<key, id>> — erase(begin) as pop.
        {
            std::set<std::pair<double, uint32_t>> queue;
            double checksum = 0.0;
            std::vector<PhaseResult> phases;
            phases.push_back(timedPhase("push", n, [&] {
                for (uint32_t id = 0; id < n; ++id)
                    queue.emplace(keys[id], id);
            }));
            // pop + re-push per round: 2 queue ops.
            util::Rng rng(8128);
            phases.push_back(timedPhase("pop+push", churn * 2, [&] {
                for (size_t i = 0; i < churn; ++i) {
                    const auto head = *queue.begin();
                    queue.erase(queue.begin());
                    checksum += head.first;
                    queue.emplace(head.first + rng.uniform(0.0, 1.0),
                                  head.second);
                }
            }));
            addRows(table, report, "heap", "std::set<pair>", n, phases);
            benchmark::DoNotOptimize(checksum);
        }

        // Flat: indexed 4-ary heap over the same dense ids.
        {
            util::IndexedDaryHeap<double> heap;
            heap.reset(n);
            double checksum = 0.0;
            std::vector<PhaseResult> phases;
            phases.push_back(timedPhase("push", n, [&] {
                for (uint32_t id = 0; id < n; ++id)
                    heap.push(id, keys[id]);
            }));
            util::Rng rng(8128);
            phases.push_back(timedPhase("pop+push", churn * 2, [&] {
                for (size_t i = 0; i < churn; ++i) {
                    const uint32_t id = heap.top();
                    const double key = heap.keyOf(id);
                    heap.pop();
                    checksum += key;
                    heap.push(id, key + rng.uniform(0.0, 1.0));
                }
            }));
            addRows(table, report, "heap", "IndexedDaryHeap", n,
                    phases);
            benchmark::DoNotOptimize(checksum);
        }
    }
}

int
microMain(int argc, char **argv)
{
    auto options = exp::parseOptions(argc, argv, "micro");
    std::cout << "\n=== Microbench | flat hot-path containers vs the "
                 "structures they replaced ===\n";
    if (!util::allocCounterActive())
        std::cout << "note: alloc counter inactive (sanitizer build); "
                     "allocs/op reads 0\n";

    exp::Report report("micro");
    report.meta("alloc_counter",
                static_cast<int64_t>(util::allocCounterActive() ? 1 : 0));

    util::Table kv_table(
        {"container", "elements", "phase", "Mops/s", "allocs/op"});
    kvRace(kv_table, report);
    kv_table.print(std::cout);
    report.addTable("sorted_kv_vs_bucketed_kv", kv_table);

    util::Table heap_table(
        {"container", "elements", "phase", "Mops/s", "allocs/op"});
    heapRace(heap_table, report);
    heap_table.print(std::cout);
    report.addTable("set_vs_indexed_heap", heap_table);

    std::cout << "Reading: the flat containers report ~0 allocs/op "
                 "(the trees pay one node allocation per insert). The "
                 "heap wins every row; BucketedKv wins once the tree "
                 "falls out of cache (1e5+ elements, the Fig 8(b) "
                 "regime) and roughly ties below.\n";
    exp::Options report_options = options;
    if (report.writeJsonFile(report_options.jsonPath))
        std::cout << "[report] JSON written to "
                  << report_options.jsonPath << "\n";
    if (report.writeCsvFile(report_options.csvPath))
        std::cout << "[report] CSV written to "
                  << report_options.csvPath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *gbench = std::getenv("MICRO_GBENCH");
    if (gbench && std::string(gbench) == "1") {
        benchmark::Initialize(&argc, argv);
        if (benchmark::ReportUnrecognizedArguments(argc, argv))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
    }
    return microMain(argc, argv);
}
