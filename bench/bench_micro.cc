/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot components behind the
 * Fig 8(b) planning-time numbers: the planner's two stages, the
 * packing scheduler, the simplex solver, and the graph traversals.
 * Complements bench_fig8b, which measures the end-to-end wall-clock
 * the paper reports.
 */

#include <benchmark/benchmark.h>

#include "adaptlab/environment.h"
#include "core/packing.h"
#include "core/planner.h"
#include "lp/simplex.h"
#include "sim/failure.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::core;

namespace {

adaptlab::Environment &
environmentForNodes(size_t nodes)
{
    static std::map<size_t, adaptlab::Environment> cache;
    auto it = cache.find(nodes);
    if (it == cache.end()) {
        adaptlab::EnvironmentConfig config;
        config.nodeCount = nodes;
        config.alibaba.appCount = 18;
        config.alibaba.sizeScale =
            std::max(0.01, static_cast<double>(nodes) / 100000.0);
        it = cache.emplace(nodes,
                           adaptlab::buildEnvironment(config)).first;
    }
    return it->second;
}

void
BM_PriorityEstimator(benchmark::State &state)
{
    const auto &env =
        environmentForNodes(static_cast<size_t>(state.range(0)));
    size_t services = 0;
    for (const auto &app : env.apps)
        services += app.services.size();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Planner::priorityEstimator(env.apps));
    }
    state.counters["services"] = static_cast<double>(services);
}
BENCHMARK(BM_PriorityEstimator)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void
BM_GlobalRank(benchmark::State &state)
{
    const auto &env =
        environmentForNodes(static_cast<size_t>(state.range(0)));
    const auto ranks = Planner::priorityEstimator(env.apps);
    Planner planner;
    for (auto _ : state) {
        FairObjective fair;
        benchmark::DoNotOptimize(planner.globalRank(
            env.apps, ranks, fair,
            env.cluster.healthyCapacity() * 0.5));
    }
}
BENCHMARK(BM_GlobalRank)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void
BM_PackAfterFailure(benchmark::State &state)
{
    const auto &env =
        environmentForNodes(static_cast<size_t>(state.range(0)));
    sim::ClusterState failed = env.cluster;
    sim::FailureInjector injector{util::Rng(5)};
    injector.failCapacityFraction(failed, 0.5);
    Planner planner;
    FairObjective fair;
    const GlobalRank rank =
        planner.plan(env.apps, fair, failed.healthyCapacity());
    PackingScheduler packer;
    for (auto _ : state) {
        benchmark::DoNotOptimize(packer.pack(env.apps, failed, rank));
    }
    state.counters["ranked"] = static_cast<double>(rank.size());
}
BENCHMARK(BM_PackAfterFailure)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void
BM_SimplexDense(benchmark::State &state)
{
    // A transportation-style LP: n suppliers x n consumers.
    const int n = static_cast<int>(state.range(0));
    util::Rng rng(9);
    lp::Model model;
    std::vector<std::vector<lp::VarId>> x(n,
                                          std::vector<lp::VarId>(n));
    lp::LinExpr objective;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            x[i][j] = model.addVar(0.0, 10.0);
            objective.push_back({x[i][j], rng.uniform(1.0, 5.0)});
        }
    }
    for (int i = 0; i < n; ++i) {
        lp::LinExpr row;
        for (int j = 0; j < n; ++j)
            row.push_back({x[i][j], 1.0});
        model.addConstraint(row, lp::Relation::LessEq, 5.0 * n);
        lp::LinExpr col;
        for (int j = 0; j < n; ++j)
            col.push_back({x[j][i], 1.0});
        model.addConstraint(col, lp::Relation::GreaterEq, 1.0 * n);
    }
    model.setObjective(objective, false);

    for (auto _ : state) {
        lp::SimplexSolver solver(model);
        const auto solution = solver.solve();
        if (solution.status != lp::SolveStatus::Optimal)
            state.SkipWithError("simplex failed");
        benchmark::DoNotOptimize(solution);
    }
    state.counters["vars"] = static_cast<double>(n) * n;
}
BENCHMARK(BM_SimplexDense)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void
BM_GraphTopoSort(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    util::Rng rng(11);
    graph::DiGraph g(n);
    for (graph::NodeId v = 1; v < n; ++v) {
        const int parents = static_cast<int>(rng.uniformInt(1, 3));
        for (int p = 0; p < parents; ++p) {
            g.addEdge(static_cast<graph::NodeId>(
                          rng.uniformInt(0, v - 1)),
                      v);
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(g.topologicalOrder());
    state.counters["edges"] = static_cast<double>(g.edgeCount());
}
BENCHMARK(BM_GraphTopoSort)->Arg(3000)->Arg(30000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
