#!/usr/bin/env bash
# The one-command CI gate: tier-1 build + full ctest (which includes
# the fuzz/recovery/serve/fig8b smoke gates), then the suite again under
# ASan and UBSan via scripts/sanitize.sh. Any failure — a test, a
# smoke-gate bound, a sanitizer report — fails the script.
#
#   scripts/ci.sh            # full gate
#   scripts/ci.sh --fast     # tier-1 + smokes only, skip sanitizers
#
# The TSan configuration (scripts/sanitize.sh thread) is not part of
# the default gate — it roughly triples runtime — but is the tree that
# exercises the exp pool sharding and the obs registry's lock-free
# counters (Obs.ConcurrentRegistryHammer); run it when touching either.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi

BUILD="${BUILD:-build}"
JOBS="$(nproc)"

step() { printf '\n==> %s\n' "$*"; }

step "tier-1 configure + build ($BUILD)"
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$JOBS"

step "tier-1 ctest (unit + property + corpus suites)"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" \
    -E '^(fuzz_smoke|constraint_fuzz_smoke|recovery_smoke|serve_smoke|fig8b_smoke|fig8b_1m_smoke|fuzz_long|constraint_fuzz_long|forecast_smoke|forecast_fuzz_long|soak_smoke|constrained_soak_smoke|soak_long)$'

# The smoke gates run serially and last so their bound assertions
# (fig8b op counters, Fig 6 recovery times, serving SLO/shed bounds,
# oracle cleanliness, soak violations, constraint-feasibility oracle
# cleanliness on the constrained generator) are easy to spot in the log.
step "smoke gates: fuzz, constraint_fuzz, recovery, serve, fig8b, soak, constrained_soak, forecast"
ctest --test-dir "$BUILD" --output-on-failure \
    -R '^(fuzz_smoke|constraint_fuzz_smoke|recovery_smoke|serve_smoke|fig8b_smoke|soak_smoke|constrained_soak_smoke|forecast_smoke)$'

# Million-node gate, opt-in: export FIG8B_1M=1 to run the 1M-node
# Phoenix cells + the 100k incremental-replan demo (~minutes, GBs of
# RSS). Left out of the default gate by design.
if [[ "${FIG8B_1M:-}" == "1" ]]; then
  step "million-node gate: fig8b_1m_smoke"
  FIG8B_1M=1 ctest --test-dir "$BUILD" --output-on-failure \
      -R '^fig8b_1m_smoke$'
fi

# Long chaos soak, opt-in: export SOAK_HOURS to a simulated-hour count
# (e.g. SOAK_HOURS=6) to run chaossoak on seeds 7,8,9 for that long.
# Violation artifacts (Perfetto trace window + shrunk repro) land in
# $BUILD/soak-repros. Without SOAK_HOURS the test self-skips (exit 77).
if [[ -n "${SOAK_HOURS:-}" ]]; then
  step "long soak gate: soak_long (SOAK_HOURS=${SOAK_HOURS})"
  SOAK_HOURS="$SOAK_HOURS" ctest --test-dir "$BUILD" --output-on-failure \
      -R '^soak_long$'
fi

# Long constrained fuzz, opt-in: export CONSTRAINT_FUZZ_CASES to a case
# count (e.g. CONSTRAINT_FUZZ_CASES=5000) to run the constrained
# generator + feasibility oracle for that many cases. Without it the
# test self-skips (exit 77). The `constraints` ctest label groups this
# with constraint_fuzz_smoke and constrained_soak_smoke:
# `ctest -L constraints` runs the whole topology battery.
if [[ -n "${CONSTRAINT_FUZZ_CASES:-}" ]]; then
  step "long constrained fuzz gate: constraint_fuzz_long (CONSTRAINT_FUZZ_CASES=${CONSTRAINT_FUZZ_CASES})"
  CONSTRAINT_FUZZ_CASES="$CONSTRAINT_FUZZ_CASES" ctest --test-dir "$BUILD" \
      --output-on-failure -R '^constraint_fuzz_long$'
fi

# Long forecast fuzz, opt-in: export FORECAST_FUZZ_CASES to a case
# count (e.g. FORECAST_FUZZ_CASES=20000) to drive the warm-cold-
# divergence oracle dimension at bulk. Without it the test self-skips
# (exit 77). The `forecast` ctest label groups this with
# forecast_smoke and the test_forecast suite: `ctest -L forecast`
# runs the whole predictive-degradation battery.
if [[ -n "${FORECAST_FUZZ_CASES:-}" ]]; then
  step "long forecast fuzz gate: forecast_fuzz_long (FORECAST_FUZZ_CASES=${FORECAST_FUZZ_CASES})"
  FORECAST_FUZZ_CASES="$FORECAST_FUZZ_CASES" ctest --test-dir "$BUILD" \
      --output-on-failure -R '^forecast_fuzz_long$'
fi

if [[ "$FAST" == "1" ]]; then
  step "--fast: skipping sanitizer builds"
  exit 0
fi

step "full suite under AddressSanitizer"
scripts/sanitize.sh address

step "full suite under UndefinedBehaviorSanitizer"
scripts/sanitize.sh undefined

step "CI gate passed"
