#!/usr/bin/env bash
# Build and test under a sanitizer via the PHOENIX_SANITIZE cache
# option. Each sanitizer gets its own build tree so switching between
# them (or back to the plain build/) never forces a full reconfigure.
#
#   scripts/sanitize.sh                 # address (ASan+LSan where available)
#   scripts/sanitize.sh thread          # TSan: exercises src/exp sharding
#   scripts/sanitize.sh undefined       # UBSan
#   scripts/sanitize.sh address -R fuzz # extra args forwarded to ctest
#
# The fuzz smoke gate runs as part of the suite, so every generated
# case's plan/pack/LP/kube paths execute under the sanitizer too.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-address}"
shift || true
BUILD="build-${SAN}"

case "$SAN" in
  address|thread|undefined) ;;
  *)
    echo "usage: scripts/sanitize.sh [address|thread|undefined] [ctest args...]" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPHOENIX_SANITIZE="$SAN"
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" "$@"
