#include "manifest.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace phoenix::kube {

using sim::Application;
using sim::Microservice;
using sim::MsId;

namespace {

std::string
strip(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

/** Split "key: value" (value may be empty). */
bool
splitKeyValue(const std::string &line, std::string &key,
              std::string &value)
{
    const size_t colon = line.find(':');
    if (colon == std::string::npos)
        return false;
    key = strip(line.substr(0, colon));
    value = strip(line.substr(colon + 1));
    // Drop trailing comments.
    const size_t hash = value.find('#');
    if (hash != std::string::npos)
        value = strip(value.substr(0, hash));
    return !key.empty();
}

/** Parse "[a, b, c]" into items. */
std::vector<std::string>
parseList(const std::string &value)
{
    std::vector<std::string> items;
    std::string inner = value;
    if (!inner.empty() && inner.front() == '[')
        inner = inner.substr(1);
    if (!inner.empty() && inner.back() == ']')
        inner.pop_back();
    std::istringstream in(inner);
    std::string item;
    while (std::getline(in, item, ',')) {
        const std::string cleaned = strip(item);
        if (!cleaned.empty())
            items.push_back(cleaned);
    }
    return items;
}

/** One service entry as raw fields; declaration lines remembered so
 * document-finalization errors point at the offending entry, not the
 * document separator. */
struct RawService
{
    std::string name;
    double cpu = 0.0;
    int criticality = sim::kDefaultCriticality;
    int replicas = 1;
    int quorum = 0;
    std::vector<std::string> upstream;
    bool sawCpu = false;
    size_t declaredAt = 0;
};

ManifestError
makeError(size_t line, std::string field, std::string message)
{
    ManifestError error;
    error.line = line;
    error.field = std::move(field);
    error.message = std::move(message);
    return error;
}

} // namespace

std::string
ManifestError::toString() const
{
    std::string out = message + " (line " + std::to_string(line);
    if (!field.empty())
        out += ", field '" + field + "'";
    out += ")";
    return out;
}

ManifestParse
parseManifestStructured(const std::string &text)
{
    ManifestParse result;

    // Per-document state.
    bool have_app = false;
    bool poisoned = false; // error seen: skip to the next document
    Application app;
    std::vector<RawService> services;
    bool in_services = false;
    std::set<std::string> app_names;

    auto reset_document = [&] {
        app = Application{};
        services.clear();
        have_app = false;
        in_services = false;
    };

    // Validate and commit the current document; returns the error
    // that rejected it, if any.
    auto finish_document =
        [&](size_t line_no) -> std::optional<ManifestError> {
        if (!have_app || poisoned)
            return std::nullopt; // empty or already-reported document
        if (services.empty()) {
            return makeError(line_no, "services",
                             "application '" + app.name +
                                 "' has no services");
        }
        std::map<std::string, MsId> by_name;
        for (MsId m = 0; m < services.size(); ++m) {
            const RawService &svc = services[m];
            if (svc.name.empty())
                return makeError(svc.declaredAt, "name",
                                 "service without a name");
            if (!svc.sawCpu || svc.cpu <= 0.0) {
                return makeError(svc.declaredAt, "cpu",
                                 "service '" + svc.name +
                                     "' needs a positive cpu");
            }
            if (by_name.count(svc.name)) {
                return makeError(svc.declaredAt, "name",
                                 "duplicate service '" + svc.name +
                                     "'");
            }
            by_name[svc.name] = m;
        }
        app.services.clear();
        bool any_edges = false;
        for (MsId m = 0; m < services.size(); ++m) {
            Microservice ms;
            ms.id = m;
            ms.name = services[m].name;
            ms.cpu = services[m].cpu;
            ms.criticality = services[m].criticality;
            ms.replicas = services[m].replicas;
            ms.quorum = services[m].quorum;
            app.services.push_back(std::move(ms));
            any_edges |= !services[m].upstream.empty();
        }
        if (any_edges) {
            app.hasDependencyGraph = true;
            app.dag = graph::DiGraph(services.size());
            for (MsId m = 0; m < services.size(); ++m) {
                for (const auto &caller : services[m].upstream) {
                    auto it = by_name.find(caller);
                    if (it == by_name.end()) {
                        return makeError(
                            services[m].declaredAt, "upstream",
                            "unknown upstream '" + caller +
                                "' of service '" + services[m].name +
                                "'");
                    }
                    app.dag.addEdge(it->second, m);
                }
            }
            if (!app.dag.isAcyclic()) {
                return makeError(line_no, "upstream",
                                 "dependency graph has a cycle");
            }
        }
        if (!app_names.insert(app.name).second) {
            return makeError(line_no, "application",
                             "duplicate application '" + app.name +
                                 "'");
        }
        app.id = static_cast<sim::AppId>(result.apps.size());
        result.apps.push_back(std::move(app));
        reset_document();
        return std::nullopt;
    };

    // Record @p error and skip the rest of the current document.
    auto reject = [&](ManifestError error) {
        result.errors.push_back(std::move(error));
        reset_document();
        poisoned = true;
    };

    std::istringstream in(text);
    std::string raw;
    size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string trimmed = strip(raw);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        if (trimmed == "---") {
            if (auto error = finish_document(line_no))
                reject(std::move(*error));
            poisoned = false;
            continue;
        }

        // Indentation decides context: top-level keys start at column
        // 0; service entries are indented.
        const bool top_level =
            !std::isspace(static_cast<unsigned char>(raw[0]));
        if (top_level) {
            std::string key;
            std::string value;
            if (!splitKeyValue(trimmed, key, value)) {
                if (!poisoned)
                    reject(makeError(line_no, "",
                                     "expected 'key: value'"));
                continue;
            }
            if (key == "application") {
                // Implicit document boundary: a new application key
                // finishes the previous document (and clears any
                // poison — errors never leak across documents).
                if (have_app && !services.empty()) {
                    if (auto error = finish_document(line_no))
                        reject(std::move(*error));
                }
                poisoned = false;
                reset_document();
                have_app = true;
                app.name = value;
                continue;
            }
            if (poisoned)
                continue;
            try {
                if (key == "price") {
                    app.pricePerUnit = std::stod(value);
                } else if (key == "phoenix") {
                    app.phoenixEnabled = value == "enabled";
                } else if (key == "services") {
                    in_services = true;
                } else {
                    reject(makeError(line_no, key,
                                     "unknown key '" + key + "'"));
                }
            } catch (const std::exception &) {
                reject(makeError(line_no, key,
                                 "bad numeric value '" + value + "'"));
            }
            continue;
        }

        if (poisoned)
            continue;
        if (!in_services) {
            reject(makeError(line_no, "",
                             "indented line outside services"));
            continue;
        }

        std::string body = trimmed;
        if (body.rfind("- ", 0) == 0) {
            services.emplace_back();
            services.back().declaredAt = line_no;
            body = strip(body.substr(2));
        }
        if (services.empty()) {
            reject(makeError(line_no, "",
                             "service field before first entry"));
            continue;
        }

        std::string key;
        std::string value;
        if (!splitKeyValue(body, key, value)) {
            reject(makeError(line_no, "", "expected 'key: value'"));
            continue;
        }
        RawService &svc = services.back();
        try {
            if (key == "name") {
                svc.name = value;
            } else if (key == "cpu") {
                svc.cpu = std::stod(value);
                svc.sawCpu = true;
            } else if (key == "criticality") {
                svc.criticality = std::stoi(value);
                if (svc.criticality < 1) {
                    reject(makeError(line_no, key,
                                     "criticality must be >= 1"));
                }
            } else if (key == "replicas") {
                svc.replicas = std::stoi(value);
                if (svc.replicas < 1) {
                    reject(makeError(line_no, key,
                                     "replicas must be >= 1"));
                }
            } else if (key == "quorum") {
                svc.quorum = std::stoi(value);
            } else if (key == "upstream") {
                svc.upstream = parseList(value);
            } else {
                reject(makeError(line_no, key,
                                 "unknown service key '" + key + "'"));
            }
        } catch (const std::exception &) {
            reject(makeError(line_no, key,
                             "bad numeric value '" + value + "'"));
        }
    }

    if (auto error = finish_document(line_no))
        reject(std::move(*error));
    return result;
}

std::optional<std::vector<Application>>
parseManifest(const std::string &text, std::string *error)
{
    ManifestParse parsed = parseManifestStructured(text);
    if (!parsed.ok()) {
        if (error)
            *error = parsed.errors.front().toString();
        return std::nullopt;
    }
    return std::move(parsed.apps);
}

std::optional<std::vector<Application>>
loadManifestFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseManifest(buffer.str(), error);
}

} // namespace phoenix::kube
