#include "manifest.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace phoenix::kube {

using sim::Application;
using sim::Microservice;
using sim::MsId;

namespace {

std::string
strip(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

/** Split "key: value" (value may be empty). */
bool
splitKeyValue(const std::string &line, std::string &key,
              std::string &value)
{
    const size_t colon = line.find(':');
    if (colon == std::string::npos)
        return false;
    key = strip(line.substr(0, colon));
    value = strip(line.substr(colon + 1));
    // Drop trailing comments.
    const size_t hash = value.find('#');
    if (hash != std::string::npos)
        value = strip(value.substr(0, hash));
    return !key.empty();
}

/** Parse "[a, b, c]" into items. */
std::vector<std::string>
parseList(const std::string &value)
{
    std::vector<std::string> items;
    std::string inner = value;
    if (!inner.empty() && inner.front() == '[')
        inner = inner.substr(1);
    if (!inner.empty() && inner.back() == ']')
        inner.pop_back();
    std::istringstream in(inner);
    std::string item;
    while (std::getline(in, item, ',')) {
        const std::string cleaned = strip(item);
        if (!cleaned.empty())
            items.push_back(cleaned);
    }
    return items;
}

/** One service entry as raw fields. */
struct RawService
{
    std::string name;
    double cpu = 0.0;
    int criticality = sim::kDefaultCriticality;
    int replicas = 1;
    int quorum = 0;
    std::vector<std::string> upstream;
    bool sawCpu = false;
};

} // namespace

std::optional<std::vector<Application>>
parseManifest(const std::string &text, std::string *error)
{
    auto fail = [&](size_t line_no, const std::string &message)
        -> std::optional<std::vector<Application>> {
        if (error) {
            *error = message + " (line " + std::to_string(line_no) +
                     ")";
        }
        return std::nullopt;
    };

    std::vector<Application> apps;

    // Per-document state.
    bool have_app = false;
    Application app;
    std::vector<RawService> services;
    bool in_services = false;

    auto finish_document =
        [&](size_t line_no) -> std::optional<std::string> {
        if (!have_app)
            return std::nullopt; // empty document
        if (services.empty()) {
            return "application '" + app.name + "' has no services";
        }
        std::map<std::string, MsId> by_name;
        for (MsId m = 0; m < services.size(); ++m) {
            if (services[m].name.empty())
                return "service without a name";
            if (!services[m].sawCpu || services[m].cpu <= 0.0) {
                return "service '" + services[m].name +
                       "' needs a positive cpu";
            }
            if (by_name.count(services[m].name))
                return "duplicate service '" + services[m].name + "'";
            by_name[services[m].name] = m;
        }
        app.services.clear();
        bool any_edges = false;
        for (MsId m = 0; m < services.size(); ++m) {
            Microservice ms;
            ms.id = m;
            ms.name = services[m].name;
            ms.cpu = services[m].cpu;
            ms.criticality = services[m].criticality;
            ms.replicas = services[m].replicas;
            ms.quorum = services[m].quorum;
            app.services.push_back(std::move(ms));
            any_edges |= !services[m].upstream.empty();
        }
        if (any_edges) {
            app.hasDependencyGraph = true;
            app.dag = graph::DiGraph(services.size());
            for (MsId m = 0; m < services.size(); ++m) {
                for (const auto &caller : services[m].upstream) {
                    auto it = by_name.find(caller);
                    if (it == by_name.end()) {
                        return "unknown upstream '" + caller +
                               "' of service '" + services[m].name +
                               "'";
                    }
                    app.dag.addEdge(it->second, m);
                }
            }
            if (!app.dag.isAcyclic())
                return "dependency graph has a cycle";
        }
        app.id = static_cast<sim::AppId>(apps.size());
        apps.push_back(std::move(app));
        app = Application{};
        services.clear();
        have_app = false;
        in_services = false;
        (void)line_no;
        return std::nullopt;
    };

    std::istringstream in(text);
    std::string raw;
    size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string trimmed = strip(raw);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        if (trimmed == "---") {
            if (auto message = finish_document(line_no))
                return fail(line_no, *message);
            continue;
        }

        // Indentation decides context: top-level keys start at column
        // 0; service entries are indented.
        const bool top_level =
            !std::isspace(static_cast<unsigned char>(raw[0]));
        if (top_level) {
            std::string key;
            std::string value;
            if (!splitKeyValue(trimmed, key, value))
                return fail(line_no, "expected 'key: value'");
            if (key == "application") {
                if (have_app && !services.empty()) {
                    if (auto message = finish_document(line_no))
                        return fail(line_no, *message);
                }
                have_app = true;
                app.name = value;
                in_services = false;
            } else if (key == "price") {
                app.pricePerUnit = std::stod(value);
            } else if (key == "phoenix") {
                app.phoenixEnabled = value == "enabled";
            } else if (key == "services") {
                in_services = true;
            } else {
                return fail(line_no, "unknown key '" + key + "'");
            }
            continue;
        }

        if (!in_services)
            return fail(line_no, "indented line outside services");

        std::string body = trimmed;
        if (body.rfind("- ", 0) == 0) {
            services.emplace_back();
            body = strip(body.substr(2));
        }
        if (services.empty())
            return fail(line_no, "service field before first entry");

        std::string key;
        std::string value;
        if (!splitKeyValue(body, key, value))
            return fail(line_no, "expected 'key: value'");
        RawService &svc = services.back();
        try {
            if (key == "name") {
                svc.name = value;
            } else if (key == "cpu") {
                svc.cpu = std::stod(value);
                svc.sawCpu = true;
            } else if (key == "criticality") {
                svc.criticality = std::stoi(value);
                if (svc.criticality < 1)
                    return fail(line_no, "criticality must be >= 1");
            } else if (key == "replicas") {
                svc.replicas = std::stoi(value);
                if (svc.replicas < 1)
                    return fail(line_no, "replicas must be >= 1");
            } else if (key == "quorum") {
                svc.quorum = std::stoi(value);
            } else if (key == "upstream") {
                svc.upstream = parseList(value);
            } else {
                return fail(line_no,
                            "unknown service key '" + key + "'");
            }
        } catch (const std::exception &) {
            return fail(line_no, "bad numeric value '" + value + "'");
        }
    }

    if (auto message = finish_document(line_no))
        return fail(line_no, *message);
    return apps;
}

std::optional<std::vector<Application>>
loadManifestFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseManifest(buffer.str(), error);
}

} // namespace phoenix::kube
