#include "manifest.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace phoenix::kube {

using sim::Application;
using sim::Microservice;
using sim::MsId;

namespace {

std::string
strip(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

/** Split "key: value" (value may be empty). */
bool
splitKeyValue(const std::string &line, std::string &key,
              std::string &value)
{
    const size_t colon = line.find(':');
    if (colon == std::string::npos)
        return false;
    key = strip(line.substr(0, colon));
    value = strip(line.substr(colon + 1));
    // Drop trailing comments.
    const size_t hash = value.find('#');
    if (hash != std::string::npos)
        value = strip(value.substr(0, hash));
    return !key.empty();
}

/** Parse "[a, b, c]" into items. */
std::vector<std::string>
parseList(const std::string &value)
{
    std::vector<std::string> items;
    std::string inner = value;
    if (!inner.empty() && inner.front() == '[')
        inner = inner.substr(1);
    if (!inner.empty() && inner.back() == ']')
        inner.pop_back();
    std::istringstream in(inner);
    std::string item;
    while (std::getline(in, item, ',')) {
        const std::string cleaned = strip(item);
        if (!cleaned.empty())
            items.push_back(cleaned);
    }
    return items;
}

/** One service entry as raw fields; declaration lines remembered so
 * document-finalization errors point at the offending entry, not the
 * document separator. */
struct RawService
{
    std::string name;
    double cpu = 0.0;
    int criticality = sim::kDefaultCriticality;
    int replicas = 1;
    int quorum = 0;
    std::vector<std::string> upstream;
    bool sawCpu = false;
    size_t declaredAt = 0;
    // Placement policy (topology-aware packing).
    int group = -1;
    int maxPerNode = 0;
    int maxPerZone = 0;
    int minZoneSpread = 0;
    int pdbMaxUnavailable = -1;
    size_t spreadAt = 0; //!< line of the minZoneSpread key
    size_t pdbAt = 0;    //!< line of the pdbMaxUnavailable key
};

/** One anti-affinity group entry under `groups:`. */
struct RawGroup
{
    int id = -1;
    int maxPerNode = 0;
    int maxPerZone = 0;
    bool sawId = false;
    size_t declaredAt = 0;
};

/** One node spec entry under a topology document's `nodes:`. */
struct RawNodeSpec
{
    int count = 1;
    double cpus = 0.0;
    std::string zone;
    bool sawCpus = false;
    size_t declaredAt = 0;
    size_t zoneAt = 0; //!< line of the zone key
};

ManifestError
makeError(size_t line, std::string field, std::string message)
{
    ManifestError error;
    error.line = line;
    error.field = std::move(field);
    error.message = std::move(message);
    return error;
}

} // namespace

std::string
ManifestError::toString() const
{
    std::string out = message + " (line " + std::to_string(line);
    if (!field.empty())
        out += ", field '" + field + "'";
    out += ")";
    return out;
}

ManifestParse
parseManifestStructured(const std::string &text)
{
    ManifestParse result;

    // Per-document state. A document is either an application or the
    // (at most one) topology declaration.
    enum class Section { None, Services, Groups, Nodes };
    bool have_app = false;
    bool have_topo = false;
    bool topo_committed = false;
    bool poisoned = false; // error seen: skip to the next document
    Application app;
    std::vector<RawService> services;
    std::vector<RawGroup> groups;
    std::vector<RawNodeSpec> topo_nodes;
    Topology topo;
    Section section = Section::None;
    std::set<std::string> app_names;
    // minZoneSpread is validated against the manifest-global zone
    // count after every document parsed (topology may come last):
    // (committed app index, service name, line, spread).
    struct SpreadCheck
    {
        size_t app;
        std::string service;
        size_t line;
        int spread;
    };
    std::vector<SpreadCheck> spread_checks;

    auto reset_document = [&] {
        app = Application{};
        services.clear();
        groups.clear();
        topo_nodes.clear();
        topo = Topology{};
        have_app = false;
        have_topo = false;
        section = Section::None;
    };

    // Validate and commit the current document; returns the error
    // that rejected it, if any.
    auto finish_document =
        [&](size_t line_no) -> std::optional<ManifestError> {
        if (poisoned || (!have_app && !have_topo))
            return std::nullopt; // empty or already-reported document
        if (have_topo) {
            if (topo.zones.empty()) {
                return makeError(line_no, "zones",
                                 "topology '" + topo.name +
                                     "' declares no zones");
            }
            for (const RawNodeSpec &spec : topo_nodes) {
                if (!spec.sawCpus || spec.cpus <= 0.0) {
                    return makeError(spec.declaredAt, "cpus",
                                     "node spec needs a positive cpus");
                }
                if (spec.count < 1) {
                    return makeError(spec.declaredAt, "count",
                                     "node count must be >= 1");
                }
                NodeSpec out;
                out.count = spec.count;
                out.cpus = spec.cpus;
                if (!spec.zone.empty()) {
                    const auto it =
                        std::find(topo.zones.begin(), topo.zones.end(),
                                  spec.zone);
                    if (it == topo.zones.end()) {
                        return makeError(
                            spec.zoneAt ? spec.zoneAt : spec.declaredAt,
                            "zone",
                            "unknown zone '" + spec.zone + "'");
                    }
                    out.zone = static_cast<uint32_t>(
                        it - topo.zones.begin());
                }
                topo.nodes.push_back(out);
            }
            if (topo_committed) {
                return makeError(line_no, "topology",
                                 "duplicate topology document");
            }
            topo_committed = true;
            result.topology = std::move(topo);
            reset_document();
            return std::nullopt;
        }
        if (services.empty()) {
            return makeError(line_no, "services",
                             "application '" + app.name +
                                 "' has no services");
        }
        std::map<std::string, MsId> by_name;
        for (MsId m = 0; m < services.size(); ++m) {
            const RawService &svc = services[m];
            if (svc.name.empty())
                return makeError(svc.declaredAt, "name",
                                 "service without a name");
            if (!svc.sawCpu || svc.cpu <= 0.0) {
                return makeError(svc.declaredAt, "cpu",
                                 "service '" + svc.name +
                                     "' needs a positive cpu");
            }
            if (by_name.count(svc.name)) {
                return makeError(svc.declaredAt, "name",
                                 "duplicate service '" + svc.name +
                                     "'");
            }
            by_name[svc.name] = m;
        }
        app.placementGroups.clear();
        for (const RawGroup &group : groups) {
            if (!group.sawId || group.id < 0) {
                return makeError(group.declaredAt, "id",
                                 "group needs a non-negative id");
            }
            for (const auto &other : app.placementGroups) {
                if (other.id == group.id) {
                    return makeError(group.declaredAt, "id",
                                     "duplicate group id " +
                                         std::to_string(group.id));
                }
            }
            sim::PlacementGroup out;
            out.id = group.id;
            out.maxPerNode = group.maxPerNode;
            out.maxPerZone = group.maxPerZone;
            app.placementGroups.push_back(out);
        }
        app.services.clear();
        bool any_edges = false;
        for (MsId m = 0; m < services.size(); ++m) {
            const RawService &svc = services[m];
            if (svc.pdbMaxUnavailable > svc.replicas) {
                return makeError(
                    svc.pdbAt ? svc.pdbAt : svc.declaredAt,
                    "pdbMaxUnavailable",
                    "pdbMaxUnavailable " +
                        std::to_string(svc.pdbMaxUnavailable) +
                        " exceeds replicas " +
                        std::to_string(svc.replicas) + " of service '" +
                        svc.name + "'");
            }
            Microservice ms;
            ms.id = m;
            ms.name = svc.name;
            ms.cpu = svc.cpu;
            ms.criticality = svc.criticality;
            ms.replicas = svc.replicas;
            ms.quorum = svc.quorum;
            ms.antiAffinityGroup = svc.group;
            ms.maxPerNode = svc.maxPerNode;
            ms.maxPerZone = svc.maxPerZone;
            ms.minZoneSpread = svc.minZoneSpread;
            ms.pdbMaxUnavailable = svc.pdbMaxUnavailable;
            app.services.push_back(std::move(ms));
            any_edges |= !services[m].upstream.empty();
        }
        if (any_edges) {
            app.hasDependencyGraph = true;
            app.dag = graph::DiGraph(services.size());
            for (MsId m = 0; m < services.size(); ++m) {
                for (const auto &caller : services[m].upstream) {
                    auto it = by_name.find(caller);
                    if (it == by_name.end()) {
                        return makeError(
                            services[m].declaredAt, "upstream",
                            "unknown upstream '" + caller +
                                "' of service '" + services[m].name +
                                "'");
                    }
                    app.dag.addEdge(it->second, m);
                }
            }
            if (!app.dag.isAcyclic()) {
                return makeError(line_no, "upstream",
                                 "dependency graph has a cycle");
            }
        }
        if (!app_names.insert(app.name).second) {
            return makeError(line_no, "application",
                             "duplicate application '" + app.name +
                                 "'");
        }
        app.id = static_cast<sim::AppId>(result.apps.size());
        for (MsId m = 0; m < services.size(); ++m) {
            const RawService &svc = services[m];
            if (svc.minZoneSpread > 1) {
                spread_checks.push_back(
                    {result.apps.size(), svc.name,
                     svc.spreadAt ? svc.spreadAt : svc.declaredAt,
                     svc.minZoneSpread});
            }
        }
        result.apps.push_back(std::move(app));
        reset_document();
        return std::nullopt;
    };

    // Record @p error and skip the rest of the current document.
    auto reject = [&](ManifestError error) {
        result.errors.push_back(std::move(error));
        reset_document();
        poisoned = true;
    };

    std::istringstream in(text);
    std::string raw;
    size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string trimmed = strip(raw);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        if (trimmed == "---") {
            if (auto error = finish_document(line_no))
                reject(std::move(*error));
            poisoned = false;
            continue;
        }

        // Indentation decides context: top-level keys start at column
        // 0; service entries are indented.
        const bool top_level =
            !std::isspace(static_cast<unsigned char>(raw[0]));
        if (top_level) {
            std::string key;
            std::string value;
            if (!splitKeyValue(trimmed, key, value)) {
                if (!poisoned)
                    reject(makeError(line_no, "",
                                     "expected 'key: value'"));
                continue;
            }
            if (key == "application" || key == "topology") {
                // Implicit document boundary: a new application (or
                // topology) key finishes the previous document (and
                // clears any poison — errors never leak across
                // documents).
                if ((have_app && !services.empty()) || have_topo) {
                    if (auto error = finish_document(line_no))
                        reject(std::move(*error));
                }
                poisoned = false;
                reset_document();
                if (key == "application") {
                    have_app = true;
                    app.name = value;
                } else {
                    have_topo = true;
                    topo.name = value;
                }
                continue;
            }
            if (poisoned)
                continue;
            try {
                if (have_topo) {
                    if (key == "zones") {
                        topo.zones = parseList(value);
                    } else if (key == "nodes") {
                        section = Section::Nodes;
                    } else {
                        reject(makeError(
                            line_no, key,
                            "unknown topology key '" + key + "'"));
                    }
                } else if (key == "price") {
                    app.pricePerUnit = std::stod(value);
                } else if (key == "phoenix") {
                    app.phoenixEnabled = value == "enabled";
                } else if (key == "services") {
                    section = Section::Services;
                } else if (key == "groups") {
                    section = Section::Groups;
                } else {
                    reject(makeError(line_no, key,
                                     "unknown key '" + key + "'"));
                }
            } catch (const std::exception &) {
                reject(makeError(line_no, key,
                                 "bad numeric value '" + value + "'"));
            }
            continue;
        }

        if (poisoned)
            continue;
        if (section == Section::None) {
            reject(makeError(line_no, "",
                             "indented line outside a section"));
            continue;
        }

        std::string body = trimmed;
        const bool new_entry = body.rfind("- ", 0) == 0;
        if (new_entry) {
            switch (section) {
              case Section::Services:
                services.emplace_back();
                services.back().declaredAt = line_no;
                break;
              case Section::Groups:
                groups.emplace_back();
                groups.back().declaredAt = line_no;
                break;
              case Section::Nodes:
                topo_nodes.emplace_back();
                topo_nodes.back().declaredAt = line_no;
                break;
              case Section::None:
                break;
            }
            body = strip(body.substr(2));
        }
        const bool no_entry =
            (section == Section::Services && services.empty()) ||
            (section == Section::Groups && groups.empty()) ||
            (section == Section::Nodes && topo_nodes.empty());
        if (no_entry) {
            reject(makeError(line_no, "",
                             "entry field before first entry"));
            continue;
        }

        std::string key;
        std::string value;
        if (!splitKeyValue(body, key, value)) {
            reject(makeError(line_no, "", "expected 'key: value'"));
            continue;
        }
        try {
            if (section == Section::Groups) {
                RawGroup &group = groups.back();
                if (key == "id") {
                    group.id = std::stoi(value);
                    group.sawId = true;
                } else if (key == "maxPerNode") {
                    group.maxPerNode = std::stoi(value);
                } else if (key == "maxPerZone") {
                    group.maxPerZone = std::stoi(value);
                } else {
                    reject(makeError(line_no, key,
                                     "unknown group key '" + key +
                                         "'"));
                }
                continue;
            }
            if (section == Section::Nodes) {
                RawNodeSpec &spec = topo_nodes.back();
                if (key == "count") {
                    spec.count = std::stoi(value);
                } else if (key == "cpus") {
                    spec.cpus = std::stod(value);
                    spec.sawCpus = true;
                } else if (key == "zone") {
                    spec.zone = value;
                    spec.zoneAt = line_no;
                } else {
                    reject(makeError(line_no, key,
                                     "unknown node key '" + key +
                                         "'"));
                }
                continue;
            }
            RawService &svc = services.back();
            if (key == "name") {
                svc.name = value;
            } else if (key == "cpu") {
                svc.cpu = std::stod(value);
                svc.sawCpu = true;
            } else if (key == "criticality") {
                svc.criticality = std::stoi(value);
                if (svc.criticality < 1) {
                    reject(makeError(line_no, key,
                                     "criticality must be >= 1"));
                }
            } else if (key == "replicas") {
                svc.replicas = std::stoi(value);
                if (svc.replicas < 1) {
                    reject(makeError(line_no, key,
                                     "replicas must be >= 1"));
                }
            } else if (key == "quorum") {
                svc.quorum = std::stoi(value);
            } else if (key == "upstream") {
                svc.upstream = parseList(value);
            } else if (key == "group") {
                svc.group = std::stoi(value);
                if (svc.group < 0) {
                    reject(makeError(line_no, key,
                                     "group must be >= 0"));
                }
            } else if (key == "maxPerNode") {
                svc.maxPerNode = std::stoi(value);
                if (svc.maxPerNode < 0) {
                    reject(makeError(line_no, key,
                                     "maxPerNode must be >= 0"));
                }
            } else if (key == "maxPerZone") {
                svc.maxPerZone = std::stoi(value);
                if (svc.maxPerZone < 0) {
                    reject(makeError(line_no, key,
                                     "maxPerZone must be >= 0"));
                }
            } else if (key == "minZoneSpread") {
                svc.minZoneSpread = std::stoi(value);
                svc.spreadAt = line_no;
                if (svc.minZoneSpread < 0) {
                    reject(makeError(line_no, key,
                                     "minZoneSpread must be >= 0"));
                }
            } else if (key == "pdbMaxUnavailable") {
                svc.pdbMaxUnavailable = std::stoi(value);
                svc.pdbAt = line_no;
                if (svc.pdbMaxUnavailable < 0) {
                    reject(makeError(
                        line_no, key,
                        "pdbMaxUnavailable must be >= 0"));
                }
            } else {
                reject(makeError(line_no, key,
                                 "unknown service key '" + key + "'"));
            }
        } catch (const std::exception &) {
            reject(makeError(line_no, key,
                             "bad numeric value '" + value + "'"));
        }
    }

    if (auto error = finish_document(line_no))
        reject(std::move(*error));

    // minZoneSpread is a manifest-global constraint: it can only be
    // checked against the topology's zone count, and the topology
    // document may come last. Apps asking to spread wider than the
    // declared topology are rejected here (with no topology document
    // the check is skipped — the simulator synthesizes zones).
    if (!result.topology.zones.empty() && !spread_checks.empty()) {
        const int zone_count =
            static_cast<int>(result.topology.zones.size());
        std::set<size_t> rejected;
        for (const SpreadCheck &check : spread_checks) {
            if (check.spread <= zone_count)
                continue;
            result.errors.push_back(makeError(
                check.line, "minZoneSpread",
                "minZoneSpread " + std::to_string(check.spread) +
                    " of service '" + check.service +
                    "' exceeds zone count " +
                    std::to_string(zone_count)));
            rejected.insert(check.app);
        }
        if (!rejected.empty()) {
            std::vector<Application> kept;
            kept.reserve(result.apps.size());
            for (size_t i = 0; i < result.apps.size(); ++i) {
                if (rejected.count(i))
                    continue;
                kept.push_back(std::move(result.apps[i]));
                kept.back().id =
                    static_cast<sim::AppId>(kept.size() - 1);
            }
            result.apps = std::move(kept);
        }
    }
    return result;
}

std::optional<std::vector<Application>>
parseManifest(const std::string &text, std::string *error)
{
    ManifestParse parsed = parseManifestStructured(text);
    if (!parsed.ok()) {
        if (error)
            *error = parsed.errors.front().toString();
        return std::nullopt;
    }
    return std::move(parsed.apps);
}

namespace {

/** Shortest decimal that parses back to exactly @p value. */
std::string
fmtDouble(double value)
{
    for (int precision = 6; precision <= 17; ++precision) {
        std::ostringstream out;
        out.precision(precision);
        out << value;
        if (std::stod(out.str()) == value)
            return out.str();
    }
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

} // namespace

std::string
renderManifest(const std::vector<Application> &apps,
               const Topology &topology)
{
    std::ostringstream out;
    bool first = true;
    if (!topology.empty()) {
        out << "topology: "
            << (topology.name.empty() ? "cluster" : topology.name)
            << "\n";
        out << "zones: [";
        for (size_t z = 0; z < topology.zones.size(); ++z) {
            if (z)
                out << ", ";
            out << topology.zones[z];
        }
        out << "]\n";
        if (!topology.nodes.empty()) {
            out << "nodes:\n";
            for (const NodeSpec &spec : topology.nodes) {
                out << "  - count: " << spec.count << "\n";
                out << "    cpus: " << fmtDouble(spec.cpus) << "\n";
                if (spec.zone < topology.zones.size())
                    out << "    zone: " << topology.zones[spec.zone]
                        << "\n";
            }
        }
        first = false;
    }
    for (const Application &app : apps) {
        if (!first)
            out << "---\n";
        first = false;
        out << "application: " << app.name << "\n";
        if (app.pricePerUnit != 1.0)
            out << "price: " << fmtDouble(app.pricePerUnit) << "\n";
        if (!app.phoenixEnabled)
            out << "phoenix: disabled\n";
        if (!app.placementGroups.empty()) {
            out << "groups:\n";
            for (const sim::PlacementGroup &group :
                 app.placementGroups) {
                out << "  - id: " << group.id << "\n";
                if (group.maxPerNode > 0)
                    out << "    maxPerNode: " << group.maxPerNode
                        << "\n";
                if (group.maxPerZone > 0)
                    out << "    maxPerZone: " << group.maxPerZone
                        << "\n";
            }
        }
        out << "services:\n";
        for (const Microservice &ms : app.services) {
            out << "  - name: " << ms.name << "\n";
            out << "    cpu: " << fmtDouble(ms.cpu) << "\n";
            if (ms.criticality != sim::kDefaultCriticality)
                out << "    criticality: " << ms.criticality << "\n";
            if (ms.replicas != 1)
                out << "    replicas: " << ms.replicas << "\n";
            if (ms.quorum != 0)
                out << "    quorum: " << ms.quorum << "\n";
            if (ms.antiAffinityGroup >= 0)
                out << "    group: " << ms.antiAffinityGroup << "\n";
            if (ms.maxPerNode > 0)
                out << "    maxPerNode: " << ms.maxPerNode << "\n";
            if (ms.maxPerZone > 0)
                out << "    maxPerZone: " << ms.maxPerZone << "\n";
            if (ms.minZoneSpread > 0)
                out << "    minZoneSpread: " << ms.minZoneSpread
                    << "\n";
            if (ms.pdbMaxUnavailable >= 0)
                out << "    pdbMaxUnavailable: " << ms.pdbMaxUnavailable
                    << "\n";
            if (app.hasDependencyGraph) {
                const auto &callers =
                    app.dag.predecessors(ms.id);
                if (!callers.empty()) {
                    out << "    upstream: [";
                    for (size_t c = 0; c < callers.size(); ++c) {
                        if (c)
                            out << ", ";
                        out << app.services[callers[c]].name;
                    }
                    out << "]\n";
                }
            }
        }
    }
    return out.str();
}

std::optional<std::vector<Application>>
loadManifestFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseManifest(buffer.str(), error);
}

} // namespace phoenix::kube
