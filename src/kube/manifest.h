/**
 * @file
 * Deployment manifest loader.
 *
 * Phoenix consumes deployment specifications (YAML in the paper, §5)
 * to learn each application's containers, resource requests,
 * criticality labels and call dependencies. This is the equivalent
 * ingestion path: a small indentation-based manifest dialect covering
 * exactly what resilience management needs.
 *
 * ```yaml
 * application: overleaf
 * price: 2.0
 * phoenix: enabled
 * services:
 *   - name: web
 *     cpu: 2.0
 *     criticality: 1
 *     replicas: 2
 *   - name: chat
 *     cpu: 0.5
 *     criticality: 5        # optional; untagged defaults to C1
 *     upstream: [web]       # callers of this service (DG edges)
 * ```
 *
 * Multiple applications may appear in one document separated by
 * `---` lines, as in multi-document YAML.
 *
 * Two entry points: parseManifest is all-or-nothing (nullopt on the
 * first error — the original API), parseManifestStructured recovers
 * per document and reports every error with its line and the field
 * being parsed, so a long-running ingester (phoenixd) can accept the
 * well-formed applications and surface exactly what it rejected.
 */

#ifndef PHOENIX_KUBE_MANIFEST_H
#define PHOENIX_KUBE_MANIFEST_H

#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace phoenix::kube {

/** One structured parse error: where, which field, what. */
struct ManifestError
{
    /** 1-based line in the manifest text. */
    size_t line = 0;
    /** The key being parsed when the error fired ("cpu",
     * "criticality", "application", ...); empty for structural
     * errors (stray indentation, missing services). */
    std::string field;
    std::string message;

    /** "message (line N, field 'f')" rendering for logs. */
    std::string toString() const;
};

/** Outcome of a structured parse: every well-formed application plus
 * every error. A document with any error contributes no application
 * (no partially parsed apps), but later documents still parse. */
struct ManifestParse
{
    std::vector<sim::Application> apps;
    std::vector<ManifestError> errors;

    bool ok() const { return errors.empty(); }
};

/**
 * Parse a manifest, recovering at document boundaries: a malformed
 * document is reported (line/field/message) and skipped, well-formed
 * documents before and after it still land in apps. Duplicate
 * application names across documents are an error on the later
 * document.
 */
ManifestParse parseManifestStructured(const std::string &text);

/**
 * Parse a manifest document into application descriptors. Returns
 * nullopt and fills @p error (the first structured error, rendered)
 * on any malformed input. Untagged services default to C1 (§5 Partial
 * Tagging); `phoenix: disabled` marks the application unsubscribed.
 */
std::optional<std::vector<sim::Application>>
parseManifest(const std::string &text, std::string *error = nullptr);

/** Load and parse a manifest file. */
std::optional<std::vector<sim::Application>>
loadManifestFile(const std::string &path, std::string *error = nullptr);

} // namespace phoenix::kube

#endif // PHOENIX_KUBE_MANIFEST_H
