/**
 * @file
 * Deployment manifest loader.
 *
 * Phoenix consumes deployment specifications (YAML in the paper, §5)
 * to learn each application's containers, resource requests,
 * criticality labels and call dependencies. This is the equivalent
 * ingestion path: a small indentation-based manifest dialect covering
 * exactly what resilience management needs.
 *
 * ```yaml
 * application: overleaf
 * price: 2.0
 * phoenix: enabled
 * groups:                   # anti-affinity groups (optional)
 *   - id: 1
 *     maxPerNode: 1
 *     maxPerZone: 2
 * services:
 *   - name: web
 *     cpu: 2.0
 *     criticality: 1
 *     replicas: 2
 *     group: 1              # membership in anti-affinity group 1
 *     maxPerNode: 1         # per-service replica caps
 *     maxPerZone: 2
 *     minZoneSpread: 2      # replicas must span >= 2 zones
 *     pdbMaxUnavailable: 1  # PodDisruptionBudget for evictions
 *   - name: chat
 *     cpu: 0.5
 *     criticality: 5        # optional; untagged defaults to C1
 *     upstream: [web]       # callers of this service (DG edges)
 * ```
 *
 * Multiple applications may appear in one document separated by
 * `---` lines, as in multi-document YAML. A manifest may also carry
 * at most one *topology* document declaring the cluster's zones and
 * node specs (the NodeSpec `zone` label of §4):
 *
 * ```yaml
 * topology: cloudlab
 * zones: [east, west, central]
 * nodes:
 *   - count: 9
 *     cpus: 8.0
 *     zone: east
 * ```
 *
 * Two entry points: parseManifest is all-or-nothing (nullopt on the
 * first error — the original API), parseManifestStructured recovers
 * per document and reports every error with its line and the field
 * being parsed, so a long-running ingester (phoenixd) can accept the
 * well-formed applications and surface exactly what it rejected.
 */

#ifndef PHOENIX_KUBE_MANIFEST_H
#define PHOENIX_KUBE_MANIFEST_H

#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace phoenix::kube {

/** One structured parse error: where, which field, what. */
struct ManifestError
{
    /** 1-based line in the manifest text. */
    size_t line = 0;
    /** The key being parsed when the error fired ("cpu",
     * "criticality", "application", ...); empty for structural
     * errors (stray indentation, missing services). */
    std::string field;
    std::string message;

    /** "message (line N, field 'f')" rendering for logs. */
    std::string toString() const;
};

/** One node spec in a topology document: @p count nodes of @p cpus
 * capacity carrying the zone label @p zone (index into
 * Topology::zones). */
struct NodeSpec
{
    int count = 1;
    double cpus = 0.0;
    uint32_t zone = 0;
};

/** Cluster topology declared by a `topology:` document. Zone index =
 * position in @p zones. */
struct Topology
{
    std::string name;
    std::vector<std::string> zones;
    std::vector<NodeSpec> nodes;

    bool empty() const { return zones.empty() && nodes.empty(); }
};

/** Outcome of a structured parse: every well-formed application plus
 * every error. A document with any error contributes no application
 * (no partially parsed apps), but later documents still parse. */
struct ManifestParse
{
    std::vector<sim::Application> apps;
    /** The topology document, if the manifest carried one. */
    Topology topology;
    std::vector<ManifestError> errors;

    bool ok() const { return errors.empty(); }
};

/**
 * Parse a manifest, recovering at document boundaries: a malformed
 * document is reported (line/field/message) and skipped, well-formed
 * documents before and after it still land in apps. Duplicate
 * application names across documents are an error on the later
 * document.
 */
ManifestParse parseManifestStructured(const std::string &text);

/**
 * Parse a manifest document into application descriptors. Returns
 * nullopt and fills @p error (the first structured error, rendered)
 * on any malformed input. Untagged services default to C1 (§5 Partial
 * Tagging); `phoenix: disabled` marks the application unsubscribed.
 */
std::optional<std::vector<sim::Application>>
parseManifest(const std::string &text, std::string *error = nullptr);

/** Load and parse a manifest file. */
std::optional<std::vector<sim::Application>>
loadManifestFile(const std::string &path, std::string *error = nullptr);

/**
 * Render applications (and an optional topology) back into manifest
 * text that parses to the same descriptors: parse(render(parse(m)))
 * == parse(m). Only non-default fields are emitted.
 */
std::string renderManifest(const std::vector<sim::Application> &apps,
                           const Topology &topology = Topology());

} // namespace phoenix::kube

#endif // PHOENIX_KUBE_MANIFEST_H
