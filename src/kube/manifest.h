/**
 * @file
 * Deployment manifest loader.
 *
 * Phoenix consumes deployment specifications (YAML in the paper, §5)
 * to learn each application's containers, resource requests,
 * criticality labels and call dependencies. This is the equivalent
 * ingestion path: a small indentation-based manifest dialect covering
 * exactly what resilience management needs.
 *
 * ```yaml
 * application: overleaf
 * price: 2.0
 * phoenix: enabled
 * services:
 *   - name: web
 *     cpu: 2.0
 *     criticality: 1
 *     replicas: 2
 *   - name: chat
 *     cpu: 0.5
 *     criticality: 5        # optional; untagged defaults to C1
 *     upstream: [web]       # callers of this service (DG edges)
 * ```
 *
 * Multiple applications may appear in one document separated by
 * `---` lines, as in multi-document YAML.
 */

#ifndef PHOENIX_KUBE_MANIFEST_H
#define PHOENIX_KUBE_MANIFEST_H

#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace phoenix::kube {

/**
 * Parse a manifest document into application descriptors. Returns
 * nullopt and fills @p error on malformed input. Untagged services
 * default to C1 (§5 Partial Tagging); `phoenix: disabled` marks the
 * application unsubscribed.
 */
std::optional<std::vector<sim::Application>>
parseManifest(const std::string &text, std::string *error = nullptr);

/** Load and parse a manifest file. */
std::optional<std::vector<sim::Application>>
loadManifestFile(const std::string &path, std::string *error = nullptr);

} // namespace phoenix::kube

#endif // PHOENIX_KUBE_MANIFEST_H
