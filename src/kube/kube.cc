#include "kube.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "util/log.h"

namespace phoenix::kube {

using sim::ClusterState;
using sim::NodeId;
using sim::PodRef;

namespace {

/** Slack for capacity comparisons (same as the scheduler's). */
constexpr double kCapacityEps = 1e-9;
/** Slack for incremental-vs-scan usage equality (fp accumulation). */
constexpr double kUsageEps = 1e-6;

const char *
phaseName(PodPhase phase)
{
    switch (phase) {
    case PodPhase::Pending: return "Pending";
    case PodPhase::Starting: return "Starting";
    case PodPhase::Running: return "Running";
    case PodPhase::Terminating: return "Terminating";
    }
    return "?";
}

/** Static trace-event names per transition target (the tracer stores
 * the pointers). */
const char *
transitionEventName(PodPhase to)
{
    switch (to) {
    case PodPhase::Pending: return "pod->Pending";
    case PodPhase::Starting: return "pod->Starting";
    case PodPhase::Running: return "pod->Running";
    case PodPhase::Terminating: return "pod->Terminating";
    }
    return "pod->?";
}

} // namespace

KubeCluster::KubeCluster(sim::EventQueue &events, KubeConfig config)
    : events_(events), config_(config), rng_(config.seed)
{
    obs::Registry &registry = obs::Registry::global();
    obs_.transitions[0] =
        &registry.counter("kube.pod_transitions", "to", "Pending");
    obs_.transitions[1] =
        &registry.counter("kube.pod_transitions", "to", "Starting");
    obs_.transitions[2] =
        &registry.counter("kube.pod_transitions", "to", "Running");
    obs_.transitions[3] =
        &registry.counter("kube.pod_transitions", "to", "Terminating");
    obs_.binds = &registry.counter("kube.scheduler.binds");
    obs_.evictedPods = &registry.counter("kube.evictions.pods");
    obs_.evictionEpisodes =
        &registry.counter("kube.evictions.episodes");
    obs_.invariantViolations =
        &registry.counter("kube.invariant_violations");
    obs_.migrationsRejected =
        &registry.counter("kube.migrations.rejected");
    obs_.nodeNotReady = &registry.counter("kube.node.not_ready");
    obs_.nodeReady = &registry.counter("kube.node.ready");

    // Control-plane loops. These chains reschedule themselves forever;
    // drive the simulation with runUntil(), not runAll().
    events_.scheduleAfter(config_.heartbeatPeriod,
                          [this] { nodeControllerTick(); });
    events_.scheduleAfter(config_.schedulerPeriod,
                          [this] { schedulerTick(); });
}

NodeId
KubeCluster::addNode(double capacity, uint32_t zone)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    NodeRec rec;
    rec.id = id;
    rec.capacity = capacity;
    rec.zone = zone;
    rec.lastHeartbeat = events_.now();
    if (zone != 0)
        hasExplicitZones_ = true;
    nodes_.push_back(rec);
    nodeUsed_.push_back(0.0);
    nodeEvictionEpisodes_.push_back(0);
    markDirty(id);
    scheduleHeartbeat(id);
    return id;
}

void
KubeCluster::addApplication(const sim::Application &app)
{
    apps_.push_back(app);
    const sim::AppId app_id = static_cast<sim::AppId>(apps_.size() - 1);
    apps_.back().id = app_id;
    if (apps_.back().topologyConstrained())
        anyConstrained_ = true;
    for (const auto &ms : apps_.back().services) {
        const int replicas = std::max(ms.replicas, 1);
        for (int r = 0; r < replicas; ++r) {
            Pod pod;
            pod.ref = PodRef{app_id, ms.id, static_cast<uint32_t>(r)};
            pod.cpu = ms.cpu;
            pods_[pod.ref] = pod;
            podEpoch_[pod.ref] = 0;
        }
    }
}

void
KubeCluster::scheduleHeartbeat(NodeId node)
{
    events_.scheduleAfter(config_.heartbeatPeriod, [this, node] {
        NodeRec &rec = nodes_[node];
        if (!rec.kubeletRunning)
            return; // chain dies; startKubelet starts a new one
        // A partitioned kubelet keeps beating, but the updates never
        // reach the node controller; a skewed clock stamps the status
        // with its own (wrong) time.
        if (!rec.partitioned)
            rec.lastHeartbeat = events_.now() + rec.clockSkew;
        scheduleHeartbeat(node);
    });
}

void
KubeCluster::stopKubelet(NodeId node)
{
    nodes_[node].kubeletRunning = false;
    markDirty(node);
}

void
KubeCluster::startKubelet(NodeId node)
{
    NodeRec &rec = nodes_[node];
    if (rec.kubeletRunning)
        return;
    rec.kubeletRunning = true;
    if (!rec.partitioned)
        rec.lastHeartbeat = events_.now() + rec.clockSkew;
    markDirty(node);
    scheduleHeartbeat(node);
}

void
KubeCluster::partitionNode(NodeId node)
{
    NodeRec &rec = nodes_[node];
    if (rec.partitioned)
        return;
    rec.partitioned = true;
    markDirty(node);
}

void
KubeCluster::healPartition(NodeId node)
{
    NodeRec &rec = nodes_[node];
    if (!rec.partitioned)
        return;
    rec.partitioned = false;
    // No lastHeartbeat bump here: the next in-flight heartbeat (within
    // heartbeatPeriod) is the first status the controller sees again.
    markDirty(node);
}

void
KubeCluster::degradeNode(NodeId node, double factor)
{
    NodeRec &rec = nodes_[node];
    factor = std::clamp(factor, sim::kMinDegradeFactor, 1.0);
    if (rec.degradeFactor == factor)
        return;
    rec.degradeFactor = factor;
    markDirty(node);
}

void
KubeCluster::setClockSkew(NodeId node, double skewSeconds)
{
    nodes_[node].clockSkew = skewSeconds;
}

void
KubeCluster::beginApiOutage()
{
    if (apiOutage_)
        return;
    // Order matters: capture the surface before raising the flag so
    // the frozen values are the live ones at freeze time.
    frozenState_ = buildState();
    frozenReadyCapacity_ = readyCapacity();
    frozenFingerprint_ = readyFingerprint();
    apiOutage_ = true;
}

void
KubeCluster::endApiOutage()
{
    apiOutage_ = false;
}

std::vector<NodeId>
KubeCluster::drainDirtyNodes()
{
    std::vector<NodeId> drained = std::move(dirtyNodes_);
    dirtyNodes_.clear();
    std::sort(drained.begin(), drained.end());
    drained.erase(std::unique(drained.begin(), drained.end()),
                  drained.end());
    return drained;
}

void
KubeCluster::nodeControllerTick()
{
    for (NodeRec &rec : nodes_) {
        // The NotReady boundary is pinned: a heartbeat whose age is
        // *exactly* nodeGracePeriod is still fresh (<=, not <). Clock
        // skew puts real runs precisely on this edge — with a
        // heartbeat period of 10, a grace of 100, and a skew of -100,
        // every age the controller computes is an exact multiple of
        // 10 — so the comparison must have one defined outcome.
        // test_kube pins it with a regression test.
        const bool fresh =
            events_.now() - rec.lastHeartbeat <= config_.nodeGracePeriod;
        if (rec.ready && !fresh) {
            rec.ready = false;
            markDirty(rec.id);
            PHOENIX_INFO("node " << rec.id << " NotReady at t="
                                 << events_.now());
            PHOENIX_COUNT(*obs_.nodeNotReady, 1);
            PHOENIX_TRACE_INSTANT(
                "kube", "node NotReady", events_.now(),
                (obs::TraceArg{"node", static_cast<double>(rec.id)}));
            evictPodsOn(rec.id);
        } else if (!rec.ready && fresh && rec.kubeletRunning) {
            rec.ready = true;
            markDirty(rec.id);
            PHOENIX_INFO("node " << rec.id << " Ready at t="
                                 << events_.now());
            PHOENIX_COUNT(*obs_.nodeReady, 1);
            PHOENIX_TRACE_INSTANT(
                "kube", "node Ready", events_.now(),
                (obs::TraceArg{"node", static_cast<double>(rec.id)}));
        }
    }
    validateAfterEvent();
    events_.scheduleAfter(config_.heartbeatPeriod,
                          [this] { nodeControllerTick(); });
}

bool
KubeCluster::occupiesNode(PodPhase phase)
{
    return phase == PodPhase::Starting || phase == PodPhase::Running ||
           phase == PodPhase::Terminating;
}

bool
KubeCluster::legalTransition(PodPhase from, PodPhase to)
{
    switch (from) {
    case PodPhase::Pending:
        return to == PodPhase::Starting;
    case PodPhase::Starting:
        // Starting -> Starting is a migration rebind (new node, new
        // startup clock).
        return to == PodPhase::Starting || to == PodPhase::Running ||
               to == PodPhase::Pending || to == PodPhase::Terminating;
    case PodPhase::Running:
        // Running -> Running is a live migration (node change only).
        return to == PodPhase::Running || to == PodPhase::Pending ||
               to == PodPhase::Terminating;
    case PodPhase::Terminating:
        // A drain only ever completes back into Pending.
        return to == PodPhase::Pending;
    }
    return false;
}

void
KubeCluster::transition(Pod &pod, PodPhase to, NodeId node)
{
    if (!legalTransition(pod.phase, to)) {
        recordViolation(std::string("illegal pod transition ") +
                        phaseName(pod.phase) + " -> " + phaseName(to));
    }
    if (occupiesNode(pod.phase)) {
        nodeUsed_[pod.node] -= pod.cpu;
        markDirty(pod.node);
    }
    pod.phase = to;
    pod.node = node;
    if (occupiesNode(to)) {
        nodeUsed_[node] += pod.cpu;
        markDirty(node);
    }
    PHOENIX_COUNT(*obs_.transitions[static_cast<size_t>(to)], 1);
    PHOENIX_TRACE_INSTANT(
        "kube", transitionEventName(to), events_.now(),
        (obs::TraceArg{"app", static_cast<double>(pod.ref.app)}),
        (obs::TraceArg{"ms", static_cast<double>(pod.ref.ms)}),
        (obs::TraceArg{"node", static_cast<double>(node)}));
}

double
KubeCluster::usedOn(NodeId node) const
{
    return nodeUsed_[node];
}

bool
KubeCluster::hasPlacementVacancy(const Pod &pod, NodeId node) const
{
    if (!anyConstrained_)
        return true;
    if (pod.ref.app >= apps_.size())
        return true;
    const auto &app = apps_[pod.ref.app];
    if (pod.ref.ms >= app.services.size())
        return true;
    const auto &ms = app.services[pod.ref.ms];
    const int ms_node_cap = ms.maxPerNode;
    const int ms_zone_cap = ms.effectiveZoneCap();
    const sim::PlacementGroup *group = nullptr;
    if (ms.antiAffinityGroup >= 0) {
        for (const auto &g : app.placementGroups) {
            if (g.id == ms.antiAffinityGroup &&
                (g.maxPerNode > 0 || g.maxPerZone > 0)) {
                group = &g;
                break;
            }
        }
    }
    if (ms_node_cap <= 0 && ms_zone_cap <= 0 && !group)
        return true;

    const uint32_t zone = nodes_[node].zone;
    int ms_on_node = 0;
    int ms_in_zone = 0;
    int group_on_node = 0;
    int group_in_zone = 0;
    for (const auto &[ref, other] : pods_) {
        if (ref.app != pod.ref.app || ref == pod.ref)
            continue;
        if (!occupiesNode(other.phase))
            continue;
        const bool same_node = other.node == node;
        const bool same_zone = nodes_[other.node].zone == zone;
        if (ref.ms == pod.ref.ms) {
            ms_on_node += same_node ? 1 : 0;
            ms_in_zone += same_zone ? 1 : 0;
        }
        if (group &&
            app.services[ref.ms].antiAffinityGroup ==
                ms.antiAffinityGroup) {
            group_on_node += same_node ? 1 : 0;
            group_in_zone += same_zone ? 1 : 0;
        }
    }
    if (ms_node_cap > 0 && ms_on_node >= ms_node_cap)
        return false;
    if (ms_zone_cap > 0 && ms_in_zone >= ms_zone_cap)
        return false;
    if (group) {
        if (group->maxPerNode > 0 && group_on_node >= group->maxPerNode)
            return false;
        if (group->maxPerZone > 0 && group_in_zone >= group->maxPerZone)
            return false;
    }
    return true;
}

double
KubeCluster::scanUsedOn(NodeId node) const
{
    double used = 0.0;
    for (const auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.node == node && occupiesNode(pod.phase))
            used += pod.cpu;
    }
    return used;
}

void
KubeCluster::recordViolation(const std::string &what)
{
    ++invariantViolations_;
    PHOENIX_COUNT(*obs_.invariantViolations, 1);
    PHOENIX_ERROR("kube invariant violated at t=" << events_.now()
                                                  << ": " << what);
    assert(false && "kube invariant violated");
}

void
KubeCluster::validateAfterEvent()
{
    if (!config_.validateInvariants)
        return;
    validateScratch_.assign(nodes_.size(), 0.0);
    for (const auto &[ref, pod] : pods_) {
        if (!occupiesNode(pod.phase))
            continue;
        if (pod.node >= nodes_.size()) {
            recordViolation("pod " + std::to_string(ref.app) + "/" +
                            std::to_string(ref.ms) +
                            " placed on nonexistent node");
            continue;
        }
        validateScratch_[pod.node] += pod.cpu;
    }
    for (size_t n = 0; n < nodes_.size(); ++n) {
        const double scan = validateScratch_[n];
        if (std::abs(scan - nodeUsed_[n]) > kUsageEps) {
            recordViolation("node " + std::to_string(n) +
                            " incremental usage " +
                            std::to_string(nodeUsed_[n]) +
                            " != scanned " + std::to_string(scan));
        }
        if (scan > nodes_[n].capacity + kUsageEps) {
            recordViolation("node " + std::to_string(n) +
                            " overcommitted: used " +
                            std::to_string(scan) + " > capacity " +
                            std::to_string(nodes_[n].capacity));
        }
    }
}

void
KubeCluster::bindPod(Pod &pod, NodeId node)
{
    PHOENIX_COUNT(*obs_.binds, 1);
    transition(pod, PodPhase::Starting, node);
    // Bumping the epoch cancels any armed start-completion timer, so a
    // rebind (migrate-while-Starting) restarts the startup clock.
    const uint64_t epoch = ++podEpoch_[pod.ref];
    // Draw first, then scale: a degraded (slow) node stretches the
    // startup delay by 1/factor without perturbing the rng sequence.
    double delay =
        rng_.uniform(config_.podStartupMin, config_.podStartupMax);
    if (nodes_[node].degradeFactor < 1.0)
        delay /= nodes_[node].degradeFactor;
    const PodRef ref = pod.ref;
    events_.scheduleAfter(delay, [this, ref, epoch] {
        auto it = pods_.find(ref);
        if (it == pods_.end() || podEpoch_[ref] != epoch)
            return;
        if (it->second.phase == PodPhase::Starting) {
            transition(it->second, PodPhase::Running, it->second.node);
            validateAfterEvent();
        }
    });
}

void
KubeCluster::evictPodsOn(NodeId node)
{
    ++nodeEvictionEpisodes_[node];
    PHOENIX_COUNT(*obs_.evictionEpisodes, 1);
    for (auto &[ref, pod] : pods_) {
        if (pod.node != node || pod.phase == PodPhase::Pending)
            continue;
        // Documented semantics: Terminating pods keep their graceful
        // drain (the drain timer lands them in Pending; a scaled-down
        // pod parks there and never reschedules).
        if (pod.phase == PodPhase::Terminating)
            continue;
        ++podEpoch_[ref];
        transition(pod, PodPhase::Pending, pod.node);
        ++evictedPods_;
        PHOENIX_COUNT(*obs_.evictedPods, 1);
    }
}

size_t
KubeCluster::evictionEpisodes(NodeId node) const
{
    return nodeEvictionEpisodes_.at(node);
}

void
KubeCluster::schedulerTick()
{
    // Deterministic PodRef order, spread (least-allocated) scoring.
    for (auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.phase != PodPhase::Pending || pod.scaledDown)
            continue;

        if (pod.pinnedNode) {
            const NodeId target = *pod.pinnedNode;
            if (nodes_[target].ready &&
                usedOn(target) + pod.cpu <=
                    effectiveCapacity(target) + kCapacityEps &&
                hasPlacementVacancy(pod, target)) {
                bindPod(pod, target);
            }
            continue;
        }

        if (!config_.enableDefaultScheduler)
            continue;

        NodeId best = 0;
        double best_free = -1.0;
        for (const NodeRec &rec : nodes_) {
            if (!rec.ready)
                continue;
            const double free =
                rec.capacity * rec.degradeFactor - usedOn(rec.id);
            if (free >= pod.cpu - kCapacityEps && free > best_free &&
                hasPlacementVacancy(pod, rec.id)) {
                best_free = free;
                best = rec.id;
            }
        }
        if (best_free >= 0.0)
            bindPod(pod, best);
    }
    validateAfterEvent();
    events_.scheduleAfter(config_.schedulerPeriod,
                          [this] { schedulerTick(); });
}

void
KubeCluster::deletePod(const PodRef &ref)
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return;
    Pod &pod = it->second;
    pod.scaledDown = true;
    pod.pinnedNode.reset();
    if (pod.phase == PodPhase::Pending ||
        pod.phase == PodPhase::Terminating) {
        return;
    }
    // Graceful drain: endpoints removed, SIGTERM, then gone.
    transition(pod, PodPhase::Terminating, pod.node);
    const uint64_t epoch = ++podEpoch_[ref];
    events_.scheduleAfter(config_.podTerminationSeconds,
                          [this, ref, epoch] {
                              auto pit = pods_.find(ref);
                              if (pit == pods_.end() ||
                                  podEpoch_[ref] != epoch) {
                                  return;
                              }
                              if (pit->second.phase ==
                                  PodPhase::Terminating) {
                                  transition(pit->second,
                                             PodPhase::Pending,
                                             pit->second.node);
                                  validateAfterEvent();
                              }
                          });
    validateAfterEvent();
}

void
KubeCluster::startPod(const PodRef &ref,
                      std::optional<NodeId> pinned)
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return;
    Pod &pod = it->second;
    pod.scaledDown = false;
    pod.pinnedNode = pinned;

    if (pod.phase == PodPhase::Running ||
        pod.phase == PodPhase::Starting) {
        if (pinned && pod.node != *pinned)
            migratePod(ref, *pinned);
        return;
    }
    if (pod.phase == PodPhase::Terminating) {
        // Deletion raced with a restart: bring it back after the
        // drain completes (scheduler will pick it up as Pending).
        return;
    }
    // Pending: the scheduler tick will bind it (possibly pinned).
}

void
KubeCluster::migratePod(const PodRef &ref, NodeId to)
{
    auto it = pods_.find(ref);
    if (it == pods_.end() || to >= nodes_.size())
        return;
    Pod &pod = it->second;
    pod.scaledDown = false;
    pod.pinnedNode = to;
    if (pod.phase == PodPhase::Pending) {
        return; // plain (re)start on the target
    }
    if (pod.phase == PodPhase::Terminating) {
        // Finish the drain; the pin re-places the pod afterwards.
        return;
    }
    if (pod.node == to)
        return;

    // Validate the target exactly like the scheduler would: rebinding
    // onto a NotReady or full node silently overcommits it. Keep the
    // pin — the next replan resolves the conflict.
    const NodeRec &target = nodes_[to];
    if (!target.ready ||
        usedOn(to) + pod.cpu >
            target.capacity * target.degradeFactor + kCapacityEps ||
        !hasPlacementVacancy(pod, to)) {
        PHOENIX_WARN("migrate " << ref.app << "/" << ref.ms
                                << " -> node " << to << " rejected: "
                                << (!target.ready ? "NotReady"
                                                  : "full/no vacancy"));
        PHOENIX_COUNT(*obs_.migrationsRejected, 1);
        return;
    }

    if (pod.phase == PodPhase::Starting) {
        // The replica never finished starting: moving it restarts the
        // startup clock on the target (bindPod bumps the epoch, which
        // cancels the old start-completion timer — no free cross-node
        // "migration").
        bindPod(pod, to);
        validateAfterEvent();
        return;
    }
    // Running: the two-stage migration collapses to an immediate
    // rebind in the model — capacity moves to the target now and the
    // service stays live (requests reroute to the new instance as it
    // starts; see Appendix E).
    transition(pod, PodPhase::Running, to);
    validateAfterEvent();
}

bool
KubeCluster::isReady(NodeId node) const
{
    return nodes_.at(node).ready;
}

bool
KubeCluster::kubeletRunning(NodeId node) const
{
    return nodes_.at(node).kubeletRunning;
}

bool
KubeCluster::isPartitioned(NodeId node) const
{
    return nodes_.at(node).partitioned;
}

double
KubeCluster::degradeFactor(NodeId node) const
{
    return nodes_.at(node).degradeFactor;
}

double
KubeCluster::clockSkew(NodeId node) const
{
    return nodes_.at(node).clockSkew;
}

double
KubeCluster::effectiveCapacity(NodeId node) const
{
    const NodeRec &rec = nodes_.at(node);
    return rec.capacity * rec.degradeFactor;
}

double
KubeCluster::nodeCapacity(NodeId node) const
{
    return nodes_.at(node).capacity;
}

int
KubeCluster::nodeZone(NodeId node) const
{
    if (!hasExplicitZones_)
        return -1;
    return static_cast<int>(nodes_.at(node).zone);
}

double
KubeCluster::readyCapacity() const
{
    double total = 0.0;
    for (const NodeRec &rec : nodes_) {
        if (rec.ready)
            total += rec.capacity * rec.degradeFactor;
    }
    return total;
}

double
KubeCluster::totalCapacity() const
{
    double total = 0.0;
    for (const NodeRec &rec : nodes_)
        total += rec.capacity;
    return total;
}

ClusterState
KubeCluster::buildState() const
{
    ClusterState state;
    for (const NodeRec &rec : nodes_) {
        double observed = rec.capacity;
        if (rec.degradeFactor < 1.0) {
            // Report the degraded capacity, but never below current
            // usage: pods placed before the degrade keep running
            // (slow-not-dead never evicts) and must stay
            // representable in the snapshot.
            observed = std::max(rec.capacity * rec.degradeFactor,
                                usedOn(rec.id));
        }
        state.addNode(observed, rec.zone);
        if (!rec.ready)
            state.failNode(rec.id);
    }
    for (const auto &[ref, pod] : pods_) {
        if (occupiesNode(pod.phase))
            state.place(ref, pod.node, pod.cpu);
    }
    return state;
}

ClusterState
KubeCluster::observedState() const
{
    return apiOutage_ ? frozenState_ : buildState();
}

ClusterState
KubeCluster::liveState() const
{
    return buildState();
}

double
KubeCluster::observedReadyCapacity() const
{
    return apiOutage_ ? frozenReadyCapacity_ : readyCapacity();
}

uint64_t
KubeCluster::readyFingerprint() const
{
    uint64_t hash = 1469598103934665603ull; // FNV-1a offset basis
    const auto mix = [&hash](uint64_t v) {
        hash ^= v;
        hash *= 1099511628211ull;
    };
    for (const NodeRec &rec : nodes_) {
        mix(rec.ready ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull);
        const double effective = rec.capacity * rec.degradeFactor;
        uint64_t bits = 0;
        std::memcpy(&bits, &effective, sizeof(bits));
        mix(bits);
    }
    return hash;
}

uint64_t
KubeCluster::observedReadyFingerprint() const
{
    return apiOutage_ ? frozenFingerprint_ : readyFingerprint();
}

size_t
KubeCluster::forecastZoneCount(size_t fallbackZoneCount) const
{
    if (hasExplicitZones_) {
        uint32_t max_zone = 0;
        for (const NodeRec &rec : nodes_)
            max_zone = std::max(max_zone, rec.zone);
        return static_cast<size_t>(max_zone) + 1;
    }
    const size_t fallback = std::max<size_t>(fallbackZoneCount, 1);
    return std::min(fallback, std::max<size_t>(nodes_.size(), 1));
}

size_t
KubeCluster::forecastZoneOf(NodeId node, size_t fallbackZoneCount) const
{
    if (hasExplicitZones_)
        return nodes_.at(node).zone;
    return static_cast<size_t>(node) %
           std::max<size_t>(fallbackZoneCount, 1);
}

std::vector<KubeCluster::ZoneCapacity>
KubeCluster::observedZoneCapacities(size_t fallbackZoneCount) const
{
    std::vector<ZoneCapacity> zones(forecastZoneCount(fallbackZoneCount));
    // Static side: nameplate capacities (never frozen — labels and
    // nameplates are deployment facts, not observations). Ready side:
    // the observation surface, so outages freeze it.
    const sim::ClusterState observed = observedState();
    for (const NodeRec &rec : nodes_) {
        const size_t z = forecastZoneOf(rec.id, fallbackZoneCount);
        if (z >= zones.size())
            continue;
        zones[z].staticCapacity += rec.capacity;
        if (rec.id < observed.nodeCount() &&
            observed.isHealthy(rec.id))
            zones[z].readyCapacity += observed.node(rec.id).capacity;
    }
    return zones;
}

sim::ClusterState
KubeCluster::projectedZoneLossState(size_t zone,
                                    size_t fallbackZoneCount) const
{
    sim::ClusterState state = observedState();
    for (const NodeRec &rec : nodes_) {
        if (forecastZoneOf(rec.id, fallbackZoneCount) != zone)
            continue;
        if (rec.id < state.nodeCount() && state.isHealthy(rec.id))
            state.failNode(rec.id);
    }
    return state;
}

sim::ClusterState
KubeCluster::projectedDecayState() const
{
    sim::ClusterState state = observedState();
    for (const NodeRec &rec : nodes_) {
        if (rec.id >= state.nodeCount() || !state.isHealthy(rec.id))
            continue;
        // Observed below nameplate == degraded in the snapshot
        // (buildState reports max(capacity * factor, usage)).
        if (state.node(rec.id).capacity <
            rec.capacity * (1.0 - 1e-12))
            state.failNode(rec.id);
    }
    return state;
}

std::set<PodRef>
KubeCluster::runningPods() const
{
    std::set<PodRef> running;
    for (const auto &[ref, pod] : pods_) {
        if (pod.phase == PodPhase::Running)
            running.insert(ref);
    }
    return running;
}

size_t
KubeCluster::pendingCount() const
{
    size_t count = 0;
    for (const auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.phase == PodPhase::Pending && !pod.scaledDown)
            ++count;
    }
    return count;
}

const Pod *
KubeCluster::pod(const PodRef &ref) const
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return nullptr;
    return &it->second;
}

} // namespace phoenix::kube
