#include "kube.h"

#include <algorithm>

#include "util/log.h"

namespace phoenix::kube {

using sim::ClusterState;
using sim::NodeId;
using sim::PodRef;

KubeCluster::KubeCluster(sim::EventQueue &events, KubeConfig config)
    : events_(events), config_(config), rng_(config.seed)
{
    // Control-plane loops. These chains reschedule themselves forever;
    // drive the simulation with runUntil(), not runAll().
    events_.scheduleAfter(config_.heartbeatPeriod,
                          [this] { nodeControllerTick(); });
    events_.scheduleAfter(config_.schedulerPeriod,
                          [this] { schedulerTick(); });
}

NodeId
KubeCluster::addNode(double capacity)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    NodeRec rec;
    rec.id = id;
    rec.capacity = capacity;
    rec.lastHeartbeat = events_.now();
    nodes_.push_back(rec);
    scheduleHeartbeat(id);
    return id;
}

void
KubeCluster::addApplication(const sim::Application &app)
{
    apps_.push_back(app);
    const sim::AppId app_id = static_cast<sim::AppId>(apps_.size() - 1);
    apps_.back().id = app_id;
    for (const auto &ms : apps_.back().services) {
        Pod pod;
        pod.ref = PodRef{app_id, ms.id};
        pod.cpu = ms.totalCpu();
        pods_[pod.ref] = pod;
        podEpoch_[pod.ref] = 0;
    }
}

void
KubeCluster::scheduleHeartbeat(NodeId node)
{
    events_.scheduleAfter(config_.heartbeatPeriod, [this, node] {
        NodeRec &rec = nodes_[node];
        if (!rec.kubeletRunning)
            return; // chain dies; startKubelet starts a new one
        rec.lastHeartbeat = events_.now();
        scheduleHeartbeat(node);
    });
}

void
KubeCluster::stopKubelet(NodeId node)
{
    nodes_[node].kubeletRunning = false;
}

void
KubeCluster::startKubelet(NodeId node)
{
    NodeRec &rec = nodes_[node];
    if (rec.kubeletRunning)
        return;
    rec.kubeletRunning = true;
    rec.lastHeartbeat = events_.now();
    scheduleHeartbeat(node);
}

void
KubeCluster::nodeControllerTick()
{
    for (NodeRec &rec : nodes_) {
        const bool fresh =
            events_.now() - rec.lastHeartbeat <= config_.nodeGracePeriod;
        if (rec.ready && !fresh) {
            rec.ready = false;
            PHOENIX_INFO("node " << rec.id << " NotReady at t="
                                 << events_.now());
            evictPodsOn(rec.id);
        } else if (!rec.ready && fresh && rec.kubeletRunning) {
            rec.ready = true;
            PHOENIX_INFO("node " << rec.id << " Ready at t="
                                 << events_.now());
        }
    }
    events_.scheduleAfter(config_.heartbeatPeriod,
                          [this] { nodeControllerTick(); });
}

double
KubeCluster::usedOn(NodeId node) const
{
    double used = 0.0;
    for (const auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.node == node && (pod.phase == PodPhase::Starting ||
                                 pod.phase == PodPhase::Running ||
                                 pod.phase == PodPhase::Terminating)) {
            used += pod.cpu;
        }
    }
    return used;
}

void
KubeCluster::bindPod(Pod &pod, NodeId node)
{
    pod.phase = PodPhase::Starting;
    pod.node = node;
    const uint64_t epoch = ++podEpoch_[pod.ref];
    const double delay =
        rng_.uniform(config_.podStartupMin, config_.podStartupMax);
    const PodRef ref = pod.ref;
    events_.scheduleAfter(delay, [this, ref, epoch] {
        auto it = pods_.find(ref);
        if (it == pods_.end() || podEpoch_[ref] != epoch)
            return;
        if (it->second.phase == PodPhase::Starting)
            it->second.phase = PodPhase::Running;
    });
}

void
KubeCluster::evictPodsOn(NodeId node)
{
    for (auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.node == node && pod.phase != PodPhase::Pending) {
            ++podEpoch_[pod.ref];
            pod.phase = PodPhase::Pending;
        }
    }
}

void
KubeCluster::schedulerTick()
{
    // Deterministic PodRef order, spread (least-allocated) scoring.
    for (auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.phase != PodPhase::Pending || pod.scaledDown)
            continue;

        if (pod.pinnedNode) {
            const NodeId target = *pod.pinnedNode;
            if (nodes_[target].ready &&
                usedOn(target) + pod.cpu <=
                    nodes_[target].capacity + 1e-9) {
                bindPod(pod, target);
            }
            continue;
        }

        if (!config_.enableDefaultScheduler)
            continue;

        NodeId best = 0;
        double best_free = -1.0;
        for (const NodeRec &rec : nodes_) {
            if (!rec.ready)
                continue;
            const double free = rec.capacity - usedOn(rec.id);
            if (free >= pod.cpu - 1e-9 && free > best_free) {
                best_free = free;
                best = rec.id;
            }
        }
        if (best_free >= 0.0)
            bindPod(pod, best);
    }
    events_.scheduleAfter(config_.schedulerPeriod,
                          [this] { schedulerTick(); });
}

void
KubeCluster::deletePod(const PodRef &ref)
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return;
    Pod &pod = it->second;
    pod.scaledDown = true;
    pod.pinnedNode.reset();
    if (pod.phase == PodPhase::Pending ||
        pod.phase == PodPhase::Terminating) {
        return;
    }
    // Graceful drain: endpoints removed, SIGTERM, then gone.
    pod.phase = PodPhase::Terminating;
    const uint64_t epoch = ++podEpoch_[ref];
    events_.scheduleAfter(config_.podTerminationSeconds,
                          [this, ref, epoch] {
                              auto pit = pods_.find(ref);
                              if (pit == pods_.end() ||
                                  podEpoch_[ref] != epoch) {
                                  return;
                              }
                              if (pit->second.phase ==
                                  PodPhase::Terminating) {
                                  pit->second.phase = PodPhase::Pending;
                              }
                          });
}

void
KubeCluster::startPod(const PodRef &ref,
                      std::optional<NodeId> pinned)
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return;
    Pod &pod = it->second;
    pod.scaledDown = false;
    pod.pinnedNode = pinned;

    if (pod.phase == PodPhase::Running ||
        pod.phase == PodPhase::Starting) {
        if (pinned && pod.node != *pinned)
            migratePod(ref, *pinned);
        return;
    }
    if (pod.phase == PodPhase::Terminating) {
        // Deletion raced with a restart: bring it back after the
        // drain completes (scheduler will pick it up as Pending).
        return;
    }
    // Pending: the scheduler tick will bind it (possibly pinned).
}

void
KubeCluster::migratePod(const PodRef &ref, NodeId to)
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return;
    Pod &pod = it->second;
    pod.scaledDown = false;
    pod.pinnedNode = to;
    if (pod.phase == PodPhase::Pending) {
        return; // plain (re)start on the target
    }
    if (pod.node == to)
        return;
    // Two-stage migration collapses to an immediate rebind in the
    // model: capacity moves to the target now and the service stays
    // live (requests reroute to the new instance as it starts; see
    // Appendix E). We keep the pod Running to model zero-downtime
    // traffic draining.
    pod.node = to;
}

bool
KubeCluster::isReady(NodeId node) const
{
    return nodes_.at(node).ready;
}

double
KubeCluster::readyCapacity() const
{
    double total = 0.0;
    for (const NodeRec &rec : nodes_) {
        if (rec.ready)
            total += rec.capacity;
    }
    return total;
}

double
KubeCluster::totalCapacity() const
{
    double total = 0.0;
    for (const NodeRec &rec : nodes_)
        total += rec.capacity;
    return total;
}

ClusterState
KubeCluster::observedState() const
{
    ClusterState state;
    for (const NodeRec &rec : nodes_) {
        state.addNode(rec.capacity);
        if (!rec.ready)
            state.failNode(rec.id);
    }
    for (const auto &[ref, pod] : pods_) {
        if (pod.phase == PodPhase::Starting ||
            pod.phase == PodPhase::Running ||
            pod.phase == PodPhase::Terminating) {
            state.place(ref, pod.node, pod.cpu);
        }
    }
    return state;
}

std::set<PodRef>
KubeCluster::runningPods() const
{
    std::set<PodRef> running;
    for (const auto &[ref, pod] : pods_) {
        if (pod.phase == PodPhase::Running)
            running.insert(ref);
    }
    return running;
}

size_t
KubeCluster::pendingCount() const
{
    size_t count = 0;
    for (const auto &[ref, pod] : pods_) {
        (void)ref;
        if (pod.phase == PodPhase::Pending && !pod.scaledDown)
            ++count;
    }
    return count;
}

const Pod *
KubeCluster::pod(const PodRef &ref) const
{
    auto it = pods_.find(ref);
    if (it == pods_.end())
        return nullptr;
    return &it->second;
}

} // namespace phoenix::kube
