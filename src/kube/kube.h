/**
 * @file
 * Mini-Kubernetes: the discrete-event cluster-manager substrate Phoenix
 * runs against in the end-to-end experiments (§6.1, Fig 6).
 *
 * The paper deploys Phoenix on a real 25-node Kubernetes/CloudLab
 * cluster. This module reproduces the slice of Kubernetes behaviour the
 * controller interacts with:
 *
 *  - nodes with capacities and kubelet heartbeats; a node controller
 *    that marks nodes NotReady after a grace period and evicts their
 *    pods (the paper emulates failures by stopping kubelet, and Phoenix
 *    detects them ~100 s later — the same path exists here);
 *  - deployments/pods with Pending -> Starting -> Running ->
 *    Terminating lifecycle and realistic startup/termination delays;
 *  - the default spread (least-allocated) scheduler that continuously
 *    places pending pods, used both as machinery and as the paper's
 *    "Default" baseline;
 *  - the verbs the Phoenix agent executes: delete, migrate, restart,
 *    with optional node pinning.
 */

#ifndef PHOENIX_KUBE_KUBE_H
#define PHOENIX_KUBE_KUBE_H

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/types.h"
#include "util/rng.h"

namespace phoenix::kube {

/** Cluster-manager tunables (Kubernetes-flavoured defaults). */
struct KubeConfig
{
    /** Kubelet heartbeat period (node status update). */
    double heartbeatPeriod = 10.0;
    /** Node controller: heartbeats older than this mark the node
     * NotReady and evict its pods. The paper observes Phoenix detecting
     * node failures ~100 s after kubelet stops. */
    double nodeGracePeriod = 100.0;
    /** Default scheduler sync period. */
    double schedulerPeriod = 5.0;
    /** Pod startup delay range (image pull + container init). */
    double podStartupMin = 15.0;
    double podStartupMax = 60.0;
    /** Graceful termination (drain + SIGTERM) duration. */
    double podTerminationSeconds = 10.0;
    /** Run the built-in spread scheduler for unpinned pending pods. */
    bool enableDefaultScheduler = true;
    uint64_t seed = 42;
};

/** Pod lifecycle phase. */
enum class PodPhase { Pending, Starting, Running, Terminating };

/** One pod (we run one replica per microservice deployment). */
struct Pod
{
    sim::PodRef ref;
    double cpu = 0.0;
    PodPhase phase = PodPhase::Pending;
    /** Hosting node; meaningful for Starting/Running/Terminating. */
    sim::NodeId node = 0;
    /** Desired pinned node (Phoenix sets this; empty = any). */
    std::optional<sim::NodeId> pinnedNode;
    /** Desired-off: deployment scaled to zero, do not reschedule. */
    bool scaledDown = false;
};

/**
 * The cluster manager. Drive it by advancing the shared EventQueue;
 * every public mutator is safe to call from event handlers (the agent).
 */
class KubeCluster
{
  public:
    KubeCluster(sim::EventQueue &events, KubeConfig config = KubeConfig());

    /** Add a worker node; starts Ready with a live kubelet. */
    sim::NodeId addNode(double capacity);

    /**
     * Register an application: one single-replica deployment per
     * microservice; pods start Pending and the default scheduler picks
     * them up.
     */
    void addApplication(const sim::Application &app);

    const std::vector<sim::Application> &apps() const { return apps_; }

    // --- Fault injection -------------------------------------------
    /** Stop the kubelet process on a node (the paper's failure mode);
     * the node stops heartbeating and goes NotReady after the grace
     * period. */
    void stopKubelet(sim::NodeId node);

    /** Restart the kubelet; the node becomes Ready on its next
     * heartbeat. Pods previously evicted stay wherever they are now. */
    void startKubelet(sim::NodeId node);

    // --- Agent verbs -----------------------------------------------
    /** Gracefully delete a pod and scale its deployment down. */
    void deletePod(const sim::PodRef &ref);

    /**
     * Ensure the pod is (re)started, optionally pinned to a node.
     * Clears scaled-down state; a running pod is left alone unless a
     * different pin is given (which triggers a migration).
     */
    void startPod(const sim::PodRef &ref,
                  std::optional<sim::NodeId> pinned = std::nullopt);

    /** Migrate: start on the target, then delete the old instance
     * (the two-stage strategy of Appendix E). */
    void migratePod(const sim::PodRef &ref, sim::NodeId to);

    // --- Observation ------------------------------------------------
    bool isReady(sim::NodeId node) const;
    double readyCapacity() const;
    double totalCapacity() const;
    size_t nodeCount() const { return nodes_.size(); }

    /**
     * Snapshot for planners: Ready nodes are healthy; Starting and
     * Running pods occupy their node. Pending/Terminating pods are
     * absent.
     */
    sim::ClusterState observedState() const;

    /** Pods currently serving traffic (Running only). */
    std::set<sim::PodRef> runningPods() const;

    /** Running/Starting/Pending counts (diagnostics). */
    size_t pendingCount() const;

    const Pod *pod(const sim::PodRef &ref) const;

    sim::SimTime now() const { return events_.now(); }

  private:
    struct NodeRec
    {
        sim::NodeId id = 0;
        double capacity = 0.0;
        bool kubeletRunning = true;
        bool ready = true;
        sim::SimTime lastHeartbeat = 0.0;
    };

    void scheduleHeartbeat(sim::NodeId node);
    void nodeControllerTick();
    void schedulerTick();

    /** Used capacity on a node from Starting/Running/Terminating pods. */
    double usedOn(sim::NodeId node) const;

    /** Begin starting a pod on a node (capacity is consumed now). */
    void bindPod(Pod &pod, sim::NodeId node);

    /** Evict (node failure): pod returns to Pending unless scaled
     * down. */
    void evictPodsOn(sim::NodeId node);

    sim::EventQueue &events_;
    KubeConfig config_;
    util::Rng rng_;

    std::vector<NodeRec> nodes_;
    std::vector<sim::Application> apps_;
    std::map<sim::PodRef, Pod> pods_;
    /** Monotone counter to invalidate stale start-completion events. */
    std::map<sim::PodRef, uint64_t> podEpoch_;
    bool controllerLoopsStarted_ = false;
};

} // namespace phoenix::kube

#endif // PHOENIX_KUBE_KUBE_H
