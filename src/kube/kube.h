/**
 * @file
 * Mini-Kubernetes: the discrete-event cluster-manager substrate Phoenix
 * runs against in the end-to-end experiments (§6.1, Fig 6).
 *
 * The paper deploys Phoenix on a real 25-node Kubernetes/CloudLab
 * cluster. This module reproduces the slice of Kubernetes behaviour the
 * controller interacts with:
 *
 *  - nodes with capacities and kubelet heartbeats; a node controller
 *    that marks nodes NotReady after a grace period and evicts their
 *    pods (the paper emulates failures by stopping kubelet, and Phoenix
 *    detects them ~100 s later — the same path exists here);
 *  - deployments/pods with Pending -> Starting -> Running ->
 *    Terminating lifecycle and realistic startup/termination delays;
 *  - the default spread (least-allocated) scheduler that continuously
 *    places pending pods, used both as machinery and as the paper's
 *    "Default" baseline;
 *  - the verbs the Phoenix agent executes: delete, migrate, restart,
 *    with optional node pinning;
 *  - the sim::FaultTarget hooks the failure-scenario engine drives
 *    (node failure = kubelet stop, recovery = kubelet start), plus the
 *    extended fault taxonomy: network partitions (heartbeats stop
 *    reaching the node controller while the kubelet keeps running),
 *    degraded nodes (schedulable capacity multiplied by a factor,
 *    startup slowed — slow, not dead), API-server outages (the
 *    controller-facing observation freezes while the cluster keeps
 *    evolving), and per-node heartbeat clock skew;
 *  - an invariant checker (capacity bounds, incremental-vs-scan usage
 *    equality, phase-transition legality) that scenario tests enable
 *    to turn lifecycle bugs into hard failures.
 */

#ifndef PHOENIX_KUBE_KUBE_H
#define PHOENIX_KUBE_KUBE_H

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "obs/obs.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/scenario.h"
#include "sim/types.h"
#include "util/rng.h"

namespace phoenix::kube {

/** Cluster-manager tunables (Kubernetes-flavoured defaults). */
struct KubeConfig
{
    /** Kubelet heartbeat period (node status update). */
    double heartbeatPeriod = 10.0;
    /** Node controller: heartbeats older than this mark the node
     * NotReady and evict its pods. The paper observes Phoenix detecting
     * node failures ~100 s after kubelet stops. */
    double nodeGracePeriod = 100.0;
    /** Default scheduler sync period. */
    double schedulerPeriod = 5.0;
    /** Pod startup delay range (image pull + container init). */
    double podStartupMin = 15.0;
    double podStartupMax = 60.0;
    /** Graceful termination (drain + SIGTERM) duration. */
    double podTerminationSeconds = 10.0;
    /** Run the built-in spread scheduler for unpinned pending pods. */
    bool enableDefaultScheduler = true;
    /**
     * Run the O(pods + nodes) invariant sweep after every event:
     * no node's Starting+Running+Terminating usage exceeds its
     * capacity, and the incrementally maintained per-node usage
     * matches a full rescan. Phase-transition legality is always
     * checked (it is O(1)). Violations are counted (see
     * invariantViolations()) and assert in debug builds. Defaults on
     * in debug builds; scenario tests enable it explicitly.
     */
#ifdef NDEBUG
    bool validateInvariants = false;
#else
    bool validateInvariants = true;
#endif
    uint64_t seed = 42;
};

/** Pod lifecycle phase. */
enum class PodPhase { Pending, Starting, Running, Terminating };

/** One pod (we run one replica per microservice deployment). */
struct Pod
{
    sim::PodRef ref;
    double cpu = 0.0;
    PodPhase phase = PodPhase::Pending;
    /** Hosting node; meaningful for Starting/Running/Terminating. */
    sim::NodeId node = 0;
    /** Desired pinned node (Phoenix sets this; empty = any). */
    std::optional<sim::NodeId> pinnedNode;
    /** Desired-off: deployment scaled to zero, do not reschedule. */
    bool scaledDown = false;
};

/**
 * The cluster manager. Drive it by advancing the shared EventQueue;
 * every public mutator is safe to call from event handlers (the agent
 * or a ScenarioRunner).
 */
class KubeCluster : public sim::FaultTarget
{
  public:
    KubeCluster(sim::EventQueue &events, KubeConfig config = KubeConfig());

    /** Add a worker node; starts Ready with a live kubelet. The
     * optional zone is the node's failure-domain label (`zone` on the
     * NodeSpec); 0 when the deployment has no topology. */
    sim::NodeId addNode(double capacity, uint32_t zone = 0);

    /**
     * Register an application: one deployment per microservice with
     * one pod per replica; pods start Pending and the default
     * scheduler picks them up, honoring each service's placement
     * policy (anti-affinity caps, zone spread).
     */
    void addApplication(const sim::Application &app);

    const std::vector<sim::Application> &apps() const { return apps_; }

    // --- Fault injection -------------------------------------------
    /** Stop the kubelet process on a node (the paper's failure mode);
     * the node stops heartbeating and goes NotReady after the grace
     * period. */
    void stopKubelet(sim::NodeId node);

    /** Restart the kubelet; the node becomes Ready on its next
     * heartbeat. Pods previously evicted stay wherever they are now. */
    void startKubelet(sim::NodeId node);

    /** Network-partition the node from the control plane: the kubelet
     * keeps running (and its heartbeat chain stays alive) but updates
     * stop reaching the node controller, so the node goes NotReady
     * after the grace period exactly like a dead kubelet. */
    void partitionNode(sim::NodeId node);

    /** Heal the partition; heartbeats resume on their own cadence (the
     * node turns Ready again at its next heartbeat + controller tick,
     * no kubelet restart involved). */
    void healPartition(sim::NodeId node);

    /** Degrade (slow-not-dead): schedulable capacity becomes
     * capacity * factor and pod startup slows by 1/factor. Pods
     * already placed keep running — degradation never evicts; the
     * scheduler just stops placing load the node can no longer take.
     * factor is clamped into [sim::kMinDegradeFactor, 1]; 1 restores
     * full service. */
    void degradeNode(sim::NodeId node, double factor);

    /** Set the node's kubelet clock skew: subsequent heartbeats are
     * stamped now + skew seconds. Negative skew makes a live node look
     * stale (NotReady despite running pods); positive skew can mask a
     * dead kubelet as fresh. 0 restores an honest clock. */
    void setClockSkew(sim::NodeId node, double skewSeconds);

    /** API-server outage: freeze the controller-facing observation
     * surface (observedState / observedReadyCapacity /
     * observedReadyFingerprint) at its current value while the cluster
     * keeps evolving. Agent verbs still execute (they reach etcd
     * through a different path in the real system; here they simply
     * act on live state). Idempotent — nested begins merge. */
    void beginApiOutage();

    /** End the outage; observation snaps back to live state. */
    void endApiOutage();

    // --- sim::FaultTarget (scenario-engine hooks) ------------------
    size_t nodeCount() const override { return nodes_.size(); }
    double nodeCapacity(sim::NodeId node) const override;
    /** Explicit zone label when the deployment declares topology
     * (any node with zone != 0); -1 otherwise so zone-scoped
     * scenarios keep the classic id % zoneCount partition. */
    int nodeZone(sim::NodeId node) const override;
    void injectNodeFailure(sim::NodeId node) override
    {
        stopKubelet(node);
    }
    void injectNodeRecovery(sim::NodeId node) override
    {
        startKubelet(node);
    }
    void injectPartition(sim::NodeId node) override
    {
        partitionNode(node);
    }
    void injectPartitionHeal(sim::NodeId node) override
    {
        healPartition(node);
    }
    void injectDegrade(sim::NodeId node, double factor) override
    {
        degradeNode(node, factor);
    }
    void injectClockSkew(sim::NodeId node, double skewSeconds) override
    {
        setClockSkew(node, skewSeconds);
    }
    void injectApiOutageBegin() override { beginApiOutage(); }
    void injectApiOutageEnd() override { endApiOutage(); }

    // --- Agent verbs -----------------------------------------------
    /** Gracefully delete a pod and scale its deployment down. */
    void deletePod(const sim::PodRef &ref);

    /**
     * Ensure the pod is (re)started, optionally pinned to a node.
     * Clears scaled-down state; a running pod is left alone unless a
     * different pin is given (which triggers a migration).
     */
    void startPod(const sim::PodRef &ref,
                  std::optional<sim::NodeId> pinned = std::nullopt);

    /**
     * Migrate: start on the target, then delete the old instance (the
     * two-stage strategy of Appendix E). The target is validated like
     * the scheduler would: migrating onto a NotReady or full node is
     * rejected (the pin is kept for the next replan). A Starting pod
     * restarts its startup clock on the target; a Terminating pod
     * finishes its drain first and the pin re-places it afterwards.
     */
    void migratePod(const sim::PodRef &ref, sim::NodeId to);

    // --- Observation ------------------------------------------------
    bool isReady(sim::NodeId node) const;
    /** Live ready capacity (degrade-aware: a degraded node counts
     * capacity * factor). Omniscient — never frozen by an API outage;
     * controllers should use observedReadyCapacity(). */
    double readyCapacity() const;
    double totalCapacity() const;
    bool kubeletRunning(sim::NodeId node) const;
    bool isPartitioned(sim::NodeId node) const;
    /** Current degrade factor (1.0 = healthy). */
    double degradeFactor(sim::NodeId node) const;
    /** Current heartbeat clock skew in seconds (0 = honest). */
    double clockSkew(sim::NodeId node) const;
    /** Schedulable capacity: capacity * degradeFactor. */
    double effectiveCapacity(sim::NodeId node) const;
    bool apiOutageActive() const { return apiOutage_; }

    /**
     * Snapshot for planners: Ready nodes are healthy; Starting and
     * Running pods occupy their node. Pending/Terminating pods are
     * absent. Degraded nodes report max(effective capacity, current
     * usage) so existing placements stay representable. **Frozen**
     * while an API outage is active — this is the controller-facing
     * observation surface.
     */
    sim::ClusterState observedState() const;

    /** The same snapshot, never frozen — ground truth for oracles,
     * metrics sampling, and omniscient harness code. */
    sim::ClusterState liveState() const;

    /** Ready capacity as the controller sees it (frozen during an API
     * outage, degrade-aware otherwise). */
    double observedReadyCapacity() const;

    /**
     * Order-sensitive FNV-1a hash over every node's (ready, effective
     * capacity) as the controller sees it — frozen during an API
     * outage. Changes whenever the ready *set* changes, even when the
     * aggregate capacity is unchanged (equal-capacity swaps), so the
     * controller can replan on membership changes it would otherwise
     * miss.
     */
    uint64_t observedReadyFingerprint() const;

    // --- Forecast projections --------------------------------------
    /** Static vs. observed ready capacity of one forecast zone. */
    struct ZoneCapacity
    {
        double staticCapacity = 0.0; //!< nameplate capacity of the zone
        double readyCapacity = 0.0;  //!< observed (frozen-aware) ready
    };

    /**
     * Forecast failure-domain partition: the explicit zone labels when
     * the deployment declares topology, else the classic
     * id % fallbackZoneCount striping the scenario engine uses.
     */
    size_t forecastZoneCount(size_t fallbackZoneCount) const;
    size_t forecastZoneOf(sim::NodeId node,
                          size_t fallbackZoneCount) const;

    /**
     * Per-zone nameplate vs. observed ready capacity, indexed by
     * forecast zone. Built from the observation surface, so an API
     * outage freezes the ready side while the static side stays
     * nameplate truth.
     */
    std::vector<ZoneCapacity>
    observedZoneCapacities(size_t fallbackZoneCount) const;

    /**
     * Projected post-fault snapshot for an anticipated zone loss: the
     * observed state with every node of forecast zone @p zone failed
     * (pods on them evicted). Failing an already-failed node is a
     * no-op, so once the zone is actually down the projection
     * converges to the observed state itself — which is what lets a
     * pre-staged plan match byte-for-byte at trigger time.
     */
    sim::ClusterState projectedZoneLossState(
        size_t zone, size_t fallbackZoneCount) const;

    /**
     * Projected post-fault snapshot for gradual capacity decay: the
     * observed state with every capacity-deficient node (observed
     * below its nameplate — i.e. degraded) failed.
     */
    sim::ClusterState projectedDecayState() const;

    /** Pods currently serving traffic (Running only). */
    std::set<sim::PodRef> runningPods() const;

    /** Running/Starting/Pending counts (diagnostics). */
    size_t pendingCount() const;

    const Pod *pod(const sim::PodRef &ref) const;

    sim::SimTime now() const { return events_.now(); }

    // --- Invariant checker / diagnostics ---------------------------
    /** Invariant violations observed so far (0 in a healthy run). */
    size_t invariantViolations() const { return invariantViolations_; }

    /** Node-controller eviction sweeps performed on @p node (a flap
     * inside the grace period performs none; a long outage exactly
     * one). */
    size_t evictionEpisodes(sim::NodeId node) const;

    /** Total pods evicted back to Pending by node failures. */
    size_t evictedPodCount() const { return evictedPods_; }

    /**
     * Nodes whose observed state changed since the last drain: added,
     * kubelet stopped/started, Ready flipped, or a pod transitioned on
     * them. Returned sorted and deduplicated; the internal list is
     * cleared. The controller feeds this to
     * ResilienceScheme::noteDirtyNodes as an advisory blast-radius
     * hint for incremental replanning.
     */
    std::vector<sim::NodeId> drainDirtyNodes();

  private:
    struct NodeRec
    {
        sim::NodeId id = 0;
        double capacity = 0.0;
        /** Failure-domain label; static. */
        uint32_t zone = 0;
        bool kubeletRunning = true;
        bool ready = true;
        sim::SimTime lastHeartbeat = 0.0;
        /** Partitioned from the control plane (kubelet still alive). */
        bool partitioned = false;
        /** Slow-not-dead multiplier in (0, 1]; 1 = healthy. */
        double degradeFactor = 1.0;
        /** Heartbeat timestamps are stamped now + clockSkew. */
        double clockSkew = 0.0;
    };

    void scheduleHeartbeat(sim::NodeId node);
    /** Build the planner snapshot from live state. */
    sim::ClusterState buildState() const;
    /** Live (never frozen) ready-set fingerprint. */
    uint64_t readyFingerprint() const;
    void nodeControllerTick();
    void schedulerTick();

    /** Used capacity on a node from Starting/Running/Terminating pods
     * (incrementally maintained; the invariant sweep checks it against
     * a full rescan). */
    double usedOn(sim::NodeId node) const;

    /** The O(pods) rescan the incremental book is validated against. */
    double scanUsedOn(sim::NodeId node) const;

    /** Whether a phase occupies node capacity. */
    static bool occupiesNode(PodPhase phase);

    /**
     * Placement-policy check for the scheduler and migration
     * validation: placing @p pod on @p node must keep every
     * anti-affinity / zone-spread cap of the pod's service (and its
     * group) satisfied, counting the occupying pods currently on the
     * node and in its zone. O(pods) per query — kube clusters are
     * testbed-sized.
     */
    bool hasPlacementVacancy(const Pod &pod, sim::NodeId node) const;

    /** Pod lifecycle transition table (same-phase node moves allowed
     * for Starting/Running migrations). */
    static bool legalTransition(PodPhase from, PodPhase to);

    /**
     * The single mutation point for (phase, node): checks transition
     * legality and maintains the incremental per-node usage book.
     */
    void transition(Pod &pod, PodPhase to, sim::NodeId node);

    /** Begin starting a pod on a node (capacity is consumed now; any
     * armed start-completion timer is invalidated via the epoch). */
    void bindPod(Pod &pod, sim::NodeId node);

    /**
     * Evict (node failure): Starting/Running pods return to Pending
     * (the scheduler re-places them unless scaled down). Terminating
     * pods keep their graceful drain — they are already on the way
     * out, and scaled-down ones never come back.
     */
    void evictPodsOn(sim::NodeId node);

    void recordViolation(const std::string &what);
    /** Full invariant sweep; no-op unless config.validateInvariants. */
    void validateAfterEvent();

    /** Record a node-state change for drainDirtyNodes(). */
    void markDirty(sim::NodeId node) { dirtyNodes_.push_back(node); }

    sim::EventQueue &events_;
    KubeConfig config_;
    util::Rng rng_;

    std::vector<NodeRec> nodes_;
    /** Any node carries a nonzero zone label (topology declared). */
    bool hasExplicitZones_ = false;
    /** Any registered app declares a placement policy; false keeps
     * the scheduler's vacancy checks entirely off the hot path. */
    bool anyConstrained_ = false;
    std::vector<sim::Application> apps_;
    std::map<sim::PodRef, Pod> pods_;
    /** Monotone counter to invalidate stale start-completion events. */
    std::map<sim::PodRef, uint64_t> podEpoch_;
    /** Incremental Starting+Running+Terminating usage per node. */
    std::vector<double> nodeUsed_;
    std::vector<size_t> nodeEvictionEpisodes_;
    /** Unsorted changed-node log, drained by drainDirtyNodes(). */
    std::vector<sim::NodeId> dirtyNodes_;
    size_t evictedPods_ = 0;
    size_t invariantViolations_ = 0;
    /** API-outage freeze: observation surface captured at begin. */
    bool apiOutage_ = false;
    sim::ClusterState frozenState_;
    double frozenReadyCapacity_ = 0.0;
    uint64_t frozenFingerprint_ = 0;
    /** Scratch for the validation sweep (avoids per-event allocs). */
    std::vector<double> validateScratch_;

    /** obs handles, resolved once at construction (per-phase pod
     * transition counters + lifecycle/scheduler/node counters). */
    struct ObsHandles
    {
        obs::Counter *transitions[4] = {nullptr, nullptr, nullptr,
                                        nullptr};
        obs::Counter *binds = nullptr;
        obs::Counter *evictedPods = nullptr;
        obs::Counter *evictionEpisodes = nullptr;
        obs::Counter *invariantViolations = nullptr;
        obs::Counter *migrationsRejected = nullptr;
        obs::Counter *nodeNotReady = nullptr;
        obs::Counter *nodeReady = nullptr;
    };
    ObsHandles obs_;
};

} // namespace phoenix::kube

#endif // PHOENIX_KUBE_KUBE_H
