/**
 * @file
 * Directed-graph library.
 *
 * The Phoenix paper stores application dependency graphs as NetworkX
 * DiGraph objects. This is the C++ substrate: a compact adjacency-list
 * digraph over dense integer node ids with the subset of operations the
 * planner and workload analysis need (sources, topological sort,
 * reachability, subgraphs, single-upstream analysis, cycle detection).
 */

#ifndef PHOENIX_GRAPH_DIGRAPH_H
#define PHOENIX_GRAPH_DIGRAPH_H

#include <cstdint>
#include <optional>
#include <vector>

namespace phoenix::graph {

using NodeId = uint32_t;

/**
 * Directed graph over node ids 0..nodeCount()-1. Parallel edges are
 * collapsed; self loops are rejected. Node removal is not supported
 * (dependency graphs are append-only); use subgraph() to restrict.
 */
class DiGraph
{
  public:
    DiGraph() = default;
    explicit DiGraph(size_t node_count);

    /** Append a new node; returns its id. */
    NodeId addNode();

    /** Ensure at least @p count nodes exist. */
    void ensureNodes(size_t count);

    /**
     * Add edge u -> v. Returns false (and leaves the graph unchanged)
     * for self loops, out-of-range endpoints, or duplicate edges.
     */
    bool addEdge(NodeId u, NodeId v);

    bool hasEdge(NodeId u, NodeId v) const;

    size_t nodeCount() const { return succ_.size(); }
    size_t edgeCount() const { return edgeCount_; }

    const std::vector<NodeId> &successors(NodeId u) const;
    const std::vector<NodeId> &predecessors(NodeId u) const;

    size_t outDegree(NodeId u) const { return successors(u).size(); }
    size_t inDegree(NodeId u) const { return predecessors(u).size(); }

    /** Nodes with no inbound edges (the DG entry microservices). */
    std::vector<NodeId> sources() const;

    /** Nodes with no outbound edges. */
    std::vector<NodeId> sinks() const;

    /**
     * Kahn topological order; std::nullopt when the graph has a cycle.
     */
    std::optional<std::vector<NodeId>> topologicalOrder() const;

    bool isAcyclic() const { return topologicalOrder().has_value(); }

    /** All nodes reachable from @p start (inclusive), DFS order. */
    std::vector<NodeId> reachableFrom(NodeId start) const;

    /** Nodes reachable from any of @p starts (inclusive). */
    std::vector<NodeId>
    reachableFrom(const std::vector<NodeId> &starts) const;

    /**
     * Induced subgraph on @p keep. Returns the new graph plus the map
     * from old node id to new node id (nullopt-free: dropped nodes map
     * to kInvalidNode).
     */
    static constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
    DiGraph subgraph(const std::vector<NodeId> &keep,
                     std::vector<NodeId> *old_to_new = nullptr) const;

    /**
     * Fraction of non-source nodes whose in-degree is exactly one —
     * the paper's "single upstream caller" share (82% across the
     * Alibaba applications).
     */
    double singleUpstreamFraction() const;

  private:
    std::vector<std::vector<NodeId>> succ_;
    std::vector<std::vector<NodeId>> pred_;
    size_t edgeCount_ = 0;
};

/**
 * CSR view of a DiGraph with every successor list pre-sorted by
 * (key[succ], succ) ascending.
 *
 * The planner's priority estimator visits each node's children in
 * criticality order; doing that on the raw adjacency means a vector
 * copy plus a std::sort per DFS visit. Building this view once per
 * (graph, key assignment) moves all of that work into a single
 * counting-sort pass: nodes are appended to their predecessors' lists
 * in global (key, id) order, so each list comes out sorted for free.
 * build() reuses every internal buffer, so rebuilding for the same
 * application each planning round allocates nothing in steady state.
 */
class SortedCsr
{
  public:
    /**
     * (Re)build from @p g and per-node integer @p keys
     * (keys.size() == g.nodeCount()).
     */
    void build(const DiGraph &g, const std::vector<int> &keys);

    size_t nodeCount() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

    /** Successors of @p u, ascending by (key, id). */
    const NodeId *begin(NodeId u) const { return adj_.data() + offsets_[u]; }
    const NodeId *end(NodeId u) const { return adj_.data() + offsets_[u + 1]; }
    size_t outDegree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

    /** All nodes, ascending by (key, id) — the counting-sort order. */
    const std::vector<NodeId> &nodesByKey() const { return order_; }

  private:
    std::vector<uint32_t> offsets_; //!< node -> first slot in adj_
    std::vector<NodeId> adj_;       //!< concatenated successor lists
    std::vector<NodeId> order_;     //!< nodes sorted by (key, id)
    std::vector<uint32_t> cursor_;  //!< scratch: fill position per node
    std::vector<uint32_t> counts_;  //!< scratch: counting-sort histogram
};

} // namespace phoenix::graph

#endif // PHOENIX_GRAPH_DIGRAPH_H
