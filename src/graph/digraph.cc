#include "digraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace phoenix::graph {

DiGraph::DiGraph(size_t node_count)
    : succ_(node_count), pred_(node_count)
{
}

NodeId
DiGraph::addNode()
{
    succ_.emplace_back();
    pred_.emplace_back();
    return static_cast<NodeId>(succ_.size() - 1);
}

void
DiGraph::ensureNodes(size_t count)
{
    if (succ_.size() < count) {
        succ_.resize(count);
        pred_.resize(count);
    }
}

bool
DiGraph::addEdge(NodeId u, NodeId v)
{
    if (u == v || u >= succ_.size() || v >= succ_.size())
        return false;
    if (hasEdge(u, v))
        return false;
    succ_[u].push_back(v);
    pred_[v].push_back(u);
    ++edgeCount_;
    return true;
}

bool
DiGraph::hasEdge(NodeId u, NodeId v) const
{
    if (u >= succ_.size() || v >= succ_.size())
        return false;
    const auto &out = succ_[u];
    return std::find(out.begin(), out.end(), v) != out.end();
}

const std::vector<NodeId> &
DiGraph::successors(NodeId u) const
{
    assert(u < succ_.size());
    return succ_[u];
}

const std::vector<NodeId> &
DiGraph::predecessors(NodeId u) const
{
    assert(u < pred_.size());
    return pred_[u];
}

std::vector<NodeId>
DiGraph::sources() const
{
    std::vector<NodeId> out;
    for (NodeId u = 0; u < pred_.size(); ++u) {
        if (pred_[u].empty())
            out.push_back(u);
    }
    return out;
}

std::vector<NodeId>
DiGraph::sinks() const
{
    std::vector<NodeId> out;
    for (NodeId u = 0; u < succ_.size(); ++u) {
        if (succ_[u].empty())
            out.push_back(u);
    }
    return out;
}

std::optional<std::vector<NodeId>>
DiGraph::topologicalOrder() const
{
    std::vector<size_t> indeg(succ_.size());
    for (NodeId u = 0; u < pred_.size(); ++u)
        indeg[u] = pred_[u].size();

    std::deque<NodeId> ready;
    for (NodeId u = 0; u < indeg.size(); ++u) {
        if (indeg[u] == 0)
            ready.push_back(u);
    }

    std::vector<NodeId> order;
    order.reserve(succ_.size());
    while (!ready.empty()) {
        const NodeId u = ready.front();
        ready.pop_front();
        order.push_back(u);
        for (NodeId v : succ_[u]) {
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }

    if (order.size() != succ_.size())
        return std::nullopt;
    return order;
}

std::vector<NodeId>
DiGraph::reachableFrom(NodeId start) const
{
    return reachableFrom(std::vector<NodeId>{start});
}

std::vector<NodeId>
DiGraph::reachableFrom(const std::vector<NodeId> &starts) const
{
    std::vector<bool> seen(succ_.size(), false);
    std::vector<NodeId> stack;
    std::vector<NodeId> out;
    for (NodeId s : starts) {
        if (s < succ_.size() && !seen[s]) {
            seen[s] = true;
            stack.push_back(s);
        }
    }
    while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        out.push_back(u);
        for (NodeId v : succ_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return out;
}

DiGraph
DiGraph::subgraph(const std::vector<NodeId> &keep,
                  std::vector<NodeId> *old_to_new) const
{
    std::vector<NodeId> map(succ_.size(), kInvalidNode);
    DiGraph sub;
    for (NodeId u : keep) {
        if (u < succ_.size() && map[u] == kInvalidNode)
            map[u] = sub.addNode();
    }
    for (NodeId u = 0; u < succ_.size(); ++u) {
        if (map[u] == kInvalidNode)
            continue;
        for (NodeId v : succ_[u]) {
            if (map[v] != kInvalidNode)
                sub.addEdge(map[u], map[v]);
        }
    }
    if (old_to_new)
        *old_to_new = std::move(map);
    return sub;
}

double
DiGraph::singleUpstreamFraction() const
{
    size_t non_source = 0;
    size_t single = 0;
    for (NodeId u = 0; u < pred_.size(); ++u) {
        if (pred_[u].empty())
            continue;
        ++non_source;
        if (pred_[u].size() == 1)
            ++single;
    }
    if (non_source == 0)
        return 0.0;
    return static_cast<double>(single) / static_cast<double>(non_source);
}

void
SortedCsr::build(const DiGraph &g, const std::vector<int> &keys)
{
    const size_t n = g.nodeCount();
    assert(keys.size() == n);

    // Nodes in (key, id) ascending order. Keys are small criticality
    // tags in practice, so a counting sort over [minKey, maxKey] is
    // both O(n) and trivially stable; fall back to a comparison sort
    // if someone feeds a pathological key range.
    order_.resize(n);
    int min_key = 0;
    int max_key = 0;
    for (size_t u = 0; u < n; ++u) {
        min_key = u == 0 ? keys[u] : std::min(min_key, keys[u]);
        max_key = u == 0 ? keys[u] : std::max(max_key, keys[u]);
    }
    const size_t range =
        n == 0 ? 0
               : static_cast<size_t>(static_cast<int64_t>(max_key) -
                                     static_cast<int64_t>(min_key)) +
                     1;
    if (range <= 4 * n + 64) {
        counts_.assign(range + 1, 0);
        for (size_t u = 0; u < n; ++u)
            ++counts_[static_cast<size_t>(keys[u] - min_key) + 1];
        for (size_t k = 1; k < counts_.size(); ++k)
            counts_[k] += counts_[k - 1];
        // Ascending id within a key bucket because u runs ascending.
        for (NodeId u = 0; u < n; ++u)
            order_[counts_[static_cast<size_t>(keys[u] - min_key)]++] = u;
    } else {
        for (NodeId u = 0; u < n; ++u)
            order_[u] = u;
        std::sort(order_.begin(), order_.end(),
                  [&](NodeId a, NodeId b) {
                      if (keys[a] != keys[b])
                          return keys[a] < keys[b];
                      return a < b;
                  });
    }

    offsets_.assign(n + 1, 0);
    for (NodeId u = 0; u < n; ++u)
        offsets_[u + 1] =
            offsets_[u] + static_cast<uint32_t>(g.outDegree(u));
    adj_.resize(g.edgeCount());
    cursor_.assign(offsets_.begin(), offsets_.end() - (n ? 1 : 0));

    // Appending each node (taken in global sorted order) to all of its
    // predecessors' lists leaves every list sorted by (key, id).
    for (NodeId v : order_) {
        for (NodeId p : g.predecessors(v))
            adj_[cursor_[p]++] = v;
    }
}

} // namespace phoenix::graph
