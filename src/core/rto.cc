#include "rto.h"

#include <algorithm>

namespace phoenix::core {

using sim::ActiveSet;
using sim::AppId;
using sim::Criticality;
using sim::SimTime;

void
RtoTracker::record(SimTime time, const ActiveSet &active)
{
    samples_.emplace_back(time, active);
}

bool
RtoTracker::levelActive(AppId app, Criticality level,
                        const ActiveSet &active) const
{
    if (app >= apps_.size())
        return false;
    for (const auto &ms : apps_[app].services) {
        if (ms.criticality <= level && !active[app][ms.id])
            return false;
    }
    return true;
}

double
RtoTracker::recoveryTime(AppId app, Criticality level,
                         SimTime failure_time) const
{
    for (const auto &[time, active] : samples_) {
        if (time < failure_time)
            continue;
        if (levelActive(app, level, active))
            return time - failure_time;
    }
    return -1.0;
}

std::vector<RtoOutcome>
RtoTracker::evaluate(const std::map<AppId, RtoPolicy> &policies,
                     SimTime failure_time) const
{
    std::vector<RtoOutcome> outcomes;
    for (const auto &[app, policy] : policies) {
        for (const auto &[level, bound] : policy.maxSeconds) {
            RtoOutcome outcome;
            outcome.app = app;
            outcome.level = level;
            outcome.boundSeconds = bound;
            outcome.recoverySeconds =
                recoveryTime(app, level, failure_time);
            outcome.violated = outcome.recoverySeconds < 0.0 ||
                               outcome.recoverySeconds > bound;
            outcomes.push_back(outcome);
        }
    }
    return outcomes;
}

} // namespace phoenix::core
