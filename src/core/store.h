/**
 * @file
 * Persistent configuration store (§5 "Fault Tolerance").
 *
 * Phoenix keeps criticality tags and dependency graphs in memory but
 * also persists them to a storage service; after a crash it restarts
 * on a healthy node, pulls the inputs back, and resumes. This module
 * is that store: a compact, versioned, line-oriented text codec for
 * application descriptors (services, tags, replicas, DG edges,
 * prices, subscription flags) plus load/save helpers.
 *
 * The format is deliberately diff-friendly:
 *
 *   phoenix-store v1
 *   app <id> <name> <price> <enabled> <hasDag>
 *   ms <id> <name> <cpu> <criticality> <replicas> <quorum>
 *   edge <from> <to>
 *   end
 */

#ifndef PHOENIX_CORE_STORE_H
#define PHOENIX_CORE_STORE_H

#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace phoenix::core {

/** Serialize application descriptors to the store format. */
std::string serializeApps(const std::vector<sim::Application> &apps);

/**
 * Parse a store document. Returns nullopt (and fills @p error when
 * non-null) on malformed input; never partially succeeds.
 */
std::optional<std::vector<sim::Application>>
deserializeApps(const std::string &text, std::string *error = nullptr);

/** Write the store to a file; returns false on I/O failure. */
bool saveAppsToFile(const std::vector<sim::Application> &apps,
                    const std::string &path);

/** Read a store file; nullopt on I/O or parse failure. */
std::optional<std::vector<sim::Application>>
loadAppsFromFile(const std::string &path, std::string *error = nullptr);

} // namespace phoenix::core

#endif // PHOENIX_CORE_STORE_H
