#include "schemes.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "core/constraints.h"
#include "lp/branch_bound.h"
#include "lp/waterfill.h"
#include "util/log.h"
#include "util/sorted_kv.h"

namespace phoenix::core {

using sim::Application;
using sim::ClusterState;
using sim::MsId;
using sim::NodeId;
using sim::PodRef;

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Per-app activation order ignoring criticality: topological order when
 * a DG exists (so activated services are reachable), id order otherwise.
 */
std::vector<MsId>
criticalityBlindOrder(const Application &app)
{
    if (app.hasDependencyGraph) {
        if (auto topo = app.dag.topologicalOrder())
            return *topo;
    }
    std::vector<MsId> order(app.services.size());
    for (MsId m = 0; m < order.size(); ++m)
        order[m] = m;
    return order;
}

/** Priority-objective used by the Priority baseline: tag only. */
class TagOnlyObjective : public OperatorObjective
{
  public:
    std::string name() const override { return "tag-only"; }
    double
    key(const Application &app, const sim::Microservice &ms,
        double) const override
    {
        return static_cast<double>(effectiveCriticality(app, ms));
    }
};

} // namespace

PhoenixScheme::PhoenixScheme(Objective objective,
                             PlannerOptions planner_options,
                             PackingOptions packing_options)
    : objective_(objective), plannerOptions_(planner_options),
      packingOptions_(packing_options), planner_(planner_options),
      packer_(packing_options)
{
    auto &registry = obs::Registry::global();
    obs_.replansIncremental =
        &registry.counter("core.replans_incremental");
    obs_.shardsPlanned = &registry.counter("core.shards_planned");
    obs_.dirtyZones = &registry.counter("core.dirty_zones");
    obs_.reconcileSeconds =
        &registry.histogram("core.reconcile_seconds");
}

void
PhoenixScheme::noteDirtyNodes(const std::vector<NodeId> &nodes)
{
    if (nodes.empty())
        return;
    // Count distinct capacity-index zones touched by the delta (every
    // node is its own zone when the index is unsharded). The hint list
    // arrives sorted and deduplicated, but zone residues are not
    // monotone in node id, so count distinct residues explicitly.
    const size_t zones = packingOptions_.zoneShards;
    size_t dirty;
    if (zones > 1) {
        std::vector<uint8_t> seen(zones, 0);
        dirty = 0;
        for (NodeId id : nodes) {
            if (!seen[id % zones]) {
                seen[id % zones] = 1;
                ++dirty;
            }
        }
    } else {
        dirty = nodes.size();
    }
    obs_.dirtyZones->add(dirty);
}

SchemeResult
PhoenixScheme::apply(const std::vector<Application> &apps,
                     const ClusterState &current)
{
    SchemeResult result;
    const auto plan_start = Clock::now();

    std::unique_ptr<OperatorObjective> objective;
    if (objective_ == Objective::Fair)
        objective = std::make_unique<FairObjective>();
    else
        objective = std::make_unique<CostObjective>();

    planner_.planInto(apps, *objective, current.healthyCapacity(),
                      result.plan);
    result.planOps = planner_.lastOps();
    result.planSeconds = seconds(plan_start);
    if (planner_.lastIncrementalReuse())
        obs_.replansIncremental->inc();
    if (planner_.lastShardsPlanned() > 0)
        obs_.shardsPlanned->add(planner_.lastShardsPlanned());

    const auto pack_start = Clock::now();
    result.pack = packer_.pack(apps, current, result.plan);
    result.packSeconds = seconds(pack_start);
    obs_.reconcileSeconds->observe(result.pack.reconcileSeconds);
    return result;
}

SchemeResult
FairScheme::apply(const std::vector<Application> &apps,
                  const ClusterState &current)
{
    SchemeResult result;
    const auto plan_start = Clock::now();

    std::vector<double> demands;
    demands.reserve(apps.size());
    for (const auto &app : apps)
        demands.push_back(app.totalDemand());
    const auto share =
        lp::waterFill(demands, current.healthyCapacity());

    // Within each app: dependency/id order, cut at the fair share.
    // The cut is head-of-line: the first microservice that does not
    // fit the remaining quota stops the app (microservices are
    // indivisible and Fair cannot activate beyond the share — the
    // source of its high negative deviation in §6.2; skipping ahead
    // would also activate services whose upstream was skipped).
    std::vector<std::vector<MsId>> lists(apps.size());
    for (size_t a = 0; a < apps.size(); ++a) {
        double used = 0.0;
        for (MsId m : criticalityBlindOrder(apps[a])) {
            const double need = apps[a].services[m].totalCpu();
            if (used + need > share[a] + 1e-9)
                break;
            used += need;
            lists[a].push_back(m);
        }
    }

    // Round-robin interleave so no app's whole list dominates packing
    // priority.
    bool more = true;
    for (size_t i = 0; more; ++i) {
        more = false;
        for (size_t a = 0; a < apps.size(); ++a) {
            if (i < lists[a].size()) {
                result.plan.push_back(
                    PodRef{static_cast<sim::AppId>(a), lists[a][i]});
                more = true;
            }
        }
    }
    result.planSeconds = seconds(plan_start);

    const auto pack_start = Clock::now();
    result.pack = packer_.pack(apps, current, result.plan);
    result.packSeconds = seconds(pack_start);
    return result;
}

SchemeResult
PriorityScheme::apply(const std::vector<Application> &apps,
                      const ClusterState &current)
{
    SchemeResult result;
    const auto plan_start = Clock::now();

    TagOnlyObjective objective;
    planner_.planInto(apps, objective, current.healthyCapacity(),
                      result.plan);
    result.planOps = planner_.lastOps();
    result.planSeconds = seconds(plan_start);

    const auto pack_start = Clock::now();
    result.pack = packer_.pack(apps, current, result.plan);
    result.packSeconds = seconds(pack_start);
    return result;
}

SchemeResult
DefaultScheme::apply(const std::vector<Application> &apps,
                     const ClusterState &current)
{
    SchemeResult result;
    const auto start = Clock::now();
    result.pack.state = current;
    ClusterState &state = result.pack.state;

    // Spread placement: most-remaining node first (Kubernetes'
    // LeastAllocated scoring), restart order = pod id order, skip what
    // does not fit (stays Pending). No deletions, no migrations.
    // Topology-constrained pods walk past nodes without placement
    // vacancy (anti-affinity / zone caps), like kube-scheduler's
    // filter phase; unconstrained pods keep the single-probe path.
    util::SortedKv<double, NodeId> by_remaining;
    for (NodeId id : state.healthyNodes())
        by_remaining.insert(state.remaining(id), id);
    VacancyAllocator vacancy;
    vacancy.build(apps, state);

    result.pack.complete = true;
    for (size_t a = 0; a < apps.size(); ++a) {
        for (const auto &ms : apps[a].services) {
            const int replicas = std::max(ms.replicas, 1);
            bool all = true;
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{static_cast<sim::AppId>(a), ms.id,
                                 static_cast<uint32_t>(r)};
                if (state.isActive(pod))
                    continue;
                std::optional<std::pair<double, NodeId>> chosen;
                if (!vacancy.constrained(pod)) {
                    const auto top = by_remaining.largest();
                    if (top && top->first + 1e-9 >= ms.cpu)
                        chosen = *top;
                } else {
                    for (auto it = by_remaining.rbegin();
                         it != by_remaining.rend(); ++it) {
                        if (it->first + 1e-9 < ms.cpu)
                            break; // the rest are smaller
                        if (!vacancy.canPlace(pod, it->second))
                            continue;
                        chosen = *it;
                        break;
                    }
                }
                if (!chosen) {
                    result.pack.complete = false;
                    all = false;
                    continue; // pending
                }
                by_remaining.erase(chosen->first, chosen->second);
                state.place(pod, chosen->second, ms.cpu);
                vacancy.onPlace(pod, chosen->second);
                by_remaining.insert(state.remaining(chosen->second),
                                    chosen->second);
                Action action;
                action.kind = ActionKind::Restart;
                action.pod = pod;
                action.to = chosen->second;
                result.pack.actions.push_back(action);
            }
            if (all)
                ++result.pack.placed;
        }
    }
    result.planSeconds = seconds(start);
    return result;
}

SchemeResult
LpScheme::apply(const std::vector<Application> &apps,
                const ClusterState &current)
{
    SchemeResult result;
    const auto start = Clock::now();

    const auto healthy = current.healthyNodes();
    size_t total_ms = 0;
    for (const auto &app : apps) {
        total_ms += app.services.size();
        for (const auto &ms : app.services) {
            if (ms.replicas > 1) {
                // The ILP formulation places each microservice on one
                // node (Eq. 3); the Appendix D multi-replica extension
                // is out of its scope.
                PHOENIX_WARN(name() << ": multi-replica microservices "
                                       "not supported by the ILP");
                result.failed = true;
                result.pack.state = current;
                result.planSeconds = seconds(start);
                return result;
            }
        }
    }
    if (total_ms * healthy.size() > options_.maxPlacementVars) {
        PHOENIX_WARN(name() << ": instance too large ("
                            << total_ms * healthy.size()
                            << " placement vars); giving up");
        result.failed = true;
        result.pack.state = current;
        result.planSeconds = seconds(start);
        return result;
    }

    lp::Model model;

    // x_ij: activation, y_ijk: placement.
    std::vector<std::vector<lp::VarId>> x(apps.size());
    std::vector<std::vector<std::vector<lp::VarId>>> y(apps.size());
    for (size_t a = 0; a < apps.size(); ++a) {
        x[a].resize(apps[a].services.size());
        y[a].resize(apps[a].services.size());
        for (MsId m = 0; m < apps[a].services.size(); ++m) {
            x[a][m] = model.addBinaryVar();
            y[a][m].resize(healthy.size());
            for (size_t k = 0; k < healthy.size(); ++k)
                y[a][m][k] = model.addBinaryVar();
        }
    }

    // Eq. 1 — intra-app criticality order, encoded per level with an
    // auxiliary z_c: z_c <= x_j (j at level c), x_k <= z_c (k at the
    // next level). z definitions are kept for warm-start construction
    // (z_c = min over its level's x).
    std::vector<std::pair<lp::VarId, std::vector<lp::VarId>>> z_defs;
    for (size_t a = 0; a < apps.size(); ++a) {
        std::map<int, std::vector<MsId>> levels;
        for (const auto &ms : apps[a].services)
            levels[ms.criticality].push_back(ms.id);
        lp::VarId prev_z = -1;
        for (auto it = levels.begin(); it != levels.end(); ++it) {
            lp::VarId z = model.addVar(0.0, 1.0);
            std::vector<lp::VarId> members;
            for (MsId m : it->second) {
                members.push_back(x[a][m]);
                // z <= x_m
                model.addConstraint({{z, 1.0}, {x[a][m], -1.0}},
                                    lp::Relation::LessEq, 0.0);
                if (prev_z >= 0) {
                    // x_m <= prev_z
                    model.addConstraint({{x[a][m], 1.0}, {prev_z, -1.0}},
                                        lp::Relation::LessEq, 0.0);
                }
            }
            z_defs.emplace_back(z, std::move(members));
            prev_z = z;
        }
    }

    // Eq. 2 — topological constraint.
    for (size_t a = 0; a < apps.size(); ++a) {
        if (!apps[a].hasDependencyGraph)
            continue;
        for (MsId m = 0; m < apps[a].services.size(); ++m) {
            const auto &preds = apps[a].dag.predecessors(m);
            if (preds.empty())
                continue;
            lp::LinExpr expr;
            for (MsId p : preds)
                expr.push_back({x[a][p], 1.0});
            expr.push_back({x[a][m], -1.0});
            model.addConstraint(expr, lp::Relation::GreaterEq, 0.0);
        }
    }

    // Eq. 3 — each activated microservice placed on exactly one node.
    for (size_t a = 0; a < apps.size(); ++a) {
        for (MsId m = 0; m < apps[a].services.size(); ++m) {
            lp::LinExpr expr;
            for (size_t k = 0; k < healthy.size(); ++k)
                expr.push_back({y[a][m][k], 1.0});
            expr.push_back({x[a][m], -1.0});
            model.addConstraint(expr, lp::Relation::Equal, 0.0);
        }
    }

    // Eq. 4 — node capacities.
    for (size_t k = 0; k < healthy.size(); ++k) {
        lp::LinExpr expr;
        for (size_t a = 0; a < apps.size(); ++a) {
            for (MsId m = 0; m < apps[a].services.size(); ++m) {
                expr.push_back(
                    {y[a][m][k], apps[a].services[m].totalCpu()});
            }
        }
        model.addConstraint(expr, lp::Relation::LessEq,
                            current.node(healthy[k]).capacity);
    }

    if (objective_ == Objective::Cost) {
        lp::LinExpr obj;
        for (size_t a = 0; a < apps.size(); ++a) {
            for (MsId m = 0; m < apps[a].services.size(); ++m) {
                obj.push_back({x[a][m],
                               apps[a].pricePerUnit *
                                   apps[a].services[m].totalCpu()});
            }
        }
        model.setObjective(obj, true);
    } else {
        // LPFair (App. C): maximize F with per-app allocation >= F and
        // <= the pre-computed water-fill share; a small usage bonus
        // breaks ties toward fuller clusters.
        std::vector<double> demands;
        for (const auto &app : apps)
            demands.push_back(app.totalDemand());
        const auto share =
            lp::waterFill(demands, current.healthyCapacity());

        lp::VarId f = model.addVar(0.0, lp::kInfinity);
        fVar_ = f;
        lp::LinExpr obj{{f, 1.0}};
        double total_demand = 1.0;
        for (double d : demands)
            total_demand += d;
        for (size_t a = 0; a < apps.size(); ++a) {
            lp::LinExpr usage;
            for (MsId m = 0; m < apps[a].services.size(); ++m) {
                usage.push_back(
                    {x[a][m], apps[a].services[m].totalCpu()});
                obj.push_back({x[a][m],
                               0.001 *
                                   apps[a].services[m].totalCpu() /
                                   total_demand});
            }
            lp::LinExpr lower = usage;
            lower.push_back({f, -1.0});
            model.addConstraint(lower, lp::Relation::GreaterEq, 0.0);
            model.addConstraint(usage, lp::Relation::LessEq,
                                share[a] + 1e-6);
        }
        model.setObjective(obj, true);
    }

    lp::MilpOptions milp;
    milp.timeLimitSec = options_.timeLimitSec;
    milp.maxNodes = options_.maxNodes;
    milp.lp.timeLimitSec = options_.timeLimitSec;

    // Warm-start branch & bound from the Phoenix heuristic with the
    // matching objective: the LP then acts as an anytime-improving
    // exact refinement instead of searching for a first incumbent.
    {
        PhoenixScheme heuristic(objective_);
        const SchemeResult seed = heuristic.apply(apps, current);
        std::vector<double> warm(model.varCount(), 0.0);
        std::map<sim::NodeId, size_t> node_index;
        for (size_t k = 0; k < healthy.size(); ++k)
            node_index[healthy[k]] = k;
        for (const auto &[pod, node] : seed.pack.state.assignment()) {
            auto it = node_index.find(node);
            if (it == node_index.end())
                continue;
            warm[x[pod.app][pod.ms]] = 1.0;
            warm[y[pod.app][pod.ms][it->second]] = 1.0;
        }
        for (const auto &[z, members] : z_defs) {
            double level_min = 1.0;
            for (lp::VarId member : members)
                level_min = std::min(level_min, warm[member]);
            warm[z] = level_min;
        }
        if (objective_ == Objective::Fair && fVar_ >= 0) {
            // The relaxed PhoenixFair allocation may exceed the strict
            // water-fill cap of LPFair; trim each app back to its
            // share by dropping its lowest-ranked activations.
            std::vector<double> demands;
            for (const auto &app : apps)
                demands.push_back(app.totalDemand());
            const auto share = lp::waterFill(
                demands, current.healthyCapacity());
            std::vector<double> usage(apps.size(), 0.0);
            for (size_t a = 0; a < apps.size(); ++a) {
                for (MsId m = 0; m < apps[a].services.size(); ++m) {
                    if (warm[x[a][m]] > 0.5)
                        usage[a] += apps[a].services[m].totalCpu();
                }
            }
            for (auto it = seed.plan.rbegin(); it != seed.plan.rend();
                 ++it) {
                const auto &pod = *it;
                if (usage[pod.app] <= share[pod.app] + 1e-9)
                    continue;
                if (warm[x[pod.app][pod.ms]] < 0.5)
                    continue;
                warm[x[pod.app][pod.ms]] = 0.0;
                for (size_t k = 0; k < healthy.size(); ++k)
                    warm[y[pod.app][pod.ms][k]] = 0.0;
                usage[pod.app] -=
                    apps[pod.app].services[pod.ms].totalCpu();
            }

            // F = the minimum per-app allocation in the seed.
            double f = lp::kInfinity;
            for (size_t a = 0; a < apps.size(); ++a) {
                double usage = 0.0;
                for (MsId m = 0; m < apps[a].services.size(); ++m) {
                    if (warm[x[a][m]] > 0.5)
                        usage += apps[a].services[m].totalCpu();
                }
                f = std::min(f, usage);
            }
            warm[fVar_] = std::isfinite(f) ? f : 0.0;
        }
        if (model.isFeasible(warm, true))
            milp.warmStart = std::move(warm);
    }
    const lp::Solution solution = lp::solveMilp(model, milp);
    result.planSeconds = seconds(start);

    if (!solution.hasSolution()) {
        result.failed = true;
        result.pack.state = current;
        return result;
    }
    result.provenOptimal = solution.status == lp::SolveStatus::Optimal;

    // Materialize the target state from y.
    ClusterState target = current;
    for (const auto &[pod, node] : std::map<PodRef, NodeId>(
             current.assignment().begin(), current.assignment().end())) {
        (void)node;
        target.evict(pod);
    }
    result.pack.complete = true;
    for (size_t a = 0; a < apps.size(); ++a) {
        for (MsId m = 0; m < apps[a].services.size(); ++m) {
            if (solution.values[x[a][m]] < 0.5)
                continue;
            for (size_t k = 0; k < healthy.size(); ++k) {
                if (solution.values[y[a][m][k]] > 0.5) {
                    const bool ok = target.place(
                        PodRef{static_cast<sim::AppId>(a), m},
                        healthy[k], apps[a].services[m].totalCpu());
                    if (ok)
                        ++result.pack.placed;
                    break;
                }
            }
        }
    }
    result.pack.actions = diffStates(apps, current, target);
    result.pack.state = std::move(target);
    return result;
}

std::vector<Action>
diffStates(const std::vector<Application> &apps, const ClusterState &from,
           const ClusterState &to)
{
    (void)apps;
    std::vector<Action> actions;
    // The agent executes this sequence one action at a time, so every
    // step must be applicable to the state produced by the previous
    // steps — a migration into a node that is only vacated later in
    // the list would be rejected by the kubelet. Simulate on a
    // scratch copy and only emit actions that apply cleanly.
    ClusterState scratch = from;

    // Sorted snapshots: assignment() iteration order is not
    // deterministic, action lists must be.
    const std::map<PodRef, NodeId> before(from.assignment().begin(),
                                          from.assignment().end());
    const std::map<PodRef, NodeId> after(to.assignment().begin(),
                                         to.assignment().end());

    // Deletes first: they only free capacity.
    for (const auto &[pod, node] : before) {
        if (!to.isActive(pod)) {
            scratch.evict(pod);
            Action a;
            a.kind = ActionKind::Delete;
            a.pod = pod;
            a.from = node;
            actions.push_back(a);
        }
    }

    // Migrations: emit a move once its destination has room. When no
    // pending move can proceed the remainder forms a capacity cycle
    // (e.g. a swap between two full nodes); break it by deleting one
    // pod now and restarting it at its destination at the end.
    struct Move
    {
        PodRef pod;
        NodeId src;
        NodeId dst;
        double cpu;
    };
    std::vector<Move> pending;
    for (const auto &[pod, node] : before) {
        const auto now = to.nodeOf(pod);
        if (now && *now != node)
            pending.push_back(Move{pod, node, *now, to.podCpu(pod)});
    }
    std::vector<Move> held;
    while (!pending.empty()) {
        bool progressed = false;
        for (auto it = pending.begin(); it != pending.end();) {
            if (scratch.remaining(it->dst) + 1e-9 >= it->cpu) {
                scratch.evict(it->pod);
                scratch.place(it->pod, it->dst, it->cpu);
                Action a;
                a.kind = ActionKind::Migrate;
                a.pod = it->pod;
                a.from = it->src;
                a.to = it->dst;
                actions.push_back(a);
                it = pending.erase(it);
                progressed = true;
            } else {
                ++it;
            }
        }
        if (!progressed) {
            const Move move = pending.front();
            pending.erase(pending.begin());
            scratch.evict(move.pod);
            Action a;
            a.kind = ActionKind::Delete;
            a.pod = move.pod;
            a.from = move.src;
            actions.push_back(a);
            held.push_back(move);
        }
    }

    // Restarts last: `scratch` is now a sub-assignment of the (
    // feasible) target, so every remaining placement fits.
    for (const auto &[pod, node] : after) {
        if (!from.isActive(pod)) {
            Action a;
            a.kind = ActionKind::Restart;
            a.pod = pod;
            a.to = node;
            actions.push_back(a);
        }
    }
    for (const Move &move : held) {
        Action a;
        a.kind = ActionKind::Restart;
        a.pod = move.pod;
        a.to = move.dst;
        actions.push_back(a);
    }
    return actions;
}

std::vector<std::unique_ptr<ResilienceScheme>>
makeAllSchemes(bool include_lps, LpSchemeOptions lp_options)
{
    std::vector<std::unique_ptr<ResilienceScheme>> schemes;
    schemes.push_back(
        std::make_unique<PhoenixScheme>(Objective::Fair));
    schemes.push_back(
        std::make_unique<PhoenixScheme>(Objective::Cost));
    schemes.push_back(std::make_unique<FairScheme>());
    schemes.push_back(std::make_unique<PriorityScheme>());
    schemes.push_back(std::make_unique<DefaultScheme>());
    if (include_lps) {
        schemes.push_back(
            std::make_unique<LpScheme>(Objective::Fair, lp_options));
        schemes.push_back(
            std::make_unique<LpScheme>(Objective::Cost, lp_options));
    }
    return schemes;
}

} // namespace phoenix::core
