#include "packing.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "util/sorted_kv.h"

namespace phoenix::core {

using sim::ClusterState;
using sim::NodeId;
using sim::PodRef;

namespace {

/** Working context for one packing pass. */
class Packer
{
  public:
    Packer(const std::vector<sim::Application> &apps,
           const ClusterState &current, const GlobalRank &ranked,
           const PackingOptions &options)
        : apps_(apps), options_(options), ranked_(ranked)
    {
        result_.state = current;
        for (NodeId id : result_.state.healthyNodes())
            byRemaining_.insert(result_.state.remaining(id), id);

        for (size_t i = 0; i < ranked.size(); ++i)
            rankIndex_[{ranked[i].app, ranked[i].ms}] = i;
    }

    PackResult
    run()
    {
        buildDeletionOrder();

        result_.complete = true;
        std::set<sim::AppId> skipped_apps;
        bool aborted = false;
        for (const PodRef &entry : ranked_) {
            if (aborted)
                break;
            if (skipped_apps.count(entry.app))
                continue;
            const auto &ms =
                apps_[entry.app].services[entry.ms];
            const double size = ms.cpu; // per-replica size
            const int replicas = std::max(ms.replicas, 1);

            // Pass 1 places the minimum viable (quorum) replica set of
            // every ranked microservice, in rank order; extra replicas
            // are topped up in pass 2 only after every ranked service
            // has had its chance, so early services cannot starve
            // later critical ones.
            const int quorum = ms.quorumCount();
            int placed_replicas = 0;
            for (int r = 0; r < replicas && placed_replicas < quorum;
                 ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (result_.state.isActive(pod)) {
                    committed_.insert(pod);
                    ++placed_replicas;
                    continue;
                }
                std::optional<NodeId> node = getBestFit(size);
                if (!node && options_.allowMigrations)
                    node = repackToFit(size);
                if (!node && options_.allowDeletions)
                    node = deleteLowerRanksToFit(pod, size);
                if (!node)
                    break;
                placePod(pod, *node, size, ActionKind::Restart);
                committed_.insert(pod);
                ++placed_replicas;
            }
            // Keep surviving extras committed so pass-1 deletions for
            // lower-ranked services do not reap them before pass 2.
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (result_.state.isActive(pod))
                    committed_.insert(pod);
            }

            if (placed_replicas >= quorum) {
                ++result_.placed;
                topUp_.push_back(entry);
                continue;
            }

            // Below quorum: a sub-quorum microservice serves nothing,
            // so delete its replicas and either abort (Alg. 2 literal)
            // or skip this application.
            result_.complete = false;
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (result_.state.isActive(pod)) {
                    committed_.erase(pod);
                    evictPod(pod, ActionKind::Delete);
                }
            }
            if (options_.abortOnUnplaceable)
                aborted = true;
            else
                skipped_apps.insert(entry.app);
        }

        // Pass 2: opportunistically restore replicas beyond the quorum
        // with the remaining capacity (best-fit only; never disturbs
        // what pass 1 placed).
        for (const PodRef &entry : topUp_) {
            const auto &ms = apps_[entry.app].services[entry.ms];
            const int replicas = std::max(ms.replicas, 1);
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (result_.state.isActive(pod))
                    continue;
                const auto node = getBestFit(ms.cpu);
                if (!node) {
                    result_.complete = false;
                    break;
                }
                placePod(pod, *node, ms.cpu, ActionKind::Restart);
                committed_.insert(pod);
            }
        }
        return std::move(result_);
    }

  private:
    /** Keep byRemaining_ in sync while mutating the state. */
    void
    placePod(const PodRef &pod, NodeId node, double size, ActionKind kind,
             NodeId from = 0)
    {
        const double before = result_.state.remaining(node);
        const bool ok = result_.state.place(pod, node, size);
        if (!ok)
            return; // defensive; callers pre-check capacity
        byRemaining_.erase(before, node);
        byRemaining_.insert(result_.state.remaining(node), node);
        Action action;
        action.kind = kind;
        action.pod = pod;
        action.from = from;
        action.to = node;
        result_.actions.push_back(action);
    }

    void
    evictPod(const PodRef &pod, ActionKind kind, NodeId to = 0)
    {
        const auto node = result_.state.nodeOf(pod);
        if (!node)
            return;
        const double before = result_.state.remaining(*node);
        result_.state.evict(pod);
        byRemaining_.erase(before, *node);
        byRemaining_.insert(result_.state.remaining(*node), *node);
        if (kind == ActionKind::Delete) {
            Action action;
            action.kind = ActionKind::Delete;
            action.pod = pod;
            action.from = *node;
            action.to = to;
            result_.actions.push_back(action);
        }
    }

    /** Best-fit: node with the smallest remaining capacity >= size. */
    std::optional<NodeId>
    getBestFit(double size) const
    {
        const auto hit = byRemaining_.firstAtLeast(size);
        if (!hit)
            return std::nullopt;
        return hit->second;
    }

    /**
     * Repacking stage: walk candidate target nodes from most to least
     * empty; for each, try to migrate its smallest non-committed
     * containers onto other nodes until the incoming container fits.
     */
    std::optional<NodeId>
    repackToFit(double size)
    {
        // Candidate targets: the most-empty nodes ("servers with large
        // available capacity are preferred"). Bounded to a constant so
        // repacking stays near-logarithmic per container — if the
        // emptiest nodes cannot be cleared, fuller ones cannot either.
        constexpr size_t kMaxCandidates = 8;
        std::vector<std::pair<double, NodeId>> candidates;
        for (auto it = byRemaining_.rbegin(); it != byRemaining_.rend();
             ++it) {
            candidates.push_back(*it);
            if (candidates.size() >= kMaxCandidates)
                break;
        }

        for (const auto &[remaining, node] : candidates) {
            (void)remaining;
            auto moves = planMigrations(node, size);
            if (!moves)
                continue;
            for (const auto &[pod, target] : *moves) {
                const double pod_size = result_.state.podCpu(pod);
                evictPod(pod, ActionKind::Migrate);
                placePod(pod, target, pod_size, ActionKind::Migrate,
                         node);
            }
            if (result_.state.remaining(node) + 1e-9 >= size)
                return node;
        }
        return std::nullopt;
    }

    /**
     * Feasibility check for clearing @p size room on @p node by moving
     * its smallest migratable containers elsewhere. Pure planning: no
     * state mutation; returns the move list on success. Committed
     * (higher-ranked) containers may migrate too — migration keeps
     * them live, and consolidating them is often the only way to
     * clear room for a large critical container on a cluster whose
     * survivors are spread across every node.
     *
     * Hypothetical placements are tracked as deltas against the live
     * byRemaining_ index (no O(nodes) copy): an index entry's
     * effective free space is its key minus whatever this plan has
     * already parked on that node.
     */
    std::optional<std::vector<std::pair<PodRef, NodeId>>>
    planMigrations(NodeId node, double size)
    {
        // Clearing a node by relocating many containers is excessive
        // churn; give up beyond this.
        constexpr size_t kMaxMoves = 16;
        constexpr size_t kMaxProbes = 24;

        const double have = result_.state.remaining(node);
        if (have + 1e-9 >= size)
            return std::vector<std::pair<PodRef, NodeId>>{};

        std::vector<std::pair<double, PodRef>> movable;
        for (const auto &[pod, cpu] : result_.state.podsOn(node))
            movable.emplace_back(cpu, pod);
        std::sort(movable.begin(), movable.end());

        std::map<NodeId, double> parked; // hypothetical extra usage
        std::vector<std::pair<PodRef, NodeId>> moves;
        double freed = have;
        for (const auto &[cpu, pod] : movable) {
            if (freed + 1e-9 >= size)
                break;
            if (moves.size() >= kMaxMoves)
                break;
            // Walk index entries from the best-fit point upward until
            // one is effectively big enough (entries are stale-high
            // only for nodes in `parked`).
            std::optional<NodeId> target;
            size_t probes = 0;
            for (auto it = byRemaining_.lowerBound(cpu);
                 it != byRemaining_.end() && probes < kMaxProbes;
                 ++it) {
                ++probes;
                const NodeId cand = it->second;
                if (cand == node)
                    continue;
                double effective = it->first;
                auto pit = parked.find(cand);
                if (pit != parked.end())
                    effective -= pit->second;
                if (effective + 1e-9 >= cpu) {
                    target = cand;
                    break;
                }
            }
            if (!target)
                continue; // this pod cannot move; try a bigger one
            parked[*target] += cpu;
            moves.emplace_back(pod, *target);
            freed += cpu;
        }
        if (freed + 1e-9 >= size)
            return moves;
        return std::nullopt;
    }

    /**
     * Deletion stage: remove active containers in reverse planner
     * order (unranked first, then lowest-ranked) until the incoming
     * container fits by best-fit or repacking.
     */
    /**
     * Targeted deletion: find a node whose lower-ranked containers can
     * be deleted to make exactly this container fit, and clear just
     * that node (fewest victims). Much more effective for large
     * containers than deleting in global reverse-rank order, which
     * scatters the freed capacity across the cluster.
     */
    std::optional<NodeId>
    clearOneNodeToFit(size_t incoming_rank, double size)
    {
        constexpr size_t kMaxCandidates = 16;
        std::optional<NodeId> best_node;
        size_t best_victims = std::numeric_limits<size_t>::max();
        std::vector<PodRef> best_list;

        size_t considered = 0;
        for (auto it = byRemaining_.rbegin();
             it != byRemaining_.rend() && considered < kMaxCandidates;
             ++it, ++considered) {
            const NodeId node = it->second;
            double free = it->first;
            // Victims on this node, lowest priority first.
            std::vector<std::pair<size_t, PodRef>> victims;
            for (const auto &[pod, cpu] : result_.state.podsOn(node)) {
                (void)cpu;
                const size_t rank = rankOf(pod);
                if (rank > incoming_rank && !committed_.count(pod))
                    victims.emplace_back(rank, pod);
            }
            std::sort(victims.begin(), victims.end(),
                      [](const auto &x, const auto &y) {
                          return x.first > y.first;
                      });
            std::vector<PodRef> list;
            for (const auto &[rank, pod] : victims) {
                (void)rank;
                if (free + 1e-9 >= size)
                    break;
                free += result_.state.podCpu(pod);
                list.push_back(pod);
            }
            if (free + 1e-9 >= size && list.size() < best_victims) {
                best_victims = list.size();
                best_node = node;
                best_list = std::move(list);
            }
        }

        if (!best_node)
            return std::nullopt;
        for (const PodRef &victim : best_list)
            evictPod(victim, ActionKind::Delete);
        return best_node;
    }

    std::optional<NodeId>
    deleteLowerRanksToFit(const PodRef &incoming, double size)
    {
        const size_t incoming_rank = rankOf(incoming);
        if (auto node = clearOneNodeToFit(incoming_rank, size))
            return node;
        size_t deletions = 0;
        while (!deletionOrder_.empty()) {
            const PodRef victim = deletionOrder_.back();
            deletionOrder_.pop_back();
            if (!result_.state.isActive(victim) ||
                committed_.count(victim)) {
                continue;
            }
            if (rankOf(victim) <= incoming_rank)
                break; // nothing lower-priority left
            evictPod(victim, ActionKind::Delete);
            ++deletions;

            auto node = getBestFit(size);
            // The repack attempt is markedly more expensive than the
            // best-fit probe; amortize it over batches of deletions so
            // deep deletion cascades stay near-linear.
            if (!node && options_.allowMigrations &&
                (deletions & 0x7) == 0) {
                node = repackToFit(size);
            }
            if (node)
                return node;
        }
        if (options_.allowMigrations)
            return repackToFit(size);
        return std::nullopt;
    }

    size_t
    rankOf(const PodRef &pod) const
    {
        auto it = rankIndex_.find({pod.app, pod.ms});
        if (it == rankIndex_.end())
            return std::numeric_limits<size_t>::max();
        return it->second;
    }

    /**
     * Deletion candidates: every currently active pod, ordered so the
     * *lowest* priority pod sits at the back (pop order): unranked pods
     * (rank == max) first, then ranked pods from the tail upward.
     */
    void
    buildDeletionOrder()
    {
        // Decorate-sort-undecorate: rank lookups once per pod, not per
        // comparison (this sort covers every placed pod).
        std::vector<std::pair<size_t, PodRef>> decorated;
        decorated.reserve(result_.state.assignment().size());
        for (const auto &[pod, node] : result_.state.assignment()) {
            (void)node;
            decorated.emplace_back(rankOf(pod), pod);
        }
        std::sort(decorated.begin(), decorated.end());
        deletionOrder_.reserve(decorated.size());
        for (const auto &[rank, pod] : decorated) {
            (void)rank;
            deletionOrder_.push_back(pod);
        }
    }

    const std::vector<sim::Application> &apps_;
    PackingOptions options_;
    const GlobalRank &ranked_;

    PackResult result_;
    util::SortedKv<double, NodeId> byRemaining_;
    std::map<std::pair<sim::AppId, sim::MsId>, size_t> rankIndex_;
    std::set<PodRef> committed_;
    std::vector<PodRef> deletionOrder_;
    std::vector<PodRef> topUp_;
};

} // namespace

PackResult
PackingScheduler::pack(const std::vector<sim::Application> &apps,
                       const ClusterState &current,
                       const GlobalRank &ranked) const
{
    Packer packer(apps, current, ranked, options_);
    return packer.run();
}

} // namespace phoenix::core
