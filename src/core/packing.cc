#include "packing.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "core/constraints.h"
#include "util/bucketed_kv.h"
#include "util/sorted_kv.h"

namespace phoenix::core {

using sim::ClusterState;
using sim::NodeId;
using sim::PodRef;

namespace {

constexpr size_t kUnranked = std::numeric_limits<size_t>::max();
constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/** One planned migration (cpu carried so applying it needs no pod-size
 * lookup). */
struct Move
{
    PodRef pod;
    NodeId target = 0;
    double cpu = 0.0;
};

/**
 * Per-run buffers shared by both bookkeeping policies: the deletion
 * stack, pass-2 queue, and every transient vector the repack/deletion
 * stages used to allocate per call. All recycled across pack() calls.
 */
struct PackCommon
{
    std::vector<PodRef> deletionOrder;
    std::vector<PodRef> topUp;
    std::vector<uint8_t> skippedApps; //!< app position -> skipped
    std::vector<std::pair<double, PodRef>> movable;
    std::vector<Move> moves;
    std::vector<std::pair<double, NodeId>> candidates;
    struct Victim
    {
        size_t rank;
        PodRef pod;
        double cpu;
    };
    std::vector<Victim> victims;
    std::vector<PodRef> bestList;
    std::vector<PodRef> victimList;
    /** Undo log for the current pass-1 service attempt: placements
     * and evictions in order, so a below-quorum failure can be rolled
     * back instead of stranding its collateral damage. */
    struct JournalEntry
    {
        bool placed; //!< true: pod placed (undo = evict); else evicted
        /** The eviction popped this pod off deletionOrder; undo must
         * push it back or later services lose the candidate. */
        bool poppedDeletionOrder;
        PodRef pod;
        NodeId node;
        double cpu;
    };
    std::vector<JournalEntry> journal;
    /** Topology constraint bookkeeping, shared by both bookkeeping
     * policies so every vacancy decision is made by identical code.
     * Rebuilt per run; empty() (and therefore free) when no app
     * declares a constraint. */
    VacancyAllocator vacancy;
    /** Per-candidate tentative PDB consumption during victim
     * selection: (app<<32|ms, planned deletes). */
    std::vector<std::pair<uint64_t, int>> tentativePdb;
};

/**
 * Original bookkeeping: red-black-tree capacity index, std::map rank
 * index, std::set commit set. Rebuilt (and therefore reallocated)
 * per run, like the pre-flat packer. The oracle side of the
 * bit-identity suite.
 */
class ReferenceBook
{
  public:
    void
    init(const std::vector<sim::Application> &apps,
         const ClusterState &state, const GlobalRank &ranked,
         const PackingOptions &options, OpCounters &ops)
    {
        (void)apps;
        (void)options; // the reference oracle is always from-scratch
        ops_ = &ops;
        byRemaining_ = util::SortedKv<double, NodeId>();
        rankIndex_.clear();
        committed_.clear();
        for (NodeId id : state.healthyNodes()) {
            byRemaining_.insert(state.remaining(id), id);
            ++ops_->kvOps;
        }
        for (size_t i = 0; i < ranked.size(); ++i)
            rankIndex_[{ranked[i].app, ranked[i].ms}] = i;
    }

    void
    kvUpdate(double before, double after, NodeId node)
    {
        byRemaining_.erase(before, node);
        byRemaining_.insert(after, node);
        ops_->kvOps += 2;
    }

    std::optional<NodeId>
    bestFit(double size) const
    {
        ++ops_->bestFitProbes;
        const auto hit = byRemaining_.firstAtLeast(size);
        if (!hit)
            return std::nullopt;
        return hit->second;
    }

    template <typename Visit>
    void
    forEachDescending(Visit visit) const
    {
        for (auto it = byRemaining_.rbegin(); it != byRemaining_.rend();
             ++it) {
            if (!visit(it->first, it->second))
                return;
        }
    }

    template <typename Visit>
    void
    forEachAtLeast(double bound, Visit visit) const
    {
        for (auto it = byRemaining_.lowerBound(bound);
             it != byRemaining_.end(); ++it) {
            if (!visit(it->first, it->second))
                return;
        }
    }

    size_t
    rankOf(const PodRef &pod) const
    {
        auto it = rankIndex_.find({pod.app, pod.ms});
        if (it == rankIndex_.end())
            return kUnranked;
        return it->second;
    }

    void commit(const PodRef &pod) { committed_.insert(pod); }
    void uncommit(const PodRef &pod) { committed_.erase(pod); }
    bool committed(const PodRef &pod) const
    {
        return committed_.count(pod) > 0;
    }

    bool
    isActive(const ClusterState &state, const PodRef &pod) const
    {
        return state.isActive(pod);
    }

    std::optional<NodeId>
    nodeOf(const ClusterState &state, const PodRef &pod) const
    {
        return state.nodeOf(pod);
    }

    void onPlaced(const PodRef &, NodeId) {}
    void onEvicted(const PodRef &) {}

    void parkedClear() { parked_.clear(); }
    void parkedAdd(NodeId node, double cpu) { parked_[node] += cpu; }
    double
    parkedAt(NodeId node) const
    {
        auto it = parked_.find(node);
        return it == parked_.end() ? 0.0 : it->second;
    }

    /** Deletion candidates sorted ascending by (rank, pod):
     * decorate-sort-undecorate over every placed pod. */
    void
    buildDeletionOrder(const ClusterState &state,
                       std::vector<PodRef> &out)
    {
        std::vector<std::pair<size_t, PodRef>> decorated;
        decorated.reserve(state.assignment().size());
        for (const auto &[pod, node] : state.assignment()) {
            (void)node;
            decorated.emplace_back(rankOf(pod), pod);
        }
        std::sort(decorated.begin(), decorated.end());
        out.clear();
        out.reserve(decorated.size());
        for (const auto &[rank, pod] : decorated) {
            (void)rank;
            out.push_back(pod);
        }
    }

  private:
    util::SortedKv<double, NodeId> byRemaining_;
    std::map<std::pair<sim::AppId, sim::MsId>, size_t> rankIndex_;
    std::set<PodRef> committed_;
    std::map<NodeId, double> parked_;
    OpCounters *ops_ = nullptr;
};

/**
 * Flat bookkeeping over a precomputed dense pod index: pods map to
 * appBase[app] + ms -> msIdx, podBase[msIdx] + replica -> podIdx, so
 * the commit set is a byte per pod, the rank index a size_t per
 * microservice, and the pod->node mirror a NodeId per pod — all O(1)
 * with no tree walks or hashing. The capacity index is a BucketedKv
 * whose iteration order is byte-identical to the reference multiset.
 * Every buffer persists across runs; steady-state packing allocates
 * nothing for bookkeeping.
 */
class FlatBook
{
  public:
    void
    init(const std::vector<sim::Application> &apps,
         const ClusterState &state, const GlobalRank &ranked,
         const PackingOptions &options, OpCounters &ops)
    {
        ops_ = &ops;

        // Dense (app position, ms, replica) -> pod index.
        msBase_.resize(apps.size() + 1);
        msBase_[0] = 0;
        for (size_t a = 0; a < apps.size(); ++a)
            msBase_[a + 1] = msBase_[a] + apps[a].services.size();
        const size_t total_ms = msBase_.back();
        podBase_.resize(total_ms + 1);
        podBase_[0] = 0;
        {
            size_t idx = 0;
            for (const auto &app : apps) {
                for (const auto &ms : app.services) {
                    podBase_[idx + 1] =
                        podBase_[idx] +
                        static_cast<size_t>(std::max(ms.replicas, 1));
                    ++idx;
                }
            }
        }
        const size_t total_pods = podBase_.back();

        rankMs_.assign(total_ms, kUnranked);
        for (size_t i = 0; i < ranked.size(); ++i) {
            const size_t ms = msIdx(ranked[i].app, ranked[i].ms);
            if (ms != kUnranked)
                rankMs_[ms] = i; // last writer wins, like map::operator[]
        }
        rankedSize_ = ranked.size();

        committedBits_.assign(total_pods, 0);
        overflowCommitted_.clear();

        activeNode_.assign(total_pods, kNoNode);
        overflowActive_.clear();
        for (const auto &[pod, node] : state.assignment()) {
            const size_t idx = podIdx(pod);
            if (idx != kUnranked)
                activeNode_[idx] = node;
            else
                overflowActive_[pod] = node;
        }

        // Capacity index: reconcile the previous epoch's index when
        // incremental and the topology still matches, else build cold
        // (zone-parallel when sharded).
        const size_t node_count = state.nodeCount();
        const size_t zones = std::max<size_t>(options.zoneShards, 1);
        const bool warm = options.incremental && warmValid_ &&
                          warmNodeCount_ == node_count &&
                          zoneCount_ == zones;
        zoneCount_ = zones;
        if (warm)
            reconcileIndex(state);
        else
            coldBuildIndex(state, options);
        warmValid_ = options.incremental;
        warmNodeCount_ = node_count;

        parked_.assign(state.nodeCount(), 0.0);
        parkedTouched_.clear();
    }

    void
    kvUpdate(double before, double after, NodeId node)
    {
        auto &kv = zones_[static_cast<size_t>(node) % zoneCount_];
        kv.erase(before, node);
        kv.insert(after, node);
        if (trackMirror_)
            bookKey_[node] = after;
        ops_->kvOps += 2;
    }

    std::optional<NodeId>
    bestFit(double size) const
    {
        ++ops_->bestFitProbes;
        if (zoneCount_ == 1) {
            const auto hit = zones_[0].firstAtLeast(size);
            if (!hit)
                return std::nullopt;
            return hit->second;
        }
        // The global best fit is the (key, node)-minimum over the
        // per-zone best fits: the partition covers every node exactly
        // once, so min over zone minima == global minimum.
        std::optional<KvPair> best;
        for (const auto &kv : zones_) {
            const auto hit = kv.firstAtLeast(size);
            if (hit && (!best || *hit < *best))
                best = hit;
        }
        if (!best)
            return std::nullopt;
        return best->second;
    }

    template <typename Visit>
    void
    forEachDescending(Visit visit) const
    {
        if (zoneCount_ == 1) {
            zones_[0].scanDescending([&](const auto &entry) {
                return visit(entry.first, entry.second);
            });
            return;
        }
        // K-way merge, descending: repeatedly visit the largest pair
        // among the zone cursors. Node ids are unique, so (key, node)
        // pairs are totally ordered and the merged sequence is
        // byte-identical to a single index's scan.
        auto &cursors = cursorScratch_;
        cursors.resize(zoneCount_);
        for (size_t z = 0; z < zoneCount_; ++z)
            cursors[z] = zones_[z].cursorLast();
        for (;;) {
            size_t best = zoneCount_;
            for (size_t z = 0; z < zoneCount_; ++z) {
                if (!cursors[z].valid)
                    continue;
                if (best == zoneCount_ ||
                    zones_[best].cursorPair(cursors[best]) <
                        zones_[z].cursorPair(cursors[z]))
                    best = z;
            }
            if (best == zoneCount_)
                return;
            const KvPair &entry = zones_[best].cursorPair(cursors[best]);
            if (!visit(entry.first, entry.second))
                return;
            zones_[best].cursorRetreat(cursors[best]);
        }
    }

    template <typename Visit>
    void
    forEachAtLeast(double bound, Visit visit) const
    {
        if (zoneCount_ == 1) {
            zones_[0].scanAtLeast(bound, [&](const auto &entry) {
                return visit(entry.first, entry.second);
            });
            return;
        }
        auto &cursors = cursorScratch_;
        cursors.resize(zoneCount_);
        for (size_t z = 0; z < zoneCount_; ++z)
            cursors[z] = zones_[z].cursorAtLeast(bound);
        for (;;) {
            size_t best = zoneCount_;
            for (size_t z = 0; z < zoneCount_; ++z) {
                if (!cursors[z].valid)
                    continue;
                if (best == zoneCount_ ||
                    zones_[z].cursorPair(cursors[z]) <
                        zones_[best].cursorPair(cursors[best]))
                    best = z;
            }
            if (best == zoneCount_)
                return;
            const KvPair &entry = zones_[best].cursorPair(cursors[best]);
            if (!visit(entry.first, entry.second))
                return;
            zones_[best].cursorAdvance(cursors[best]);
        }
    }

    size_t
    rankOf(const PodRef &pod) const
    {
        const size_t ms = msIdx(pod.app, pod.ms);
        return ms == kUnranked ? kUnranked : rankMs_[ms];
    }

    void
    commit(const PodRef &pod)
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked)
            committedBits_[idx] = 1;
        else
            overflowCommitted_.insert(pod);
    }

    void
    uncommit(const PodRef &pod)
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked)
            committedBits_[idx] = 0;
        else
            overflowCommitted_.erase(pod);
    }

    bool
    committed(const PodRef &pod) const
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked)
            return committedBits_[idx] != 0;
        return overflowCommitted_.count(pod) > 0;
    }

    bool
    isActive(const ClusterState &, const PodRef &pod) const
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked)
            return activeNode_[idx] != kNoNode;
        return overflowActive_.count(pod) > 0;
    }

    std::optional<NodeId>
    nodeOf(const ClusterState &, const PodRef &pod) const
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked) {
            if (activeNode_[idx] == kNoNode)
                return std::nullopt;
            return activeNode_[idx];
        }
        auto it = overflowActive_.find(pod);
        if (it == overflowActive_.end())
            return std::nullopt;
        return it->second;
    }

    void
    onPlaced(const PodRef &pod, NodeId node)
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked)
            activeNode_[idx] = node;
        else
            overflowActive_[pod] = node;
    }

    void
    onEvicted(const PodRef &pod)
    {
        const size_t idx = podIdx(pod);
        if (idx != kUnranked)
            activeNode_[idx] = kNoNode;
        else
            overflowActive_.erase(pod);
    }

    void
    parkedClear()
    {
        for (NodeId node : parkedTouched_)
            parked_[node] = 0.0;
        parkedTouched_.clear();
    }

    void
    parkedAdd(NodeId node, double cpu)
    {
        if (parked_[node] == 0.0)
            parkedTouched_.push_back(node);
        parked_[node] += cpu;
    }

    double parkedAt(NodeId node) const { return parked_[node]; }

    /** Deletion candidates ascending by (rank, pod) via a counting
     * sort over the rank domain — stable over the assignment map's
     * PodRef-ascending iteration, so the output matches the reference
     * decorate-sort exactly. */
    void
    buildDeletionOrder(const ClusterState &state,
                       std::vector<PodRef> &out)
    {
        // Rank domain: [0, R) for ranked pods plus one unranked
        // bucket, mapped to R (every stored rank is < ranked.size(),
        // so no scan of the rank table is needed).
        const size_t max_rank = rankedSize_;
        sortCounts_.assign(max_rank + 2, 0);
        for (const auto &[pod, node] : state.assignment()) {
            (void)node;
            const size_t r = rankOf(pod);
            const size_t key = r == kUnranked ? max_rank : r;
            ++sortCounts_[key + 1];
        }
        for (size_t k = 1; k < sortCounts_.size(); ++k)
            sortCounts_[k] += sortCounts_[k - 1];
        out.resize(state.assignment().size());
        for (const auto &[pod, node] : state.assignment()) {
            (void)node;
            const size_t r = rankOf(pod);
            const size_t key = r == kUnranked ? max_rank : r;
            out[sortCounts_[key]++] = pod;
        }
    }

  private:
    using KvPair = util::BucketedKv<NodeId>::Pair;

    /** From-scratch capacity index: configure + insert every healthy
     * node, zone-parallel when sharded (zones own disjoint node sets,
     * so the workers race on nothing). */
    void
    coldBuildIndex(const ClusterState &state,
                   const PackingOptions &options)
    {
        const size_t node_count = state.nodeCount();
        double max_capacity = 0.0;
        size_t healthy = 0;
        for (NodeId id = 0; id < node_count; ++id) {
            max_capacity =
                std::max(max_capacity, state.node(id).capacity);
            healthy += state.isHealthy(id) ? 1 : 0;
        }

        trackMirror_ = options.incremental;
        if (trackMirror_) {
            inBook_.assign(node_count, 0);
            bookKey_.assign(node_count, 0.0);
        }

        zones_.resize(zoneCount_);
        for (auto &kv : zones_)
            kv.configure(max_capacity, healthy / zoneCount_ + 1);
        const auto fill = [&](size_t z) {
            util::BucketedKv<NodeId> &kv = zones_[z];
            for (NodeId id = static_cast<NodeId>(z); id < node_count;
                 id += zoneCount_) {
                if (!state.isHealthy(id))
                    continue;
                const double key = state.remaining(id);
                kv.insert(key, id);
                if (trackMirror_) {
                    inBook_[id] = 1;
                    bookKey_[id] = key;
                }
            }
        };
        if (zoneCount_ > 1 && options.shardRunner) {
            options.shardRunner(zoneCount_, fill);
        } else {
            for (size_t z = 0; z < zoneCount_; ++z)
                fill(z);
        }
        // One op per indexed node, exactly like the serial build.
        ops_->kvOps += healthy;
    }

    /** Exact diff of the carried-over index against the observed
     * state: only nodes whose health or remaining capacity changed
     * since the previous epoch's planned state touch the index. The
     * per-node mirror holds the exact key stored in the index (kept
     * current by kvUpdate), so the result is identical to a cold
     * build — the hints from dirty-zone tracking are advisory;
     * correctness never depends on them. */
    void
    reconcileIndex(const ClusterState &state)
    {
        const size_t node_count = state.nodeCount();
        for (NodeId id = 0; id < node_count; ++id) {
            const bool should = state.isHealthy(id);
            if (should) {
                const double key = state.remaining(id);
                if (inBook_[id]) {
                    if (bookKey_[id] != key) {
                        auto &kv = zones_[id % zoneCount_];
                        kv.erase(bookKey_[id], id);
                        kv.insert(key, id);
                        bookKey_[id] = key;
                        ops_->kvOps += 2;
                    }
                } else {
                    zones_[id % zoneCount_].insert(key, id);
                    inBook_[id] = 1;
                    bookKey_[id] = key;
                    ++ops_->kvOps;
                }
            } else if (inBook_[id]) {
                zones_[id % zoneCount_].erase(bookKey_[id], id);
                inBook_[id] = 0;
                ++ops_->kvOps;
            }
        }
    }

    /** Dense microservice index, or kUnranked when out of range. */
    size_t
    msIdx(sim::AppId app, sim::MsId ms) const
    {
        if (static_cast<size_t>(app) + 1 >= msBase_.size())
            return kUnranked;
        const size_t base = msBase_[app];
        if (ms >= msBase_[app + 1] - base)
            return kUnranked;
        return base + ms;
    }

    /** Dense pod index, or kUnranked when out of range. */
    size_t
    podIdx(const PodRef &pod) const
    {
        const size_t ms = msIdx(pod.app, pod.ms);
        if (ms == kUnranked)
            return kUnranked;
        const size_t base = podBase_[ms];
        if (pod.replica >= podBase_[ms + 1] - base)
            return kUnranked;
        return base + pod.replica;
    }

    /** Per-zone capacity indexes (zone = node id % zoneCount_; a
     * single zone when unsharded). */
    std::vector<util::BucketedKv<NodeId>> zones_;
    size_t zoneCount_ = 1;
    mutable std::vector<util::BucketedKv<NodeId>::Cursor> cursorScratch_;
    /** Incremental-replan mirror: whether a node is in the index and
     * under which exact key. */
    bool trackMirror_ = false;
    bool warmValid_ = false;
    size_t warmNodeCount_ = 0;
    std::vector<uint8_t> inBook_;
    std::vector<double> bookKey_;
    size_t rankedSize_ = 0;
    std::vector<size_t> msBase_;  //!< app position -> first msIdx
    std::vector<size_t> podBase_; //!< msIdx -> first podIdx
    std::vector<size_t> rankMs_;  //!< msIdx -> rank (kUnranked if none)
    std::vector<uint8_t> committedBits_; //!< podIdx -> committed
    std::vector<NodeId> activeNode_;     //!< podIdx -> node or kNoNode
    std::vector<double> parked_;         //!< node -> hypothetical usage
    std::vector<NodeId> parkedTouched_;
    std::vector<size_t> sortCounts_;
    // Pods outside the dense index (inconsistent env; normally empty).
    std::map<PodRef, NodeId> overflowActive_;
    std::set<PodRef> overflowCommitted_;
    OpCounters *ops_ = nullptr;
};

/**
 * The packing algorithm (Alg. 2), written once and templated over the
 * bookkeeping policy. Every decision point consults the Book through
 * the same total orders the reference containers exposed, so the two
 * instantiations emit bit-identical action sequences.
 */
template <typename Book>
class Packer
{
  public:
    Packer(const std::vector<sim::Application> &apps,
           const ClusterState &current, const GlobalRank &ranked,
           const PackingOptions &options, Book &book, PackCommon &common)
        : apps_(apps), options_(options), ranked_(ranked), book_(book),
          c_(common)
    {
        result_.state = current;
        const auto started = std::chrono::steady_clock::now();
        book_.init(apps, result_.state, ranked, options_, result_.ops);
        c_.vacancy.build(apps, result_.state);
        result_.reconcileSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();
    }

    PackResult
    run()
    {
        book_.buildDeletionOrder(result_.state, c_.deletionOrder);
        c_.topUp.clear();
        c_.skippedApps.assign(apps_.size(), 0);

        result_.complete = true;
        bool aborted = false;
        for (const PodRef &entry : ranked_) {
            if (aborted)
                break;
            if (c_.skippedApps[entry.app])
                continue;
            const auto &ms = apps_[entry.app].services[entry.ms];
            const double size = ms.cpu; // per-replica size
            const int replicas = std::max(ms.replicas, 1);

            // Pass 1 places the minimum viable (quorum) replica set of
            // every ranked microservice, in rank order; extra replicas
            // are topped up in pass 2 only after every ranked service
            // has had its chance, so early services cannot starve
            // later critical ones. The whole attempt is transactional:
            // a service that cannot reach quorum rolls back its
            // placements, migrations, and victim deletions.
            const int quorum = ms.quorumCount();
            c_.journal.clear();
            const size_t actions_checkpoint = result_.actions.size();
            int placed_replicas = 0;
            // Once one replica fails every placement strategy, its
            // siblings (same size, same constraint scopes) would fail
            // identically — but replicas *already active* on surviving
            // nodes must still count toward quorum. Breaking at the
            // first failure used to delete a zone-capped service's
            // survivor: replica 0 died with its zone, could not be
            // re-placed (the implied per-zone cap was already consumed
            // by replica 1), and the below-quorum rollback reaped the
            // one replica that was still serving.
            bool blocked = false;
            for (int r = 0; r < replicas && placed_replicas < quorum;
                 ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (book_.isActive(result_.state, pod)) {
                    book_.commit(pod);
                    ++placed_replicas;
                    continue;
                }
                if (blocked)
                    continue;
                std::optional<NodeId> node = bestFitFor(pod, size);
                if (!node && options_.allowMigrations)
                    node = repackToFit(pod, size);
                if (!node && options_.allowDeletions)
                    node = deleteLowerRanksToFit(pod, size);
                if (!node) {
                    blocked = true;
                    continue;
                }
                placePod(pod, *node, size, ActionKind::Restart);
                book_.commit(pod);
                ++placed_replicas;
            }
            // Keep surviving extras committed so pass-1 deletions for
            // lower-ranked services do not reap them before pass 2.
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (book_.isActive(result_.state, pod))
                    book_.commit(pod);
            }

            if (placed_replicas >= quorum) {
                ++result_.placed;
                c_.topUp.push_back(entry);
                continue;
            }

            // Below quorum: undo the failed attempt first so a
            // service that cannot be served leaves no collateral
            // damage (a fuzz-found case: a planned replica set that
            // cannot pack used to delete other apps' survivors on its
            // way to failing, zeroing the cluster's revenue). Then
            // delete the service's own surviving replicas — a
            // sub-quorum microservice serves nothing — and either
            // abort (Alg. 2 literal) or skip this application.
            result_.complete = false;
            rollbackAttempt(actions_checkpoint);
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                book_.uncommit(pod);
                if (book_.isActive(result_.state, pod))
                    evictPod(pod, ActionKind::Delete);
            }
            if (options_.abortOnUnplaceable)
                aborted = true;
            else
                c_.skippedApps[entry.app] = 1;
        }

        // Pass 2: opportunistically restore replicas beyond the quorum
        // with the remaining capacity (best-fit only; never disturbs
        // what pass 1 placed).
        for (const PodRef &entry : c_.topUp) {
            const auto &ms = apps_[entry.app].services[entry.ms];
            const int replicas = std::max(ms.replicas, 1);
            for (int r = 0; r < replicas; ++r) {
                const PodRef pod{entry.app, entry.ms,
                                 static_cast<uint32_t>(r)};
                if (book_.isActive(result_.state, pod))
                    continue;
                const auto node = bestFitFor(pod, ms.cpu);
                if (!node) {
                    result_.complete = false;
                    break;
                }
                placePod(pod, *node, ms.cpu, ActionKind::Restart);
                book_.commit(pod);
            }
        }
        return std::move(result_);
    }

  private:
    /** Keep the capacity index in sync while mutating the state. */
    void
    placePod(const PodRef &pod, NodeId node, double size, ActionKind kind,
             NodeId from = 0)
    {
        const double before = result_.state.remaining(node);
        const bool ok = result_.state.place(pod, node, size);
        if (!ok)
            return; // defensive; callers pre-check capacity
        book_.kvUpdate(before, result_.state.remaining(node), node);
        book_.onPlaced(pod, node);
        c_.vacancy.onPlace(pod, node);
        c_.journal.push_back(
            PackCommon::JournalEntry{true, false, pod, node, size});
        Action action;
        action.kind = kind;
        action.pod = pod;
        action.from = from;
        action.to = node;
        result_.actions.push_back(action);
    }

    void
    evictPod(const PodRef &pod, ActionKind kind, NodeId to = 0)
    {
        const auto node = book_.nodeOf(result_.state, pod);
        if (!node)
            return;
        const double before = result_.state.remaining(*node);
        const double cpu = result_.state.podCpu(pod);
        result_.state.evict(pod);
        book_.kvUpdate(before, result_.state.remaining(*node), *node);
        book_.onEvicted(pod);
        c_.vacancy.onEvict(pod, *node);
        c_.journal.push_back(PackCommon::JournalEntry{
            false, journalPoppedDeletionOrder_, pod, *node, cpu});
        if (kind == ActionKind::Delete) {
            Action action;
            action.kind = ActionKind::Delete;
            action.pod = pod;
            action.from = *node;
            action.to = to;
            result_.actions.push_back(action);
        }
    }

    /**
     * Undo every mutation of the current pass-1 service attempt, in
     * reverse: re-place deleted victims, unwind repack migrations,
     * evict the attempt's own placements. Because each inverse
     * restores the exact capacity delta of its original, every
     * re-placement fits. Emitted actions are truncated back to
     * @p actions_checkpoint so the action list keeps matching the
     * state.
     */
    void
    rollbackAttempt(size_t actions_checkpoint)
    {
        while (!c_.journal.empty()) {
            const PackCommon::JournalEntry e = c_.journal.back();
            c_.journal.pop_back();
            const double before = result_.state.remaining(e.node);
            if (e.placed) {
                result_.state.evict(e.pod);
                book_.onEvicted(e.pod);
                c_.vacancy.onEvict(e.pod, e.node);
            } else {
                result_.state.place(e.pod, e.node, e.cpu);
                book_.onPlaced(e.pod, e.node);
                c_.vacancy.onPlace(e.pod, e.node);
                if (e.poppedDeletionOrder)
                    c_.deletionOrder.push_back(e.pod);
            }
            book_.kvUpdate(before, result_.state.remaining(e.node),
                           e.node);
        }
        result_.actions.resize(actions_checkpoint);
    }

    /**
     * Constraint-aware best fit. Unconstrained pods take the index's
     * single best-fit probe exactly as before; constrained pods walk
     * feasible-capacity entries in the same (key, node) order until
     * one node has vacancy in every scope the pod belongs to. The
     * walk lives in shared Packer code and the allocator is probed by
     * key only, so both bookkeeping policies (and the sharded merge)
     * visit and count identically.
     */
    std::optional<NodeId>
    bestFitFor(const PodRef &pod, double size)
    {
        if (!c_.vacancy.constrained(pod))
            return book_.bestFit(size);
        std::optional<NodeId> found;
        book_.forEachAtLeast(size, [&](double key, NodeId node) {
            (void)key;
            ++result_.ops.bestFitProbes;
            if (c_.vacancy.canPlace(pod, node)) {
                found = node;
                return false;
            }
            return true;
        });
        return found;
    }

    /**
     * Repacking stage: walk candidate target nodes from most to least
     * empty; for each, try to migrate its smallest non-committed
     * containers onto other nodes until the incoming container fits.
     * Candidate targets without vacancy for @p incoming are skipped
     * up front — clearing capacity on them cannot help.
     */
    std::optional<NodeId>
    repackToFit(const PodRef &incoming, double size)
    {
        // Candidate targets: the most-empty nodes ("servers with large
        // available capacity are preferred"). Bounded to a constant so
        // repacking stays near-logarithmic per container — if the
        // emptiest nodes cannot be cleared, fuller ones cannot either.
        constexpr size_t kMaxCandidates = 8;
        auto &candidates = c_.candidates;
        candidates.clear();
        book_.forEachDescending([&](double remaining, NodeId node) {
            candidates.emplace_back(remaining, node);
            return candidates.size() < kMaxCandidates;
        });

        for (const auto &[remaining, node] : candidates) {
            (void)remaining;
            if (!c_.vacancy.canPlace(incoming, node))
                continue;
            if (!planMigrations(node, size))
                continue;
            for (const Move &move : c_.moves) {
                evictPod(move.pod, ActionKind::Migrate);
                placePod(move.pod, move.target, move.cpu,
                         ActionKind::Migrate, node);
            }
            if (result_.state.remaining(node) + 1e-9 >= size)
                return node;
        }
        return std::nullopt;
    }

    /**
     * Feasibility check for clearing @p size room on @p node by moving
     * its smallest migratable containers elsewhere. Pure planning: no
     * state mutation; fills c_.moves on success. Committed
     * (higher-ranked) containers may migrate too — migration keeps
     * them live, and consolidating them is often the only way to
     * clear room for a large critical container on a cluster whose
     * survivors are spread across every node.
     *
     * Hypothetical placements are tracked as deltas against the live
     * capacity index (no O(nodes) copy): an index entry's effective
     * free space is its key minus whatever this plan has already
     * parked on that node.
     */
    bool
    planMigrations(NodeId node, double size)
    {
        // Clearing a node by relocating many containers is excessive
        // churn; give up beyond this.
        constexpr size_t kMaxMoves = 16;
        constexpr size_t kMaxProbes = 24;

        c_.moves.clear();
        const double have = result_.state.remaining(node);
        if (have + 1e-9 >= size)
            return true;

        auto &movable = c_.movable;
        movable.clear();
        for (const auto &[pod, cpu] : result_.state.podsOn(node)) {
            // Constrained pods are pinned during repack: the parked
            // deltas track capacity only, not hypothetical vacancy
            // state, so moving them could break their own caps.
            if (c_.vacancy.constrained(pod))
                continue;
            movable.emplace_back(cpu, pod);
        }
        std::sort(movable.begin(), movable.end());

        book_.parkedClear();
        double freed = have;
        for (const auto &[cpu, pod] : movable) {
            if (freed + 1e-9 >= size)
                break;
            if (c_.moves.size() >= kMaxMoves)
                break;
            // Walk index entries from the best-fit point upward until
            // one is effectively big enough (entries are stale-high
            // only for nodes with parked capacity).
            std::optional<NodeId> target;
            size_t probes = 0;
            book_.forEachAtLeast(cpu, [&](double key, NodeId cand) {
                if (probes >= kMaxProbes)
                    return false;
                ++probes;
                ++result_.ops.bestFitProbes;
                if (cand == node)
                    return true;
                const double effective = key - book_.parkedAt(cand);
                if (effective + 1e-9 >= cpu) {
                    target = cand;
                    return false;
                }
                return true;
            });
            if (!target)
                continue; // this pod cannot move; try a bigger one
            book_.parkedAdd(*target, cpu);
            c_.moves.push_back(Move{pod, *target, cpu});
            freed += cpu;
        }
        return freed + 1e-9 >= size;
    }

    /**
     * Targeted deletion: find a node whose lower-ranked containers can
     * be deleted to make exactly this container fit, and clear just
     * that node (fewest victims). Much more effective for large
     * containers than deleting in global reverse-rank order, which
     * scatters the freed capacity across the cluster.
     */
    std::optional<NodeId>
    clearOneNodeToFit(const PodRef &incoming, size_t incoming_rank,
                      double size)
    {
        constexpr size_t kMaxCandidates = 16;
        auto &candidates = c_.candidates;
        candidates.clear();
        book_.forEachDescending([&](double remaining, NodeId node) {
            candidates.emplace_back(remaining, node);
            return candidates.size() < kMaxCandidates;
        });

        const bool pdb_active = !c_.vacancy.empty();
        std::optional<NodeId> best_node;
        size_t best_victims = std::numeric_limits<size_t>::max();
        auto &best_list = c_.bestList;
        best_list.clear();

        for (const auto &[free0, node] : candidates) {
            if (!c_.vacancy.canPlace(incoming, node))
                continue;
            double free = free0;
            // Victims on this node, lowest priority first.
            auto &victims = c_.victims;
            victims.clear();
            for (const auto &[pod, cpu] : result_.state.podsOn(node)) {
                const size_t rank = book_.rankOf(pod);
                if (rank > incoming_rank && !book_.committed(pod))
                    victims.push_back(PackCommon::Victim{rank, pod, cpu});
            }
            std::sort(victims.begin(), victims.end(),
                      [](const auto &x, const auto &y) {
                          return x.rank > y.rank;
                      });
            auto &list = c_.victimList;
            list.clear();
            auto &tentative = c_.tentativePdb;
            tentative.clear();
            for (const auto &victim : victims) {
                if (free + 1e-9 >= size)
                    break;
                if (pdb_active) {
                    // The whole victim set of this candidate must fit
                    // each service's remaining disruption budget, so
                    // track what this plan already spends per service.
                    const uint64_t key =
                        (static_cast<uint64_t>(victim.pod.app) << 32) |
                        victim.pod.ms;
                    size_t slot = tentative.size();
                    int planned = 0;
                    for (size_t i = 0; i < tentative.size(); ++i) {
                        if (tentative[i].first == key) {
                            slot = i;
                            planned = tentative[i].second;
                            break;
                        }
                    }
                    if (planned >= c_.vacancy.pdbRemaining(victim.pod))
                        continue;
                    if (slot == tentative.size())
                        tentative.emplace_back(key, 1);
                    else
                        ++tentative[slot].second;
                }
                free += victim.cpu;
                list.push_back(victim.pod);
            }
            if (free + 1e-9 >= size && list.size() < best_victims) {
                best_victims = list.size();
                best_node = node;
                std::swap(best_list, list);
            }
        }

        if (!best_node)
            return std::nullopt;
        for (const PodRef &victim : best_list) {
            if (pdb_active)
                c_.vacancy.consumePdb(victim);
            evictPod(victim, ActionKind::Delete);
        }
        return best_node;
    }

    /**
     * Deletion stage: remove active containers in reverse planner
     * order (unranked first, then lowest-ranked) until the incoming
     * container fits by best-fit or repacking.
     */
    std::optional<NodeId>
    deleteLowerRanksToFit(const PodRef &incoming, double size)
    {
        const size_t incoming_rank = book_.rankOf(incoming);
        if (auto node = clearOneNodeToFit(incoming, incoming_rank, size))
            return node;
        size_t deletions = 0;
        while (!c_.deletionOrder.empty()) {
            const PodRef victim = c_.deletionOrder.back();
            c_.deletionOrder.pop_back();
            if (!book_.isActive(result_.state, victim) ||
                book_.committed(victim)) {
                continue;
            }
            if (book_.rankOf(victim) <= incoming_rank)
                break; // nothing lower-priority left
            // A service whose disruption budget is spent is off
            // limits for the rest of the epoch (the budget is never
            // refunded), so dropping the candidate permanently is
            // safe.
            if (!c_.vacancy.pdbAllows(victim))
                continue;
            c_.vacancy.consumePdb(victim);
            journalPoppedDeletionOrder_ = true;
            evictPod(victim, ActionKind::Delete);
            journalPoppedDeletionOrder_ = false;
            ++deletions;

            auto node = bestFitFor(incoming, size);
            // The repack attempt is markedly more expensive than the
            // best-fit probe; amortize it over batches of deletions so
            // deep deletion cascades stay near-linear.
            if (!node && options_.allowMigrations &&
                (deletions & 0x7) == 0) {
                node = repackToFit(incoming, size);
            }
            if (node)
                return node;
        }
        if (options_.allowMigrations)
            return repackToFit(incoming, size);
        return std::nullopt;
    }

    const std::vector<sim::Application> &apps_;
    PackingOptions options_;
    const GlobalRank &ranked_;
    Book &book_;
    PackCommon &c_;
    PackResult result_;
    /** Set around the deletionOrder-driven eviction in
     * deleteLowerRanksToFit so the journal entry remembers to restore
     * the popped candidate on rollback. */
    bool journalPoppedDeletionOrder_ = false;
};

} // namespace

/** Persistent scratch arena: both bookkeeping policies plus the shared
 * per-run buffers, recycled across pack() calls. */
struct PackScratch
{
    ReferenceBook ref;
    FlatBook flat;
    PackCommon common;
};

PackResult
PackingScheduler::pack(const std::vector<sim::Application> &apps,
                       const ClusterState &current,
                       const GlobalRank &ranked) const
{
    if (!scratch_)
        scratch_ = std::make_shared<PackScratch>();
    if (options_.referenceImpl) {
        Packer<ReferenceBook> packer(apps, current, ranked, options_,
                                     scratch_->ref, scratch_->common);
        return packer.run();
    }
    Packer<FlatBook> packer(apps, current, ranked, options_,
                            scratch_->flat, scratch_->common);
    return packer.run();
}

} // namespace phoenix::core
