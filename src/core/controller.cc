#include "controller.h"

#include <algorithm>

#include "util/log.h"

namespace phoenix::core {

using sim::PodRef;

PhoenixController::PhoenixController(
    sim::EventQueue &events, kube::KubeCluster &cluster,
    std::unique_ptr<ResilienceScheme> scheme, ControllerConfig config)
    : events_(events), cluster_(cluster), scheme_(std::move(scheme)),
      config_(config)
{
    auto &registry = obs::Registry::global();
    obs_.polls = &registry.counter("controller.polls");
    obs_.replans = &registry.counter("controller.replans");
    obs_.membershipReplans =
        &registry.counter("controller.membership_replans");
    obs_.deletes =
        &registry.counter("controller.actions", "kind", "delete");
    obs_.migrations =
        &registry.counter("controller.actions", "kind", "migrate");
    obs_.restarts =
        &registry.counter("controller.actions", "kind", "restart");
    obs_.deferredSuperseded =
        &registry.counter("controller.deferred_superseded");
    obs_.drainApplies = &registry.counter("controller.drain_applies");
    obs_.planSeconds = &registry.histogram("controller.plan_seconds");
    obs_.recoverySeconds =
        &registry.histogram("controller.recovery_seconds");

    events_.scheduleAfter(config_.pollPeriod, [this] { poll(); });
}

void
PhoenixController::poll()
{
    // Observed surface only — frozen during an API-server outage.
    const double capacity = cluster_.observedReadyCapacity();
    const uint64_t fingerprint = cluster_.observedReadyFingerprint();
    PHOENIX_COUNT(*obs_.polls, 1);

    // Mark recovery of the pending replan once every planned pod runs.
    if (!history_.empty() && history_.back().recoveredAt < 0.0) {
        const auto running = cluster_.runningPods();
        bool all_running = true;
        for (const PodRef &ref : target_) {
            if (!running.count(ref)) {
                all_running = false;
                break;
            }
        }
        if (all_running) {
            ReplanRecord &rec = history_.back();
            rec.recoveredAt = events_.now();
            PHOENIX_OBSERVE(*obs_.recoverySeconds,
                            rec.recoveredAt - rec.detectedAt);
            PHOENIX_TRACE_ASYNC_END("controller", "replan",
                                    history_.size() - 1,
                                    rec.recoveredAt);
            PHOENIX_TRACE_COMPLETE(
                "controller", "epoch", rec.detectedAt,
                rec.recoveredAt - rec.detectedAt,
                (obs::TraceArg{"deletes",
                               static_cast<double>(rec.deletes)}),
                (obs::TraceArg{"migrations",
                               static_cast<double>(rec.migrations)}),
                (obs::TraceArg{"restarts",
                               static_cast<double>(rec.restarts)}));
        }
    }

    // Forecast, when attached, observes every poll (models + risk
    // gates + warm-plan staging) before the replan decision.
    if (forecast_)
        forecast_->tick();
    const bool forceReplan = forecast_ && forecast_->takeForceReplan();

    // The first poll always plans (Phoenix owns initial placement and
    // repairs whatever spread placement left pending); afterwards
    // capacity changes *or* ready-set membership changes trigger
    // replanning. The fingerprint catches equal-capacity swaps the
    // aggregate misses: without it a pod pinned to the swapped-out
    // node strands Pending, since nothing retries its pin.
    const bool capacityChanged =
        lastCapacity_ < 0.0 ||
        std::abs(capacity - lastCapacity_) >
            config_.capacityChangeThreshold *
                std::max(lastCapacity_, 1.0);
    const bool membershipChanged =
        lastCapacity_ >= 0.0 && fingerprint != lastFingerprint_;
    const bool changed =
        capacityChanged || membershipChanged || forceReplan;
    if (changed) {
        if (!capacityChanged && membershipChanged)
            PHOENIX_COUNT(*obs_.membershipReplans, 1);
        PHOENIX_INFO("controller: capacity change " << lastCapacity_
                                                    << " -> " << capacity
                                                    << " at t="
                                                    << events_.now());
        ReplanRecord record;
        record.detectedAt = events_.now();
        record.capacityBefore = lastCapacity_;
        record.capacityAfter = capacity;
        PHOENIX_COUNT(*obs_.replans, 1);
        PHOENIX_TRACE_ASYNC_BEGIN(
            "controller", "replan", history_.size(), record.detectedAt,
            (obs::TraceArg{"capacity_before", record.capacityBefore}),
            (obs::TraceArg{"capacity_after", record.capacityAfter}));

        // Warm path: a pre-staged plan whose projected state matches
        // the observed state byte-for-byte applies in O(actions) — no
        // plan/pack compute. The hook guarantees byte-identity with a
        // cold replan (fingerprint match over the full planner input,
        // optionally re-verified), so the dirty-node hint is left
        // accumulating for the next cold apply.
        const SchemeResult *warm =
            forecast_ ? forecast_->matchWarm(cluster_.apps(),
                                             cluster_.observedState())
                      : nullptr;
        if (warm) {
            record.warm = true;
            record.planSeconds = 0.0;
            applyResult(*warm, record);
        } else {
            // Blast-radius hint for the scheme (advisory: incremental
            // replanning reconciles against the full observed state).
            scheme_->noteDirtyNodes(cluster_.drainDirtyNodes());
            const SchemeResult result = scheme_->apply(
                cluster_.apps(), cluster_.observedState());
            record.planSeconds =
                result.planSeconds + result.packSeconds;
            applyResult(result, record);
        }
    } else if (forecast_) {
        // No replan trigger: an armed risk may ask for proactive
        // execution of its staged plan — evacuate / degrade ahead of
        // the anticipated fault so the fault itself is a non-event.
        if (const SchemeResult *proactive = forecast_->takeProactive()) {
            ReplanRecord record;
            record.detectedAt = events_.now();
            record.capacityBefore = capacity;
            record.capacityAfter = capacity;
            record.proactive = true;
            record.planSeconds = 0.0;
            PHOENIX_COUNT(*obs_.replans, 1);
            PHOENIX_TRACE_ASYNC_BEGIN(
                "controller", "replan", history_.size(),
                record.detectedAt,
                (obs::TraceArg{"capacity_before",
                               record.capacityBefore}),
                (obs::TraceArg{"capacity_after",
                               record.capacityAfter}));
            applyResult(*proactive, record);
        }
    }
    lastCapacity_ = capacity;
    lastFingerprint_ = fingerprint;

    events_.scheduleAfter(config_.pollPeriod, [this] { poll(); });
}

void
PhoenixController::applyResult(const SchemeResult &result,
                               ReplanRecord record)
{
    PHOENIX_OBSERVE(*obs_.planSeconds, record.planSeconds);
    // No wall-time duration here: the canonical trace carries sim
    // time only (plan compute cost lives in the plan_seconds
    // histogram, exempt like every wall-clock field).
    PHOENIX_TRACE_INSTANT(
        "controller", "plan", record.detectedAt,
        (obs::TraceArg{
            "actions",
            static_cast<double>(result.pack.actions.size())}));

    // assignment() iterates ascending by PodRef, so the vector
    // comes out sorted and membership checks can binary-search.
    target_.clear();
    target_.reserve(result.pack.state.assignment().size());
    for (const auto &[pod, node] : result.pack.state.assignment()) {
        (void)node;
        target_.push_back(pod);
    }

    for (const Action &action : result.pack.actions) {
        switch (action.kind) {
          case ActionKind::Delete:
            ++record.deletes;
            PHOENIX_COUNT(*obs_.deletes, 1);
            break;
          case ActionKind::Migrate:
            ++record.migrations;
            PHOENIX_COUNT(*obs_.migrations, 1);
            break;
          case ActionKind::Restart:
            ++record.restarts;
            PHOENIX_COUNT(*obs_.restarts, 1);
            break;
        }
    }
    PHOENIX_TRACE_INSTANT(
        "controller", "execute", events_.now(),
        (obs::TraceArg{"deletes", static_cast<double>(record.deletes)}),
        (obs::TraceArg{"migrations",
                       static_cast<double>(record.migrations)}),
        (obs::TraceArg{"restarts",
                       static_cast<double>(record.restarts)}));
    execute(result);
    history_.push_back(record);
    if (observer_)
        observer_(result, history_.back());
}

void
PhoenixController::execute(const SchemeResult &result)
{
    // Phase 1: every deletion, including scale-down of pods outside
    // the target state (without the scale-down, pods evicted by a node
    // failure but not selected by the plan would sit Pending and the
    // default scheduler would race them onto capacity the plan
    // reserved for pinned critical containers).
    bool any_delete = false;
    for (const Action &action : result.pack.actions) {
        if (action.kind == ActionKind::Delete) {
            cluster_.deletePod(action.pod);
            any_delete = true;
        }
    }
    for (const auto &app : cluster_.apps()) {
        for (const auto &ms : app.services) {
            const int replicas = std::max(ms.replicas, 1);
            for (int r = 0; r < replicas; ++r) {
                const PodRef ref{app.id, ms.id,
                                 static_cast<uint32_t>(r)};
                if (!std::binary_search(target_.begin(), target_.end(),
                                        ref)) {
                    const auto *pod = cluster_.pod(ref);
                    if (pod && !pod->scaledDown) {
                        cluster_.deletePod(ref);
                        any_delete = true;
                    }
                }
            }
        }
    }

    // Restarts are issued immediately: startPod only pins the pod and
    // hands it to the scheduler, whose bind is capacity-checked and
    // retried every tick, so it settles once drains complete. Issuing
    // them now also keeps the default scheduler from spread-binding
    // the plan's pods somewhere else in the meantime.
    for (const Action &action : result.pack.actions) {
        if (action.kind == ActionKind::Restart)
            cluster_.startPod(action.pod, action.to);
    }

    // Migrations are one-shot: the kubelet rejects a rebind onto a
    // node that is still full, and nothing retries it. Graceful
    // deletion keeps Terminating pods' capacity occupied until the
    // drain completes, so when phase 1 deleted anything the
    // migrations only become valid after the drain window. A newer
    // replan supersedes any still-deferred ones.
    deferredMoves_.clear();
    deferredWaves_.clear();
    size_t max_wave = 0;
    {
        // PDB-aware sequencing: a service with pdbMaxUnavailable = b
        // keeps at most b replicas in flight per drain window, so its
        // i-th migration rides wave i/b (waves drainWaitSeconds
        // apart). Everything else rides wave 0 — byte-identical to
        // the pre-PDB single-shot behaviour.
        std::vector<std::pair<uint64_t, int>> seen;
        const auto &apps = cluster_.apps();
        for (const Action &action : result.pack.actions) {
            if (action.kind != ActionKind::Migrate)
                continue;
            size_t wave = 0;
            if (action.pod.app < apps.size() &&
                action.pod.ms <
                    apps[action.pod.app].services.size()) {
                const int b = apps[action.pod.app]
                                  .services[action.pod.ms]
                                  .pdbMaxUnavailable;
                if (b > 0) {
                    const uint64_t key =
                        (static_cast<uint64_t>(action.pod.app) << 32) |
                        action.pod.ms;
                    size_t slot = seen.size();
                    for (size_t i = 0; i < seen.size(); ++i) {
                        if (seen[i].first == key) {
                            slot = i;
                            break;
                        }
                    }
                    if (slot == seen.size())
                        seen.emplace_back(key, 0);
                    wave = static_cast<size_t>(seen[slot].second / b);
                    ++seen[slot].second;
                }
            }
            deferredMoves_.push_back(action);
            deferredWaves_.push_back(wave);
            max_wave = std::max(max_wave, wave);
        }
    }
    const uint64_t generation = ++planGeneration_;
    auto apply_wave = [this, generation, max_wave](size_t wave) {
        if (generation != planGeneration_) {
            if (wave == 0)
                PHOENIX_COUNT(*obs_.deferredSuperseded, 1);
            return; // a newer plan owns the cluster now
        }
        size_t moves = 0;
        for (size_t i = 0; i < deferredMoves_.size(); ++i) {
            if (deferredWaves_[i] == wave)
                ++moves;
        }
        if (moves > 0) {
            PHOENIX_COUNT(*obs_.drainApplies, 1);
            PHOENIX_TRACE_INSTANT(
                "controller", "drain.apply", events_.now(),
                (obs::TraceArg{"moves", static_cast<double>(moves)}),
                (obs::TraceArg{"wave", static_cast<double>(wave)}));
        }
        for (size_t i = 0; i < deferredMoves_.size(); ++i) {
            if (deferredWaves_[i] == wave) {
                cluster_.migratePod(deferredMoves_[i].pod,
                                    deferredMoves_[i].to);
            }
        }
        if (wave == max_wave) {
            deferredMoves_.clear();
            deferredWaves_.clear();
        }
    };
    if (deferredMoves_.empty()) {
        // Nothing to sequence.
    } else if (config_.drainWaitSeconds <= 0.0) {
        for (size_t w = 0; w <= max_wave; ++w)
            apply_wave(w);
    } else {
        const double base =
            any_delete ? config_.drainWaitSeconds : 0.0;
        for (size_t w = 0; w <= max_wave; ++w) {
            const double delay =
                base + static_cast<double>(w) * config_.drainWaitSeconds;
            if (delay <= 0.0)
                apply_wave(w);
            else
                events_.scheduleAfter(delay,
                                      [apply_wave, w] { apply_wave(w); });
        }
    }
}

} // namespace phoenix::core
