/**
 * @file
 * Kubernetes PriorityClass preemption baseline (§2).
 *
 * The paper positions pod priority + preemption as the existing
 * infrastructure-level degradation mechanism in Kubernetes: pods carry
 * a PriorityClass (here derived from the criticality tag), the
 * scheduler places pending pods in priority order, and when a pod
 * cannot fit it may preempt strictly lower-priority pods on a single
 * node (the K8s scheduler's node-local victim selection). There is no
 * operator objective, no dependency awareness, no migration, and no
 * cross-application coordination — which is exactly why the paper
 * argues it is insufficient for site-wide degradation policies.
 */

#ifndef PHOENIX_CORE_PREEMPTION_H
#define PHOENIX_CORE_PREEMPTION_H

#include "core/schemes.h"

namespace phoenix::core {

/**
 * The K8s-style preemption scheme. Pending pods sort by PriorityClass
 * (criticality) then pod id; placement is spread (least-allocated)
 * first; on failure the scheduler picks the node where evicting the
 * fewest strictly-lower-priority pods frees enough room.
 */
class KubePreemptionScheme : public ResilienceScheme
{
  public:
    std::string name() const override { return "K8sPreemption"; }

    SchemeResult apply(const std::vector<sim::Application> &apps,
                       const sim::ClusterState &current) override;
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_PREEMPTION_H
