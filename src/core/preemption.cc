#include "preemption.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/planner.h"
#include "util/sorted_kv.h"

namespace phoenix::core {

using sim::Application;
using sim::ClusterState;
using sim::NodeId;
using sim::PodRef;

namespace {

using Clock = std::chrono::steady_clock;

/** PriorityClass of a pod: lower number = higher priority. */
int
priorityOf(const std::vector<Application> &apps, const PodRef &pod)
{
    return effectiveCriticality(apps[pod.app],
                                apps[pod.app].services[pod.ms]);
}

} // namespace

SchemeResult
KubePreemptionScheme::apply(const std::vector<Application> &apps,
                            const ClusterState &current)
{
    SchemeResult result;
    const auto start = Clock::now();
    result.pack.state = current;
    ClusterState &state = result.pack.state;

    // Pending pods in PriorityClass order (the K8s scheduling queue is
    // priority-sorted).
    struct Pending
    {
        int priority;
        PodRef pod;
        double cpu;

        bool
        operator<(const Pending &other) const
        {
            if (priority != other.priority)
                return priority < other.priority;
            return pod < other.pod;
        }
    };
    std::vector<Pending> queue;
    // PodRefs carry the *index* into apps, not Application::id — with
    // sparse/non-contiguous app ids the two diverge, and priorityOf
    // indexes apps by pod.app.
    for (size_t a = 0; a < apps.size(); ++a) {
        const Application &app = apps[a];
        for (const auto &ms : app.services) {
            for (int r = 0; r < std::max(ms.replicas, 1); ++r) {
                const PodRef pod{static_cast<sim::AppId>(a), ms.id,
                                 static_cast<uint32_t>(r)};
                if (!state.isActive(pod)) {
                    queue.push_back(Pending{
                        effectiveCriticality(app, ms), pod, ms.cpu});
                }
            }
        }
    }
    std::sort(queue.begin(), queue.end());

    util::SortedKv<double, NodeId> by_remaining;
    for (NodeId id : state.healthyNodes())
        by_remaining.insert(state.remaining(id), id);

    auto place = [&](const PodRef &pod, NodeId node, double cpu) {
        const double before = state.remaining(node);
        state.place(pod, node, cpu);
        by_remaining.erase(before, node);
        by_remaining.insert(state.remaining(node), node);
        Action action;
        action.kind = ActionKind::Restart;
        action.pod = pod;
        action.to = node;
        result.pack.actions.push_back(action);
    };

    result.pack.complete = true;
    for (const Pending &pending : queue) {
        // Normal scheduling attempt: spread (least allocated).
        const auto top = by_remaining.largest();
        if (top && top->first + 1e-9 >= pending.cpu) {
            place(pending.pod, top->second, pending.cpu);
            ++result.pack.placed;
            continue;
        }

        // Preemption: on each node, victims are strictly lower
        // priority pods, evicted most-recently-lowest first; pick the
        // node needing the fewest victims (K8s minimizes disruption).
        constexpr size_t kCandidates = 64;
        std::optional<NodeId> best_node;
        std::vector<PodRef> best_victims;
        size_t considered = 0;
        for (auto it = by_remaining.rbegin();
             it != by_remaining.rend() && considered < kCandidates;
             ++it, ++considered) {
            const NodeId node = it->second;
            double free = it->first;
            std::vector<std::pair<int, PodRef>> victims;
            for (const auto &[pod, cpu] : state.podsOn(node)) {
                (void)cpu;
                const int prio = priorityOf(apps, pod);
                if (prio > pending.priority)
                    victims.emplace_back(prio, pod);
            }
            // Lowest-priority victims first.
            std::sort(victims.begin(), victims.end(),
                      [](const auto &x, const auto &y) {
                          return x.first > y.first;
                      });
            std::vector<PodRef> chosen;
            for (const auto &[prio, pod] : victims) {
                (void)prio;
                if (free + 1e-9 >= pending.cpu)
                    break;
                free += state.podCpu(pod);
                chosen.push_back(pod);
            }
            if (free + 1e-9 >= pending.cpu &&
                (!best_node || chosen.size() < best_victims.size())) {
                best_node = node;
                best_victims = std::move(chosen);
            }
        }

        if (!best_node) {
            result.pack.complete = false;
            continue; // unschedulable, stays pending
        }
        for (const PodRef &victim : best_victims) {
            const auto node = state.nodeOf(victim);
            const double before = state.remaining(*node);
            state.evict(victim);
            by_remaining.erase(before, *node);
            by_remaining.insert(state.remaining(*node), *node);
            Action action;
            action.kind = ActionKind::Delete;
            action.pod = victim;
            action.from = *node;
            result.pack.actions.push_back(action);
        }
        place(pending.pod, *best_node, pending.cpu);
        ++result.pack.placed;
    }

    result.planSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
}

} // namespace phoenix::core
