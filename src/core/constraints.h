/**
 * @file
 * Topology placement constraints: the vacancy allocator.
 *
 * YTsaurus-style bookkeeping for anti-affinity and zone-spread: every
 * constrained scope (one per constrained microservice, one per
 * declared placement group) carries per-node and per-zone member
 * counts, maintained incrementally as the packer places and evicts
 * pods. A placement is feasible when every scope the pod belongs to
 * still has vacancy on the target node and in the target's zone.
 *
 * The allocator also owns the per-epoch PodDisruptionBudget ledger:
 * preemption must ask pdbAllows() before deleting a victim and
 * consumePdb() when it does; the budget is never refunded inside an
 * epoch (a rolled-back attempt leaves it conservatively spent), which
 * keeps the oracle's "deletes per service <= budget" predicate sound.
 *
 * Determinism: all lookups are O(1) against dense vectors or hash
 * maps that are only ever probed by key — nothing iterates a hash
 * container — so reference/flat/sharded/incremental packers consulting
 * the allocator make byte-identical decisions. When no application
 * declares a constraint the allocator is empty() and every query
 * short-circuits, leaving the unconstrained hot path untouched.
 */

#ifndef PHOENIX_CORE_CONSTRAINTS_H
#define PHOENIX_CORE_CONSTRAINTS_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cluster.h"
#include "sim/types.h"

namespace phoenix::core {

class VacancyAllocator
{
  public:
    /**
     * Rebuild the scope table from the app descriptors and seed the
     * member counts from the state's current assignment. PodRef.app is
     * the app *position* (the convention everywhere in the scheduler).
     */
    void build(const std::vector<sim::Application> &apps,
               const sim::ClusterState &state);

    /** True when no app declares any placement constraint; every
     * other query is a no-op / "feasible" in that case. */
    bool empty() const { return empty_; }

    /** True when this pod belongs to at least one constrained scope
     * (placement caps; PDB alone does not constrain placement). */
    bool
    constrained(const sim::PodRef &pod) const
    {
        if (empty_)
            return false;
        const size_t ms = msIdx(pod.app, pod.ms);
        return ms != kNoIndex && (serviceScope_[ms] >= 0 ||
                                  groupScope_[ms] >= 0);
    }

    /** Every scope of @p pod has node and zone vacancy on @p node. */
    bool canPlace(const sim::PodRef &pod, sim::NodeId node) const;

    /** Record a placement / eviction in the member counts. */
    void onPlace(const sim::PodRef &pod, sim::NodeId node);
    void onEvict(const sim::PodRef &pod, sim::NodeId node);

    /** Remaining PodDisruptionBudget for the pod's service allows one
     * more preemption delete. */
    bool pdbAllows(const sim::PodRef &pod) const;
    /** Count of further preemption deletes the service's budget
     * allows (INT_MAX-like large value when unlimited). */
    int pdbRemaining(const sim::PodRef &pod) const;
    /** Consume one unit of the service's disruption budget. */
    void consumePdb(const sim::PodRef &pod);

  private:
    static constexpr size_t kNoIndex = static_cast<size_t>(-1);

    struct Scope
    {
        int maxPerNode = 0; //!< 0 = unlimited
        int maxPerZone = 0; //!< 0 = unlimited
        /** zone -> member count (dense; zones are few). */
        std::vector<int> zoneCount;
        /** (node -> member count); probed by key only, never
         * iterated, so hashing order cannot leak into decisions. */
        std::unordered_map<sim::NodeId, int> nodeCount;
    };

    size_t
    msIdx(sim::AppId app, sim::MsId ms) const
    {
        if (static_cast<size_t>(app) + 1 >= msBase_.size())
            return kNoIndex;
        const size_t base = msBase_[app];
        if (ms >= msBase_[app + 1] - base)
            return kNoIndex;
        return base + ms;
    }

    bool scopeHasVacancy(const Scope &s, sim::NodeId node) const;
    void scopeAdd(Scope &s, sim::NodeId node, int delta);

    bool empty_ = true;
    std::vector<size_t> msBase_;    //!< app position -> first msIdx
    std::vector<int> serviceScope_; //!< msIdx -> scope id or -1
    std::vector<int> groupScope_;   //!< msIdx -> scope id or -1
    std::vector<int> pdbBudget_;    //!< msIdx -> remaining; <0 = unlim
    std::vector<Scope> scopes_;
    std::vector<uint32_t> nodeZone_; //!< node -> zone label
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_CONSTRAINTS_H
