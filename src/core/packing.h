/**
 * @file
 * Phoenix scheduler packing module (§4.2, Algorithm 2 in Appendix B).
 *
 * Maps the planner's globally ranked container list onto the healthy
 * nodes of the cluster with a three-pronged heuristic: best-fit, then
 * repacking (migrating smaller containers off a target node), then
 * deletion of lower-ranked containers. All work happens on a copy of
 * the cluster state; execution is deferred to the agent, which replays
 * the emitted action sequence.
 */

#ifndef PHOENIX_CORE_PACKING_H
#define PHOENIX_CORE_PACKING_H

#include <memory>
#include <vector>

#include "core/op_counters.h"
#include "core/planner.h"
#include "sim/cluster.h"

namespace phoenix::core {

struct PackScratch; // reusable packer working memory (packing.cc)

/** One step the agent must execute against the cluster scheduler. */
enum class ActionKind {
    Delete,  //!< turn a (non-critical) container off
    Migrate, //!< move a running container between nodes
    Restart, //!< (re)start a container impacted by failure
};

struct Action
{
    ActionKind kind = ActionKind::Restart;
    sim::PodRef pod;
    sim::NodeId from = 0; //!< valid for Delete/Migrate
    sim::NodeId to = 0;   //!< valid for Migrate/Restart
};

/** Result of a packing pass. */
struct PackResult
{
    /** True when every ranked container ended up placed. */
    bool complete = false;
    /** Number of ranked containers active in the final state. */
    size_t placed = 0;
    /** Ordered action sequence for the agent. */
    std::vector<Action> actions;
    /** The planned cluster state after applying the actions. */
    sim::ClusterState state;
    /** Deterministic operation counts for this pass (not part of the
     * packing decision; excluded from canonical metric strings). */
    OpCounters ops;
    /** Wall-clock seconds spent (re)building the capacity index and
     * bookkeeping before the packing passes — the part incremental
     * mode turns from O(cluster) into O(changed nodes). */
    double reconcileSeconds = 0.0;
};

/** Packing configuration (ablation knobs). */
struct PackingOptions
{
    /** Enable the repacking/migration stage (Alg. 2 line 5). */
    bool allowMigrations = true;
    /** Enable deletion of lower-ranked containers (Alg. 2 line 6). */
    bool allowDeletions = true;
    /**
     * Algorithm 2 as written returns None when any ranked container
     * cannot be placed, abandoning everything below it. The default
     * (false) instead skips the unplaceable container together with
     * the rest of *its application* (preserving the intra-app
     * criticality order) and keeps packing other applications —
     * strictly better availability under fragmentation. Set true for
     * the paper-literal behaviour (ablation).
     */
    bool abortOnUnplaceable = false;

    /**
     * Run the original container-based bookkeeping (std::map rank
     * index, std::set commit set, red-black-tree SortedKv capacity
     * index) instead of the flat dense-pod-index bookkeeping. Both
     * drive the identical packing algorithm and emit bit-identical
     * action sequences — test_properties asserts it — so this exists
     * as the oracle for that suite and as an A/B lever for the
     * benches.
     */
    bool referenceImpl = false;

    /**
     * Zone-sharded capacity index: > 1 splits the flat bookkeeping's
     * BucketedKv into zoneShards instances routed by node id % zones
     * and builds them zone-parallel. Queries decompose exactly over
     * the partition — best-fit takes the min over per-zone best-fits,
     * scans k-way-merge per-zone cursors — and node ids are unique, so
     * the merged visit order is byte-identical to the single index and
     * every packing decision (and op counter) is unchanged. Ignored
     * under referenceImpl.
     */
    size_t zoneShards = 0;

    /** Zone executor for the sharded index build; null = serial. */
    ShardRunner shardRunner;

    /**
     * Incremental replan: keep the capacity index alive across pack()
     * calls and reconcile it against the observed state with an exact
     * per-node diff (erase/insert only nodes whose remaining capacity
     * or health changed) instead of rebuilding it from scratch. The
     * reconciled index holds exactly the same (key, node) set a fresh
     * build would, so outputs are bit-identical; only kvOps and
     * reconcile time shrink — proportional to the blast radius, not
     * the cluster. Falls back to a cold build whenever the node count
     * or zone count changes. Ignored under referenceImpl.
     */
    bool incremental = false;
};

/**
 * The packing module. pack() plans on a copy of @p current; the only
 * state a scheduler instance keeps is a scratch arena of index buffers
 * that is recycled across calls, so a long-lived scheduler (one
 * controller epoch after another) allocates nothing for bookkeeping in
 * steady state.
 */
class PackingScheduler
{
  public:
    explicit PackingScheduler(PackingOptions options = PackingOptions())
        : options_(options)
    {
    }

    /**
     * Pack the ranked containers onto the cluster.
     *
     * @param apps    application descriptors (for container sizes)
     * @param current live cluster state (failures already applied)
     * @param ranked  planner output, most important first
     */
    PackResult pack(const std::vector<sim::Application> &apps,
                    const sim::ClusterState &current,
                    const GlobalRank &ranked) const;

  private:
    PackingOptions options_;
    // Lazily created in pack(); shared so the scheduler stays
    // copyable (copies share the single-threaded scratch arena).
    mutable std::shared_ptr<PackScratch> scratch_;
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_PACKING_H
