#include "planner.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <utility>

#include "lp/waterfill.h"

namespace phoenix::core {

using sim::Application;
using sim::Microservice;
using sim::MsId;
using sim::PodRef;

namespace {

/** Bit pattern of a double (bitwise equality, not fp equality). */
uint64_t
bitsOf(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** FNV-1a accumulator for the incremental-replan fingerprints. */
struct Fnv
{
    uint64_t h = 1469598103934665603ULL;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
};

} // namespace

double
CostObjective::key(const Application &app, const Microservice &ms,
                   double app_usage_so_far) const
{
    (void)app_usage_so_far;
    // Lexicographic (criticality, -price): business-critical
    // containers carry the revenue, so every tenant's C1 ranks ahead
    // of any tenant's C2, and within a level the higher-paying tenant
    // wins. This is what lets PhoenixCost keep all five applications'
    // critical services alive in the paper's Fig 6 run while still
    // maximizing revenue — a pure per-app price ordering would starve
    // cheaper tenants' critical services entirely, and a fractional
    // price/criticality discount still lets an expensive tenant's C2
    // tie with a cheap tenant's C1 and eat the packing margin.
    return static_cast<double>(effectiveCriticality(app, ms)) * 1.0e6 -
           app.pricePerUnit;
}

namespace {

/**
 * Water-fill shares come back positional (shares[i] belongs to
 * apps[i]); the objectives look shares up by app.id. Those coincide
 * only while app ids happen to be dense and in vector order, so
 * scatter the shares into an id-indexed table and let key() assert
 * coverage instead of silently treating an out-of-range id as a zero
 * share (which ranked that app's every container last).
 */
std::vector<double>
sharesByAppId(const std::vector<Application> &apps,
              const std::vector<double> &positional_shares)
{
    size_t table = 0;
    for (const auto &app : apps)
        table = std::max(table, static_cast<size_t>(app.id) + 1);
    std::vector<double> by_id(table, 0.0);
    for (size_t i = 0; i < apps.size(); ++i)
        by_id[apps[i].id] = positional_shares[i];
    return by_id;
}

} // namespace

void
FairObjective::begin(const std::vector<Application> &apps, double capacity)
{
    std::vector<double> demands;
    demands.reserve(apps.size());
    for (const auto &app : apps)
        demands.push_back(app.totalDemand());
    fairShare_ = sharesByAppId(apps, lp::waterFill(demands, capacity));
}

double
FairObjective::key(const Application &app, const Microservice &ms,
                   double app_usage_so_far) const
{
    // Deviation from the water-fill fair share after activating ms;
    // least deviation pops first (relaxed fair share: an app may exceed
    // its share, but only once everyone else is closer to theirs).
    assert(app.id < fairShare_.size() &&
           "FairObjective::begin must see every ranked application");
    const double share = fairShare_[app.id];
    return app_usage_so_far + ms.totalCpu() - share;
}

bool
FairObjective::cacheKey(uint64_t &out) const
{
    // key() depends only on the water-fill shares, so a digest of the
    // shares (bitwise, computed by begin() from demands + capacity)
    // pins everything the ranking can observe.
    Fnv fnv;
    fnv.mix(fairShare_.size());
    for (double share : fairShare_)
        fnv.mix(bitsOf(share));
    out = fnv.h;
    return true;
}

void
WeightedFairObjective::begin(const std::vector<Application> &apps,
                             double capacity)
{
    std::vector<double> demands;
    std::vector<double> weights;
    demands.reserve(apps.size());
    weights.reserve(apps.size());
    for (const auto &app : apps) {
        demands.push_back(app.totalDemand());
        weights.push_back(app.id < weights_.size() ? weights_[app.id]
                                                   : 1.0);
    }
    fairShare_ = sharesByAppId(
        apps, lp::weightedWaterFill(demands, weights, capacity));
}

double
WeightedFairObjective::key(const Application &app,
                           const Microservice &ms,
                           double app_usage_so_far) const
{
    assert(app.id < fairShare_.size() &&
           "WeightedFairObjective::begin must see every ranked "
           "application");
    const double share = fairShare_[app.id];
    // Normalize the deviation by weight so heavier tenants may sit
    // proportionally further above the line before yielding the queue.
    const double weight =
        app.id < weights_.size() && weights_[app.id] > 0.0
            ? weights_[app.id]
            : 1.0;
    return (app_usage_so_far + ms.totalCpu() - share) / weight;
}

bool
WeightedFairObjective::cacheKey(uint64_t &out) const
{
    Fnv fnv;
    fnv.mix(fairShare_.size());
    for (double share : fairShare_)
        fnv.mix(bitsOf(share));
    fnv.mix(weights_.size());
    for (double weight : weights_)
        fnv.mix(bitsOf(weight));
    out = fnv.h;
    return true;
}

namespace {

/**
 * Reference per-app ordering: the original std::set queue plus
 * per-visit child copy + sort. Kept verbatim (modulo counters) as the
 * oracle for the flat implementation's bit-identity suite.
 */
void
referenceAppOrder(const Application &app, const PlannerOptions &options,
                  std::vector<MsId> &rank, OpCounters &ops)
{
    if (!app.hasDependencyGraph) {
        // No DG: order purely by criticality (Alg. 1 lines 17-19).
        std::vector<MsId> order(app.services.size());
        for (MsId m = 0; m < order.size(); ++m)
            order[m] = m;
        std::stable_sort(
            order.begin(), order.end(), [&](MsId x, MsId y) {
                return effectiveCriticality(app, app.services[x]) <
                       effectiveCriticality(app, app.services[y]);
            });
        rank = std::move(order);
        return;
    }

    // DG present: criticality-keyed preorder traversal
    // (Alg. 1 lines 6-16).
    std::vector<bool> visited(app.services.size(), false);
    // Q keyed by (criticality, node id) — most critical first.
    std::set<std::pair<int, MsId>> queue;

    auto tag = [&](MsId m) {
        return effectiveCriticality(app, app.services[m]);
    };

    // Iterative DFS honouring the pseudocode: descend into children
    // whose tag is >= the parent's (less or equally critical);
    // queue children that are *more* critical than the parent so
    // they pop by global criticality order.
    auto dfs = [&](MsId start) {
        std::vector<MsId> stack{start};
        while (!stack.empty()) {
            const MsId node = stack.back();
            stack.pop_back();
            if (visited[node])
                continue;
            visited[node] = true;
            rank.push_back(node);

            // Children sorted most-critical-first; push onto the
            // stack in reverse so the most critical is explored
            // first (preorder).
            std::vector<MsId> children(app.dag.successors(node).begin(),
                                       app.dag.successors(node).end());
            ops.childSortElems += children.size();
            std::sort(children.begin(), children.end(),
                      [&](MsId x, MsId y) {
                          if (tag(x) != tag(y))
                              return tag(x) < tag(y);
                          return x < y;
                      });
            for (auto it = children.rbegin(); it != children.rend();
                 ++it) {
                const MsId child = *it;
                if (visited[child])
                    continue;
                const bool descend =
                    options.eagerDfsDescend ? tag(child) >= tag(node)
                                            : tag(child) == tag(node);
                if (descend) {
                    stack.push_back(child);
                } else if (queue.emplace(tag(child), child).second) {
                    ++ops.heapPushes;
                }
            }
        }
    };

    for (MsId src : app.dag.sources()) {
        if (queue.emplace(tag(src), src).second)
            ++ops.heapPushes;
    }
    // Nodes unreachable from any source (cyclic components) still
    // need a rank; seed them too so every service appears.
    for (MsId m = 0; m < app.services.size(); ++m) {
        if (app.dag.predecessors(m).empty() &&
            app.dag.successors(m).empty()) {
            if (queue.emplace(tag(m), m).second)
                ++ops.heapPushes;
        }
    }

    while (!queue.empty()) {
        const MsId next = queue.begin()->second;
        queue.erase(queue.begin());
        ++ops.heapPops;
        if (!visited[next])
            dfs(next);
    }

    // Safety net: append anything a cyclic or disconnected DG left
    // unvisited, in criticality order.
    std::vector<MsId> leftovers;
    for (MsId m = 0; m < app.services.size(); ++m) {
        if (!visited[m])
            leftovers.push_back(m);
    }
    std::sort(leftovers.begin(), leftovers.end(), [&](MsId x, MsId y) {
        if (tag(x) != tag(y))
            return tag(x) < tag(y);
        return x < y;
    });
    rank.insert(rank.end(), leftovers.begin(), leftovers.end());
}

/** Fill @p keys with effective criticality tags for @p app. */
void
fillTags(const Application &app, std::vector<int> &keys)
{
    keys.resize(app.services.size());
    for (MsId m = 0; m < app.services.size(); ++m)
        keys[m] = effectiveCriticality(app, app.services[m]);
}

/**
 * Counting sort of ms ids by (keys[m], m) ascending — the order a
 * stable sort by tag produces. Reuses @p counts across calls.
 */
void
sortIdsByTag(const std::vector<int> &keys, std::vector<uint32_t> &counts,
             std::vector<MsId> &out)
{
    const size_t n = keys.size();
    out.resize(n);
    if (n == 0)
        return;
    const auto [min_it, max_it] =
        std::minmax_element(keys.begin(), keys.end());
    const int min_key = *min_it;
    const size_t range = static_cast<size_t>(
        static_cast<int64_t>(*max_it) - static_cast<int64_t>(min_key) +
        1);
    if (range > 4 * n + 64) {
        for (MsId m = 0; m < n; ++m)
            out[m] = m;
        std::sort(out.begin(), out.end(), [&](MsId x, MsId y) {
            if (keys[x] != keys[y])
                return keys[x] < keys[y];
            return x < y;
        });
        return;
    }
    counts.assign(range + 1, 0);
    for (size_t m = 0; m < n; ++m)
        ++counts[static_cast<size_t>(keys[m] - min_key) + 1];
    for (size_t k = 1; k < counts.size(); ++k)
        counts[k] += counts[k - 1];
    for (MsId m = 0; m < n; ++m)
        out[counts[static_cast<size_t>(keys[m] - min_key)]++] = m;
}

/**
 * Flat per-app ordering: identical traversal to referenceAppOrder, but
 * children come pre-sorted from the app's SortedCsr (no per-visit copy
 * or sort), the criticality queue is an indexed heap, and every buffer
 * lives in the shared scratch arena.
 */
void
flatAppOrder(const Application &app, const PlannerOptions &options,
             graph::SortedCsr &csr, PlanScratch &scratch,
             std::vector<MsId> &rank, OpCounters &ops)
{
    fillTags(app, scratch.keys);
    const std::vector<int> &keys = scratch.keys;
    const size_t n = app.services.size();

    if (!app.hasDependencyGraph) {
        sortIdsByTag(keys, scratch.counts, rank);
        return;
    }

    csr.build(app.dag, keys);
    scratch.visited.assign(n, 0);
    auto &visited = scratch.visited;
    auto &queue = scratch.dfsQueue;
    queue.reset(n);
    auto &stack = scratch.stack;

    // Seed every source (empty predecessor list; this also covers the
    // reference code's redundant isolated-node pass, which the set
    // deduplicated).
    for (MsId m = 0; m < n; ++m) {
        if (app.dag.predecessors(m).empty()) {
            queue.push(m, keys[m]);
            ++ops.heapPushes;
        }
    }

    while (!queue.empty()) {
        const MsId next = queue.pop();
        ++ops.heapPops;
        if (visited[next])
            continue;

        stack.clear();
        stack.push_back(next);
        while (!stack.empty()) {
            const MsId node = stack.back();
            stack.pop_back();
            if (visited[node])
                continue;
            visited[node] = 1;
            rank.push_back(node);

            // Successors are pre-sorted ascending by (tag, id); walk
            // them in reverse so the stack pops most-critical first,
            // exactly like the reference's sort + rbegin.
            const graph::NodeId *first = csr.begin(node);
            for (const graph::NodeId *it = csr.end(node); it != first;) {
                const MsId child = *--it;
                if (visited[child])
                    continue;
                const bool descend = options.eagerDfsDescend
                                         ? keys[child] >= keys[node]
                                         : keys[child] == keys[node];
                if (descend) {
                    stack.push_back(child);
                } else if (!queue.contains(child)) {
                    queue.push(child, keys[child]);
                    ++ops.heapPushes;
                }
            }
        }
    }

    // Leftovers (cyclic / disconnected remnants) in (tag, id) order —
    // which is exactly the CSR's global node order.
    for (MsId m : csr.nodesByKey()) {
        if (!visited[m])
            rank.push_back(m);
    }
}

} // namespace

AppRank
Planner::priorityEstimator(const std::vector<Application> &apps,
                           PlannerOptions options)
{
    Planner planner(options);
    AppRank ranks;
    planner.priorityEstimatorInto(apps, ranks);
    return ranks;
}

uint64_t
Planner::fingerprintApps(const std::vector<Application> &apps) const
{
    // Everything the per-app ordering AND the grant sequence can
    // observe: ids, tags, per-replica sizes, replica/quorum counts,
    // pricing, and the dependency edges. A matching fingerprint means
    // both the cached appRank and the cached needs sequence are
    // computed from identical inputs.
    Fnv fnv;
    fnv.mix(apps.size());
    for (const Application &app : apps) {
        fnv.mix(app.id);
        fnv.mix(app.phoenixEnabled ? 1 : 0);
        fnv.mix(bitsOf(app.pricePerUnit));
        fnv.mix(app.services.size());
        for (const Microservice &ms : app.services) {
            fnv.mix(ms.id);
            fnv.mix(bitsOf(ms.cpu));
            fnv.mix(static_cast<uint64_t>(ms.criticality));
            fnv.mix(static_cast<uint64_t>(ms.replicas));
            fnv.mix(static_cast<uint64_t>(ms.quorum));
        }
        fnv.mix(app.hasDependencyGraph ? 1 : 0);
        if (app.hasDependencyGraph) {
            for (MsId m = 0; m < app.services.size(); ++m) {
                const auto &succ = app.dag.successors(m);
                fnv.mix(succ.size());
                for (MsId child : succ)
                    fnv.mix(child);
            }
        }
    }
    return fnv.h;
}

void
Planner::priorityEstimatorInto(const std::vector<Application> &apps,
                               AppRank &out) const
{
    ops_.reset();
    lastShardsPlanned_ = 0;
    lastEstimatorReused_ = false;

    const bool incremental =
        options_.incremental && !options_.referenceImpl;
    uint64_t fingerprint = 0;
    if (incremental) {
        fingerprint = fingerprintApps(apps);
        // Reuse applies only to the planner-owned buffer (the
        // planInto() path): a caller-supplied buffer may hold anything.
        if (estimatorCacheValid_ && fingerprint == appsFingerprint_ &&
            &out == &scratch_.appRank) {
            lastEstimatorReused_ = true;
            return;
        }
        // Apps changed (or first run): the cached grant sequence was
        // computed from a different structure, drop it.
        rankCacheValid_ = false;
    }

    out.resize(apps.size());
    if (!options_.referenceImpl && scratch_.csr.size() < apps.size())
        scratch_.csr.resize(apps.size());

    const size_t shards =
        !options_.referenceImpl && options_.shardCount > 1 && !apps.empty()
            ? std::min(options_.shardCount, apps.size())
            : 1;
    if (shards <= 1) {
        for (size_t a = 0; a < apps.size(); ++a) {
            auto &rank = out[a];
            rank.clear();
            rank.reserve(apps[a].services.size());
            if (options_.referenceImpl) {
                referenceAppOrder(apps[a], options_, rank, ops_);
            } else {
                flatAppOrder(apps[a], options_, scratch_.csr[a],
                             scratch_, rank, ops_);
            }
        }
    } else {
        // Shard s owns apps {s, s + shards, ...} on its own scratch
        // arena; scratch_.csr is shared but indexed per app, so the
        // workers touch disjoint entries. Counters are summed in
        // shard order afterwards — integer sums over a permutation of
        // the same per-app contributions, so the totals are identical
        // to the monolithic pass.
        while (shardScratch_.size() < shards)
            shardScratch_.push_back(std::make_unique<PlanScratch>());
        shardOps_.assign(shards, OpCounters());
        const auto work = [&](size_t s) {
            PlanScratch &scratch = *shardScratch_[s];
            OpCounters &ops = shardOps_[s];
            for (size_t a = s; a < apps.size(); a += shards) {
                auto &rank = out[a];
                rank.clear();
                rank.reserve(apps[a].services.size());
                flatAppOrder(apps[a], options_, scratch_.csr[a],
                             scratch, rank, ops);
            }
        };
        if (options_.shardRunner) {
            options_.shardRunner(shards, work);
        } else {
            for (size_t s = 0; s < shards; ++s)
                work(s);
        }
        for (const OpCounters &ops : shardOps_)
            ops_ += ops;
        lastShardsPlanned_ = shards;
    }

    if (incremental) {
        appsFingerprint_ = fingerprint;
        estimatorCacheValid_ = &out == &scratch_.appRank;
    }
}

GlobalRank
Planner::globalRank(const std::vector<Application> &apps,
                    const AppRank &app_rank, OperatorObjective &objective,
                    double capacity) const
{
    GlobalRank global;
    globalRankInto(apps, app_rank, objective, capacity, global);
    return global;
}

void
Planner::globalRankInto(const std::vector<Application> &apps,
                        const AppRank &app_rank,
                        OperatorObjective &objective, double capacity,
                        GlobalRank &out) const
{
    ops_.reset();
    lastRankReused_ = false;
    objective.begin(apps, capacity);

    // Incremental replan: reuse the cached ranked list when nothing it
    // can observe changed. Requirements, in order: the planner-owned
    // appRank (so the cache provably describes these apps), an
    // estimator cache hit this plan (same app fingerprint), a matching
    // objective digest, and a capacity for which the grant walk is
    // provably identical — bitwise-equal capacity, or a cached
    // rejection-free walk whose recorded needs replay rejection-free
    // against the new capacity (with no rejection, every head is
    // granted and the pop order never reads `remaining`, so the
    // emitted sequence is capacity-independent).
    const bool track = options_.incremental && !options_.referenceImpl &&
                       &app_rank == &scratch_.appRank;
    if (track && rankCacheValid_ && lastEstimatorReused_) {
        uint64_t objective_key = 0;
        if (objective.cacheKey(objective_key) &&
            objective_key == rankCacheObjectiveKey_) {
            bool reuse = bitsOf(capacity) == rankCacheCapacityBits_;
            if (!reuse && rankCacheRejectionFree_) {
                double replay = capacity;
                reuse = true;
                for (double need : rankCacheNeeds_) {
                    if (need > replay + 1e-9) {
                        reuse = false;
                        break;
                    }
                    replay -= need;
                }
            }
            if (reuse) {
                out = rankCache_;
                rankCacheCapacityBits_ = bitsOf(capacity);
                lastRankReused_ = true;
                return;
            }
        }
    }

    out.clear();
    double remaining = capacity;
    auto &usage = scratch_.usage;
    auto &cursor = scratch_.cursor;
    usage.assign(apps.size(), 0.0);
    cursor.assign(apps.size(), 0);

    bool rejection_free = true;
    if (track)
        rankCacheNeeds_.clear();

    // The shared grant step: commit app a's head container, advance to
    // its next one, and report whether the head was re-queued.
    auto grant = [&](sim::AppId a) -> bool {
        const MsId m = app_rank[a][cursor[a]];
        const Microservice &ms = apps[a].services[m];
        // Reserve the minimum viable allocation; the packer fills up
        // to the full replica count when capacity allows.
        const double need = ms.quorumCpu();

        if (need > remaining + 1e-9) {
            rejection_free = false;
            return false;
        }

        remaining -= need;
        if (track)
            rankCacheNeeds_.push_back(need);
        out.push_back(PodRef{static_cast<sim::AppId>(a), m});
        usage[a] += need;
        objective.granted(apps[a], ms);
        ++cursor[a];
        return true;
    };

    if (options_.referenceImpl) {
        // (key, app) entries; one live entry per app, re-inserted with
        // the app's next container after each grant.
        std::set<std::pair<double, sim::AppId>> queue;

        auto push_head = [&](sim::AppId a) {
            if (cursor[a] >= app_rank[a].size())
                return;
            const MsId m = app_rank[a][cursor[a]];
            queue.emplace(
                objective.key(apps[a], apps[a].services[m], usage[a]),
                a);
            ++ops_.heapPushes;
        };

        for (sim::AppId a = 0; a < apps.size(); ++a)
            push_head(a);

        while (!queue.empty()) {
            const auto [key, a] = *queue.begin();
            (void)key;
            queue.erase(queue.begin());
            ++ops_.heapPops;
            if (!grant(a)) {
                if (options_.stopAtFirstOverflow)
                    break; // Alg. 1 line 28
                // Ablation mode: drop this app (its later containers
                // are lower priority and may not jump the queue) but
                // keep ranking the others.
                continue;
            }
            push_head(a);
        }
        return;
    }

    // Flat path: the same one-live-entry-per-app queue as an indexed
    // heap keyed (objective key, app id) — identical pop order to the
    // std::set of (key, app) pairs, zero allocation in steady state.
    auto &queue = scratch_.appQueue;
    queue.reset(apps.size());

    auto push_head = [&](sim::AppId a) {
        if (cursor[a] >= app_rank[a].size())
            return;
        const MsId m = app_rank[a][cursor[a]];
        queue.push(a,
                   objective.key(apps[a], apps[a].services[m], usage[a]));
        ++ops_.heapPushes;
    };

    for (sim::AppId a = 0; a < apps.size(); ++a)
        push_head(a);

    while (!queue.empty()) {
        const sim::AppId a = queue.pop();
        ++ops_.heapPops;
        if (!grant(a)) {
            if (options_.stopAtFirstOverflow)
                break; // Alg. 1 line 28
            continue;
        }
        push_head(a);
    }

    if (track) {
        uint64_t objective_key = 0;
        rankCacheValid_ = objective.cacheKey(objective_key);
        rankCacheObjectiveKey_ = objective_key;
        rankCacheCapacityBits_ = bitsOf(capacity);
        rankCacheRejectionFree_ = rejection_free;
        rankCache_ = out;
    }
}

GlobalRank
Planner::plan(const std::vector<Application> &apps,
              OperatorObjective &objective, double capacity) const
{
    GlobalRank global;
    planInto(apps, objective, capacity, global);
    return global;
}

void
Planner::planInto(const std::vector<Application> &apps,
                  OperatorObjective &objective, double capacity,
                  GlobalRank &out) const
{
    priorityEstimatorInto(apps, scratch_.appRank);
    const OpCounters estimator_ops = ops_;
    globalRankInto(apps, scratch_.appRank, objective, capacity, out);
    ops_ += estimator_ops;
}

} // namespace phoenix::core