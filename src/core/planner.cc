#include "planner.h"

#include <algorithm>
#include <queue>
#include <set>

#include "lp/waterfill.h"

namespace phoenix::core {

using sim::Application;
using sim::Microservice;
using sim::MsId;
using sim::PodRef;

double
CostObjective::key(const Application &app, const Microservice &ms,
                   double app_usage_so_far) const
{
    (void)app_usage_so_far;
    // Lexicographic (criticality, -price): business-critical
    // containers carry the revenue, so every tenant's C1 ranks ahead
    // of any tenant's C2, and within a level the higher-paying tenant
    // wins. This is what lets PhoenixCost keep all five applications'
    // critical services alive in the paper's Fig 6 run while still
    // maximizing revenue — a pure per-app price ordering would starve
    // cheaper tenants' critical services entirely, and a fractional
    // price/criticality discount still lets an expensive tenant's C2
    // tie with a cheap tenant's C1 and eat the packing margin.
    return static_cast<double>(effectiveCriticality(app, ms)) * 1.0e6 -
           app.pricePerUnit;
}

void
FairObjective::begin(const std::vector<Application> &apps, double capacity)
{
    std::vector<double> demands;
    demands.reserve(apps.size());
    for (const auto &app : apps)
        demands.push_back(app.totalDemand());
    fairShare_ = lp::waterFill(demands, capacity);
}

double
FairObjective::key(const Application &app, const Microservice &ms,
                   double app_usage_so_far) const
{
    // Deviation from the water-fill fair share after activating ms;
    // least deviation pops first (relaxed fair share: an app may exceed
    // its share, but only once everyone else is closer to theirs).
    const double share =
        app.id < fairShare_.size() ? fairShare_[app.id] : 0.0;
    return app_usage_so_far + ms.totalCpu() - share;
}

void
WeightedFairObjective::begin(const std::vector<Application> &apps,
                             double capacity)
{
    std::vector<double> demands;
    std::vector<double> weights;
    demands.reserve(apps.size());
    weights.reserve(apps.size());
    for (const auto &app : apps) {
        demands.push_back(app.totalDemand());
        weights.push_back(app.id < weights_.size() ? weights_[app.id]
                                                   : 1.0);
    }
    fairShare_ = lp::weightedWaterFill(demands, weights, capacity);
}

double
WeightedFairObjective::key(const Application &app,
                           const Microservice &ms,
                           double app_usage_so_far) const
{
    const double share =
        app.id < fairShare_.size() ? fairShare_[app.id] : 0.0;
    // Normalize the deviation by weight so heavier tenants may sit
    // proportionally further above the line before yielding the queue.
    const double weight =
        app.id < weights_.size() && weights_[app.id] > 0.0
            ? weights_[app.id]
            : 1.0;
    return (app_usage_so_far + ms.totalCpu() - share) / weight;
}

AppRank
Planner::priorityEstimator(const std::vector<Application> &apps,
                           PlannerOptions options)
{
    AppRank ranks(apps.size());

    for (size_t a = 0; a < apps.size(); ++a) {
        const Application &app = apps[a];
        auto &rank = ranks[a];
        rank.reserve(app.services.size());

        if (!app.hasDependencyGraph) {
            // No DG: order purely by criticality (Alg. 1 lines 17-19).
            std::vector<MsId> order(app.services.size());
            for (MsId m = 0; m < order.size(); ++m)
                order[m] = m;
            std::stable_sort(
                order.begin(), order.end(), [&](MsId x, MsId y) {
                    return effectiveCriticality(app, app.services[x]) <
                           effectiveCriticality(app, app.services[y]);
                });
            rank = std::move(order);
            continue;
        }

        // DG present: criticality-keyed preorder traversal
        // (Alg. 1 lines 6-16).
        std::vector<bool> visited(app.services.size(), false);
        // Q keyed by (criticality, node id) — most critical first.
        std::set<std::pair<int, MsId>> queue;

        auto tag = [&](MsId m) {
            return effectiveCriticality(app, app.services[m]);
        };

        // Iterative DFS honouring the pseudocode: descend into children
        // whose tag is >= the parent's (less or equally critical);
        // queue children that are *more* critical than the parent so
        // they pop by global criticality order.
        auto dfs = [&](MsId start) {
            std::vector<MsId> stack{start};
            while (!stack.empty()) {
                const MsId node = stack.back();
                stack.pop_back();
                if (visited[node])
                    continue;
                visited[node] = true;
                rank.push_back(node);

                // Children sorted most-critical-first; push onto the
                // stack in reverse so the most critical is explored
                // first (preorder).
                std::vector<MsId> children(
                    app.dag.successors(node).begin(),
                    app.dag.successors(node).end());
                std::sort(children.begin(), children.end(),
                          [&](MsId x, MsId y) {
                              if (tag(x) != tag(y))
                                  return tag(x) < tag(y);
                              return x < y;
                          });
                for (auto it = children.rbegin(); it != children.rend();
                     ++it) {
                    const MsId child = *it;
                    if (visited[child])
                        continue;
                    const bool descend =
                        options.eagerDfsDescend
                            ? tag(child) >= tag(node)
                            : tag(child) == tag(node);
                    if (descend)
                        stack.push_back(child);
                    else
                        queue.emplace(tag(child), child);
                }
            }
        };

        for (MsId src : app.dag.sources())
            queue.emplace(tag(src), src);
        // Nodes unreachable from any source (cyclic components) still
        // need a rank; seed them too so every service appears.
        for (MsId m = 0; m < app.services.size(); ++m) {
            if (app.dag.predecessors(m).empty() &&
                app.dag.successors(m).empty()) {
                queue.emplace(tag(m), m);
            }
        }

        while (!queue.empty()) {
            const MsId next = queue.begin()->second;
            queue.erase(queue.begin());
            if (!visited[next])
                dfs(next);
        }

        // Safety net: append anything a cyclic or disconnected DG left
        // unvisited, in criticality order.
        std::vector<MsId> leftovers;
        for (MsId m = 0; m < app.services.size(); ++m) {
            if (!visited[m])
                leftovers.push_back(m);
        }
        std::sort(leftovers.begin(), leftovers.end(),
                  [&](MsId x, MsId y) {
                      if (tag(x) != tag(y))
                          return tag(x) < tag(y);
                      return x < y;
                  });
        rank.insert(rank.end(), leftovers.begin(), leftovers.end());
    }
    return ranks;
}

GlobalRank
Planner::globalRank(const std::vector<Application> &apps,
                    const AppRank &app_rank, OperatorObjective &objective,
                    double capacity) const
{
    objective.begin(apps, capacity);

    GlobalRank global;
    double remaining = capacity;
    std::vector<double> usage(apps.size(), 0.0);
    std::vector<size_t> cursor(apps.size(), 0);

    // (key, app) entries; one live entry per app, re-inserted with the
    // app's next container after each grant.
    std::set<std::pair<double, sim::AppId>> queue;

    auto push_head = [&](sim::AppId a) {
        if (cursor[a] >= app_rank[a].size())
            return;
        const MsId m = app_rank[a][cursor[a]];
        queue.emplace(
            objective.key(apps[a], apps[a].services[m], usage[a]), a);
    };

    for (sim::AppId a = 0; a < apps.size(); ++a)
        push_head(a);

    while (!queue.empty()) {
        const auto [key, a] = *queue.begin();
        (void)key;
        queue.erase(queue.begin());
        const MsId m = app_rank[a][cursor[a]];
        const Microservice &ms = apps[a].services[m];
        // Reserve the minimum viable allocation; the packer fills up
        // to the full replica count when capacity allows.
        const double need = ms.quorumCpu();

        if (need > remaining + 1e-9) {
            if (options_.stopAtFirstOverflow)
                break; // Alg. 1 line 28
            // Ablation mode: drop this app (its later containers are
            // lower priority and may not jump the queue) but keep
            // ranking the others.
            continue;
        }

        remaining -= need;
        global.push_back(PodRef{a, m});
        usage[a] += need;
        objective.granted(apps[a], ms);
        ++cursor[a];
        push_head(a);
    }
    return global;
}

GlobalRank
Planner::plan(const std::vector<Application> &apps,
              OperatorObjective &objective, double capacity) const
{
    const AppRank ranks = priorityEstimator(apps, options_);
    return globalRank(apps, ranks, objective, capacity);
}

} // namespace phoenix::core
