#include "planner.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

#include "lp/waterfill.h"

namespace phoenix::core {

using sim::Application;
using sim::Microservice;
using sim::MsId;
using sim::PodRef;

double
CostObjective::key(const Application &app, const Microservice &ms,
                   double app_usage_so_far) const
{
    (void)app_usage_so_far;
    // Lexicographic (criticality, -price): business-critical
    // containers carry the revenue, so every tenant's C1 ranks ahead
    // of any tenant's C2, and within a level the higher-paying tenant
    // wins. This is what lets PhoenixCost keep all five applications'
    // critical services alive in the paper's Fig 6 run while still
    // maximizing revenue — a pure per-app price ordering would starve
    // cheaper tenants' critical services entirely, and a fractional
    // price/criticality discount still lets an expensive tenant's C2
    // tie with a cheap tenant's C1 and eat the packing margin.
    return static_cast<double>(effectiveCriticality(app, ms)) * 1.0e6 -
           app.pricePerUnit;
}

namespace {

/**
 * Water-fill shares come back positional (shares[i] belongs to
 * apps[i]); the objectives look shares up by app.id. Those coincide
 * only while app ids happen to be dense and in vector order, so
 * scatter the shares into an id-indexed table and let key() assert
 * coverage instead of silently treating an out-of-range id as a zero
 * share (which ranked that app's every container last).
 */
std::vector<double>
sharesByAppId(const std::vector<Application> &apps,
              const std::vector<double> &positional_shares)
{
    size_t table = 0;
    for (const auto &app : apps)
        table = std::max(table, static_cast<size_t>(app.id) + 1);
    std::vector<double> by_id(table, 0.0);
    for (size_t i = 0; i < apps.size(); ++i)
        by_id[apps[i].id] = positional_shares[i];
    return by_id;
}

} // namespace

void
FairObjective::begin(const std::vector<Application> &apps, double capacity)
{
    std::vector<double> demands;
    demands.reserve(apps.size());
    for (const auto &app : apps)
        demands.push_back(app.totalDemand());
    fairShare_ = sharesByAppId(apps, lp::waterFill(demands, capacity));
}

double
FairObjective::key(const Application &app, const Microservice &ms,
                   double app_usage_so_far) const
{
    // Deviation from the water-fill fair share after activating ms;
    // least deviation pops first (relaxed fair share: an app may exceed
    // its share, but only once everyone else is closer to theirs).
    assert(app.id < fairShare_.size() &&
           "FairObjective::begin must see every ranked application");
    const double share = fairShare_[app.id];
    return app_usage_so_far + ms.totalCpu() - share;
}

void
WeightedFairObjective::begin(const std::vector<Application> &apps,
                             double capacity)
{
    std::vector<double> demands;
    std::vector<double> weights;
    demands.reserve(apps.size());
    weights.reserve(apps.size());
    for (const auto &app : apps) {
        demands.push_back(app.totalDemand());
        weights.push_back(app.id < weights_.size() ? weights_[app.id]
                                                   : 1.0);
    }
    fairShare_ = sharesByAppId(
        apps, lp::weightedWaterFill(demands, weights, capacity));
}

double
WeightedFairObjective::key(const Application &app,
                           const Microservice &ms,
                           double app_usage_so_far) const
{
    assert(app.id < fairShare_.size() &&
           "WeightedFairObjective::begin must see every ranked "
           "application");
    const double share = fairShare_[app.id];
    // Normalize the deviation by weight so heavier tenants may sit
    // proportionally further above the line before yielding the queue.
    const double weight =
        app.id < weights_.size() && weights_[app.id] > 0.0
            ? weights_[app.id]
            : 1.0;
    return (app_usage_so_far + ms.totalCpu() - share) / weight;
}

namespace {

/**
 * Reference per-app ordering: the original std::set queue plus
 * per-visit child copy + sort. Kept verbatim (modulo counters) as the
 * oracle for the flat implementation's bit-identity suite.
 */
void
referenceAppOrder(const Application &app, const PlannerOptions &options,
                  std::vector<MsId> &rank, OpCounters &ops)
{
    if (!app.hasDependencyGraph) {
        // No DG: order purely by criticality (Alg. 1 lines 17-19).
        std::vector<MsId> order(app.services.size());
        for (MsId m = 0; m < order.size(); ++m)
            order[m] = m;
        std::stable_sort(
            order.begin(), order.end(), [&](MsId x, MsId y) {
                return effectiveCriticality(app, app.services[x]) <
                       effectiveCriticality(app, app.services[y]);
            });
        rank = std::move(order);
        return;
    }

    // DG present: criticality-keyed preorder traversal
    // (Alg. 1 lines 6-16).
    std::vector<bool> visited(app.services.size(), false);
    // Q keyed by (criticality, node id) — most critical first.
    std::set<std::pair<int, MsId>> queue;

    auto tag = [&](MsId m) {
        return effectiveCriticality(app, app.services[m]);
    };

    // Iterative DFS honouring the pseudocode: descend into children
    // whose tag is >= the parent's (less or equally critical);
    // queue children that are *more* critical than the parent so
    // they pop by global criticality order.
    auto dfs = [&](MsId start) {
        std::vector<MsId> stack{start};
        while (!stack.empty()) {
            const MsId node = stack.back();
            stack.pop_back();
            if (visited[node])
                continue;
            visited[node] = true;
            rank.push_back(node);

            // Children sorted most-critical-first; push onto the
            // stack in reverse so the most critical is explored
            // first (preorder).
            std::vector<MsId> children(app.dag.successors(node).begin(),
                                       app.dag.successors(node).end());
            ops.childSortElems += children.size();
            std::sort(children.begin(), children.end(),
                      [&](MsId x, MsId y) {
                          if (tag(x) != tag(y))
                              return tag(x) < tag(y);
                          return x < y;
                      });
            for (auto it = children.rbegin(); it != children.rend();
                 ++it) {
                const MsId child = *it;
                if (visited[child])
                    continue;
                const bool descend =
                    options.eagerDfsDescend ? tag(child) >= tag(node)
                                            : tag(child) == tag(node);
                if (descend) {
                    stack.push_back(child);
                } else if (queue.emplace(tag(child), child).second) {
                    ++ops.heapPushes;
                }
            }
        }
    };

    for (MsId src : app.dag.sources()) {
        if (queue.emplace(tag(src), src).second)
            ++ops.heapPushes;
    }
    // Nodes unreachable from any source (cyclic components) still
    // need a rank; seed them too so every service appears.
    for (MsId m = 0; m < app.services.size(); ++m) {
        if (app.dag.predecessors(m).empty() &&
            app.dag.successors(m).empty()) {
            if (queue.emplace(tag(m), m).second)
                ++ops.heapPushes;
        }
    }

    while (!queue.empty()) {
        const MsId next = queue.begin()->second;
        queue.erase(queue.begin());
        ++ops.heapPops;
        if (!visited[next])
            dfs(next);
    }

    // Safety net: append anything a cyclic or disconnected DG left
    // unvisited, in criticality order.
    std::vector<MsId> leftovers;
    for (MsId m = 0; m < app.services.size(); ++m) {
        if (!visited[m])
            leftovers.push_back(m);
    }
    std::sort(leftovers.begin(), leftovers.end(), [&](MsId x, MsId y) {
        if (tag(x) != tag(y))
            return tag(x) < tag(y);
        return x < y;
    });
    rank.insert(rank.end(), leftovers.begin(), leftovers.end());
}

/** Fill @p keys with effective criticality tags for @p app. */
void
fillTags(const Application &app, std::vector<int> &keys)
{
    keys.resize(app.services.size());
    for (MsId m = 0; m < app.services.size(); ++m)
        keys[m] = effectiveCriticality(app, app.services[m]);
}

/**
 * Counting sort of ms ids by (keys[m], m) ascending — the order a
 * stable sort by tag produces. Reuses @p counts across calls.
 */
void
sortIdsByTag(const std::vector<int> &keys, std::vector<uint32_t> &counts,
             std::vector<MsId> &out)
{
    const size_t n = keys.size();
    out.resize(n);
    if (n == 0)
        return;
    const auto [min_it, max_it] =
        std::minmax_element(keys.begin(), keys.end());
    const int min_key = *min_it;
    const size_t range = static_cast<size_t>(
        static_cast<int64_t>(*max_it) - static_cast<int64_t>(min_key) +
        1);
    if (range > 4 * n + 64) {
        for (MsId m = 0; m < n; ++m)
            out[m] = m;
        std::sort(out.begin(), out.end(), [&](MsId x, MsId y) {
            if (keys[x] != keys[y])
                return keys[x] < keys[y];
            return x < y;
        });
        return;
    }
    counts.assign(range + 1, 0);
    for (size_t m = 0; m < n; ++m)
        ++counts[static_cast<size_t>(keys[m] - min_key) + 1];
    for (size_t k = 1; k < counts.size(); ++k)
        counts[k] += counts[k - 1];
    for (MsId m = 0; m < n; ++m)
        out[counts[static_cast<size_t>(keys[m] - min_key)]++] = m;
}

/**
 * Flat per-app ordering: identical traversal to referenceAppOrder, but
 * children come pre-sorted from the app's SortedCsr (no per-visit copy
 * or sort), the criticality queue is an indexed heap, and every buffer
 * lives in the shared scratch arena.
 */
void
flatAppOrder(const Application &app, const PlannerOptions &options,
             graph::SortedCsr &csr, PlanScratch &scratch,
             std::vector<MsId> &rank, OpCounters &ops)
{
    fillTags(app, scratch.keys);
    const std::vector<int> &keys = scratch.keys;
    const size_t n = app.services.size();

    if (!app.hasDependencyGraph) {
        sortIdsByTag(keys, scratch.counts, rank);
        return;
    }

    csr.build(app.dag, keys);
    scratch.visited.assign(n, 0);
    auto &visited = scratch.visited;
    auto &queue = scratch.dfsQueue;
    queue.reset(n);
    auto &stack = scratch.stack;

    // Seed every source (empty predecessor list; this also covers the
    // reference code's redundant isolated-node pass, which the set
    // deduplicated).
    for (MsId m = 0; m < n; ++m) {
        if (app.dag.predecessors(m).empty()) {
            queue.push(m, keys[m]);
            ++ops.heapPushes;
        }
    }

    while (!queue.empty()) {
        const MsId next = queue.pop();
        ++ops.heapPops;
        if (visited[next])
            continue;

        stack.clear();
        stack.push_back(next);
        while (!stack.empty()) {
            const MsId node = stack.back();
            stack.pop_back();
            if (visited[node])
                continue;
            visited[node] = 1;
            rank.push_back(node);

            // Successors are pre-sorted ascending by (tag, id); walk
            // them in reverse so the stack pops most-critical first,
            // exactly like the reference's sort + rbegin.
            const graph::NodeId *first = csr.begin(node);
            for (const graph::NodeId *it = csr.end(node); it != first;) {
                const MsId child = *--it;
                if (visited[child])
                    continue;
                const bool descend = options.eagerDfsDescend
                                         ? keys[child] >= keys[node]
                                         : keys[child] == keys[node];
                if (descend) {
                    stack.push_back(child);
                } else if (!queue.contains(child)) {
                    queue.push(child, keys[child]);
                    ++ops.heapPushes;
                }
            }
        }
    }

    // Leftovers (cyclic / disconnected remnants) in (tag, id) order —
    // which is exactly the CSR's global node order.
    for (MsId m : csr.nodesByKey()) {
        if (!visited[m])
            rank.push_back(m);
    }
}

} // namespace

AppRank
Planner::priorityEstimator(const std::vector<Application> &apps,
                           PlannerOptions options)
{
    Planner planner(options);
    AppRank ranks;
    planner.priorityEstimatorInto(apps, ranks);
    return ranks;
}

void
Planner::priorityEstimatorInto(const std::vector<Application> &apps,
                               AppRank &out) const
{
    ops_.reset();
    out.resize(apps.size());
    if (!options_.referenceImpl && scratch_.csr.size() < apps.size())
        scratch_.csr.resize(apps.size());

    for (size_t a = 0; a < apps.size(); ++a) {
        auto &rank = out[a];
        rank.clear();
        rank.reserve(apps[a].services.size());
        if (options_.referenceImpl) {
            referenceAppOrder(apps[a], options_, rank, ops_);
        } else {
            flatAppOrder(apps[a], options_, scratch_.csr[a], scratch_,
                         rank, ops_);
        }
    }
}

GlobalRank
Planner::globalRank(const std::vector<Application> &apps,
                    const AppRank &app_rank, OperatorObjective &objective,
                    double capacity) const
{
    GlobalRank global;
    globalRankInto(apps, app_rank, objective, capacity, global);
    return global;
}

void
Planner::globalRankInto(const std::vector<Application> &apps,
                        const AppRank &app_rank,
                        OperatorObjective &objective, double capacity,
                        GlobalRank &out) const
{
    ops_.reset();
    objective.begin(apps, capacity);

    out.clear();
    double remaining = capacity;
    auto &usage = scratch_.usage;
    auto &cursor = scratch_.cursor;
    usage.assign(apps.size(), 0.0);
    cursor.assign(apps.size(), 0);

    // The shared grant step: commit app a's head container, advance to
    // its next one, and report whether the head was re-queued.
    auto grant = [&](sim::AppId a) -> bool {
        const MsId m = app_rank[a][cursor[a]];
        const Microservice &ms = apps[a].services[m];
        // Reserve the minimum viable allocation; the packer fills up
        // to the full replica count when capacity allows.
        const double need = ms.quorumCpu();

        if (need > remaining + 1e-9)
            return false;

        remaining -= need;
        out.push_back(PodRef{static_cast<sim::AppId>(a), m});
        usage[a] += need;
        objective.granted(apps[a], ms);
        ++cursor[a];
        return true;
    };

    if (options_.referenceImpl) {
        // (key, app) entries; one live entry per app, re-inserted with
        // the app's next container after each grant.
        std::set<std::pair<double, sim::AppId>> queue;

        auto push_head = [&](sim::AppId a) {
            if (cursor[a] >= app_rank[a].size())
                return;
            const MsId m = app_rank[a][cursor[a]];
            queue.emplace(
                objective.key(apps[a], apps[a].services[m], usage[a]),
                a);
            ++ops_.heapPushes;
        };

        for (sim::AppId a = 0; a < apps.size(); ++a)
            push_head(a);

        while (!queue.empty()) {
            const auto [key, a] = *queue.begin();
            (void)key;
            queue.erase(queue.begin());
            ++ops_.heapPops;
            if (!grant(a)) {
                if (options_.stopAtFirstOverflow)
                    break; // Alg. 1 line 28
                // Ablation mode: drop this app (its later containers
                // are lower priority and may not jump the queue) but
                // keep ranking the others.
                continue;
            }
            push_head(a);
        }
        return;
    }

    // Flat path: the same one-live-entry-per-app queue as an indexed
    // heap keyed (objective key, app id) — identical pop order to the
    // std::set of (key, app) pairs, zero allocation in steady state.
    auto &queue = scratch_.appQueue;
    queue.reset(apps.size());

    auto push_head = [&](sim::AppId a) {
        if (cursor[a] >= app_rank[a].size())
            return;
        const MsId m = app_rank[a][cursor[a]];
        queue.push(a,
                   objective.key(apps[a], apps[a].services[m], usage[a]));
        ++ops_.heapPushes;
    };

    for (sim::AppId a = 0; a < apps.size(); ++a)
        push_head(a);

    while (!queue.empty()) {
        const sim::AppId a = queue.pop();
        ++ops_.heapPops;
        if (!grant(a)) {
            if (options_.stopAtFirstOverflow)
                break; // Alg. 1 line 28
            continue;
        }
        push_head(a);
    }
}

GlobalRank
Planner::plan(const std::vector<Application> &apps,
              OperatorObjective &objective, double capacity) const
{
    GlobalRank global;
    planInto(apps, objective, capacity, global);
    return global;
}

void
Planner::planInto(const std::vector<Application> &apps,
                  OperatorObjective &objective, double capacity,
                  GlobalRank &out) const
{
    priorityEstimatorInto(apps, scratch_.appRank);
    const OpCounters estimator_ops = ops_;
    globalRankInto(apps, scratch_.appRank, objective, capacity, out);
    ops_ += estimator_ops;
}

} // namespace phoenix::core