/**
 * @file
 * Resilience schemes evaluated in §6 behind one interface:
 *
 *  - PhoenixScheme (Fair / Cost objectives): planner + packing scheduler.
 *  - FairScheme: non-cooperative fair redistribution, criticality-blind.
 *  - PriorityScheme: criticality tags without operator-level inter-app
 *    prioritization (no per-app quotas).
 *  - DefaultScheme: Kubernetes default behaviour — restart what failed,
 *    spread placement, no criticality/dependency/packing awareness.
 *  - LpScheme (LPFair / LPCost): the exact ILP formulations of §4 and
 *    Appendix C solved with the in-tree MILP solver.
 *
 * Every scheme consumes the application set plus the (post-failure)
 * cluster state and produces a target state, the agent action sequence
 * that reaches it, and its own planning time.
 */

#ifndef PHOENIX_CORE_SCHEMES_H
#define PHOENIX_CORE_SCHEMES_H

#include <memory>
#include <string>
#include <vector>

#include "core/packing.h"
#include "lp/model.h"
#include "core/planner.h"
#include "obs/registry.h"
#include "sim/cluster.h"
#include "sim/metrics.h"

namespace phoenix::core {

/** Output of one scheme invocation. */
struct SchemeResult
{
    /** Ranked activation list (empty for schemes with no notion of
     * ranking, e.g. Default). */
    GlobalRank plan;
    /** Packing outcome: final planned state + action sequence. */
    PackResult pack;
    /** Wall-clock seconds spent planning (planner or LP solve). */
    double planSeconds = 0.0;
    /** Wall-clock seconds spent in placement. */
    double packSeconds = 0.0;
    /** The scheme failed to produce any plan (e.g. LP timeout). */
    bool failed = false;
    /** LP schemes only: the solve proved optimality (not just a
     * feasible incumbent cut off by a time/node limit). Differential
     * checks that compare against "the optimum" must gate on this. */
    bool provenOptimal = false;
    /** Deterministic planner operation counts (packing counts live in
     * pack.ops). Zero for schemes that bypass the planner. */
    OpCounters planOps;

    sim::ActiveSet
    activeSet(const std::vector<sim::Application> &apps) const
    {
        return sim::activeSetFromCluster(apps, pack.state);
    }
};

/** Common interface for all resilience schemes. */
class ResilienceScheme
{
  public:
    virtual ~ResilienceScheme() = default;

    virtual std::string name() const = 0;

    /** Plan (and virtually place) against the post-failure state. */
    virtual SchemeResult apply(const std::vector<sim::Application> &apps,
                               const sim::ClusterState &current) = 0;

    /**
     * Advisory hint delivered by the controller before apply(): the
     * nodes whose observed state changed since the previous epoch
     * (kube::KubeCluster::drainDirtyNodes). Correctness never depends
     * on it — incremental replanning reconciles against the full
     * observed state — so the default ignores it; PhoenixScheme uses
     * it to surface blast-radius observability (core.dirty_zones).
     */
    virtual void
    noteDirtyNodes(const std::vector<sim::NodeId> &nodes)
    {
        (void)nodes;
    }
};

/** Which operator objective a Phoenix/LP scheme optimizes. */
enum class Objective { Fair, Cost };

/** Phoenix: criticality-aware planner + three-stage packing. */
class PhoenixScheme : public ResilienceScheme
{
  public:
    explicit PhoenixScheme(Objective objective,
                           PlannerOptions planner_options = {},
                           PackingOptions packing_options = {});

    std::string name() const override
    {
        return objective_ == Objective::Fair ? "PhoenixFair"
                                             : "PhoenixCost";
    }

    SchemeResult apply(const std::vector<sim::Application> &apps,
                       const sim::ClusterState &current) override;

    void noteDirtyNodes(
        const std::vector<sim::NodeId> &nodes) override;

  private:
    Objective objective_;
    // Kept for the dirty-zone observability (zoneShards bucketing).
    PlannerOptions plannerOptions_;
    PackingOptions packingOptions_;
    // Long-lived so their scratch arenas survive across apply() calls
    // (one controller epoch after another): steady-state planning and
    // packing allocate nothing for bookkeeping, and the incremental
    // caches (options.incremental) persist between epochs.
    Planner planner_;
    PackingScheduler packer_;
    /** Observability handles (obs::Registry; additive, excluded from
     * canonical metric strings). */
    struct
    {
        obs::Counter *replansIncremental = nullptr;
        obs::Counter *shardsPlanned = nullptr;
        obs::Counter *dirtyZones = nullptr;
        obs::LogHistogram *reconcileSeconds = nullptr;
    } obs_;
};

/**
 * Non-cooperative baseline "Fair": water-fill fair share per app with
 * no criticality awareness; apps activate services in dependency/id
 * order strictly within their share.
 */
class FairScheme : public ResilienceScheme
{
  public:
    std::string name() const override { return "Fair"; }
    SchemeResult apply(const std::vector<sim::Application> &apps,
                       const sim::ClusterState &current) override;

  private:
    PackingScheduler packer_;
};

/**
 * Non-cooperative baseline "Priority": applications expose criticality
 * tags but the operator enforces no per-application quota; containers
 * merge purely by tag.
 */
class PriorityScheme : public ResilienceScheme
{
  public:
    std::string name() const override { return "Priority"; }
    SchemeResult apply(const std::vector<sim::Application> &apps,
                       const sim::ClusterState &current) override;

  private:
    Planner planner_;
    PackingScheduler packer_;
};

/**
 * Kubernetes default behaviour: restart failed pods in id order with
 * spread (worst-fit) placement; never deletes or migrates; ignores
 * criticality and dependencies.
 */
class DefaultScheme : public ResilienceScheme
{
  public:
    std::string name() const override { return "Default"; }
    SchemeResult apply(const std::vector<sim::Application> &apps,
                       const sim::ClusterState &current) override;
};

/** Options for the exact LP baselines. */
struct LpSchemeOptions
{
    double timeLimitSec = 60.0;
    long maxNodes = 2000;
    /** Refuse instances with more than this many y_ijk variables (the
     * paper's LPs stop scaling near 1000-node clusters; this keeps the
     * failure mode explicit instead of hanging). */
    size_t maxPlacementVars = 2000000;
};

/** LPFair / LPCost (Appendix C) via branch & bound. */
class LpScheme : public ResilienceScheme
{
  public:
    explicit LpScheme(Objective objective, LpSchemeOptions options = {})
        : objective_(objective), options_(options)
    {
    }

    std::string name() const override
    {
        return objective_ == Objective::Fair ? "LPFair" : "LPCost";
    }

    SchemeResult apply(const std::vector<sim::Application> &apps,
                       const sim::ClusterState &current) override;

  private:
    Objective objective_;
    LpSchemeOptions options_;
    /** Variable id of LPFair's F (set during model build). */
    lp::VarId fVar_ = -1;
};

/**
 * Compute the action sequence that transforms @p from into @p to
 * (deletes, then migrations, then restarts).
 */
std::vector<Action> diffStates(const std::vector<sim::Application> &apps,
                               const sim::ClusterState &from,
                               const sim::ClusterState &to);

/** Instantiate every scheme evaluated in the paper, in figure order. */
std::vector<std::unique_ptr<ResilienceScheme>>
makeAllSchemes(bool include_lps, LpSchemeOptions lp_options = {});

} // namespace phoenix::core

#endif // PHOENIX_CORE_SCHEMES_H
