/**
 * @file
 * Deterministic hot-path operation counters.
 *
 * Wall-clock numbers from the benches vary run to run; these counters
 * do not. Both the reference and the flat planner/packer
 * implementations count the same semantic events (priority-queue
 * inserts and pops, best-fit probes, sorted-kv maintenance), so equal
 * counts across implementations double as a cheap algorithm-identity
 * check, while childSortElems — the elements pushed through the
 * reference DFS's per-visit child sorts — is the work the presorted
 * CSR eliminates and must read zero in the flat path. The counters are
 * exported per bench cell and asserted against recorded bounds by the
 * fig8b smoke test; they are deliberately excluded from
 * exp::canonicalMetricString, which fingerprints planner/packer
 * *decisions*, not implementation effort.
 */

#ifndef PHOENIX_CORE_OP_COUNTERS_H
#define PHOENIX_CORE_OP_COUNTERS_H

#include <cstdint>

namespace phoenix::core {

struct OpCounters
{
    uint64_t heapPushes = 0; //!< priority-queue inserts (planner+packer)
    uint64_t heapPops = 0;   //!< priority-queue pops
    uint64_t childSortElems = 0; //!< per-visit child-sort work (ref only)
    uint64_t bestFitProbes = 0;  //!< byRemaining probes in the packer
    uint64_t kvOps = 0;          //!< sorted-kv inserts + erases

    OpCounters &
    operator+=(const OpCounters &o)
    {
        heapPushes += o.heapPushes;
        heapPops += o.heapPops;
        childSortElems += o.childSortElems;
        bestFitProbes += o.bestFitProbes;
        kvOps += o.kvOps;
        return *this;
    }

    void reset() { *this = OpCounters(); }

    uint64_t
    total() const
    {
        return heapPushes + heapPops + childSortElems + bestFitProbes +
               kvOps;
    }
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_OP_COUNTERS_H
