/**
 * @file
 * Phoenix controller/agent (§4.2 "Agent", §5).
 *
 * Monitors the cluster at a fixed cadence (15 s in the paper), detects
 * capacity changes (node failures or recoveries), invokes the
 * configured resilience scheme to produce a target state, and executes
 * the resulting delete/migrate/restart sequence through the cluster
 * manager's API. Also records a timeline (detection, planning,
 * execution, recovery) used to reproduce Fig 6.
 *
 * The controller only ever reads the *observed* surface
 * (observedState / observedReadyCapacity / observedReadyFingerprint),
 * which an API-server outage freezes while the cluster keeps
 * evolving. Two properties make stale observation safe: (1) replans
 * trigger on the ready-set *fingerprint*, not just aggregate
 * capacity, so an equal-capacity swap (one node down, a same-sized
 * one back) that happened behind a stale window still forces a replan
 * once observation thaws — without it, pods pinned to the
 * now-NotReady node would sit Pending forever; (2) every action is
 * validated by the kubelet at execution time (migrations onto
 * NotReady/full nodes are rejected keeping the pin, pinned starts
 * wait in the scheduler), so acting on stale state degrades into
 * deferred work, never illegal state.
 */

#ifndef PHOENIX_CORE_CONTROLLER_H
#define PHOENIX_CORE_CONTROLLER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/schemes.h"
#include "kube/kube.h"
#include "sim/event_queue.h"

namespace phoenix::core {

/** Controller tunables. */
struct ControllerConfig
{
    /** Cluster-state monitoring period (paper: 15 s). */
    double pollPeriod = 15.0;
    /** Relative capacity change that counts as a failure/recovery. */
    double capacityChangeThreshold = 1e-6;
    /**
     * Wait between issuing a plan's deletes and its moves. Graceful
     * deletion keeps a Terminating pod's capacity occupied until the
     * drain completes, so a migration or restart into that capacity
     * issued at the same instant is rejected by the kubelet; the plan
     * sequence is only valid once deletions have settled. Must cover
     * KubeConfig::podTerminationSeconds.
     */
    double drainWaitSeconds = 11.0;
};

/** One replanning episode in the controller's timeline. */
struct ReplanRecord
{
    sim::SimTime detectedAt = 0.0;  //!< capacity change observed (t2)
    double planSeconds = 0.0;       //!< planner/scheduler compute time
    size_t deletes = 0;
    size_t migrations = 0;
    size_t restarts = 0;
    double capacityBefore = 0.0;
    double capacityAfter = 0.0;
    /** When every planned pod reached Running (t4); <0 until then. */
    sim::SimTime recoveredAt = -1.0;
    /** Applied a pre-staged warm plan (no plan/pack compute). */
    bool warm = false;
    /** Proactive pre-fault execution of a forecast plan (no capacity
     * change had been observed yet). */
    bool proactive = false;
};

/**
 * Forecast integration point (src/forecast implements it; declared
 * here so core need not link against forecast). The controller drives
 * the hook once per poll:
 *
 *  1. tick() — observe the cluster, update trend models / risk gates,
 *     and (re-)stage warm plans against projected post-fault states.
 *  2. takeForceReplan() — one-shot: force a cold replan this poll
 *     (restorative replan after a risk cleared without its fault).
 *  3. On a replan trigger, matchWarm() — return a pre-staged plan
 *     byte-identical to what a cold replan would produce against
 *     @p observed, or nullptr to fall back cold.
 *  4. When no replan triggered, takeProactive() — one-shot: a staged
 *     plan to execute *now*, ahead of the anticipated fault
 *     (pre-fault evacuation / early degradation).
 *
 * Returned pointers stay valid until the next tick().
 */
class ForecastHook
{
  public:
    virtual ~ForecastHook() = default;

    virtual void tick() = 0;
    virtual bool takeForceReplan() = 0;
    virtual const SchemeResult *
    matchWarm(const std::vector<sim::Application> &apps,
              const sim::ClusterState &observed) = 0;
    virtual const SchemeResult *takeProactive() = 0;
};

/**
 * The agent. Construct with the event queue and cluster; it arms its
 * own poll loop. Lifetime must cover the whole simulation.
 */
class PhoenixController
{
  public:
    PhoenixController(sim::EventQueue &events, kube::KubeCluster &cluster,
                      std::unique_ptr<ResilienceScheme> scheme,
                      ControllerConfig config = ControllerConfig());

    const std::vector<ReplanRecord> &history() const { return history_; }

    /** The most recent planned target, sorted ascending by PodRef. */
    const std::vector<sim::PodRef> &currentTarget() const
    {
        return target_;
    }

    /**
     * Observer invoked after every replan, with the scheme result
     * (ranked plan + planned state + actions) and the replan record.
     * The serving layer's admission controller subscribes here: the
     * planner's criticality ranking and planned target are what turn
     * front-door shedding cooperative. Runs inside the poll event,
     * after the actions were issued to the cluster.
     */
    using ReplanObserver = std::function<void(const SchemeResult &,
                                              const ReplanRecord &)>;
    void setReplanObserver(ReplanObserver observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Attach the forecast subsystem (not owned; lifetime must cover
     * the controller's). Null detaches — the controller then behaves
     * byte-identically to a forecast-less build.
     */
    void attachForecast(ForecastHook *hook) { forecast_ = hook; }

  private:
    void poll();
    /** Turn a scheme result into target state + actions + record
     * bookkeeping and issue it to the cluster. */
    void applyResult(const SchemeResult &result, ReplanRecord record);
    void execute(const SchemeResult &result);

    sim::EventQueue &events_;
    kube::KubeCluster &cluster_;
    std::unique_ptr<ResilienceScheme> scheme_;
    ControllerConfig config_;

    double lastCapacity_ = -1.0;
    /** Observed ready-set fingerprint at the previous poll. */
    uint64_t lastFingerprint_ = 0;
    /** Planned target pods, sorted (rebuilt per replan from the sorted
     * assignment map, so no per-pod tree inserts). */
    std::vector<sim::PodRef> target_;
    std::vector<ReplanRecord> history_;
    /** Migrations/restarts deferred until the current plan's deletes
     * have drained; superseded wholesale by the next replan. */
    std::vector<Action> deferredMoves_;
    /** Drain wave per deferred move: a service with a
     * PodDisruptionBudget of b has at most b replicas in flight per
     * drain window, so its i-th migration rides wave i/b; waves are
     * spaced drainWaitSeconds apart. Unbudgeted moves ride wave 0. */
    std::vector<size_t> deferredWaves_;
    /** Invalidates in-flight drain waits when a new plan lands. */
    uint64_t planGeneration_ = 0;
    ReplanObserver observer_;
    /** Forecast subsystem, when attached (not owned). */
    ForecastHook *forecast_ = nullptr;

    /** obs handles, resolved once at construction. */
    struct ObsHandles
    {
        obs::Counter *polls = nullptr;
        obs::Counter *replans = nullptr;
        /** Replans where only the membership fingerprint moved (the
         * aggregate capacity was within threshold — the class of
         * change the pre-fingerprint controller missed). */
        obs::Counter *membershipReplans = nullptr;
        obs::Counter *deletes = nullptr;
        obs::Counter *migrations = nullptr;
        obs::Counter *restarts = nullptr;
        obs::Counter *deferredSuperseded = nullptr;
        obs::Counter *drainApplies = nullptr;
        obs::LogHistogram *planSeconds = nullptr;
        obs::LogHistogram *recoverySeconds = nullptr;
    };
    ObsHandles obs_;
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_CONTROLLER_H
