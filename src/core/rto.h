/**
 * @file
 * Recovery Time Objectives per degradation level (§3.1).
 *
 * Diagonal scaling expands the resilience-metrics space: instead of
 * one RTO for "the application is back", an application states an RTO
 * per criticality level — stringent for C1, lenient for auxiliary
 * services. This module tracks an observed activation timeline and
 * evaluates those per-level objectives after a failure: the level-L
 * recovery time is when every service tagged C1..CL is active again.
 */

#ifndef PHOENIX_CORE_RTO_H
#define PHOENIX_CORE_RTO_H

#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/types.h"

namespace phoenix::core {

/** Per-application RTO policy: level -> max acceptable seconds. */
struct RtoPolicy
{
    std::map<sim::Criticality, double> maxSeconds;
};

/** Recovery outcome of one application at one level. */
struct RtoOutcome
{
    sim::AppId app = 0;
    sim::Criticality level = 1;
    /** Seconds from the failure until the level recovered; negative
     * when it never did within the observed window. */
    double recoverySeconds = -1.0;
    /** The policy bound, if one was set (else negative). */
    double boundSeconds = -1.0;
    bool violated = false;
};

/**
 * Records (time, ActiveSet) snapshots and answers per-level recovery
 * queries. Sample at whatever cadence the experiment observes the
 * cluster; queries interpolate conservatively (recovery is credited at
 * the first sample where the level is fully active).
 */
class RtoTracker
{
  public:
    explicit RtoTracker(std::vector<sim::Application> apps)
        : apps_(std::move(apps))
    {
    }

    /** Record a snapshot of the active set at @p time. */
    void record(sim::SimTime time, const sim::ActiveSet &active);

    /**
     * Is level L of @p app fully active in @p active (every service
     * tagged <= L is on)?
     */
    bool levelActive(sim::AppId app, sim::Criticality level,
                     const sim::ActiveSet &active) const;

    /**
     * Recovery time of (app, level) after a failure at @p failure_time:
     * the first recorded time >= failure_time at which the level is
     * fully active, minus the failure time. Negative when the level
     * never recovered within the recorded window.
     */
    double recoveryTime(sim::AppId app, sim::Criticality level,
                        sim::SimTime failure_time) const;

    /**
     * Evaluate per-app policies after a failure; one outcome per
     * (app, level) the policy mentions.
     */
    std::vector<RtoOutcome>
    evaluate(const std::map<sim::AppId, RtoPolicy> &policies,
             sim::SimTime failure_time) const;

    size_t sampleCount() const { return samples_.size(); }

  private:
    std::vector<sim::Application> apps_;
    std::vector<std::pair<sim::SimTime, sim::ActiveSet>> samples_;
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_RTO_H
