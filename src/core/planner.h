/**
 * @file
 * Phoenix planner (§4.1, Algorithm 1).
 *
 * Two sub-modules:
 *  - PriorityEstimator: per-application activation order from criticality
 *    tags and (optionally) the dependency graph, via a criticality-keyed
 *    preorder traversal.
 *  - GlobalRanking: merges per-app orders into one cluster-wide order
 *    under an operator objective (fairness or revenue), stopping at the
 *    aggregate capacity.
 */

#ifndef PHOENIX_CORE_PLANNER_H
#define PHOENIX_CORE_PLANNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/op_counters.h"
#include "graph/digraph.h"
#include "sim/types.h"
#include "util/heap.h"

namespace phoenix::core {

/**
 * Executes fn(shard) for every shard in [0, count). core stays
 * dependency-free: the exp layer supplies a pool-backed runner
 * (exp::shardRunner); a null runner means "run the shards serially on
 * the calling thread", which produces the same results.
 */
using ShardRunner =
    std::function<void(size_t, const std::function<void(size_t)> &)>;

/** Per-application activation order: AppRank[a] lists ms ids of app a
 * from most to least important. */
using AppRank = std::vector<std::vector<sim::MsId>>;

/** Cluster-wide activation order. */
using GlobalRank = std::vector<sim::PodRef>;

/**
 * Operator objective used by the global ranking (Alg. 1's Obj): scores
 * the head container of an application given the allocation so far.
 * Lower scores are popped first.
 */
class OperatorObjective
{
  public:
    virtual ~OperatorObjective() = default;

    virtual std::string name() const = 0;

    /** Called once before ranking with app demands and capacity. */
    virtual void
    begin(const std::vector<sim::Application> &apps, double capacity)
    {
        (void)apps;
        (void)capacity;
    }

    /**
     * Priority key for activating microservice @p ms of app @p app next,
     * given resources already granted to that app. Smaller keys pop
     * first.
     */
    virtual double key(const sim::Application &app,
                       const sim::Microservice &ms,
                       double app_usage_so_far) const = 0;

    /** Notify that the container was granted its resources. */
    virtual void
    granted(const sim::Application &app, const sim::Microservice &ms)
    {
        (void)app;
        (void)ms;
    }

    /**
     * Incremental-replan support. An objective whose key() depends on
     * nothing but begin()'s inputs may expose a digest of that state
     * here (computed after begin()): when the digest and the app
     * structure both match the previous epoch's, the planner may reuse
     * its cached global ranking. Returning false (the default) opts
     * out — stateful or side-effecting objectives are then always
     * re-run, so correctness never depends on an override.
     */
    virtual bool
    cacheKey(uint64_t &out) const
    {
        (void)out;
        return false;
    }
};

/**
 * Revenue objective: containers from applications paying more per unit
 * resource rank first (§4.1 "Cost-Based").
 */
class CostObjective : public OperatorObjective
{
  public:
    std::string name() const override { return "cost"; }
    double key(const sim::Application &app, const sim::Microservice &ms,
               double app_usage_so_far) const override;

    /** Keys depend only on app structure (already fingerprinted). */
    bool
    cacheKey(uint64_t &out) const override
    {
        out = 1;
        return true;
    }
};

/**
 * Fairness objective: pick the container whose activation deviates
 * least from the pre-computed water-fill fair share (§4.1
 * "Fairness-Based").
 */
class FairObjective : public OperatorObjective
{
  public:
    std::string name() const override { return "fair"; }
    void begin(const std::vector<sim::Application> &apps,
               double capacity) override;
    double key(const sim::Application &app, const sim::Microservice &ms,
               double app_usage_so_far) const override;
    bool cacheKey(uint64_t &out) const override;

  private:
    std::vector<double> fairShare_;
};

/**
 * Weighted fairness objective: like FairObjective but tenants carry
 * weights (e.g. paid tiers), and shares grow in proportion to weight
 * (weighted water-filling). Weights index by application id; missing
 * entries default to 1. An example of the paper's "operator can define
 * any monotonically increasing F" extensibility claim.
 */
class WeightedFairObjective : public OperatorObjective
{
  public:
    explicit WeightedFairObjective(std::vector<double> weights)
        : weights_(std::move(weights))
    {
    }

    std::string name() const override { return "weighted-fair"; }
    void begin(const std::vector<sim::Application> &apps,
               double capacity) override;
    double key(const sim::Application &app, const sim::Microservice &ms,
               double app_usage_so_far) const override;
    bool cacheKey(uint64_t &out) const override;

  private:
    std::vector<double> weights_;
    std::vector<double> fairShare_;
};

/** Planner configuration. */
struct PlannerOptions
{
    /**
     * Algorithm 1 as written stops emitting once the next container no
     * longer fits the aggregate remaining capacity ("else break").
     * With heterogeneous container sizes that strands capacity behind
     * the first large container and collapses availability, so the
     * default (false) instead drops only the non-fitting container's
     * application (its lower-priority containers may not jump the
     * queue) and keeps ranking the rest. Set true for the
     * paper-literal break (ablation).
     */
    bool stopAtFirstOverflow = false;

    /**
     * The paper's pseudocode descends the DFS into any child with
     * tags(child) >= tags(node); that eager descent can rank a C5
     * container ahead of a sibling C2 and so violates the Eq. 1
     * invariant the text claims. The default (false) descends only
     * into equal-tag children and defers the rest to the
     * criticality-keyed queue, which provably emits nodes in
     * non-decreasing criticality order while preserving the
     * topological property. Set true for the literal pseudocode
     * (ablation).
     */
    bool eagerDfsDescend = false;

    /**
     * Run the original container-based implementation (std::set
     * priority queues, per-visit child sorts) instead of the flat
     * CSR + indexed-heap hot path. Both produce bit-identical
     * rankings — test_properties asserts it — so this exists as the
     * oracle for that suite and as an A/B lever for the benches.
     */
    bool referenceImpl = false;

    /**
     * Zone-sharded PriorityEstimator: > 1 partitions the applications
     * into shards (app position % shardCount) and runs the per-app
     * ordering shard-parallel, each shard on its own scratch arena.
     * Per-app orders are independent, and the per-shard op counters
     * are integer-summed in shard order, so the result — ranking AND
     * counters — is bit-identical to the monolithic pass; the
     * sequential global ranking then acts as the deterministic
     * cross-zone reconciliation (it merges the per-app orders by the
     * global objective key). Ignored under referenceImpl.
     */
    size_t shardCount = 0;

    /** Shard executor; null runs shards serially (same results). */
    ShardRunner shardRunner;

    /**
     * Incremental replan: keep the per-app rankings and the global
     * ranked list alive across planInto() calls and reuse them when
     * provably unchanged — the app-structure fingerprint must match
     * for the estimator, and additionally the objective's cacheKey()
     * and a capacity check (bitwise-equal capacity, or a
     * rejection-free replay of the cached grant sequence against the
     * new capacity) for the global ranking. Any mismatch falls back
     * to the full recompute, so outputs are bit-identical to
     * from-scratch on every input; only the op counters shrink.
     * Ignored under referenceImpl.
     */
    bool incremental = false;
};

/**
 * Reusable planner working memory: per-application sorted-CSR caches,
 * DFS/ranking heaps, and the assorted dense index buffers. Owned by
 * Planner and recycled across plan() calls, so a long-lived planner
 * (one controller epoch after another) allocates nothing on the hot
 * path once the buffers have grown to the workload's size.
 */
struct PlanScratch
{
    std::vector<graph::SortedCsr> csr; //!< per-app sorted adjacency
    std::vector<int> keys;             //!< per-ms criticality tags
    std::vector<uint8_t> visited;
    std::vector<sim::MsId> stack;      //!< DFS stack
    std::vector<uint32_t> counts;      //!< counting-sort histogram
    util::IndexedDaryHeap<int> dfsQueue;    //!< (tag, ms) queue
    util::IndexedDaryHeap<double> appQueue; //!< (key, app) queue
    std::vector<double> usage;   //!< per-app granted resources
    std::vector<size_t> cursor;  //!< per-app rank position
    AppRank appRank;             //!< plan()'s per-app rank buffer
};

/**
 * Effective criticality of a microservice: the tag for subscribed
 * applications, C1 for everything else (§5 Partial Tagging — an
 * unsubscribed or untagged container may never be degraded in favour
 * of a tagged one).
 */
inline sim::Criticality
effectiveCriticality(const sim::Application &app,
                     const sim::Microservice &ms)
{
    return app.phoenixEnabled ? ms.criticality : sim::kC1;
}

/**
 * Phoenix planner: produces the per-app ranking and the global ranked
 * list of containers to activate within the available capacity.
 */
class Planner
{
  public:
    explicit Planner(PlannerOptions options = PlannerOptions())
        : options_(options)
    {
    }

    /**
     * PriorityEstimator (Alg. 1 lines 5-20): per-application activation
     * order honouring criticality and, when a DG is present, topology.
     */
    static AppRank priorityEstimator(
        const std::vector<sim::Application> &apps,
        PlannerOptions options = PlannerOptions());

    /** Buffer-reusing PriorityEstimator: fills @p out in place. */
    void priorityEstimatorInto(const std::vector<sim::Application> &apps,
                               AppRank &out) const;

    /**
     * GetGlobalRank (Alg. 1 lines 21-29): merge per-app orders under
     * the operator objective within @p capacity aggregate resources.
     */
    GlobalRank globalRank(const std::vector<sim::Application> &apps,
                          const AppRank &app_rank,
                          OperatorObjective &objective,
                          double capacity) const;

    /** Buffer-reusing GetGlobalRank: fills @p out in place. */
    void globalRankInto(const std::vector<sim::Application> &apps,
                        const AppRank &app_rank,
                        OperatorObjective &objective, double capacity,
                        GlobalRank &out) const;

    /** Convenience: full Alg. 1 (estimate then rank). */
    GlobalRank plan(const std::vector<sim::Application> &apps,
                    OperatorObjective &objective, double capacity) const;

    /** Buffer-reusing full Alg. 1: fills @p out in place. */
    void planInto(const std::vector<sim::Application> &apps,
                  OperatorObjective &objective, double capacity,
                  GlobalRank &out) const;

    /** Operation counts accumulated by the most recent plan()/
     * globalRank()/priorityEstimatorInto() call. */
    const OpCounters &lastOps() const { return ops_; }

    /** Whether the last globalRankInto() reused the incremental
     * cache (options.incremental only). */
    bool lastIncrementalReuse() const { return lastRankReused_; }

    /** Shards the last priorityEstimatorInto() actually ran (0 when
     * monolithic or served from the incremental cache). */
    size_t lastShardsPlanned() const { return lastShardsPlanned_; }

  private:
    uint64_t fingerprintApps(
        const std::vector<sim::Application> &apps) const;

    PlannerOptions options_;
    // plan() stays const for callers; the scratch arena and counters
    // are implementation state (the planner is externally
    // single-threaded; shard workers touch only their own arena).
    mutable PlanScratch scratch_;
    mutable OpCounters ops_;
    /** Per-shard arenas + counters for the sharded estimator. */
    mutable std::vector<std::unique_ptr<PlanScratch>> shardScratch_;
    mutable std::vector<OpCounters> shardOps_;
    mutable size_t lastShardsPlanned_ = 0;

    // Incremental-replan cache (options.incremental): the estimator
    // result lives in scratch_.appRank keyed by the app fingerprint;
    // the global ranking keeps its own copy plus the grant-sequence
    // replay data.
    mutable bool estimatorCacheValid_ = false;
    mutable uint64_t appsFingerprint_ = 0;
    mutable bool lastEstimatorReused_ = false;
    mutable bool rankCacheValid_ = false;
    mutable uint64_t rankCacheObjectiveKey_ = 0;
    mutable uint64_t rankCacheCapacityBits_ = 0;
    mutable bool rankCacheRejectionFree_ = false;
    mutable std::vector<double> rankCacheNeeds_;
    mutable GlobalRank rankCache_;
    mutable bool lastRankReused_ = false;
};

} // namespace phoenix::core

#endif // PHOENIX_CORE_PLANNER_H
