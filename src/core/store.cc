#include "store.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace phoenix::core {

using sim::Application;
using sim::MsId;

namespace {

constexpr const char *kHeader = "phoenix-store v1";

/** Escape spaces/backslashes in names (single-token fields). */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == ' ') {
            out += "\\s";
        } else if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out.empty() ? "~" : out;
}

std::string
unescape(const std::string &text)
{
    if (text == "~")
        return "";
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\\' && i + 1 < text.size()) {
            switch (text[++i]) {
              case 's': out += ' '; break;
              case 'n': out += '\n'; break;
              default: out += text[i]; break;
            }
        } else {
            out += text[i];
        }
    }
    return out;
}

} // namespace

std::string
serializeApps(const std::vector<Application> &apps)
{
    std::ostringstream out;
    out << std::setprecision(17); // lossless double round-trip
    out << kHeader << "\n";
    for (const auto &app : apps) {
        out << "app " << app.id << " " << escape(app.name) << " "
            << app.pricePerUnit << " " << (app.phoenixEnabled ? 1 : 0)
            << " " << (app.hasDependencyGraph ? 1 : 0) << "\n";
        for (const auto &ms : app.services) {
            out << "ms " << ms.id << " " << escape(ms.name) << " "
                << ms.cpu << " " << ms.criticality << " "
                << ms.replicas << " " << ms.quorum << "\n";
        }
        if (app.hasDependencyGraph) {
            for (MsId u = 0; u < app.dag.nodeCount(); ++u) {
                for (MsId v : app.dag.successors(u))
                    out << "edge " << u << " " << v << "\n";
            }
        }
        out << "end\n";
    }
    return out.str();
}

std::optional<std::vector<Application>>
deserializeApps(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &message)
        -> std::optional<std::vector<Application>> {
        if (error)
            *error = message;
        return std::nullopt;
    };

    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        return fail("missing or unknown header");

    std::vector<Application> apps;
    Application *current = nullptr;
    std::vector<std::pair<MsId, MsId>> edges;

    size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        const std::string where =
            " (line " + std::to_string(line_no) + ")";

        if (kind == "app") {
            if (current)
                return fail("app without end" + where);
            Application app;
            std::string name;
            int enabled = 1;
            int has_dag = 0;
            if (!(fields >> app.id >> name >> app.pricePerUnit >>
                  enabled >> has_dag)) {
                return fail("malformed app record" + where);
            }
            app.name = unescape(name);
            app.phoenixEnabled = enabled != 0;
            app.hasDependencyGraph = has_dag != 0;
            apps.push_back(std::move(app));
            current = &apps.back();
            edges.clear();
        } else if (kind == "ms") {
            if (!current)
                return fail("ms outside app" + where);
            sim::Microservice ms;
            std::string name;
            if (!(fields >> ms.id >> name >> ms.cpu >> ms.criticality >>
                  ms.replicas >> ms.quorum)) {
                return fail("malformed ms record" + where);
            }
            if (ms.id != current->services.size())
                return fail("non-contiguous ms ids" + where);
            if (ms.cpu < 0.0 || ms.replicas < 1 ||
                ms.criticality < 1) {
                return fail("invalid ms fields" + where);
            }
            ms.name = unescape(name);
            current->services.push_back(std::move(ms));
        } else if (kind == "edge") {
            if (!current || !current->hasDependencyGraph)
                return fail("edge outside a DG app" + where);
            MsId u = 0;
            MsId v = 0;
            if (!(fields >> u >> v))
                return fail("malformed edge record" + where);
            edges.emplace_back(u, v);
        } else if (kind == "end") {
            if (!current)
                return fail("end without app" + where);
            if (current->hasDependencyGraph) {
                current->dag =
                    graph::DiGraph(current->services.size());
                for (auto [u, v] : edges) {
                    if (!current->dag.addEdge(u, v))
                        return fail("invalid edge" + where);
                }
            }
            current = nullptr;
        } else {
            return fail("unknown record '" + kind + "'" + where);
        }
    }
    if (current)
        return fail("unterminated app record");
    return apps;
}

bool
saveAppsToFile(const std::vector<Application> &apps,
               const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << serializeApps(apps);
    return static_cast<bool>(out);
}

std::optional<std::vector<Application>>
loadAppsFromFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserializeApps(buffer.str(), error);
}

} // namespace phoenix::core
