#include "constraints.h"

#include <algorithm>
#include <limits>

namespace phoenix::core {

using sim::NodeId;
using sim::PodRef;

void
VacancyAllocator::build(const std::vector<sim::Application> &apps,
                        const sim::ClusterState &state)
{
    empty_ = true;
    for (const auto &app : apps) {
        if (app.topologyConstrained()) {
            empty_ = false;
            break;
        }
    }
    if (empty_)
        return;

    msBase_.resize(apps.size() + 1);
    msBase_[0] = 0;
    for (size_t a = 0; a < apps.size(); ++a)
        msBase_[a + 1] = msBase_[a] + apps[a].services.size();
    const size_t total_ms = msBase_.back();

    serviceScope_.assign(total_ms, -1);
    groupScope_.assign(total_ms, -1);
    pdbBudget_.assign(total_ms, -1);
    scopes_.clear();

    const size_t zones = std::max<size_t>(state.zoneCount(), 1);
    nodeZone_.resize(state.nodeCount());
    for (NodeId id = 0; id < state.nodeCount(); ++id)
        nodeZone_[id] = state.node(id).zone;

    for (size_t a = 0; a < apps.size(); ++a) {
        const auto &app = apps[a];
        // One scope per declared group; remember its scope id so
        // member services can join below. Group ids are small app-local
        // integers; a linear probe per service is fine.
        std::vector<std::pair<int, int>> group_scopes; // (group id, scope)
        for (const auto &g : app.placementGroups) {
            if (g.maxPerNode <= 0 && g.maxPerZone <= 0)
                continue;
            Scope s;
            s.maxPerNode = g.maxPerNode;
            s.maxPerZone = g.maxPerZone;
            s.zoneCount.assign(zones, 0);
            group_scopes.emplace_back(
                g.id, static_cast<int>(scopes_.size()));
            scopes_.push_back(std::move(s));
        }
        for (size_t m = 0; m < app.services.size(); ++m) {
            const auto &ms = app.services[m];
            const size_t idx = msBase_[a] + m;
            pdbBudget_[idx] = ms.pdbMaxUnavailable;
            const int zone_cap = ms.effectiveZoneCap();
            if (ms.maxPerNode > 0 || zone_cap > 0) {
                Scope s;
                s.maxPerNode = ms.maxPerNode;
                s.maxPerZone = zone_cap;
                s.zoneCount.assign(zones, 0);
                serviceScope_[idx] = static_cast<int>(scopes_.size());
                scopes_.push_back(std::move(s));
            }
            if (ms.antiAffinityGroup >= 0) {
                for (const auto &[gid, scope] : group_scopes) {
                    if (gid == ms.antiAffinityGroup) {
                        groupScope_[idx] = scope;
                        break;
                    }
                }
            }
        }
    }

    for (const auto &[pod, node] : state.assignment())
        onPlace(pod, node);
}

bool
VacancyAllocator::scopeHasVacancy(const Scope &s, NodeId node) const
{
    if (s.maxPerNode > 0) {
        auto it = s.nodeCount.find(node);
        if (it != s.nodeCount.end() && it->second >= s.maxPerNode)
            return false;
    }
    if (s.maxPerZone > 0) {
        const uint32_t zone =
            node < nodeZone_.size() ? nodeZone_[node] : 0;
        if (zone < s.zoneCount.size() &&
            s.zoneCount[zone] >= s.maxPerZone)
            return false;
    }
    return true;
}

void
VacancyAllocator::scopeAdd(Scope &s, NodeId node, int delta)
{
    auto it = s.nodeCount.try_emplace(node, 0).first;
    it->second += delta;
    if (it->second <= 0)
        s.nodeCount.erase(it);
    const uint32_t zone = node < nodeZone_.size() ? nodeZone_[node] : 0;
    if (zone < s.zoneCount.size()) {
        s.zoneCount[zone] += delta;
        if (s.zoneCount[zone] < 0)
            s.zoneCount[zone] = 0;
    }
}

bool
VacancyAllocator::canPlace(const PodRef &pod, NodeId node) const
{
    if (empty_)
        return true;
    const size_t ms = msIdx(pod.app, pod.ms);
    if (ms == kNoIndex)
        return true;
    if (serviceScope_[ms] >= 0 &&
        !scopeHasVacancy(scopes_[serviceScope_[ms]], node))
        return false;
    if (groupScope_[ms] >= 0 &&
        !scopeHasVacancy(scopes_[groupScope_[ms]], node))
        return false;
    return true;
}

void
VacancyAllocator::onPlace(const PodRef &pod, NodeId node)
{
    if (empty_)
        return;
    const size_t ms = msIdx(pod.app, pod.ms);
    if (ms == kNoIndex)
        return;
    if (serviceScope_[ms] >= 0)
        scopeAdd(scopes_[serviceScope_[ms]], node, 1);
    if (groupScope_[ms] >= 0)
        scopeAdd(scopes_[groupScope_[ms]], node, 1);
}

void
VacancyAllocator::onEvict(const PodRef &pod, NodeId node)
{
    if (empty_)
        return;
    const size_t ms = msIdx(pod.app, pod.ms);
    if (ms == kNoIndex)
        return;
    if (serviceScope_[ms] >= 0)
        scopeAdd(scopes_[serviceScope_[ms]], node, -1);
    if (groupScope_[ms] >= 0)
        scopeAdd(scopes_[groupScope_[ms]], node, -1);
}

int
VacancyAllocator::pdbRemaining(const PodRef &pod) const
{
    if (empty_)
        return std::numeric_limits<int>::max();
    const size_t ms = msIdx(pod.app, pod.ms);
    if (ms == kNoIndex || pdbBudget_[ms] < 0)
        return std::numeric_limits<int>::max();
    return pdbBudget_[ms];
}

bool
VacancyAllocator::pdbAllows(const PodRef &pod) const
{
    return pdbRemaining(pod) > 0;
}

void
VacancyAllocator::consumePdb(const PodRef &pod)
{
    if (empty_)
        return;
    const size_t ms = msIdx(pod.app, pod.ms);
    if (ms == kNoIndex || pdbBudget_[ms] < 0)
        return;
    if (pdbBudget_[ms] > 0)
        --pdbBudget_[ms];
}

} // namespace phoenix::core
