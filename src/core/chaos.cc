#include "chaos.h"

#include <algorithm>
#include <map>

namespace phoenix::core {

using apps::ServiceApp;
using apps::TrafficPoint;
using sim::MsId;

double
defaultUtility(const std::vector<TrafficPoint> &traffic)
{
    double served = 0.0;
    double offered = 0.0;
    double weighted = 0.0;
    for (const TrafficPoint &point : traffic) {
        offered += point.offeredRps;
        served += point.servedRps;
        weighted += point.servedRps * point.utility;
    }
    if (offered <= 0.0)
        return 0.0;
    return weighted / offered;
}

ChaosReport
runChaosSuite(const ServiceApp &sapp, const ChaosConfig &config)
{
    ChaosReport report;
    report.taggingEffective = true;

    const double total = sapp.app.totalDemand();
    const double critical = sapp.app.criticalDemand();

    // Services grouped by tag, least critical first (degradation
    // order). MsIds need not be contiguous (the manifests and the
    // Alibaba generator both produce sparse ids), so keep an id ->
    // vector-index map instead of indexing services[] by id.
    std::map<int, std::vector<MsId>, std::greater<>> by_tag;
    std::map<MsId, size_t> index_of;
    for (size_t i = 0; i < sapp.app.services.size(); ++i) {
        const auto &ms = sapp.app.services[i];
        by_tag[ms.criticality].push_back(ms.id);
        index_of[ms.id] = i;
    }

    for (double degree : config.degrees) {
        ChaosTrial trial;
        trial.failureDegree = degree;

        // Degrade strictly by tag until the app fits the surviving
        // resources.
        const double budget = total * (1.0 - degree);
        std::set<MsId> running;
        for (const auto &ms : sapp.app.services)
            running.insert(ms.id);
        double usage = total;
        trial.lowestDisabledLevel = 0;
        for (const auto &[tag, members] : by_tag) {
            if (usage <= budget + 1e-9)
                break;
            for (MsId m : members) {
                if (usage <= budget + 1e-9)
                    break;
                running.erase(m);
                const auto &svc = sapp.app.services[index_of.at(m)];
                usage -= svc.cpu * std::max(svc.replicas, 1);
                trial.lowestDisabledLevel = tag;
            }
        }

        const auto traffic =
            apps::evaluateTraffic(sapp, running, 0.5 + 0.45 * degree);
        trial.utility = config.utility(traffic);
        trial.criticalGoalMet = apps::criticalGoalMet(sapp, running);
        report.trials.push_back(trial);

        // Tags are ineffective when the C1 set alone fits the budget
        // yet degrading by tags loses the critical goal.
        if (critical <= budget + 1e-9 && !trial.criticalGoalMet) {
            report.taggingEffective = false;
            report.violations.push_back(degree);
        }
    }
    return report;
}

} // namespace phoenix::core
