/**
 * @file
 * Overleaf model (§3.2, §6.1): a 14-microservice collaborative LaTeX
 * editor. Overleaf is crash-proof — error handlers wrap downstream
 * calls, so any non-critical microservice can be turned off without
 * user-visible failures — which makes it diagonal-scaling compliant
 * out of the box.
 *
 * Three instance flavours reproduce the paper's heterogeneous goals
 * (Fig 4): instance 0's critical metric is document-edits, instance
 * 1's is versions, instance 2's is downloads.
 */

#ifndef PHOENIX_APPS_OVERLEAF_H
#define PHOENIX_APPS_OVERLEAF_H

#include "apps/service_app.h"

namespace phoenix::apps {

/** Overleaf microservice ids (14 services). */
namespace overleaf {
constexpr sim::MsId kWeb = 0;
constexpr sim::MsId kRealTime = 1;
constexpr sim::MsId kDocumentUpdater = 2;
constexpr sim::MsId kDocstore = 3;
constexpr sim::MsId kFilestore = 4;
constexpr sim::MsId kClsi = 5;
constexpr sim::MsId kSpelling = 6;
constexpr sim::MsId kTrackChanges = 7;
constexpr sim::MsId kChat = 8;
constexpr sim::MsId kContacts = 9;
constexpr sim::MsId kNotifications = 10;
constexpr sim::MsId kTags = 11;
constexpr sim::MsId kReferences = 12;
constexpr sim::MsId kProjectHistory = 13;
constexpr size_t kServiceCount = 14;
} // namespace overleaf

/**
 * Build an Overleaf instance.
 *
 * @param instance   0 (edits-critical), 1 (versions-critical) or
 *                   2 (downloads-critical); criticality tags follow the
 *                   instance's goal.
 * @param rps_scale  multiplies every request type's offered load (the
 *                   paper tweaks per-instance load mixes).
 */
ServiceApp makeOverleaf(int instance, double rps_scale = 1.0);

} // namespace phoenix::apps

#endif // PHOENIX_APPS_OVERLEAF_H
