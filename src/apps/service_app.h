/**
 * @file
 * Request-level application models for the end-to-end experiments
 * (§6.1): an application is a set of tagged microservices plus request
 * types, each touching a subset of services. The load generator
 * evaluates throughput (RPS), harvest/yield utility (Fox & Brewer
 * style, §6.1) and P95 latency as a function of which microservices
 * are running.
 */

#ifndef PHOENIX_APPS_SERVICE_APP_H
#define PHOENIX_APPS_SERVICE_APP_H

#include <set>
#include <string>
#include <vector>

#include "sim/types.h"

namespace phoenix::apps {

/** A component's contribution to one request type. */
struct PathComponent
{
    sim::MsId service = 0;
    /** Must be running for the request to succeed at all. */
    bool required = true;
    /** Utility contributed when the component participates. */
    double utility = 0.0;
    /** P95 latency contribution in milliseconds. */
    double latencyMs = 0.0;
};

/** One user-visible request type (edits, compile, search, ...). */
struct RequestType
{
    std::string name;
    /** Offered load in requests per second. */
    double offeredRps = 0.0;
    std::vector<PathComponent> path;
};

/**
 * An application instance deployable on the cluster: microservices
 * (with criticality tags and CPU demands), its request types, and its
 * resilience goal (the critical request whose RPS must survive
 * failures, Fig 4).
 */
struct ServiceApp
{
    sim::Application app;
    std::vector<RequestType> requests;
    /** Name of the critical request type (the steady-state metric). */
    std::string criticalRequest;
    /**
     * Crash-proof applications tolerate missing downstream services
     * (Overleaf). Non-crash-proof ones (stock HotelReservation) fail
     * user-visibly whenever any of `hardDeps` is down, regardless of
     * the request type (§5 "Diagonal Scaling Practical Experience").
     */
    bool crashProof = true;
    /** Entry-server hard dependencies (only for !crashProof). */
    std::vector<sim::MsId> hardDeps;
};

/** Evaluated traffic for one request type. */
struct TrafficPoint
{
    std::string request;
    double offeredRps = 0.0;
    double servedRps = 0.0;
    /** Mean per-request utility in [0, 1]; 0 when failing. */
    double utility = 0.0;
    /** P95 latency (ms); < 0 when the request type is fully pruned. */
    double p95Ms = -1.0;
};

/**
 * Evaluate every request type of @p sapp against the set of running
 * microservices. @p cluster_utilization (0..1) feeds the queueing
 * congestion factor applied to latencies.
 */
std::vector<TrafficPoint>
evaluateTraffic(const ServiceApp &sapp,
                const std::set<sim::MsId> &running,
                double cluster_utilization);

/** Served RPS of the app's critical request type. */
double criticalServedRps(const ServiceApp &sapp,
                         const std::set<sim::MsId> &running,
                         double cluster_utilization = 0.5);

/** True when the critical request retains its full offered RPS. */
bool criticalGoalMet(const ServiceApp &sapp,
                     const std::set<sim::MsId> &running);

/**
 * Distribute CPU demands over the app's microservices proportional to
 * the traffic each one carries, then rescale so (a) the app totals
 * @p cpu_budget and (b) C1 services hold @p critical_fraction of it
 * (the CloudLab mix of Fig 9 uses ~0.6). No container exceeds
 * @p max_cpu (a pod cannot be bigger than a node); the excess is
 * redistributed within the same criticality group.
 */
void assignCpuByTraffic(ServiceApp &sapp, double cpu_budget,
                        double critical_fraction,
                        double max_cpu = 1e18);

} // namespace phoenix::apps

#endif // PHOENIX_APPS_SERVICE_APP_H
