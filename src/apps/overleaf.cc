#include "overleaf.h"

#include <map>
#include <string>

namespace phoenix::apps {

using namespace overleaf;
using sim::MsId;

namespace {

const char *const kNames[kServiceCount] = {
    "web",           "real-time",   "document-updater", "docstore",
    "filestore",     "clsi",        "spelling",         "track-changes",
    "chat",          "contacts",    "notifications",    "tags",
    "references",    "project-history",
};

/** A required path component. */
PathComponent
req(MsId service, double utility, double latency_ms)
{
    return PathComponent{service, true, utility, latency_ms};
}

/** An optional (degradable) path component. */
PathComponent
opt(MsId service, double utility, double latency_ms)
{
    return PathComponent{service, false, utility, latency_ms};
}

} // namespace

ServiceApp
makeOverleaf(int instance, double rps_scale)
{
    ServiceApp sapp;
    sapp.crashProof = true;

    sim::Application &app = sapp.app;
    app.name = "Overleaf" + std::to_string(instance);
    app.hasDependencyGraph = true;
    app.dag = graph::DiGraph(kServiceCount);
    app.services.resize(kServiceCount);
    for (MsId m = 0; m < kServiceCount; ++m) {
        app.services[m].id = m;
        app.services[m].name = kNames[m];
    }

    // Dependency graph: web is the entry; websocket edits flow through
    // real-time -> document-updater -> docstore; compiles through
    // clsi -> filestore; version history through track-changes.
    app.dag.addEdge(kWeb, kRealTime);
    app.dag.addEdge(kRealTime, kDocumentUpdater);
    app.dag.addEdge(kDocumentUpdater, kDocstore);
    app.dag.addEdge(kDocumentUpdater, kProjectHistory);
    app.dag.addEdge(kWeb, kClsi);
    app.dag.addEdge(kClsi, kFilestore);
    app.dag.addEdge(kWeb, kSpelling);
    app.dag.addEdge(kWeb, kTrackChanges);
    app.dag.addEdge(kTrackChanges, kDocstore);
    app.dag.addEdge(kWeb, kChat);
    app.dag.addEdge(kWeb, kContacts);
    app.dag.addEdge(kWeb, kNotifications);
    app.dag.addEdge(kWeb, kTags);
    app.dag.addEdge(kWeb, kReferences);
    app.dag.addEdge(kWeb, kDocstore);
    app.dag.addEdge(kWeb, kFilestore);

    // Request types. Latency contributions are calibrated so the
    // "before" P95s match Table 1 (edits 141 ms, compile 4317.9 ms,
    // spell_check 2296.7 ms).
    const double s = rps_scale;
    sapp.requests = {
        RequestType{"edits", 40.0 * s,
                    {req(kWeb, 0.25, 20.0), req(kRealTime, 0.25, 40.0),
                     req(kDocumentUpdater, 0.25, 50.0),
                     req(kDocstore, 0.15, 31.0),
                     opt(kProjectHistory, 0.10, 0.0)}},
        RequestType{"compile", 4.0 * s,
                    {req(kWeb, 0.2, 20.0), req(kClsi, 0.6, 4000.0),
                     req(kFilestore, 0.2, 297.9)}},
        RequestType{"spell_check", 10.0 * s,
                    {req(kWeb, 0.2, 20.0),
                     req(kSpelling, 0.8, 2276.7)}},
        RequestType{"versioning", 6.0 * s,
                    {req(kWeb, 0.2, 20.0),
                     req(kTrackChanges, 0.6, 100.0),
                     req(kDocstore, 0.2, 31.0)}},
        RequestType{"downloads", 3.0 * s,
                    {req(kWeb, 0.2, 20.0), req(kDocstore, 0.3, 25.0),
                     req(kFilestore, 0.5, 60.0)}},
        RequestType{"chat", 5.0 * s,
                    {req(kWeb, 0.3, 20.0), req(kChat, 0.5, 30.0),
                     opt(kNotifications, 0.2, 5.0)}},
        RequestType{"tags", 2.0 * s,
                    {req(kWeb, 0.4, 20.0), req(kTags, 0.6, 15.0)}},
    };

    // Criticality by instance goal (Fig 4).
    std::map<std::string, std::vector<MsId>> critical_paths = {
        {"edits", {kWeb, kRealTime, kDocumentUpdater, kDocstore}},
        {"versioning", {kWeb, kTrackChanges, kDocstore}},
        {"downloads", {kWeb, kDocstore, kFilestore}},
    };
    switch (instance % 3) {
      case 0: sapp.criticalRequest = "edits"; break;
      case 1: sapp.criticalRequest = "versioning"; break;
      default: sapp.criticalRequest = "downloads"; break;
    }

    // Default tags: a plausible per-feature ranking, then promote the
    // instance's critical path to C1.
    const std::map<MsId, sim::Criticality> base_tags = {
        {kWeb, 1},       {kRealTime, 2},      {kDocumentUpdater, 2},
        {kDocstore, 2},  {kFilestore, 2},     {kClsi, 3},
        {kSpelling, 4},  {kTrackChanges, 3},  {kChat, 5},
        {kContacts, 5},  {kNotifications, 5}, {kTags, 5},
        {kReferences, 5}, {kProjectHistory, 3},
    };
    for (const auto &[m, tag] : base_tags)
        app.services[m].criticality = tag;
    for (MsId m : critical_paths[sapp.criticalRequest])
        app.services[m].criticality = sim::kC1;

    return sapp;
}

} // namespace phoenix::apps
