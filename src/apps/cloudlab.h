/**
 * @file
 * The CloudLab testbed of §6.1: 25 nodes / 200 CPUs running five
 * application instances (Overleaf0/1/2, HR0/HR1) with heterogeneous
 * resilience goals (Fig 4). Aggregate demand is ~70% of cluster
 * capacity with C1 services holding ~60% of each app's budget, so all
 * C1 services need ~42% of the cluster — the breaking point used in
 * the paper's failure experiments (Appendix F.1).
 */

#ifndef PHOENIX_APPS_CLOUDLAB_H
#define PHOENIX_APPS_CLOUDLAB_H

#include <vector>

#include "apps/service_app.h"
#include "sim/cluster.h"

namespace phoenix::apps {

/** Testbed parameters. */
struct CloudLabConfig
{
    size_t nodeCount = 25;
    double cpusPerNode = 8.0; //!< 25 x 8 = 200 CPUs
    /** Aggregate application demand as a fraction of capacity. */
    double demandFraction = 0.70;
    /** Fraction of each app's budget held by its C1 services; 0.57 of
     * the 70% demand puts all C1 at ~40% of the cluster, the App. F.1
     * operating point (so the paper's 42%-capacity failures stay just
     * above the breaking point). */
    double criticalFraction = 0.57;
    /** HotelReservation diagonal-scaling retrofit applied. */
    bool hrCompliant = true;
};

/** The assembled testbed. */
struct CloudLabTestbed
{
    CloudLabConfig config;
    /** Five instances: Overleaf0, Overleaf1, Overleaf2, HR0, HR1. */
    std::vector<ServiceApp> serviceApps;

    /** Application descriptors (ids assigned 0..4). */
    std::vector<sim::Application> applications() const;

    /** Fresh cluster with every node healthy and nothing placed. */
    sim::ClusterState makeCluster() const;

    double totalCapacity() const
    {
        return config.nodeCount * config.cpusPerNode;
    }
};

/** Build the five-instance testbed. */
CloudLabTestbed makeCloudLabTestbed(CloudLabConfig config = {});

} // namespace phoenix::apps

#endif // PHOENIX_APPS_CLOUDLAB_H
