#include "service_app.h"

#include <algorithm>
#include <cmath>

namespace phoenix::apps {

using sim::MsId;

namespace {

/**
 * Queueing congestion multiplier on P95 latency: mild until the
 * cluster runs hot, then grows like an M/M/1 tail. Calibrated so the
 * post-degradation cluster (~95% utilized) adds a few percent, matching
 * Table 1's edits 141 -> 144 ms.
 */
double
congestionFactor(double utilization)
{
    const double rho = std::clamp(utilization, 0.0, 0.99);
    if (rho <= 0.5)
        return 1.0;
    return 1.0 + 0.0025 * (rho - 0.5) / (1.0 - rho);
}

bool
entryHealthy(const ServiceApp &sapp, const std::set<MsId> &running)
{
    if (sapp.crashProof)
        return true;
    for (MsId dep : sapp.hardDeps) {
        if (!running.count(dep))
            return false;
    }
    return true;
}

} // namespace

std::vector<TrafficPoint>
evaluateTraffic(const ServiceApp &sapp, const std::set<MsId> &running,
                double cluster_utilization)
{
    std::vector<TrafficPoint> out;
    out.reserve(sapp.requests.size());
    const bool entry_ok = entryHealthy(sapp, running);
    const double congestion = congestionFactor(cluster_utilization);

    for (const RequestType &req : sapp.requests) {
        TrafficPoint point;
        point.request = req.name;
        point.offeredRps = req.offeredRps;

        bool required_ok = entry_ok;
        double utility = 0.0;
        double utility_full = 0.0;
        double latency = 0.0;
        for (const PathComponent &component : req.path) {
            utility_full += component.utility;
            const bool up = running.count(component.service) > 0;
            if (component.required && !up)
                required_ok = false;
            if (up) {
                utility += component.utility;
                latency += component.latencyMs;
            }
        }

        if (!required_ok) {
            point.servedRps = 0.0;
            point.utility = 0.0;
            point.p95Ms = -1.0; // request type unavailable / pruned
        } else {
            point.servedRps = req.offeredRps;
            point.utility =
                utility_full > 0.0 ? utility / utility_full : 1.0;
            point.p95Ms = latency * congestion;
        }
        out.push_back(point);
    }
    return out;
}

double
criticalServedRps(const ServiceApp &sapp, const std::set<MsId> &running,
                  double cluster_utilization)
{
    for (const TrafficPoint &point :
         evaluateTraffic(sapp, running, cluster_utilization)) {
        if (point.request == sapp.criticalRequest)
            return point.servedRps;
    }
    return 0.0;
}

bool
criticalGoalMet(const ServiceApp &sapp, const std::set<MsId> &running)
{
    for (const RequestType &req : sapp.requests) {
        if (req.name != sapp.criticalRequest)
            continue;
        return criticalServedRps(sapp, running) >=
               req.offeredRps - 1e-9;
    }
    return false;
}

void
assignCpuByTraffic(ServiceApp &sapp, double cpu_budget,
                   double critical_fraction, double max_cpu)
{
    auto &services = sapp.app.services;
    std::vector<double> traffic(services.size(), 0.0);
    for (const RequestType &req : sapp.requests) {
        for (const PathComponent &component : req.path)
            traffic[component.service] += req.offeredRps;
    }
    // Floor so idle services still cost something.
    for (double &t : traffic)
        t = std::max(t, 0.5);

    // Distribute one criticality group's budget proportional to
    // traffic, clamping any container at max_cpu and re-spreading the
    // excess over the unclamped rest.
    auto distribute = [&](bool critical, double budget) {
        std::vector<MsId> group;
        for (MsId m = 0; m < services.size(); ++m) {
            if ((services[m].criticality == sim::kC1) == critical)
                group.push_back(m);
        }
        if (group.empty())
            return;
        std::vector<bool> clamped(services.size(), false);
        for (int iter = 0; iter < 8; ++iter) {
            double weight = 0.0;
            double free_budget = budget;
            for (MsId m : group) {
                if (clamped[m])
                    free_budget -= max_cpu;
                else
                    weight += traffic[m];
            }
            bool newly_clamped = false;
            for (MsId m : group) {
                if (clamped[m]) {
                    services[m].cpu = max_cpu;
                    continue;
                }
                services[m].cpu = weight > 0.0
                                      ? free_budget * traffic[m] / weight
                                      : 0.0;
                if (services[m].cpu > max_cpu) {
                    clamped[m] = true;
                    newly_clamped = true;
                }
            }
            if (!newly_clamped)
                break;
        }
    };
    distribute(true, cpu_budget * critical_fraction);
    distribute(false, cpu_budget * (1.0 - critical_fraction));
}

} // namespace phoenix::apps
