/**
 * @file
 * Sampling load generator (§6.1's wrk2/Locust stand-in).
 *
 * Where apps/service_app.h evaluates traffic in closed form, this
 * module *simulates* it, in two shapes:
 *
 *  - runLoad: the batch path behind Table 1 and the Fig 6 utility
 *    panels — Poisson request counts per request type, per-component
 *    latency samples (log-normal around the component's P95
 *    contribution, scaled by cluster congestion), utility scoring per
 *    request, and percentile extraction from the sampled population;
 *
 *  - the arrival processes behind src/serve's live request front end:
 *    piecewise-linear RateCurve shapes (diurnal, bursty), open-loop
 *    Poisson arrival streams over a time-varying rate (thinning), and
 *    closed-loop think-time sampling. All of it draws from explicitly
 *    seeded util::Rng state (one stream per request class, derived via
 *    util::cellSeed) so a serving run is reproducible bit-for-bit.
 */

#ifndef PHOENIX_APPS_LOADGEN_H
#define PHOENIX_APPS_LOADGEN_H

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/service_app.h"
#include "util/rng.h"
#include "util/stats.h"

namespace phoenix::apps {

/** Measured statistics for one request type. Percentiles follow the
 * repo-wide empty-sample convention: util::kNoSample (-1) until at
 * least one request was served. */
struct LoadStats
{
    std::string request;
    size_t offered = 0;
    size_t served = 0;
    double meanUtility = 0.0; //!< over served requests
    double p50Ms = util::kNoSample;
    double p95Ms = util::kNoSample;
    double p99Ms = util::kNoSample;
};

/** Load-generation parameters. */
struct LoadGenConfig
{
    /** Simulated wall-clock duration (seconds of offered traffic). */
    double durationSec = 60.0;
    /** Cluster utilization feeding the congestion factor. */
    double clusterUtilization = 0.5;
    /** Log-space sigma of per-component latency samples. */
    double latencySigma = 0.25;
    uint64_t seed = 42;
};

/**
 * Run the generator against @p sapp with the given running set.
 * Returns one LoadStats per request type (pruned types report served
 * == 0 and negative percentiles).
 */
std::vector<LoadStats> runLoad(const ServiceApp &sapp,
                               const std::set<sim::MsId> &running,
                               const LoadGenConfig &config = {});

// --- Arrival processes (src/serve request front end) ---------------

/**
 * Piecewise-linear rate multiplier over simulated time. Conventions
 * chosen so every degenerate shape is legal:
 *
 *  - an empty curve is the neutral multiplier (1.0 everywhere);
 *  - a single point is a constant;
 *  - before the first / after the last point the curve holds that
 *    point's value (no extrapolation);
 *  - between points the value interpolates linearly.
 *
 * Points are kept sorted by time; adding an earlier point after a
 * later one re-sorts (stable, so duplicate timestamps keep insertion
 * order and at() picks the first).
 */
class RateCurve
{
  public:
    RateCurve() = default;

    /** Append a (time, value) control point. Negative values clamp
     * to 0 (a rate multiplier cannot be negative). */
    RateCurve &point(double t, double value);

    /** Multiplier at @p t under the conventions above. */
    double at(double t) const;

    /** Largest control-point value; 1.0 for the empty curve. The
     * open-loop thinning bound. */
    double maxValue() const;

    bool empty() const { return points_.empty(); }
    const std::vector<std::pair<double, double>> &points() const
    {
        return points_;
    }

    /**
     * Diurnal shape: one cosine day sampled into @p segments linear
     * pieces, oscillating between @p low (at t = 0) and @p high (at
     * t = period/2), repeating is the caller's business — the curve
     * holds @p low again at t = period and stays there.
     */
    static RateCurve diurnal(double period, double low, double high,
                            size_t segments = 24);

    /**
     * Burst shape: baseline @p base, ramping to @p peak over the
     * first quarter of [@p start, @p start + @p duration], holding,
     * and ramping back down over the last quarter.
     */
    static RateCurve burst(double start, double duration, double base,
                          double peak);

  private:
    std::vector<std::pair<double, double>> points_; //!< time-sorted
};

/** Open-loop (arrival-rate driven) stream parameters. */
struct OpenLoopConfig
{
    /** Base arrival rate (requests per second). */
    double baseRps = 0.0;
    /** Rate multiplier over time (empty = constant baseRps). */
    RateCurve curve;
    /** Stream seed; derive per class via util::cellSeed. */
    uint64_t seed = 42;
};

/**
 * Deterministic non-homogeneous Poisson arrival stream: exponential
 * gaps at the curve's peak rate, thinned down to the instantaneous
 * rate baseRps * curve.at(t) (Lewis-Shedler). One Rng per stream, so
 * interleaving streams never perturbs each other's draws.
 */
class OpenLoopArrivals
{
  public:
    explicit OpenLoopArrivals(OpenLoopConfig config);

    /** Next arrival instant strictly after @p now; a negative value
     * means the stream is exhausted (zero rate). */
    double next(double now);

    /** Expected arrivals in [t0, t1] (trapezoid over the curve) —
     * used by tests to bound realized Poisson counts. */
    double expectedCount(double t0, double t1) const;

  private:
    OpenLoopConfig config_;
    util::Rng rng_;
    double maxRate_ = 0.0;
};

/** Closed-loop (user-population driven) stream parameters. */
struct ClosedLoopConfig
{
    /** Concurrent simulated users; each runs request -> response ->
     * think -> request. */
    size_t users = 0;
    /** Think-time bounds (uniform in [thinkMinSec, thinkMaxSec]). */
    double thinkMinSec = 1.0;
    double thinkMaxSec = 5.0;
    uint64_t seed = 42;
};

/** One think-time draw: uniform in [thinkMinSec, thinkMaxSec], with
 * degenerate bounds (max <= min) collapsing to thinkMinSec, never
 * negative. */
double sampleThinkTime(util::Rng &rng, const ClosedLoopConfig &config);

} // namespace phoenix::apps

#endif // PHOENIX_APPS_LOADGEN_H
