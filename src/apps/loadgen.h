/**
 * @file
 * Sampling load generator (§6.1's wrk2/Locust stand-in).
 *
 * Where apps/service_app.h evaluates traffic in closed form, this
 * module *simulates* it: Poisson request arrivals per request type,
 * per-component latency samples (log-normal around the component's
 * P95 contribution, scaled by cluster congestion), utility scoring per
 * request, and percentile extraction from the sampled population —
 * the measurement path behind Table 1 and the Fig 6 utility panels.
 */

#ifndef PHOENIX_APPS_LOADGEN_H
#define PHOENIX_APPS_LOADGEN_H

#include <set>
#include <string>
#include <vector>

#include "apps/service_app.h"
#include "util/rng.h"
#include "util/stats.h"

namespace phoenix::apps {

/** Measured statistics for one request type. Percentiles follow the
 * repo-wide empty-sample convention: util::kNoSample (-1) until at
 * least one request was served. */
struct LoadStats
{
    std::string request;
    size_t offered = 0;
    size_t served = 0;
    double meanUtility = 0.0; //!< over served requests
    double p50Ms = util::kNoSample;
    double p95Ms = util::kNoSample;
    double p99Ms = util::kNoSample;
};

/** Load-generation parameters. */
struct LoadGenConfig
{
    /** Simulated wall-clock duration (seconds of offered traffic). */
    double durationSec = 60.0;
    /** Cluster utilization feeding the congestion factor. */
    double clusterUtilization = 0.5;
    /** Log-space sigma of per-component latency samples. */
    double latencySigma = 0.25;
    uint64_t seed = 42;
};

/**
 * Run the generator against @p sapp with the given running set.
 * Returns one LoadStats per request type (pruned types report served
 * == 0 and negative percentiles).
 */
std::vector<LoadStats> runLoad(const ServiceApp &sapp,
                               const std::set<sim::MsId> &running,
                               const LoadGenConfig &config = {});

} // namespace phoenix::apps

#endif // PHOENIX_APPS_LOADGEN_H
