#include "loadgen.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace phoenix::apps {

using sim::MsId;

namespace {

/** Same congestion shape as the closed-form model (service_app.cc). */
double
congestionFactor(double utilization)
{
    const double rho = std::clamp(utilization, 0.0, 0.99);
    if (rho <= 0.5)
        return 1.0;
    return 1.0 + 0.0025 * (rho - 0.5) / (1.0 - rho);
}

} // namespace

// --- Arrival processes ----------------------------------------------

RateCurve &
RateCurve::point(double t, double value)
{
    points_.emplace_back(t, std::max(value, 0.0));
    std::stable_sort(points_.begin(), points_.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    return *this;
}

double
RateCurve::at(double t) const
{
    if (points_.empty())
        return 1.0;
    if (t <= points_.front().first)
        return points_.front().second;
    if (t >= points_.back().first)
        return points_.back().second;
    for (size_t i = 1; i < points_.size(); ++i) {
        if (t > points_[i].first)
            continue;
        const auto &[t0, v0] = points_[i - 1];
        const auto &[t1, v1] = points_[i];
        if (t1 <= t0)
            return v0; // duplicate timestamp: first point wins
        const double alpha = (t - t0) / (t1 - t0);
        return v0 + alpha * (v1 - v0);
    }
    return points_.back().second;
}

double
RateCurve::maxValue() const
{
    if (points_.empty())
        return 1.0;
    double best = 0.0;
    for (const auto &[t, v] : points_) {
        (void)t;
        best = std::max(best, v);
    }
    return best;
}

RateCurve
RateCurve::diurnal(double period, double low, double high,
                   size_t segments)
{
    RateCurve curve;
    if (segments < 2)
        segments = 2;
    if (period <= 0.0)
        return curve.point(0.0, low);
    for (size_t i = 0; i <= segments; ++i) {
        const double t =
            period * static_cast<double>(i) / static_cast<double>(segments);
        const double phase = 0.5 - 0.5 * std::cos(2.0 * M_PI * t / period);
        curve.point(t, low + (high - low) * phase);
    }
    return curve;
}

RateCurve
RateCurve::burst(double start, double duration, double base, double peak)
{
    RateCurve curve;
    curve.point(0.0, base);
    if (duration <= 0.0)
        return curve;
    const double ramp = duration * 0.25;
    curve.point(start, base)
        .point(start + ramp, peak)
        .point(start + duration - ramp, peak)
        .point(start + duration, base);
    return curve;
}

OpenLoopArrivals::OpenLoopArrivals(OpenLoopConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
    maxRate_ = config_.baseRps * config_.curve.maxValue();
}

double
OpenLoopArrivals::next(double now)
{
    if (maxRate_ <= 0.0)
        return -1.0;
    double t = now;
    // Thinning: candidate gaps at the peak rate, each kept with
    // probability rate(t)/maxRate. Bounded so a curve that decays to
    // zero cannot spin forever.
    for (int i = 0; i < 1 << 20; ++i) {
        t += rng_.exponential(maxRate_);
        const double rate = config_.baseRps * config_.curve.at(t);
        if (rng_.uniform() * maxRate_ <= rate)
            return t;
    }
    return -1.0;
}

double
OpenLoopArrivals::expectedCount(double t0, double t1) const
{
    if (t1 <= t0 || config_.baseRps <= 0.0)
        return 0.0;
    // Trapezoid over a fine grid; exact enough for test bounds since
    // the curve is piecewise linear.
    constexpr int kSteps = 512;
    double integral = 0.0;
    const double dt = (t1 - t0) / kSteps;
    for (int i = 0; i < kSteps; ++i) {
        const double a = config_.curve.at(t0 + dt * i);
        const double b = config_.curve.at(t0 + dt * (i + 1));
        integral += 0.5 * (a + b) * dt;
    }
    return config_.baseRps * integral;
}

double
sampleThinkTime(util::Rng &rng, const ClosedLoopConfig &config)
{
    const double lo = std::max(config.thinkMinSec, 0.0);
    const double hi = config.thinkMaxSec;
    if (hi <= lo)
        return lo;
    return rng.uniform(lo, hi);
}

std::vector<LoadStats>
runLoad(const ServiceApp &sapp, const std::set<MsId> &running,
        const LoadGenConfig &config)
{
    util::Rng rng(config.seed);
    const double congestion =
        congestionFactor(config.clusterUtilization);
    // Per-component samples are log-normal with the component's P95
    // contribution as the 95th percentile: median = p95 / e^{1.645 s}.
    const double p95_factor = std::exp(1.645 * config.latencySigma);

    // Entry hard-dependency check (stock HR crashes user-visibly).
    bool entry_ok = true;
    if (!sapp.crashProof) {
        for (MsId dep : sapp.hardDeps) {
            if (!running.count(dep))
                entry_ok = false;
        }
    }

    std::vector<LoadStats> out;
    out.reserve(sapp.requests.size());
    for (const RequestType &req : sapp.requests) {
        LoadStats stats;
        stats.request = req.name;
        stats.offered = rng.poisson(req.offeredRps * config.durationSec);

        bool required_ok = entry_ok;
        double utility = 0.0;
        double utility_full = 0.0;
        std::vector<double> medians;
        for (const PathComponent &component : req.path) {
            utility_full += component.utility;
            const bool up = running.count(component.service) > 0;
            if (component.required && !up)
                required_ok = false;
            if (up) {
                utility += component.utility;
                if (component.latencyMs > 0.0) {
                    medians.push_back(component.latencyMs * congestion /
                                      p95_factor);
                }
            }
        }

        if (!required_ok || stats.offered == 0) {
            out.push_back(stats);
            continue;
        }

        stats.served = stats.offered;
        stats.meanUtility =
            utility_full > 0.0 ? utility / utility_full : 1.0;

        std::vector<double> latencies;
        latencies.reserve(stats.served);
        for (size_t i = 0; i < stats.served; ++i) {
            double total = 0.0;
            for (double median : medians) {
                total += median * rng.logNormal(0.0,
                                                config.latencySigma);
            }
            latencies.push_back(total);
        }
        stats.p50Ms = util::percentile(latencies, 50.0);
        stats.p95Ms = util::percentile(latencies, 95.0);
        stats.p99Ms = util::percentile(latencies, 99.0);
        out.push_back(stats);
    }
    return out;
}

} // namespace phoenix::apps
