#include "loadgen.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace phoenix::apps {

using sim::MsId;

namespace {

/** Same congestion shape as the closed-form model (service_app.cc). */
double
congestionFactor(double utilization)
{
    const double rho = std::clamp(utilization, 0.0, 0.99);
    if (rho <= 0.5)
        return 1.0;
    return 1.0 + 0.0025 * (rho - 0.5) / (1.0 - rho);
}

} // namespace

std::vector<LoadStats>
runLoad(const ServiceApp &sapp, const std::set<MsId> &running,
        const LoadGenConfig &config)
{
    util::Rng rng(config.seed);
    const double congestion =
        congestionFactor(config.clusterUtilization);
    // Per-component samples are log-normal with the component's P95
    // contribution as the 95th percentile: median = p95 / e^{1.645 s}.
    const double p95_factor = std::exp(1.645 * config.latencySigma);

    // Entry hard-dependency check (stock HR crashes user-visibly).
    bool entry_ok = true;
    if (!sapp.crashProof) {
        for (MsId dep : sapp.hardDeps) {
            if (!running.count(dep))
                entry_ok = false;
        }
    }

    std::vector<LoadStats> out;
    out.reserve(sapp.requests.size());
    for (const RequestType &req : sapp.requests) {
        LoadStats stats;
        stats.request = req.name;
        stats.offered = rng.poisson(req.offeredRps * config.durationSec);

        bool required_ok = entry_ok;
        double utility = 0.0;
        double utility_full = 0.0;
        std::vector<double> medians;
        for (const PathComponent &component : req.path) {
            utility_full += component.utility;
            const bool up = running.count(component.service) > 0;
            if (component.required && !up)
                required_ok = false;
            if (up) {
                utility += component.utility;
                if (component.latencyMs > 0.0) {
                    medians.push_back(component.latencyMs * congestion /
                                      p95_factor);
                }
            }
        }

        if (!required_ok || stats.offered == 0) {
            out.push_back(stats);
            continue;
        }

        stats.served = stats.offered;
        stats.meanUtility =
            utility_full > 0.0 ? utility / utility_full : 1.0;

        std::vector<double> latencies;
        latencies.reserve(stats.served);
        for (size_t i = 0; i < stats.served; ++i) {
            double total = 0.0;
            for (double median : medians) {
                total += median * rng.logNormal(0.0,
                                                config.latencySigma);
            }
            latencies.push_back(total);
        }
        stats.p50Ms = util::percentile(latencies, 50.0);
        stats.p95Ms = util::percentile(latencies, 95.0);
        stats.p99Ms = util::percentile(latencies, 99.0);
        out.push_back(stats);
    }
    return out;
}

} // namespace phoenix::apps
