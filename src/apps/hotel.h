/**
 * @file
 * HotelReservation model (DeathStarBench, §5/§6.1): an 8-microservice
 * stateless slice (the paper runs the stateful stores on a separate
 * cluster). Stock HR is *not* crash-proof: the front end hard-depends
 * on search/profile/user/reservation/recommendation, so disabling any
 * of them causes user-visible failures. The paper retrofits error
 * handling to make HR diagonal-scaling compliant; both variants are
 * available here.
 */

#ifndef PHOENIX_APPS_HOTEL_H
#define PHOENIX_APPS_HOTEL_H

#include "apps/service_app.h"

namespace phoenix::apps {

/** HotelReservation microservice ids. */
namespace hotel {
constexpr sim::MsId kFrontend = 0;
constexpr sim::MsId kSearch = 1;
constexpr sim::MsId kGeo = 2;
constexpr sim::MsId kRate = 3;
constexpr sim::MsId kProfile = 4;
constexpr sim::MsId kRecommendation = 5;
constexpr sim::MsId kUser = 6;
constexpr sim::MsId kReservation = 7;
constexpr size_t kServiceCount = 8;
} // namespace hotel

/**
 * Build a HotelReservation instance.
 *
 * @param instance   0 (search-critical) or 1 (reserve-critical), per
 *                   Fig 4.
 * @param compliant  true applies the paper's error-handling retrofit
 *                   (crash-proof); false models stock DeathStarBench,
 *                   whose front end fails when hard dependencies are
 *                   down.
 * @param rps_scale  multiplies the offered load.
 */
ServiceApp makeHotelReservation(int instance, bool compliant = true,
                                double rps_scale = 1.0);

} // namespace phoenix::apps

#endif // PHOENIX_APPS_HOTEL_H
