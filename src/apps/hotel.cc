#include "hotel.h"

#include <map>
#include <string>

namespace phoenix::apps {

using namespace hotel;
using sim::MsId;

namespace {

const char *const kNames[kServiceCount] = {
    "frontend", "search", "geo",  "rate",
    "profile",  "recommendation", "user", "reservation",
};

PathComponent
req(MsId service, double utility, double latency_ms)
{
    return PathComponent{service, true, utility, latency_ms};
}

PathComponent
opt(MsId service, double utility, double latency_ms)
{
    return PathComponent{service, false, utility, latency_ms};
}

} // namespace

ServiceApp
makeHotelReservation(int instance, bool compliant, double rps_scale)
{
    ServiceApp sapp;
    sapp.crashProof = compliant;
    if (!compliant) {
        // Stock HR: front-end initialization requires connectivity to
        // these downstream services (§5).
        sapp.hardDeps = {kSearch, kProfile, kRecommendation, kUser,
                         kReservation};
    }

    sim::Application &app = sapp.app;
    app.name = "HR" + std::to_string(instance);
    app.hasDependencyGraph = true;
    app.dag = graph::DiGraph(kServiceCount);
    app.services.resize(kServiceCount);
    for (MsId m = 0; m < kServiceCount; ++m) {
        app.services[m].id = m;
        app.services[m].name = kNames[m];
    }

    app.dag.addEdge(kFrontend, kSearch);
    app.dag.addEdge(kSearch, kGeo);
    app.dag.addEdge(kSearch, kRate);
    app.dag.addEdge(kFrontend, kProfile);
    app.dag.addEdge(kFrontend, kRecommendation);
    app.dag.addEdge(kRecommendation, kProfile);
    app.dag.addEdge(kFrontend, kUser);
    app.dag.addEdge(kFrontend, kReservation);
    app.dag.addEdge(kReservation, kUser);

    // Latencies calibrated to Table 1 "before": search 53.26 ms,
    // recommend 47.43 ms, reserve 55.33 ms, login 41.8 ms. Reservation
    // can proceed without the user service (guest checkout) at reduced
    // utility 0.8 — the paper's partial-pruning example (Fig 6f).
    const double s = rps_scale;
    sapp.requests = {
        RequestType{"search", 30.0 * s,
                    {req(kFrontend, 0.2, 10.0), req(kSearch, 0.3, 15.0),
                     req(kGeo, 0.15, 10.0), req(kRate, 0.15, 8.0),
                     req(kProfile, 0.2, 10.26)}},
        RequestType{"recommend", 8.0 * s,
                    {req(kFrontend, 0.2, 10.0),
                     req(kRecommendation, 0.5, 27.43),
                     req(kProfile, 0.3, 10.0)}},
        RequestType{"reserve", 12.0 * s,
                    {req(kFrontend, 0.3, 10.0),
                     req(kReservation, 0.5, 40.1),
                     opt(kUser, 0.2, 5.23)}},
        RequestType{"login", 6.0 * s,
                    {req(kFrontend, 0.3, 10.0),
                     req(kUser, 0.7, 31.8)}},
    };

    if (instance % 2 == 0)
        sapp.criticalRequest = "search";
    else
        sapp.criticalRequest = "reserve";

    std::map<MsId, sim::Criticality> tags;
    if (sapp.criticalRequest == "search") {
        tags = {{kFrontend, 1}, {kSearch, 1},        {kGeo, 1},
                {kRate, 1},     {kProfile, 1},       {kReservation, 2},
                {kUser, 3},     {kRecommendation, 5}};
    } else {
        tags = {{kFrontend, 1}, {kReservation, 1},   {kSearch, 3},
                {kGeo, 3},      {kRate, 3},          {kProfile, 3},
                {kUser, 4},     {kRecommendation, 5}};
    }
    for (const auto &[m, tag] : tags)
        app.services[m].criticality = tag;

    return sapp;
}

} // namespace phoenix::apps
