#include "cloudlab.h"

#include "apps/hotel.h"
#include "apps/overleaf.h"

namespace phoenix::apps {

std::vector<sim::Application>
CloudLabTestbed::applications() const
{
    std::vector<sim::Application> apps;
    apps.reserve(serviceApps.size());
    for (size_t i = 0; i < serviceApps.size(); ++i) {
        apps.push_back(serviceApps[i].app);
        apps.back().id = static_cast<sim::AppId>(i);
    }
    return apps;
}

sim::ClusterState
CloudLabTestbed::makeCluster() const
{
    sim::ClusterState cluster;
    for (size_t n = 0; n < config.nodeCount; ++n)
        cluster.addNode(config.cpusPerNode);
    return cluster;
}

CloudLabTestbed
makeCloudLabTestbed(CloudLabConfig config)
{
    CloudLabTestbed testbed;
    testbed.config = config;

    // Per-instance load mixes differ (the paper tweaks edit /
    // spell-check / versioning levels per instance).
    testbed.serviceApps.push_back(makeOverleaf(0, 1.0));
    testbed.serviceApps.push_back(makeOverleaf(1, 0.8));
    testbed.serviceApps.push_back(makeOverleaf(2, 1.2));
    testbed.serviceApps.push_back(
        makeHotelReservation(0, config.hrCompliant, 1.0));
    testbed.serviceApps.push_back(
        makeHotelReservation(1, config.hrCompliant, 0.9));

    // Equal budgets, heterogeneous willingness-to-pay for the cost
    // objective.
    const double total_budget =
        config.nodeCount * config.cpusPerNode * config.demandFraction;
    const double per_app = total_budget / 5.0;
    const double prices[5] = {2.0, 1.2, 1.0, 1.6, 1.4};
    for (size_t i = 0; i < testbed.serviceApps.size(); ++i) {
        ServiceApp &sapp = testbed.serviceApps[i];
        assignCpuByTraffic(sapp, per_app, config.criticalFraction,
                           0.95 * config.cpusPerNode);
        sapp.app.pricePerUnit = prices[i];
        sapp.app.id = static_cast<sim::AppId>(i);
    }
    return testbed;
}

} // namespace phoenix::apps
