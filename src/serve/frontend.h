/**
 * @file
 * The live request front end: deterministic simulated user traffic
 * routed at the mini-Kubernetes cluster, with per-class SLO tracking
 * and criticality-aware admission control.
 *
 * One ServeFrontend owns, per request class:
 *
 *  - an open-loop arrival stream (non-homogeneous Poisson over the
 *    configured RateCurve, one util::Rng per class seeded via
 *    util::cellSeed) or a closed-loop user population (think-time
 *    loops), both riding the shared sim::EventQueue;
 *  - a service-time model: per-component log-normal samples around the
 *    component's P95 contribution (the runLoad model), scaled by the
 *    cluster congestion factor and by a replica-concentration factor
 *    when a service is running below its full replica count;
 *  - SLO accounting (SloTracker) over fixed windows.
 *
 * Request outcome: shed at the front door (admission), failed (a
 * required path component below quorum among Running pods), or served
 * with a sampled latency. Ready state is refreshed from the cluster on
 * a fixed cadence — the front end sees the cluster like a load
 * balancer's health checks do, not with event-grained freshness.
 *
 * Everything is deterministic for a given seed: arrival draws and
 * latency draws come from per-class streams, and all activity is
 * scheduled in sim time, so two runs (or the same run inside different
 * sweep threads) produce identical request histories.
 */

#ifndef PHOENIX_SERVE_FRONTEND_H
#define PHOENIX_SERVE_FRONTEND_H

#include <map>
#include <vector>

#include "apps/loadgen.h"
#include "core/controller.h"
#include "forecast/forecaster.h"
#include "kube/kube.h"
#include "obs/obs.h"
#include "serve/admission.h"
#include "serve/slo.h"

namespace phoenix::serve {

/** Front-end tunables. */
struct FrontendConfig
{
    /** Serving window in sim time (arrivals, windows, refreshes). */
    double startAt = 0.0;
    double endAt = 1800.0;
    /** SLO evaluation window width (seconds). */
    double windowSec = 5.0;
    /** Ready-state / capacity refresh cadence (seconds). */
    double refreshSec = 5.0;
    /** Scales every class's offered rate (load knob). */
    double rpsScale = 1.0;
    /** Shared rate-multiplier shape (empty = steady). */
    apps::RateCurve curve;
    /** Log-space sigma of per-component latency samples. */
    double latencySigma = 0.25;
    AdmissionConfig admission;
    /** Closed-loop mode: per-class user populations with think times
     * instead of open-loop Poisson arrivals. */
    bool closedLoop = false;
    double thinkMinSec = 2.0;
    double thinkMaxSec = 8.0;
    uint64_t seed = 42;
};

class ServeFrontend
{
  public:
    /**
     * Arms all serving activity on @p events. @p controller may be
     * null (the Default baseline); when present, its replan observer
     * feeds the admission controller's planned-service set. The
     * frontend must outlive the simulation.
     */
    ServeFrontend(sim::EventQueue &events, kube::KubeCluster &cluster,
                  const std::vector<apps::ServiceApp> &serviceApps,
                  FrontendConfig config,
                  core::PhoenixController *controller = nullptr,
                  forecast::Forecaster *forecaster = nullptr);

    const std::vector<RequestClass> &classes() const
    {
        return tracker_.classes();
    }
    const SloTracker &slo() const { return tracker_; }
    const AdmissionController &admission() const { return admission_; }

    std::vector<ClassReport> report() const { return tracker_.report(); }

    size_t totalServed() const { return served_; }
    size_t totalShed() const { return shed_; }
    size_t totalFailed() const { return failed_; }
    size_t totalOffered() const { return served_ + shed_ + failed_; }

  private:
    /** Per-microservice routing state (keyed by serviceKey). */
    struct ServiceState
    {
        int replicas = 1;
        int quorum = 1;
        int ready = 0;
    };

    void armArrivals();
    void scheduleNextArrival(size_t classIdx);
    void armClosedLoopUser(size_t classIdx, double at);
    /** Handle one request of class @p classIdx at the current sim
     * time; returns the served latency in seconds (for closed-loop
     * pacing), or a fixed fail penalty when shed/failed. */
    double handleRequest(size_t classIdx);
    void refresh();
    void windowTick();

    sim::EventQueue &events_;
    kube::KubeCluster &cluster_;
    FrontendConfig config_;
    core::PhoenixController *controller_;
    /** Forecast subsystem: each refresh feeds it the offered request
     * rate and reads back the projected capacity fraction for the
     * admission gate (shed before the cliff). Null = off. */
    forecast::Forecaster *forecaster_;
    /** Arrivals since the last refresh (offered-RPS estimate). */
    size_t offeredSinceRefresh_ = 0;
    double lastRefreshAt_ = 0.0;

    SloTracker tracker_;
    AdmissionController admission_;

    std::vector<apps::OpenLoopArrivals> arrivals_;
    /** Per-class latency-sampling stream (separate from arrivals so a
     * routing change never perturbs arrival instants). */
    std::vector<util::Rng> latencyRng_;
    /** Per-class think-time stream (closed-loop mode only). */
    std::vector<util::Rng> thinkRng_;

    std::map<uint64_t, ServiceState> services_;
    double congestion_ = 1.0;
    double p95Factor_ = 1.0;

    size_t served_ = 0;
    size_t shed_ = 0;
    size_t failed_ = 0;

    /** obs handles, resolved once at construction. */
    struct ObsHandles
    {
        std::vector<obs::Counter *> requestsByClass;
        std::vector<obs::LogHistogram *> latencyByClass;
        obs::Counter *served = nullptr;
        obs::Counter *shed = nullptr;
        obs::Counter *shedCapacity = nullptr;
        obs::Counter *shedPlan = nullptr;
        obs::Counter *shedForecast = nullptr;
        obs::Counter *failed = nullptr;
        obs::Counter *sloViolationSeconds = nullptr;
    };
    ObsHandles obs_;
};

} // namespace phoenix::serve

#endif // PHOENIX_SERVE_FRONTEND_H
