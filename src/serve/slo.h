/**
 * @file
 * Per-request-class SLO accounting for the serving layer.
 *
 * The headline serving metric is *SLO-violation seconds*: sim time is
 * cut into fixed windows, each class's window is evaluated against its
 * SloConfig (windowed success rate and windowed P95 latency), and a
 * failing window adds its full width to the class's violation-seconds
 * total. This is the metric the paper's cooperative-degradation story
 * is about — under Phoenix the violation seconds concentrate on the
 * degradable classes, under Default they land on everyone including
 * the critical classes.
 *
 * An idle window (zero offered requests) is not a violation: no demand
 * means nothing was denied.
 */

#ifndef PHOENIX_SERVE_SLO_H
#define PHOENIX_SERVE_SLO_H

#include <cstddef>
#include <vector>

#include "serve/serve.h"

namespace phoenix::serve {

/** Final per-class accounting (totals over the whole run). */
struct ClassReport
{
    /** Class metadata snapshot (label, criticality, SLO). */
    RequestClass meta;

    size_t offered = 0; //!< served + shed + failed
    size_t served = 0;
    size_t shed = 0;   //!< rejected at the front door (admission)
    size_t failed = 0; //!< admitted but a required component was down

    /** Latency over served requests (ms); util::kNoSample if none. */
    double p50Ms = -1.0;
    double p95Ms = -1.0;
    double p99Ms = -1.0;
    double meanMs = 0.0;

    double sloViolationSeconds = 0.0;
    size_t windows = 0;
    size_t violationWindows = 0;

    /** served / offered; 1.0 when nothing was offered. */
    double goodput() const
    {
        return offered == 0
                   ? 1.0
                   : static_cast<double>(served) /
                         static_cast<double>(offered);
    }

    double shedFraction() const
    {
        return offered == 0
                   ? 0.0
                   : static_cast<double>(shed) /
                         static_cast<double>(offered);
    }
};

/**
 * Windowed SLO tracker. The owner records every request outcome as it
 * happens and calls closeWindow() at each window boundary; report()
 * finalizes totals and overall latency percentiles.
 */
class SloTracker
{
  public:
    SloTracker(std::vector<RequestClass> classes, double windowSec);

    void recordServed(size_t classIdx, double latencyMs);
    void recordShed(size_t classIdx);
    void recordFailed(size_t classIdx);

    /**
     * Evaluate the window that just ended for every class and reset
     * the window scratch. Returns the violation seconds this window
     * contributed (summed over classes) so the caller can surface it
     * incrementally (obs counter).
     */
    double closeWindow();

    size_t classCount() const { return classes_.size(); }
    const std::vector<RequestClass> &classes() const { return classes_; }
    double windowSec() const { return windowSec_; }

    /** Totals + overall percentiles per class. */
    std::vector<ClassReport> report() const;

    /** Violation seconds summed over classes with the given
     * criticality predicate: critical (== kC1) or not. */
    double violationSeconds(bool critical) const;

  private:
    struct Window
    {
        size_t served = 0;
        size_t shed = 0;
        size_t failed = 0;
        std::vector<double> latenciesMs; //!< reused across windows
    };

    struct Totals
    {
        size_t served = 0;
        size_t shed = 0;
        size_t failed = 0;
        double latencySumMs = 0.0;
        double sloViolationSeconds = 0.0;
        size_t windows = 0;
        size_t violationWindows = 0;
        std::vector<double> latenciesMs; //!< all served (percentiles)
    };

    std::vector<RequestClass> classes_;
    double windowSec_;
    std::vector<Window> windows_;
    std::vector<Totals> totals_;
};

} // namespace phoenix::serve

#endif // PHOENIX_SERVE_SLO_H
