/**
 * @file
 * End-to-end serving harness: the CloudLab testbed + a failure
 * scenario + a live request front end, run under one resilience
 * scheme. The serving analogue of exp::runRecovery — where that
 * harness measures recovery *dynamics* (availability over time), this
 * one measures what live traffic experienced: per-class goodput,
 * SLO-violation seconds split critical/non-critical, and the
 * admission shed fraction.
 *
 * The kube invariant checker is force-enabled for every run.
 */

#ifndef PHOENIX_SERVE_HARNESS_H
#define PHOENIX_SERVE_HARNESS_H

#include <string>
#include <utility>
#include <vector>

#include "apps/cloudlab.h"
#include "kube/kube.h"
#include "serve/frontend.h"
#include "sim/scenario.h"

namespace phoenix::serve {

/** One serving run: testbed + scenario + front end + scheme. */
struct ServeConfig
{
    ServeScheme scheme = ServeScheme::PhoenixCost;
    apps::CloudLabConfig testbed;
    kube::KubeConfig kube; //!< validateInvariants is forced on
    sim::Scenario scenario;
    sim::ScenarioOptions scenarioOptions;
    /** Front-end knobs. startAt/endAt are overwritten from warmupSec
     * and endTime — the harness owns the serving window. */
    FrontendConfig frontend;
    /** Serving starts here: initial placement needs to settle first
     * (scheduler binds + pod startup, ~60-100 s). */
    double warmupSec = 300.0;
    /** Simulation horizon (also the end of the serving window). */
    double endTime = 1800.0;
    /** Attach the forecast subsystem to the controller + admission
     * gate (predictive degradation; Default scheme has no controller
     * to attach to, so the flag is ignored there). */
    bool forecast = false;
    forecast::ForecastConfig forecastConfig;
};

/** Harness outcome. */
struct ServeResult
{
    std::vector<ClassReport> classes;

    size_t offered = 0;
    size_t served = 0;
    size_t shed = 0;
    size_t failed = 0;

    /** SLO-violation seconds over critical (C1) classes — the paper's
     * protected traffic — and over everything else. */
    double criticalViolationSeconds = 0.0;
    double nonCriticalViolationSeconds = 0.0;

    /** served / offered over the critical classes (1.0 if idle). */
    double criticalGoodput = 1.0;
    double totalGoodput = 1.0;
    /** shed / offered over all classes. */
    double shedFraction = 0.0;

    double firstFailureAt = -1.0;
    size_t replans = 0;
    size_t invariantViolations = 0;
    /** Forecast subsystem counters (zero when forecast is off). */
    forecast::ForecastCounters forecast;

    /** obs counters/histogram-counts this run incremented (empty with
     * metrics disabled); exact under one-cell-one-thread. */
    std::vector<std::pair<std::string, double>> obsMetrics;
};

/** Run one serving scenario end to end. */
ServeResult runServe(const ServeConfig &config);

} // namespace phoenix::serve

#endif // PHOENIX_SERVE_HARNESS_H
