#include "serve.h"

#include <algorithm>
#include <map>

namespace phoenix::serve {

const char *
serveSchemeName(ServeScheme scheme)
{
    switch (scheme) {
    case ServeScheme::Default: return "Default";
    case ServeScheme::PhoenixCost: return "PhoenixCost";
    case ServeScheme::PhoenixFair: return "PhoenixFair";
    }
    return "?";
}

std::vector<RequestClass>
buildRequestClasses(const std::vector<apps::ServiceApp> &serviceApps)
{
    std::vector<RequestClass> classes;
    for (const apps::ServiceApp &sapp : serviceApps) {
        // MsIds may be sparse: criticality lookup via map, not index.
        std::map<sim::MsId, sim::Criticality> criticality;
        for (const sim::Microservice &ms : sapp.app.services)
            criticality[ms.id] = ms.criticality;

        for (const apps::RequestType &req : sapp.requests) {
            RequestClass cls;
            cls.index = classes.size();
            cls.app = sapp.app.id;
            cls.appName = sapp.app.name;
            cls.name = req.name;
            cls.baseRps = req.offeredRps;
            cls.path = req.path;

            double nominalMs = 0.0;
            for (const apps::PathComponent &component : req.path) {
                nominalMs += std::max(component.latencyMs, 0.0);
                if (!component.required)
                    continue;
                auto it = criticality.find(component.service);
                if (it != criticality.end())
                    cls.criticality = std::max(cls.criticality,
                                               it->second);
            }
            cls.slo.latencyP95Ms = std::max(50.0, 2.0 * nominalMs);
            classes.push_back(std::move(cls));
        }
    }
    return classes;
}

} // namespace phoenix::serve
