#include "daemon.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "apps/cloudlab.h"
#include "core/schemes.h"
#include "kube/manifest.h"
#include "sim/scenario.h"

namespace phoenix::serve {

namespace {

std::string
errorReply(const std::string &message)
{
    return "{\"ok\":false,\"error\":" + util::jsonQuote(message) + "}";
}

/** Shift a curve's control points by @p offset seconds (serve-start
 * shapes are authored relative to the serving window). */
apps::RateCurve
shiftCurve(const apps::RateCurve &curve, double offset)
{
    apps::RateCurve shifted;
    for (const auto &[t, v] : curve.points())
        shifted.point(t + offset, v);
    return shifted;
}

} // namespace

ServeDaemon::ServeDaemon(DaemonConfig config)
    : config_(std::move(config)), cluster_(events_, config_.kube)
{
}

std::string
ServeDaemon::handleLine(const std::string &line)
{
    util::JsonValue command;
    if (!util::parseJson(line, command) || !command.isObject())
        return errorReply("malformed command (expected a JSON object)");
    return handle(command);
}

int
ServeDaemon::repl(std::istream &in, std::ostream &out)
{
    std::string line;
    while (!shutdown_ && std::getline(in, line)) {
        if (line.empty())
            continue;
        out << handleLine(line) << "\n" << std::flush;
    }
    return 0;
}

std::string
ServeDaemon::handle(const util::JsonValue &command)
{
    const std::string cmd = command.stringAt("cmd");
    if (cmd == "load-testbed")
        return cmdLoadTestbed(command);
    if (cmd == "add-nodes")
        return cmdAddNodes(command);
    if (cmd == "ingest-manifest")
        return cmdIngestManifest(command);
    if (cmd == "start-controller")
        return cmdStartController(command);
    if (cmd == "forecast-status")
        return cmdForecastStatus();
    if (cmd == "serve-start")
        return cmdServeStart(command);
    if (cmd == "inject-scenario")
        return cmdInjectScenario(command);
    if (cmd == "advance")
        return cmdAdvance(command);
    if (cmd == "observe")
        return cmdObserve();
    if (cmd == "delete-pod" || cmd == "restart-pod" ||
        cmd == "migrate-pod")
        return cmdPodVerb(cmd, command);
    if (cmd == "stats")
        return cmdStats();
    if (cmd == "metrics")
        return cmdMetrics();
    if (cmd == "shutdown") {
        shutdown_ = true;
        return "{\"ok\":true,\"bye\":true}";
    }
    return errorReply("unknown cmd " + util::jsonQuote(cmd));
}

std::string
ServeDaemon::cmdLoadTestbed(const util::JsonValue &command)
{
    apps::CloudLabConfig testbedConfig;
    const double demand =
        command.numberAt("demand_fraction",
                         testbedConfig.demandFraction);
    testbedConfig.demandFraction = demand;
    const apps::CloudLabTestbed testbed =
        apps::makeCloudLabTestbed(testbedConfig);
    for (size_t n = 0; n < testbed.config.nodeCount; ++n)
        cluster_.addNode(testbed.config.cpusPerNode);
    for (apps::ServiceApp sapp : testbed.serviceApps) {
        sapp.app.id = nextAppId_++;
        cluster_.addApplication(sapp.app);
        serviceApps_.push_back(std::move(sapp));
    }
    std::ostringstream out;
    out << "{\"ok\":true,\"nodes\":" << cluster_.nodeCount()
        << ",\"apps\":" << cluster_.apps().size() << "}";
    return out.str();
}

std::string
ServeDaemon::cmdAddNodes(const util::JsonValue &command)
{
    const auto count =
        static_cast<size_t>(command.numberAt("count", 1.0));
    const double capacity = command.numberAt("capacity", 8.0);
    if (count == 0 || capacity <= 0.0)
        return errorReply("add-nodes needs count >= 1, capacity > 0");
    for (size_t n = 0; n < count; ++n)
        cluster_.addNode(capacity);
    std::ostringstream out;
    out << "{\"ok\":true,\"nodes\":" << cluster_.nodeCount() << "}";
    return out.str();
}

std::string
ServeDaemon::cmdIngestManifest(const util::JsonValue &command)
{
    const util::JsonValue *text = command.field("text");
    if (!text || !text->isString())
        return errorReply("ingest-manifest needs a string 'text'");

    const kube::ManifestParse parse =
        kube::parseManifestStructured(text->text);

    std::ostringstream out;
    out << "{\"ok\":" << (parse.ok() ? "true" : "false")
        << ",\"apps\":[";
    bool first = true;
    for (sim::Application app : parse.apps) {
        // Rebase ids past whatever the cluster already holds.
        app.id = nextAppId_++;
        cluster_.addApplication(app);

        // Synthesize a request model: one class per service, exactly
        // that service on the required path, so serve-start can route
        // traffic at manifest apps too.
        apps::ServiceApp sapp;
        sapp.app = app;
        for (const sim::Microservice &ms : app.services) {
            apps::RequestType req;
            req.name = ms.name;
            req.offeredRps = config_.manifestRps;
            req.path.push_back(apps::PathComponent{
                ms.id, /*required=*/true, /*utility=*/1.0,
                /*latencyMs=*/50.0});
            sapp.requests.push_back(std::move(req));
        }
        serviceApps_.push_back(std::move(sapp));

        if (!first)
            out << ",";
        first = false;
        out << util::jsonQuote(app.name);
    }
    out << "],\"errors\":[";
    first = true;
    for (const kube::ManifestError &error : parse.errors) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"line\":" << error.line
            << ",\"field\":" << util::jsonQuote(error.field)
            << ",\"message\":" << util::jsonQuote(error.message)
            << "}";
    }
    out << "]}";
    return out.str();
}

std::string
ServeDaemon::cmdStartController(const util::JsonValue &command)
{
    if (controller_)
        return errorReply("controller already running");
    const std::string scheme =
        command.stringAt("scheme", "PhoenixCost");
    core::Objective objective;
    if (scheme == "PhoenixCost") {
        objective = core::Objective::Cost;
    } else if (scheme == "PhoenixFair") {
        objective = core::Objective::Fair;
    } else {
        return errorReply("unknown scheme " + util::jsonQuote(scheme) +
                          " (PhoenixCost | PhoenixFair)");
    }
    controller_ = std::make_unique<core::PhoenixController>(
        events_, cluster_,
        std::make_unique<core::PhoenixScheme>(objective),
        config_.controller);

    const util::JsonValue *forecastFlag = command.field("forecast");
    const bool forecastOn =
        forecastFlag &&
        ((forecastFlag->kind == util::JsonValue::Kind::Bool &&
          forecastFlag->boolean) ||
         (forecastFlag->isNumber() && forecastFlag->number != 0.0));
    if (forecastOn) {
        forecast::ForecastConfig forecastConfig;
        forecastConfig.fallbackZoneCount = static_cast<size_t>(
            command.numberAt(
                "zones",
                static_cast<double>(
                    forecastConfig.fallbackZoneCount)));
        forecastConfig.horizonSeconds = command.numberAt(
            "horizon", forecastConfig.horizonSeconds);
        forecaster_ = std::make_unique<forecast::Forecaster>(
            cluster_,
            [objective] {
                return std::make_unique<core::PhoenixScheme>(
                    objective);
            },
            forecastConfig);
        controller_->attachForecast(forecaster_.get());
    }
    return "{\"ok\":true,\"scheme\":" + util::jsonQuote(scheme) +
           ",\"forecast\":" + (forecastOn ? "true" : "false") + "}";
}

std::string
ServeDaemon::cmdForecastStatus()
{
    if (!forecaster_)
        return errorReply("forecast not enabled (start-controller "
                          "with \"forecast\":true)");
    const forecast::ForecastCounters &counters =
        forecaster_->counters();
    std::ostringstream out;
    out << "{\"ok\":true,\"projected_capacity_fraction\":"
        << util::jsonNumber(
               forecaster_->projectedCapacityFraction())
        << ",\"capacity_risk_armed\":"
        << (forecaster_->capacityRiskArmed() ? "true" : "false")
        << ",\"risks\":[";
    bool first = true;
    for (const forecast::RiskStatus &risk : forecaster_->risks()) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"class\":"
            << util::jsonQuote(forecast::faultClassName(risk.cls));
        if (risk.zone != SIZE_MAX)
            out << ",\"zone\":" << risk.zone;
        out << ",\"armed\":" << (risk.armed ? "true" : "false")
            << ",\"signal\":" << util::jsonNumber(risk.signal)
            << ",\"staged\":" << (risk.staged ? "true" : "false")
            << ",\"executed\":" << (risk.executed ? "true" : "false")
            << "}";
    }
    out << "],\"counters\":{\"prestaged_plans\":"
        << counters.prestagedPlans
        << ",\"restaged_plans\":" << counters.restagedPlans
        << ",\"warm_applies\":" << counters.warmApplies
        << ",\"stale_plans\":" << counters.stalePlans
        << ",\"proactive_executions\":"
        << counters.proactiveExecutions
        << ",\"forced_restores\":" << counters.forcedRestores
        << "}}";
    return out.str();
}

std::string
ServeDaemon::cmdServeStart(const util::JsonValue &command)
{
    if (frontend_)
        return errorReply("serving already started");
    if (serviceApps_.empty())
        return errorReply(
            "nothing to serve (load-testbed or ingest-manifest first)");

    const double duration = command.numberAt("duration", 600.0);
    if (duration <= 0.0)
        return errorReply("serve-start needs duration > 0");

    FrontendConfig frontendConfig = config_.frontend;
    frontendConfig.seed = config_.seed;
    frontendConfig.startAt = events_.now();
    frontendConfig.endAt = events_.now() + duration;
    frontendConfig.windowSec =
        command.numberAt("window", frontendConfig.windowSec);
    frontendConfig.rpsScale =
        command.numberAt("rps_scale", frontendConfig.rpsScale);

    const std::string shape = command.stringAt("shape", "steady");
    if (shape == "steady") {
        frontendConfig.curve = apps::RateCurve();
    } else if (shape == "diurnal") {
        frontendConfig.curve = shiftCurve(
            apps::RateCurve::diurnal(duration, 0.5, 1.5),
            events_.now());
    } else if (shape == "burst") {
        frontendConfig.curve = shiftCurve(
            apps::RateCurve::burst(duration * 0.4, duration * 0.3,
                                   1.0, 2.0),
            events_.now());
    } else {
        return errorReply("unknown shape " + util::jsonQuote(shape) +
                          " (steady | diurnal | burst)");
    }

    frontend_ = std::make_unique<ServeFrontend>(
        events_, cluster_, serviceApps_, frontendConfig,
        controller_.get(), forecaster_.get());
    std::ostringstream out;
    out << "{\"ok\":true,\"classes\":"
        << frontend_->classes().size()
        << ",\"until\":" << util::jsonNumber(frontendConfig.endAt)
        << "}";
    return out.str();
}

std::string
ServeDaemon::cmdInjectScenario(const util::JsonValue &command)
{
    const util::JsonValue *steps = command.field("steps");
    if (!steps || !steps->isArray() || steps->items.empty())
        return errorReply(
            "inject-scenario needs a non-empty 'steps' array");

    sim::Scenario scenario;
    for (const util::JsonValue &step : steps->items) {
        if (!step.isObject())
            return errorReply("scenario step must be an object");
        const std::string kind = step.stringAt("kind");
        const double at = step.numberAt("at", events_.now());
        if (kind == "fail-nodes" || kind == "recover-nodes") {
            const util::JsonValue *nodes = step.field("nodes");
            if (!nodes || !nodes->isArray())
                return errorReply(kind + " needs a 'nodes' array");
            std::vector<sim::NodeId> ids;
            for (const util::JsonValue &node : nodes->items)
                ids.push_back(
                    static_cast<sim::NodeId>(node.number));
            if (kind == "fail-nodes")
                scenario.failNodes(at, std::move(ids));
            else
                scenario.recoverNodes(at, std::move(ids));
        } else if (kind == "fail-count") {
            scenario.failCount(
                at,
                static_cast<size_t>(step.numberAt("count", 1.0)));
        } else if (kind == "fail-capacity-fraction") {
            scenario.failCapacityFraction(
                at, step.numberAt("fraction", 0.0));
        } else if (kind == "fail-zone") {
            scenario.failZone(
                at, static_cast<size_t>(step.numberAt("zone", 0.0)));
        } else if (kind == "rolling-fail") {
            scenario.rollingFail(
                at,
                static_cast<size_t>(step.numberAt("count", 1.0)),
                step.numberAt("interval", 60.0));
        } else if (kind == "flap") {
            scenario.flapKubelet(
                at,
                static_cast<sim::NodeId>(step.numberAt("node", 0.0)),
                step.numberAt("downtime", 30.0));
        } else if (kind == "recover-all") {
            scenario.recoverAll(at, step.numberAt("stagger", 0.0));
        } else {
            return errorReply("unknown scenario step kind " +
                              util::jsonQuote(kind));
        }
    }

    sim::ScenarioOptions options;
    options.seed = static_cast<uint64_t>(
        command.numberAt("seed", static_cast<double>(config_.seed)));
    options.zoneCount = static_cast<size_t>(command.numberAt(
        "zones", static_cast<double>(options.zoneCount)));
    runners_.push_back(std::make_unique<sim::ScenarioRunner>(
        events_, cluster_, std::move(scenario), options));
    std::ostringstream out;
    out << "{\"ok\":true,\"steps\":" << steps->items.size()
        << ",\"first_failure_at\":"
        << util::jsonNumber(runners_.back()->firstFailureAt()) << "}";
    return out.str();
}

std::string
ServeDaemon::cmdAdvance(const util::JsonValue &command)
{
    const double seconds = command.numberAt("seconds", 0.0);
    if (seconds <= 0.0)
        return errorReply("advance needs seconds > 0");
    events_.runUntil(events_.now() + seconds);
    std::ostringstream out;
    out << "{\"ok\":true,\"t\":" << util::jsonNumber(events_.now())
        << "}";
    return out.str();
}

std::string
ServeDaemon::cmdObserve()
{
    const auto running = cluster_.runningPods();
    std::map<sim::AppId, size_t> runningByApp;
    for (const sim::PodRef &pod : running)
        ++runningByApp[pod.app];

    std::ostringstream out;
    out << "{\"ok\":true,\"t\":" << util::jsonNumber(events_.now())
        << ",\"nodes\":" << cluster_.nodeCount()
        << ",\"ready_capacity\":"
        << util::jsonNumber(cluster_.readyCapacity())
        << ",\"total_capacity\":"
        << util::jsonNumber(cluster_.totalCapacity())
        << ",\"running\":" << running.size()
        << ",\"pending\":" << cluster_.pendingCount()
        << ",\"apps\":[";
    bool first = true;
    for (const sim::Application &app : cluster_.apps()) {
        if (!first)
            out << ",";
        first = false;
        const auto it = runningByApp.find(app.id);
        out << "{\"id\":" << app.id
            << ",\"name\":" << util::jsonQuote(app.name)
            << ",\"services\":" << app.services.size()
            << ",\"running\":"
            << (it == runningByApp.end() ? 0 : it->second) << "}";
    }
    out << "]}";
    return out.str();
}

std::string
ServeDaemon::cmdPodVerb(const std::string &verb,
                        const util::JsonValue &command)
{
    const util::JsonValue *app = command.field("app");
    const util::JsonValue *ms = command.field("ms");
    if (!app || !app->isNumber() || !ms || !ms->isNumber())
        return errorReply(verb + " needs numeric 'app' and 'ms'");
    sim::PodRef ref;
    ref.app = static_cast<sim::AppId>(app->number);
    ref.ms = static_cast<sim::MsId>(ms->number);
    ref.replica =
        static_cast<uint32_t>(command.numberAt("replica", 0.0));
    if (!cluster_.pod(ref))
        return errorReply("no such pod");

    if (verb == "delete-pod") {
        cluster_.deletePod(ref);
    } else if (verb == "restart-pod") {
        std::optional<sim::NodeId> pinned;
        const util::JsonValue *node = command.field("node");
        if (node && node->isNumber())
            pinned = static_cast<sim::NodeId>(node->number);
        cluster_.startPod(ref, pinned);
    } else { // migrate-pod
        const util::JsonValue *node = command.field("node");
        if (!node || !node->isNumber())
            return errorReply("migrate-pod needs a numeric 'node'");
        cluster_.migratePod(ref,
                            static_cast<sim::NodeId>(node->number));
    }
    return "{\"ok\":true}";
}

std::string
ServeDaemon::cmdStats()
{
    if (!frontend_)
        return errorReply("serving not started");
    std::ostringstream out;
    out << "{\"ok\":true,\"t\":" << util::jsonNumber(events_.now())
        << ",\"offered\":" << frontend_->totalOffered()
        << ",\"served\":" << frontend_->totalServed()
        << ",\"shed\":" << frontend_->totalShed()
        << ",\"failed\":" << frontend_->totalFailed()
        << ",\"admit_level\":" << frontend_->admission().admitLevel()
        << ",\"classes\":[";
    bool first = true;
    for (const ClassReport &rep : frontend_->report()) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"class\":" << util::jsonQuote(rep.meta.label())
            << ",\"criticality\":" << rep.meta.criticality
            << ",\"offered\":" << rep.offered
            << ",\"served\":" << rep.served
            << ",\"shed\":" << rep.shed
            << ",\"failed\":" << rep.failed
            << ",\"p95_ms\":" << util::jsonNumber(rep.p95Ms)
            << ",\"slo_violation_seconds\":"
            << util::jsonNumber(rep.sloViolationSeconds) << "}";
    }
    out << "]}";
    return out.str();
}

std::string
ServeDaemon::cmdMetrics()
{
    std::ostringstream out;
    out << "{\"ok\":true,\"enabled\":"
        << (obs::metricsEnabled() ? "true" : "false")
        << ",\"metrics\":[";
    bool first = true;
    for (const obs::MetricSample &sample :
         obs::Registry::global().snapshot()) {
        if (!first)
            out << ",";
        first = false;
        const char *kind = sample.kind == obs::MetricKind::Counter
                               ? "counter"
                               : sample.kind == obs::MetricKind::Gauge
                                     ? "gauge"
                                     : "histogram";
        out << "{\"name\":" << util::jsonQuote(sample.name)
            << ",\"kind\":\"" << kind << "\""
            << ",\"count\":" << sample.count
            << ",\"value\":" << util::jsonNumber(sample.value);
        if (sample.kind == obs::MetricKind::Histogram) {
            out << ",\"p50\":" << util::jsonNumber(sample.p50)
                << ",\"p90\":" << util::jsonNumber(sample.p90)
                << ",\"p99\":" << util::jsonNumber(sample.p99);
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

} // namespace phoenix::serve
