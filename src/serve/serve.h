/**
 * @file
 * Common types of the serving layer (src/serve): request classes with
 * criticality and SLOs, and the scheme selector shared by the harness,
 * the bench and the phoenixd daemon.
 *
 * The serving layer is the repo's answer to "degradation quality as
 * experienced by live traffic": where the batch benches evaluate
 * static snapshots, src/serve runs the KubeCluster + PhoenixController
 * continuously in sim time and routes a stream of simulated user
 * requests at it. Each request belongs to a *request class* — one
 * RequestType of one application instance — and the class inherits its
 * criticality from the most degradable microservice its required path
 * touches: shedding that service kills the class, so the class is
 * exactly as protected as its weakest required dependency.
 */

#ifndef PHOENIX_SERVE_SERVE_H
#define PHOENIX_SERVE_SERVE_H

#include <string>
#include <vector>

#include "apps/service_app.h"
#include "sim/types.h"

namespace phoenix::serve {

/** Which resilience scheme drives the serving run. */
enum class ServeScheme { Default, PhoenixCost, PhoenixFair };

const char *serveSchemeName(ServeScheme scheme);

/** Per-class service-level objective, evaluated per window. */
struct SloConfig
{
    /** Windowed P95 latency target (ms). */
    double latencyP95Ms = 250.0;
    /** Windowed success-rate target: served / offered. A shed or
     * failed request counts against it — front-door shedding of a
     * class is an SLO violation *for that class*; the point of
     * cooperative degradation is choosing which classes eat it. */
    double availabilityTarget = 0.99;
};

/** One serveable request class. */
struct RequestClass
{
    /** Dense index across the testbed (stream seeds, stats slots). */
    size_t index = 0;
    sim::AppId app = 0;
    std::string appName;
    /** Request-type name; "appName/name" is the metric label. */
    std::string name;
    /** Offered load at multiplier 1.0 (requests per second). */
    double baseRps = 0.0;
    /** max over required path components' criticality: C1 iff every
     * required dependency is C1. */
    sim::Criticality criticality = sim::kC1;
    std::vector<apps::PathComponent> path;
    SloConfig slo;

    std::string label() const { return appName + "/" + name; }
};

/**
 * Derive the request classes of a testbed: one per (app instance,
 * request type), indexed densely in testbed order. SLO latency
 * targets default to 2x the class's nominal healthy path latency
 * (sum of component P95 contributions), floored at 50 ms.
 */
std::vector<RequestClass>
buildRequestClasses(const std::vector<apps::ServiceApp> &serviceApps);

} // namespace phoenix::serve

#endif // PHOENIX_SERVE_SERVE_H
