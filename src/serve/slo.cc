#include "slo.h"

#include <cassert>

#include "util/stats.h"

namespace phoenix::serve {

SloTracker::SloTracker(std::vector<RequestClass> classes,
                       double windowSec)
    : classes_(std::move(classes)),
      windowSec_(windowSec > 0.0 ? windowSec : 1.0),
      windows_(classes_.size()), totals_(classes_.size())
{
}

void
SloTracker::recordServed(size_t classIdx, double latencyMs)
{
    assert(classIdx < classes_.size());
    Window &window = windows_[classIdx];
    Totals &totals = totals_[classIdx];
    ++window.served;
    window.latenciesMs.push_back(latencyMs);
    ++totals.served;
    totals.latencySumMs += latencyMs;
    totals.latenciesMs.push_back(latencyMs);
}

void
SloTracker::recordShed(size_t classIdx)
{
    assert(classIdx < classes_.size());
    ++windows_[classIdx].shed;
    ++totals_[classIdx].shed;
}

void
SloTracker::recordFailed(size_t classIdx)
{
    assert(classIdx < classes_.size());
    ++windows_[classIdx].failed;
    ++totals_[classIdx].failed;
}

double
SloTracker::closeWindow()
{
    double violationSeconds = 0.0;
    for (size_t i = 0; i < classes_.size(); ++i) {
        Window &window = windows_[i];
        Totals &totals = totals_[i];
        ++totals.windows;

        const size_t offered =
            window.served + window.shed + window.failed;
        if (offered > 0) {
            const double successRate =
                static_cast<double>(window.served) /
                static_cast<double>(offered);
            bool ok =
                successRate >= classes_[i].slo.availabilityTarget;
            if (ok && !window.latenciesMs.empty()) {
                const double p95 =
                    util::percentile(window.latenciesMs, 95.0);
                ok = p95 <= classes_[i].slo.latencyP95Ms;
            }
            if (!ok) {
                totals.sloViolationSeconds += windowSec_;
                ++totals.violationWindows;
                violationSeconds += windowSec_;
            }
        }

        window.served = window.shed = window.failed = 0;
        window.latenciesMs.clear(); // keeps capacity
    }
    return violationSeconds;
}

std::vector<ClassReport>
SloTracker::report() const
{
    std::vector<ClassReport> out;
    out.reserve(classes_.size());
    for (size_t i = 0; i < classes_.size(); ++i) {
        const Totals &totals = totals_[i];
        ClassReport rep;
        rep.meta = classes_[i];
        rep.served = totals.served;
        rep.shed = totals.shed;
        rep.failed = totals.failed;
        rep.offered = totals.served + totals.shed + totals.failed;
        rep.p50Ms = util::percentile(totals.latenciesMs, 50.0);
        rep.p95Ms = util::percentile(totals.latenciesMs, 95.0);
        rep.p99Ms = util::percentile(totals.latenciesMs, 99.0);
        rep.meanMs = totals.served == 0
                         ? 0.0
                         : totals.latencySumMs /
                               static_cast<double>(totals.served);
        rep.sloViolationSeconds = totals.sloViolationSeconds;
        rep.windows = totals.windows;
        rep.violationWindows = totals.violationWindows;
        out.push_back(std::move(rep));
    }
    return out;
}

double
SloTracker::violationSeconds(bool critical) const
{
    double total = 0.0;
    for (size_t i = 0; i < classes_.size(); ++i) {
        if ((classes_[i].criticality == sim::kC1) == critical)
            total += totals_[i].sloViolationSeconds;
    }
    return total;
}

} // namespace phoenix::serve
