/**
 * @file
 * phoenixd's engine: a long-running sim daemon driven by a
 * kube-API-like command protocol — one JSON object per line in, one
 * JSON object per line out.
 *
 * The daemon owns an EventQueue + KubeCluster and advances sim time
 * only on command ("advance"), so a driver script fully controls the
 * clock. Commands cover the lifecycle a cluster operator would walk
 * through:
 *
 *   {"cmd":"load-testbed"}                     CloudLab testbed (Fig 4)
 *   {"cmd":"add-nodes","count":5,"capacity":8}
 *   {"cmd":"ingest-manifest","text":"application: a\n..."}
 *   {"cmd":"start-controller","scheme":"PhoenixCost","forecast":true}
 *   {"cmd":"forecast-status"}
 *   {"cmd":"serve-start","duration":600,"shape":"diurnal"}
 *   {"cmd":"inject-scenario","steps":[{"kind":"fail-zone","at":900,"zone":0}]}
 *   {"cmd":"advance","seconds":300}
 *   {"cmd":"observe"}  {"cmd":"stats"}  {"cmd":"metrics"}
 *   {"cmd":"delete-pod","app":0,"ms":2}  {"cmd":"restart-pod",...}
 *   {"cmd":"migrate-pod","app":0,"ms":2,"node":4}
 *   {"cmd":"shutdown"}
 *
 * Manifest ingestion uses the structured parser: well-formed
 * applications are admitted (ids rebased past existing apps), every
 * rejected document is reported with its line and field. Manifest
 * apps get a synthesized request model (one request class per
 * service) so serve-start works on them too.
 *
 * Every reply is a single line: {"ok":true,...} or
 * {"ok":false,"error":"..."}. handleLine() is the testable core; the
 * stdin/stdout REPL in tools/phoenixd.cc is a thin wrapper.
 */

#ifndef PHOENIX_SERVE_DAEMON_H
#define PHOENIX_SERVE_DAEMON_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "kube/kube.h"
#include "serve/frontend.h"
#include "util/json.h"

namespace phoenix::serve {

/** Daemon tunables. */
struct DaemonConfig
{
    kube::KubeConfig kube;
    core::ControllerConfig controller;
    /** Template for serve-start (seed, sigma, admission, window). */
    FrontendConfig frontend;
    uint64_t seed = 42;
    /** Synthesized offered rate per manifest-ingested service. */
    double manifestRps = 5.0;
};

class ServeDaemon
{
  public:
    explicit ServeDaemon(DaemonConfig config = {});

    /** Handle one command line; returns the reply line (no '\n'). */
    std::string handleLine(const std::string &line);

    /** Read commands from @p in until EOF or shutdown, writing one
     * reply line each. Returns the process exit code. */
    int repl(std::istream &in, std::ostream &out);

    bool shuttingDown() const { return shutdown_; }
    sim::SimTime now() const { return events_.now(); }
    kube::KubeCluster &cluster() { return cluster_; }
    const ServeFrontend *frontend() const { return frontend_.get(); }

  private:
    std::string handle(const util::JsonValue &command);

    std::string cmdLoadTestbed(const util::JsonValue &command);
    std::string cmdAddNodes(const util::JsonValue &command);
    std::string cmdIngestManifest(const util::JsonValue &command);
    std::string cmdStartController(const util::JsonValue &command);
    std::string cmdForecastStatus();
    std::string cmdServeStart(const util::JsonValue &command);
    std::string cmdInjectScenario(const util::JsonValue &command);
    std::string cmdAdvance(const util::JsonValue &command);
    std::string cmdObserve();
    std::string cmdPodVerb(const std::string &verb,
                           const util::JsonValue &command);
    std::string cmdStats();
    std::string cmdMetrics();

    DaemonConfig config_;
    sim::EventQueue events_;
    kube::KubeCluster cluster_;
    /** Request models for serve-start (testbed + synthesized). */
    std::vector<apps::ServiceApp> serviceApps_;
    std::unique_ptr<core::PhoenixController> controller_;
    /** Present when start-controller was given "forecast":true. */
    std::unique_ptr<forecast::Forecaster> forecaster_;
    std::unique_ptr<ServeFrontend> frontend_;
    /** Runners must outlive the simulation; one per inject-scenario. */
    std::vector<std::unique_ptr<sim::ScenarioRunner>> runners_;
    sim::AppId nextAppId_ = 0;
    bool shutdown_ = false;
};

} // namespace phoenix::serve

#endif // PHOENIX_SERVE_DAEMON_H
