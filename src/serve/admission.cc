#include "admission.h"

#include <algorithm>
#include <cmath>

namespace phoenix::serve {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config)
{
}

sim::Criticality
AdmissionController::levelFor(double readyFraction) const
{
    const double frac = std::clamp(readyFraction, 0.0, 1.0);
    if (frac >= config_.fullServiceFraction)
        return sim::kLowestCriticality;
    const double span = std::max(config_.fullServiceFraction, 1e-9);
    const int range = sim::kLowestCriticality - sim::kC1;
    const int level =
        sim::kC1 +
        static_cast<int>(std::floor(range * frac / span));
    return std::clamp(level, sim::kC1, sim::kLowestCriticality);
}

void
AdmissionController::observeCapacity(double readyFraction)
{
    if (!config_.enabled)
        return;
    const sim::Criticality raw = levelFor(readyFraction);
    if (raw < admitLevel_) {
        // Capacity dropped: shed immediately.
        admitLevel_ = raw;
    } else if (raw > admitLevel_) {
        // Capacity returned: re-admit only once the fraction clears
        // the new level's threshold by the hysteresis margin.
        const sim::Criticality margin =
            levelFor(readyFraction - config_.hysteresis);
        if (margin > admitLevel_)
            admitLevel_ = margin;
    }
}

void
AdmissionController::observeProjectedCapacity(double projectedFraction)
{
    if (!config_.enabled)
        return;
    // No hysteresis: the forecaster's risk gates already arm/clear
    // with hysteresis, so this maps straight through — the moment a
    // risk clears, full admission resumes.
    forecastLevel_ = levelFor(projectedFraction);
}

void
AdmissionController::setPlannedServices(std::set<uint64_t> plannedUp)
{
    if (!config_.enabled)
        return;
    plannedUp_ = std::move(plannedUp);
    hasPlan_ = true;
}

void
AdmissionController::clearPlan()
{
    plannedUp_.clear();
    hasPlan_ = false;
}

AdmitDecision
AdmissionController::decide(const RequestClass &cls) const
{
    if (!config_.enabled)
        return AdmitDecision::Admit;
    if (hasPlan_) {
        for (const apps::PathComponent &component : cls.path) {
            if (!component.required)
                continue;
            if (!plannedUp_.count(
                    serviceKey(cls.app, component.service)))
                return AdmitDecision::ShedPlan;
        }
    }
    if (cls.criticality > admitLevel_)
        return AdmitDecision::ShedCapacity;
    if (cls.criticality > forecastLevel_)
        return AdmitDecision::ShedForecast;
    return AdmitDecision::Admit;
}

} // namespace phoenix::serve
