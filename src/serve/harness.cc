#include "harness.h"

#include <memory>
#include <optional>

#include "core/controller.h"
#include "core/schemes.h"

namespace phoenix::serve {

ServeResult
runServe(const ServeConfig &config)
{
    // Per-run metric capture (this thread's shard only; exact under
    // the exp engine's one-cell-one-thread contract).
    std::optional<obs::ThreadMetricDelta> delta;
    if (obs::metricsEnabled())
        delta.emplace();

    sim::EventQueue events;
    kube::KubeConfig kubeConfig = config.kube;
    kubeConfig.validateInvariants = true;
    kube::KubeCluster cluster(events, kubeConfig);

    const apps::CloudLabTestbed testbed =
        apps::makeCloudLabTestbed(config.testbed);
    for (size_t n = 0; n < testbed.config.nodeCount; ++n)
        cluster.addNode(testbed.config.cpusPerNode);
    for (const auto &sapp : testbed.serviceApps)
        cluster.addApplication(sapp.app);

    std::unique_ptr<core::PhoenixController> controller;
    std::unique_ptr<forecast::Forecaster> forecaster;
    if (config.scheme != ServeScheme::Default) {
        const core::Objective objective =
            config.scheme == ServeScheme::PhoenixCost
                ? core::Objective::Cost
                : core::Objective::Fair;
        controller = std::make_unique<core::PhoenixController>(
            events, cluster,
            std::make_unique<core::PhoenixScheme>(objective));
        if (config.forecast) {
            forecast::ForecastConfig forecastConfig =
                config.forecastConfig;
            forecastConfig.fallbackZoneCount =
                config.scenarioOptions.zoneCount;
            forecaster = std::make_unique<forecast::Forecaster>(
                cluster,
                [objective] {
                    return std::make_unique<core::PhoenixScheme>(
                        objective);
                },
                forecastConfig);
            controller->attachForecast(forecaster.get());
        }
    }

    sim::ScenarioRunner runner(events, cluster, config.scenario,
                               config.scenarioOptions);

    FrontendConfig frontendConfig = config.frontend;
    frontendConfig.startAt = config.warmupSec;
    frontendConfig.endAt = config.endTime;
    ServeFrontend frontend(events, cluster, testbed.serviceApps,
                           frontendConfig, controller.get(),
                           forecaster.get());

    events.runUntil(config.endTime);

    ServeResult result;
    result.classes = frontend.report();
    result.offered = frontend.totalOffered();
    result.served = frontend.totalServed();
    result.shed = frontend.totalShed();
    result.failed = frontend.totalFailed();
    result.firstFailureAt = runner.firstFailureAt();
    result.invariantViolations = cluster.invariantViolations();
    if (controller)
        result.replans = controller->history().size();
    if (forecaster)
        result.forecast = forecaster->counters();

    size_t criticalOffered = 0;
    size_t criticalServed = 0;
    for (const ClassReport &rep : result.classes) {
        if (rep.meta.criticality == sim::kC1) {
            criticalOffered += rep.offered;
            criticalServed += rep.served;
            result.criticalViolationSeconds += rep.sloViolationSeconds;
        } else {
            result.nonCriticalViolationSeconds +=
                rep.sloViolationSeconds;
        }
    }
    result.criticalGoodput =
        criticalOffered == 0
            ? 1.0
            : static_cast<double>(criticalServed) /
                  static_cast<double>(criticalOffered);
    result.totalGoodput =
        result.offered == 0
            ? 1.0
            : static_cast<double>(result.served) /
                  static_cast<double>(result.offered);
    result.shedFraction =
        result.offered == 0
            ? 0.0
            : static_cast<double>(result.shed) /
                  static_cast<double>(result.offered);

    if (delta)
        result.obsMetrics = delta->finish();
    return result;
}

} // namespace phoenix::serve
