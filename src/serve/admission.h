/**
 * @file
 * Criticality-aware admission control for the serving layer — the
 * "cooperative" half of cooperative graceful degradation at the
 * request level.
 *
 * Two signals gate admission:
 *
 *  - **Capacity level**: the ready-capacity fraction maps to a maximum
 *    admitted criticality. At full capacity everything is admitted; as
 *    capacity drops, progressively more degradable classes (higher
 *    criticality numbers) are shed at the front door instead of being
 *    sent into a cluster that cannot serve them. A small hysteresis
 *    margin keeps the level from flapping around a threshold.
 *
 *  - **Planner target** (cooperative tie-in): after every replan the
 *    controller's planned target state is projected to the set of
 *    planned-up services (quorum satisfied in the planned assignment).
 *    A class whose required path touches a service the planner chose
 *    to sacrifice is shed fail-fast — the planner already decided that
 *    class cannot be served, so making its users wait for a timeout
 *    only wastes capacity. Default (no controller, no plan) never
 *    sheds on this signal — that asymmetry is the experiment.
 *
 *  - **Forecast level** (predictive tie-in): the forecast subsystem's
 *    projected capacity fraction maps through the same level function
 *    and gates admission alongside the observed level, so the front
 *    door starts shedding degradable classes *before* the capacity
 *    cliff instead of after it. No extra hysteresis here — the
 *    forecaster's risk gates already hysterize the signal.
 */

#ifndef PHOENIX_SERVE_ADMISSION_H
#define PHOENIX_SERVE_ADMISSION_H

#include <cstdint>
#include <set>

#include "serve/serve.h"

namespace phoenix::serve {

/** Admission-control tunables. */
struct AdmissionConfig
{
    /** Master switch; disabled = admit everything (the Default
     * baseline's behaviour). */
    bool enabled = true;
    /** Ready-capacity fraction at/above which every class is
     * admitted. Below it the admitted criticality degrades linearly
     * down to C1-only at zero capacity. */
    double fullServiceFraction = 0.95;
    /** Capacity-fraction margin required before re-admitting classes
     * after a level drop (anti-flap). */
    double hysteresis = 0.03;
};

/** Outcome of one admission decision. */
enum class AdmitDecision { Admit, ShedCapacity, ShedPlan, ShedForecast };

class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionConfig config = {});

    /** Feed a ready-capacity observation (fraction in [0, 1]). */
    void observeCapacity(double readyFraction);

    /**
     * Feed the forecast's projected capacity fraction: classes above
     * the implied level are shed (ShedForecast) even while observed
     * capacity still admits them. 1.0 (no anticipated risk) disables
     * the gate.
     */
    void observeProjectedCapacity(double projectedFraction);

    /** Feed the planner's target: the set of serviceKey()s whose
     * quorum the planned assignment satisfies. */
    void setPlannedServices(std::set<uint64_t> plannedUp);

    /** Forget the plan (plan-based shedding stops). */
    void clearPlan();

    AdmitDecision decide(const RequestClass &cls) const;

    /** Largest criticality number currently admitted. */
    sim::Criticality admitLevel() const { return admitLevel_; }
    /** Largest criticality the forecast gate admits. */
    sim::Criticality forecastLevel() const { return forecastLevel_; }
    bool hasPlan() const { return hasPlan_; }

    static uint64_t serviceKey(sim::AppId app, sim::MsId ms)
    {
        return (static_cast<uint64_t>(app) << 32) |
               static_cast<uint64_t>(ms);
    }

  private:
    sim::Criticality levelFor(double readyFraction) const;

    AdmissionConfig config_;
    sim::Criticality admitLevel_ = sim::kLowestCriticality;
    /** Forecast gate; kLowestCriticality = no anticipated risk. */
    sim::Criticality forecastLevel_ = sim::kLowestCriticality;
    std::set<uint64_t> plannedUp_;
    bool hasPlan_ = false;
};

} // namespace phoenix::serve

#endif // PHOENIX_SERVE_ADMISSION_H
