#include "frontend.h"

#include <algorithm>
#include <cmath>

namespace phoenix::serve {

namespace {

/** Same congestion shape as the closed-form model (service_app.cc)
 * and the batch load generator (loadgen.cc). */
double
congestionFactor(double utilization)
{
    const double rho = std::clamp(utilization, 0.0, 0.99);
    if (rho <= 0.5)
        return 1.0;
    return 1.0 + 0.0025 * (rho - 0.5) / (1.0 - rho);
}

/** Closed-loop pacing charge for a request that failed inside the
 * cluster (the user waits out a timeout before thinking again). */
constexpr double kFailPenaltySec = 1.0;

/** Replica-concentration cap: a service running at quorum never looks
 * more than 4x slower than at full replica count. */
constexpr double kMaxConcentration = 4.0;

} // namespace

ServeFrontend::ServeFrontend(
    sim::EventQueue &events, kube::KubeCluster &cluster,
    const std::vector<apps::ServiceApp> &serviceApps,
    FrontendConfig config, core::PhoenixController *controller,
    forecast::Forecaster *forecaster)
    : events_(events), cluster_(cluster), config_(std::move(config)),
      controller_(controller), forecaster_(forecaster),
      tracker_(buildRequestClasses(serviceApps), config_.windowSec),
      admission_(config_.admission)
{
    p95Factor_ = std::exp(1.645 * config_.latencySigma);
    lastRefreshAt_ = config_.startAt;

    for (const apps::ServiceApp &sapp : serviceApps) {
        for (const sim::Microservice &ms : sapp.app.services) {
            ServiceState state;
            state.replicas = ms.replicas > 1 ? ms.replicas : 1;
            state.quorum = ms.quorumCount();
            services_[AdmissionController::serviceKey(sapp.app.id,
                                                      ms.id)] = state;
        }
    }

    auto &registry = obs::Registry::global();
    for (const RequestClass &cls : tracker_.classes()) {
        obs_.requestsByClass.push_back(
            &registry.counter("serve.requests", "class", cls.label()));
        obs_.latencyByClass.push_back(&registry.histogram(
            "serve.latency_ms", "class", cls.label()));
    }
    obs_.served = &registry.counter("serve.served");
    obs_.shed = &registry.counter("serve.shed");
    obs_.shedCapacity =
        &registry.counter("serve.shed", "reason", "capacity");
    obs_.shedPlan = &registry.counter("serve.shed", "reason", "plan");
    obs_.shedForecast =
        &registry.counter("serve.shed", "reason", "forecast");
    obs_.failed = &registry.counter("serve.failed");
    obs_.sloViolationSeconds =
        &registry.counter("serve.slo_violation_seconds");

    // Per-class streams: independent seeds via cellSeed so no class's
    // draws perturb another's, and routing outcomes (which consume
    // latency draws) never shift arrival instants.
    for (const RequestClass &cls : tracker_.classes()) {
        apps::OpenLoopConfig stream;
        stream.baseRps = cls.baseRps * config_.rpsScale;
        stream.curve = config_.curve;
        stream.seed = util::cellSeed(config_.seed, cls.index);
        arrivals_.emplace_back(std::move(stream));
        latencyRng_.emplace_back(
            util::cellSeed(config_.seed, cls.index, 0x1a7e));
    }

    if (controller_) {
        controller_->setReplanObserver(
            [this](const core::SchemeResult &result,
                   const core::ReplanRecord &) {
                // Project the planned assignment to planned-up
                // services: quorum satisfied in the planned state.
                std::map<uint64_t, int> plannedReplicas;
                for (const auto &[pod, node] :
                     result.pack.state.assignment()) {
                    (void)node;
                    ++plannedReplicas[AdmissionController::serviceKey(
                        pod.app, pod.ms)];
                }
                std::set<uint64_t> planned;
                for (const auto &[key, state] : services_) {
                    auto it = plannedReplicas.find(key);
                    if (it != plannedReplicas.end() &&
                        it->second >= state.quorum)
                        planned.insert(key);
                }
                admission_.setPlannedServices(std::move(planned));
            });
    }

    // Arm the refresh and window chains, then the arrival streams —
    // at a shared instant the refresh runs first (FIFO tie-break), so
    // requests see that instant's ready state.
    events_.schedule(config_.startAt, [this] { refresh(); });
    if (config_.startAt + config_.windowSec <=
        config_.endAt + 1e-9) {
        events_.schedule(config_.startAt + config_.windowSec,
                         [this] { windowTick(); });
    }
    armArrivals();
}

void
ServeFrontend::armArrivals()
{
    const size_t count = tracker_.classCount();
    if (!config_.closedLoop) {
        for (size_t i = 0; i < count; ++i)
            scheduleNextArrival(i);
        return;
    }
    const double meanThink =
        0.5 * (std::max(config_.thinkMinSec, 0.0) +
               std::max(config_.thinkMaxSec, config_.thinkMinSec));
    apps::ClosedLoopConfig thinkCfg;
    thinkCfg.thinkMinSec = config_.thinkMinSec;
    thinkCfg.thinkMaxSec = config_.thinkMaxSec;
    for (size_t i = 0; i < count; ++i) {
        thinkRng_.emplace_back(
            util::cellSeed(config_.seed, i, 0x7417));
        // Size the population so the healthy-cluster offered rate
        // approximates the class's open-loop rate.
        const double rps =
            tracker_.classes()[i].baseRps * config_.rpsScale;
        const auto users = static_cast<size_t>(
            std::max<long long>(1, std::llround(rps * meanThink)));
        for (size_t u = 0; u < users; ++u) {
            // Staggered starts: one think-time draw per user.
            const double start =
                config_.startAt +
                apps::sampleThinkTime(thinkRng_[i], thinkCfg);
            if (start <= config_.endAt)
                armClosedLoopUser(i, start);
        }
    }
}

void
ServeFrontend::scheduleNextArrival(size_t classIdx)
{
    const double from =
        std::max(events_.now(), config_.startAt);
    const double at = arrivals_[classIdx].next(from);
    if (at < 0.0 || at > config_.endAt)
        return;
    events_.schedule(at, [this, classIdx] {
        handleRequest(classIdx);
        scheduleNextArrival(classIdx);
    });
}

void
ServeFrontend::armClosedLoopUser(size_t classIdx, double at)
{
    events_.schedule(at, [this, classIdx] {
        const double serviceSec = handleRequest(classIdx);
        apps::ClosedLoopConfig thinkCfg;
        thinkCfg.thinkMinSec = config_.thinkMinSec;
        thinkCfg.thinkMaxSec = config_.thinkMaxSec;
        const double next =
            events_.now() + serviceSec +
            apps::sampleThinkTime(thinkRng_[classIdx], thinkCfg);
        if (next <= config_.endAt)
            armClosedLoopUser(classIdx, next);
    });
}

double
ServeFrontend::handleRequest(size_t classIdx)
{
    const RequestClass &cls = tracker_.classes()[classIdx];
    PHOENIX_COUNT(*obs_.requestsByClass[classIdx], 1);
    ++offeredSinceRefresh_;

    const AdmitDecision decision = admission_.decide(cls);
    if (decision != AdmitDecision::Admit) {
        tracker_.recordShed(classIdx);
        ++shed_;
        PHOENIX_COUNT(*obs_.shed, 1);
        switch (decision) {
          case AdmitDecision::ShedCapacity:
            PHOENIX_COUNT(*obs_.shedCapacity, 1);
            break;
          case AdmitDecision::ShedPlan:
            PHOENIX_COUNT(*obs_.shedPlan, 1);
            break;
          case AdmitDecision::ShedForecast:
            PHOENIX_COUNT(*obs_.shedForecast, 1);
            break;
          case AdmitDecision::Admit:
            break;
        }
        // Fail-fast: the user is told immediately, no service time.
        return 0.0;
    }

    util::Rng &rng = latencyRng_[classIdx];
    double totalMs = 0.0;
    bool ok = true;
    for (const apps::PathComponent &component : cls.path) {
        const auto it = services_.find(
            AdmissionController::serviceKey(cls.app,
                                            component.service));
        const ServiceState *svc =
            it == services_.end() ? nullptr : &it->second;
        const bool up = svc && svc->ready >= svc->quorum;
        if (!up) {
            if (component.required) {
                ok = false;
                break;
            }
            continue; // optional component degrades silently
        }
        if (component.latencyMs > 0.0) {
            const double median =
                component.latencyMs * congestion_ / p95Factor_;
            const double concentration = std::clamp(
                static_cast<double>(svc->replicas) /
                    static_cast<double>(std::max(svc->ready, 1)),
                1.0, kMaxConcentration);
            totalMs += median * concentration *
                       rng.logNormal(0.0, config_.latencySigma);
        }
    }

    if (!ok) {
        tracker_.recordFailed(classIdx);
        ++failed_;
        PHOENIX_COUNT(*obs_.failed, 1);
        return kFailPenaltySec;
    }

    tracker_.recordServed(classIdx, totalMs);
    ++served_;
    PHOENIX_COUNT(*obs_.served, 1);
    PHOENIX_OBSERVE(*obs_.latencyByClass[classIdx], totalMs);
    return totalMs / 1000.0;
}

void
ServeFrontend::refresh()
{
    for (auto &[key, state] : services_) {
        (void)key;
        state.ready = 0;
    }
    for (const sim::PodRef &pod : cluster_.runningPods()) {
        const auto it = services_.find(
            AdmissionController::serviceKey(pod.app, pod.ms));
        if (it != services_.end())
            ++it->second.ready;
    }
    // Congestion is a node-local signal (real queueing on real
    // utilization), not an API-server readout — use live state so an
    // API outage doesn't freeze the load model.
    congestion_ =
        congestionFactor(cluster_.liveState().utilization());
    const double total = cluster_.totalCapacity();
    admission_.observeCapacity(
        total > 0.0 ? cluster_.readyCapacity() / total : 0.0);

    if (forecaster_) {
        // Feed the offered request rate since the last refresh and
        // read back the projected capacity fraction: the admission
        // gate then sheds degradable classes ahead of an anticipated
        // cliff instead of waiting for the observed level to drop.
        const double elapsed = events_.now() - lastRefreshAt_;
        if (elapsed > 0.0) {
            forecaster_->observeLoad(
                static_cast<double>(offeredSinceRefresh_) / elapsed);
        }
        offeredSinceRefresh_ = 0;
        lastRefreshAt_ = events_.now();
        admission_.observeProjectedCapacity(
            forecaster_->projectedCapacityFraction());
    }

    const double next = events_.now() + config_.refreshSec;
    if (next <= config_.endAt + 1e-9)
        events_.schedule(next, [this] { refresh(); });
}

void
ServeFrontend::windowTick()
{
    const double violationSeconds = tracker_.closeWindow();
    if (violationSeconds > 0.0) {
        PHOENIX_COUNT(*obs_.sloViolationSeconds,
                      static_cast<uint64_t>(
                          std::llround(violationSeconds)));
    }
    PHOENIX_TRACE_INSTANT(
        "serve", "window", events_.now(),
        (obs::TraceArg{"admit_level",
                       static_cast<double>(admission_.admitLevel())}),
        (obs::TraceArg{"violation_seconds", violationSeconds}),
        (obs::TraceArg{"shed", static_cast<double>(shed_)}));

    const double next = events_.now() + config_.windowSec;
    if (next <= config_.endAt + 1e-9)
        events_.schedule(next, [this] { windowTick(); });
}

} // namespace phoenix::serve
