/**
 * @file
 * Umbrella header + zero-cost-when-disabled instrumentation macros.
 *
 * Instrumented code uses these macros rather than calling the tracer
 * or registry directly:
 *
 *  - with -DPHOENIX_OBS_DISABLED the macros compile to nothing, so a
 *    build can prove the instrumentation has zero cost;
 *  - otherwise each expands to a relaxed-atomic enabled check before
 *    touching anything — one predictable branch on the disabled path,
 *    no allocation, no locks (test_hotpath's zero-allocation
 *    assertions and the BENCH_fig8b baseline run with obs disabled
 *    and are unaffected).
 *
 * Counter handles (obs::Counter&) are resolved once at setup time
 * (constructors, static init), never on the hot path; category, name,
 * and arg-name strings must be literals.
 */

#ifndef PHOENIX_OBS_OBS_H
#define PHOENIX_OBS_OBS_H

#include "obs/registry.h"
#include "obs/trace.h"

namespace phoenix::obs {

/** Convenience: find-or-create a counter in the global registry. */
inline Counter &
counter(const std::string &name)
{
    return Registry::global().counter(name);
}

inline Gauge &
gauge(const std::string &name)
{
    return Registry::global().gauge(name);
}

inline LogHistogram &
histogram(const std::string &name)
{
    return Registry::global().histogram(name);
}

} // namespace phoenix::obs

#ifdef PHOENIX_OBS_DISABLED

#define PHOENIX_COUNT(handle, n) do { } while (0)
#define PHOENIX_OBSERVE(handle, v) do { } while (0)
#define PHOENIX_GAUGE_SET(handle, v) do { } while (0)
#define PHOENIX_TRACE_COMPLETE(...) do { } while (0)
#define PHOENIX_TRACE_INSTANT(...) do { } while (0)
#define PHOENIX_TRACE_ASYNC_BEGIN(...) do { } while (0)
#define PHOENIX_TRACE_ASYNC_END(...) do { } while (0)

#else

/** Bump a pre-resolved obs::Counter& by n. */
#define PHOENIX_COUNT(handle, n)                                          \
    do {                                                                  \
        if (::phoenix::obs::metricsEnabled())                             \
            (handle).add(n);                                              \
    } while (0)

/** Record a sample into a pre-resolved obs::LogHistogram&. */
#define PHOENIX_OBSERVE(handle, v)                                        \
    do {                                                                  \
        if (::phoenix::obs::metricsEnabled())                             \
            (handle).observe(v);                                          \
    } while (0)

/** Set a pre-resolved obs::Gauge&. */
#define PHOENIX_GAUGE_SET(handle, v)                                      \
    do {                                                                  \
        if (::phoenix::obs::metricsEnabled())                             \
            (handle).set(v);                                              \
    } while (0)

/** Complete span: cat/name literals, sim ts + dur (seconds), then up
 * to three obs::TraceArg{...}. */
#define PHOENIX_TRACE_COMPLETE(...)                                       \
    do {                                                                  \
        if (::phoenix::obs::traceEnabled())                               \
            ::phoenix::obs::Tracer::global().complete(__VA_ARGS__);       \
    } while (0)

/** Instant event at a sim timestamp. */
#define PHOENIX_TRACE_INSTANT(...)                                        \
    do {                                                                  \
        if (::phoenix::obs::traceEnabled())                               \
            ::phoenix::obs::Tracer::global().instant(__VA_ARGS__);        \
    } while (0)

/** Async (id-matched) span open/close — sim-time spans whose end is
 * not known at the start (controller replan -> recovery). */
#define PHOENIX_TRACE_ASYNC_BEGIN(...)                                    \
    do {                                                                  \
        if (::phoenix::obs::traceEnabled())                               \
            ::phoenix::obs::Tracer::global().asyncBegin(__VA_ARGS__);     \
    } while (0)

#define PHOENIX_TRACE_ASYNC_END(...)                                      \
    do {                                                                  \
        if (::phoenix::obs::traceEnabled())                               \
            ::phoenix::obs::Tracer::global().asyncEnd(__VA_ARGS__);       \
    } while (0)

#endif // PHOENIX_OBS_DISABLED

#endif // PHOENIX_OBS_OBS_H
