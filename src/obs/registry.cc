#include "registry.h"

#include <algorithm>
#include <cmath>

namespace phoenix::obs {

namespace {

std::atomic<bool> g_metricsEnabled{false};
std::atomic<size_t> g_nextShard{0};

/** CAS-loop double accumulation (atomic<double>::fetch_add is not
 * guaranteed lock-free everywhere). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

std::atomic<uint64_t> g_gaugeSeq{0};

} // namespace

bool
metricsEnabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool enabled)
{
    g_metricsEnabled.store(enabled, std::memory_order_relaxed);
}

size_t
threadShard()
{
    thread_local const size_t shard =
        g_nextShard.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
    return shard;
}

// ---- Counter ------------------------------------------------------

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (auto &shard : shards_)
        shard.value.store(0, std::memory_order_relaxed);
}

// ---- Gauge --------------------------------------------------------

void
Gauge::set(double value)
{
    if (!metricsEnabled())
        return;
    Slot &slot = shards_[threadShard()];
    slot.value.store(value, std::memory_order_relaxed);
    slot.seq.store(g_gaugeSeq.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}

void
Gauge::add(double delta)
{
    if (!metricsEnabled())
        return;
    Slot &slot = shards_[threadShard()];
    atomicAdd(slot.value, delta);
    slot.seq.store(g_gaugeSeq.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}

double
Gauge::value() const
{
    double value = 0.0;
    uint64_t best = 0;
    for (const auto &slot : shards_) {
        const uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq > best) {
            best = seq;
            value = slot.value.load(std::memory_order_relaxed);
        }
    }
    return value;
}

void
Gauge::reset()
{
    for (auto &slot : shards_) {
        slot.value.store(0.0, std::memory_order_relaxed);
        slot.seq.store(0, std::memory_order_relaxed);
    }
}

// ---- LogHistogram -------------------------------------------------

size_t
LogHistogram::bucketIndex(double value)
{
    if (!(value > 0.0)) // <= 0 and NaN: underflow bucket
        return 0;
    int exp = 0;
    // frexp: value = m * 2^exp with m in [0.5, 1) => rescale to [1, 2).
    const double m = std::frexp(value, &exp) * 2.0;
    const int octave = exp - 1 - kMinExp;
    if (octave < 0)
        return 0; // below range: underflow
    if (octave >= kOctaves)
        return kBuckets; // above range: clamp to the top bucket
    int sub = static_cast<int>((m - 1.0) * kSubBuckets);
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    // +1 skips the underflow bucket at index 0.
    return 1 + static_cast<size_t>(octave) * kSubBuckets +
           static_cast<size_t>(sub);
}

double
LogHistogram::bucketMidpoint(size_t index)
{
    if (index == 0)
        return 0.0;
    size_t top = index - 1;
    if (top >= kBuckets)
        top = kBuckets - 1;
    const int octave = static_cast<int>(top / kSubBuckets);
    const int sub = static_cast<int>(top % kSubBuckets);
    const double base = std::ldexp(1.0, kMinExp + octave);
    const double width = base / kSubBuckets;
    return base + width * (static_cast<double>(sub) + 0.5);
}

std::atomic<uint64_t> *
LogHistogram::bucketsFor(Shard &shard)
{
    std::atomic<uint64_t> *buckets =
        shard.buckets.load(std::memory_order_acquire);
    if (buckets)
        return buckets;
    // One allocation per touching thread, ever; later observes are
    // allocation-free.
    auto fresh = std::make_unique<std::atomic<uint64_t>[]>(kBuckets + 1);
    for (size_t i = 0; i <= kBuckets; ++i)
        fresh[i].store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(allocMutex_);
    buckets = shard.buckets.load(std::memory_order_acquire);
    if (buckets)
        return buckets;
    buckets = fresh.get();
    owned_.push_back(std::move(fresh));
    shard.buckets.store(buckets, std::memory_order_release);
    return buckets;
}

void
LogHistogram::observe(double value)
{
    if (!metricsEnabled())
        return;
    Shard &shard = shards_[threadShard()];
    std::atomic<uint64_t> *buckets = bucketsFor(shard);
    buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    if (std::isfinite(value))
        atomicAdd(shard.sum, value);
}

uint64_t
LogHistogram::count() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

double
LogHistogram::sum() const
{
    double total = 0.0;
    for (const auto &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

uint64_t
LogHistogram::thisThreadCount() const
{
    return shards_[threadShard()].count.load(std::memory_order_relaxed);
}

std::vector<uint64_t>
LogHistogram::mergedBuckets() const
{
    std::vector<uint64_t> merged(kBuckets + 1, 0);
    for (const auto &shard : shards_) {
        const std::atomic<uint64_t> *buckets =
            shard.buckets.load(std::memory_order_acquire);
        if (!buckets)
            continue;
        for (size_t i = 0; i <= kBuckets; ++i)
            merged[i] += buckets[i].load(std::memory_order_relaxed);
    }
    return merged;
}

double
LogHistogram::percentile(double q) const
{
    const std::vector<uint64_t> merged = mergedBuckets();
    uint64_t total = 0;
    for (uint64_t c : merged)
        total += c;
    if (total == 0)
        return -1.0;
    q = std::clamp(q, 0.0, 100.0);
    // Nearest rank: the k-th smallest with k = ceil(q/100 * total),
    // at least 1.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
        seen += merged[i];
        if (seen >= rank)
            return bucketMidpoint(i);
    }
    return bucketMidpoint(kBuckets);
}

void
LogHistogram::reset()
{
    for (auto &shard : shards_) {
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0.0, std::memory_order_relaxed);
        std::atomic<uint64_t> *buckets =
            shard.buckets.load(std::memory_order_acquire);
        if (!buckets)
            continue;
        for (size_t i = 0; i <= kBuckets; ++i)
            buckets[i].store(0, std::memory_order_relaxed);
    }
}

// ---- Registry -----------------------------------------------------

Registry &
Registry::global()
{
    static Registry *instance = new Registry();
    return *instance;
}

std::string
Registry::labeled(const std::string &family, const std::string &labelKey,
                  const std::string &labelValue)
{
    return family + "{" + labelKey + "=" + labelValue + "}";
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Counter &
Registry::counter(const std::string &family, const std::string &labelKey,
                  const std::string &labelValue)
{
    return counter(labeled(family, labelKey, labelValue));
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LogHistogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<LogHistogram>();
    return *slot;
}

LogHistogram &
Registry::histogram(const std::string &family,
                    const std::string &labelKey,
                    const std::string &labelValue)
{
    return histogram(labeled(family, labelKey, labelValue));
}

std::vector<MetricSample>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> samples;
    samples.reserve(counters_.size() + gauges_.size() +
                    histograms_.size());
    for (const auto &[name, counter] : counters_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricKind::Counter;
        sample.count = counter->value();
        sample.value = static_cast<double>(sample.count);
        samples.push_back(std::move(sample));
    }
    for (const auto &[name, gauge] : gauges_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricKind::Gauge;
        sample.value = gauge->value();
        samples.push_back(std::move(sample));
    }
    for (const auto &[name, histogram] : histograms_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricKind::Histogram;
        sample.count = histogram->count();
        sample.value = histogram->sum();
        sample.p50 = histogram->percentile(50.0);
        sample.p90 = histogram->percentile(90.0);
        sample.p99 = histogram->percentile(99.0);
        samples.push_back(std::move(sample));
    }
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return samples;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_) {
        (void)name;
        counter->reset();
    }
    for (auto &[name, gauge] : gauges_) {
        (void)name;
        gauge->reset();
    }
    for (auto &[name, histogram] : histograms_) {
        (void)name;
        histogram->reset();
    }
}

// ---- ThreadMetricDelta -------------------------------------------

ThreadMetricDelta::ThreadMetricDelta()
{
    Registry &registry = Registry::global();
    std::lock_guard<std::mutex> lock(registry.mutex_);
    for (const auto &[name, counter] : registry.counters_) {
        const uint64_t value = counter->thisThreadValue();
        if (value != 0)
            start_[name] = static_cast<double>(value);
    }
    for (const auto &[name, histogram] : registry.histograms_) {
        const uint64_t value = histogram->thisThreadCount();
        if (value != 0)
            start_[name + ".count"] = static_cast<double>(value);
    }
}

std::vector<std::pair<std::string, double>>
ThreadMetricDelta::finish() const
{
    Registry &registry = Registry::global();
    std::vector<std::pair<std::string, double>> deltas;
    std::lock_guard<std::mutex> lock(registry.mutex_);
    auto startOf = [this](const std::string &name) {
        auto it = start_.find(name);
        return it == start_.end() ? 0.0 : it->second;
    };
    for (const auto &[name, counter] : registry.counters_) {
        const double delta =
            static_cast<double>(counter->thisThreadValue()) -
            startOf(name);
        if (delta != 0.0)
            deltas.emplace_back(name, delta);
    }
    for (const auto &[name, histogram] : registry.histograms_) {
        const std::string key = name + ".count";
        const double delta =
            static_cast<double>(histogram->thisThreadCount()) -
            startOf(key);
        if (delta != 0.0)
            deltas.emplace_back(key, delta);
    }
    // map iteration is already name-sorted per kind; merge-sort the
    // two runs into one deterministic order.
    std::sort(deltas.begin(), deltas.end());
    return deltas;
}

} // namespace phoenix::obs
