/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * log-bucketed histograms with per-thread sharded storage.
 *
 * Every metric stores its state in kMaxShards cache-line-padded slots
 * indexed by a per-thread shard id, so hot-path updates are a single
 * relaxed atomic op on a thread-private line — lock-free, wait-free,
 * and allocation-free (histograms allocate their bucket array once per
 * touching thread, then never again). The registry mutex guards only
 * registration and snapshotting, never updates.
 *
 * Determinism: counter and histogram merges are integer sums over
 * shards, so a snapshot is independent of thread schedule; gauges
 * resolve to the last write by a global sequence number. Per-cell
 * capture (ThreadMetricDelta) reads only the calling thread's shard —
 * exact for the exp engine, where one sweep cell runs start-to-finish
 * on one pool thread.
 *
 * The sketch bound: a LogHistogram subdivides each power-of-two octave
 * into S linear sub-buckets and reports bucket midpoints, so any
 * reported quantile is within a relative error of 1/(2S) of the exact
 * nearest-rank sample value (default S = 32: <= 1.5625%). The bound is
 * asserted against util::percentile by Obs.SketchErrorBound.
 */

#ifndef PHOENIX_OBS_REGISTRY_H
#define PHOENIX_OBS_REGISTRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace phoenix::obs {

/** Global metrics switch; metrics record only while enabled. */
bool metricsEnabled();
void setMetricsEnabled(bool enabled);

/** Per-thread shard slot (threads beyond kMaxShards share slots;
 * updates stay correct, per-thread capture does not — the exp pool
 * caps well below this). */
constexpr size_t kMaxShards = 64;

/** This thread's shard index (assigned once, round-robin). */
size_t threadShard();

namespace detail {
struct alignas(64) CounterShard
{
    std::atomic<uint64_t> value{0};
};
} // namespace detail

/** Monotone event counter. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        shards_[threadShard()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    /** Sum over all shards (schedule-independent). */
    uint64_t value() const;

    /** This thread's shard only (per-cell capture). */
    uint64_t
    thisThreadValue() const
    {
        return shards_[threadShard()].value.load(
            std::memory_order_relaxed);
    }

    void reset();

  private:
    std::array<detail::CounterShard, kMaxShards> shards_;
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value);
    void add(double delta);

    /** The most recent set()/add() result, resolved by a global
     * write sequence (deterministic given a deterministic writer). */
    double value() const;

    void reset();

  private:
    struct alignas(64) Slot
    {
        std::atomic<double> value{0.0};
        std::atomic<uint64_t> seq{0};
    };
    std::array<Slot, kMaxShards> shards_;
};

/**
 * HDR-style log-bucketed sketch: kOctaves power-of-two octaves, each
 * split into kSubBuckets linear sub-buckets. Values below the smallest
 * representable magnitude (or <= 0, or NaN) land in a dedicated
 * underflow bucket represented as 0; values above the range clamp into
 * the top bucket.
 */
class LogHistogram
{
  public:
    /** Sub-buckets per octave: relative error <= 1/(2*kSubBuckets). */
    static constexpr int kSubBuckets = 32;
    /** Smallest tracked octave: 2^kMinExp (~9.3e-10). */
    static constexpr int kMinExp = -30;
    /** Octave count: covers up to 2^(kMinExp+kOctaves) (~1.8e10). */
    static constexpr int kOctaves = 64;
    static constexpr size_t kBuckets =
        static_cast<size_t>(kOctaves) * kSubBuckets;

    /** Guaranteed relative quantile error bound. */
    static constexpr double kRelativeErrorBound =
        1.0 / (2.0 * kSubBuckets);

    void observe(double value);

    /** Total observations (all shards). */
    uint64_t count() const;
    /** Sum of observed values (all shards; fp sum in shard order). */
    double sum() const;

    /**
     * Nearest-rank quantile from the merged buckets: the midpoint of
     * the bucket holding the ceil(q/100 * count)-th smallest
     * observation. q clamps to [0, 100]; returns -1 when empty.
     * Underflow observations report 0.
     */
    double percentile(double q) const;

    /** Merged bucket counts (underflow bucket first). */
    std::vector<uint64_t> mergedBuckets() const;

    /** This thread's observation count (per-cell capture). */
    uint64_t thisThreadCount() const;

    void reset();

    /** Bucket index for a value (exposed for the error-bound test). */
    static size_t bucketIndex(double value);
    /** Midpoint of bucket @p index in value space. */
    static double bucketMidpoint(size_t index);

  private:
    struct Shard
    {
        std::atomic<uint64_t> count{0};
        std::atomic<double> sum{0.0};
        /** Lazily installed bucket array (one alloc per thread). */
        std::atomic<std::atomic<uint64_t> *> buckets{nullptr};
    };

    std::atomic<uint64_t> *bucketsFor(Shard &shard);

    std::array<Shard, kMaxShards> shards_;
    /** Owns the lazily created bucket arrays. */
    std::mutex allocMutex_;
    std::vector<std::unique_ptr<std::atomic<uint64_t>[]>> owned_;
};

/** Metric kind tag for snapshots. */
enum class MetricKind { Counter, Gauge, Histogram };

/** One merged metric in a snapshot. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** Counter: total. Histogram: observation count. Gauge: 0. */
    uint64_t count = 0;
    /** Gauge: value. Histogram: sum. Counter: total as double. */
    double value = 0.0;
    /** Histogram quantiles (midpoint representatives); -1 if empty. */
    double p50 = -1.0;
    double p90 = -1.0;
    double p99 = -1.0;
};

/**
 * The process-wide registry. counter()/gauge()/histogram() find or
 * create by full name; returned references are stable for the process
 * lifetime. The "family{key=value}" convention builds labeled names.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Counter &counter(const std::string &family,
                     const std::string &labelKey,
                     const std::string &labelValue);
    Gauge &gauge(const std::string &name);
    LogHistogram &histogram(const std::string &name);
    LogHistogram &histogram(const std::string &family,
                            const std::string &labelKey,
                            const std::string &labelValue);

    /** Merged snapshot of every registered metric, name-sorted. */
    std::vector<MetricSample> snapshot() const;

    /** Zero every metric (registrations survive). */
    void reset();

    /** "family{key=value}" label mangling. */
    static std::string labeled(const std::string &family,
                               const std::string &labelKey,
                               const std::string &labelValue);

  private:
    Registry() = default;

    friend class ThreadMetricDelta;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

/**
 * Per-cell metric capture: snapshots the calling thread's counter and
 * histogram shard at construction, and finish() returns the nonzero
 * deltas since then as (name, delta) pairs, name-sorted. Exact when
 * the enclosed work runs entirely on the constructing thread (the exp
 * engine's per-cell contract). Restricting to *nonzero* deltas keeps
 * the key set deterministic across thread schedules: it depends only
 * on what the cell itself did.
 */
class ThreadMetricDelta
{
  public:
    ThreadMetricDelta();

    std::vector<std::pair<std::string, double>> finish() const;

  private:
    /** Counter/histogram-count values at construction, by name. */
    std::map<std::string, double> start_;
};

} // namespace phoenix::obs

#endif // PHOENIX_OBS_REGISTRY_H
