#include "trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/json.h"

namespace phoenix::obs {

namespace {

std::atomic<bool> g_traceEnabled{false};

thread_local uint32_t t_currentTrack = 0;

/** Bumped by Tracer::clear() so every thread's cached track pointer
 * is invalidated, not just the clearing thread's. */
std::atomic<uint64_t> g_trackGeneration{0};

/** Per-thread cache of the last (track, buffer) resolution so steady
 * recording never touches the registration mutex. */
struct TrackCache
{
    uint32_t track = 0;
    uint64_t generation = 0;
    void *buffer = nullptr;
};
thread_local TrackCache t_trackCache;

const char *
phaseOf(TraceType type)
{
    switch (type) {
    case TraceType::Complete: return "X";
    case TraceType::Instant: return "i";
    case TraceType::AsyncBegin: return "b";
    case TraceType::AsyncEnd: return "e";
    }
    return "i";
}

} // namespace

bool
traceEnabled()
{
    return g_traceEnabled.load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool enabled)
{
    g_traceEnabled.store(enabled, std::memory_order_relaxed);
}

void
setCurrentTrack(uint32_t track)
{
    t_currentTrack = track;
}

uint32_t
currentTrack()
{
    return t_currentTrack;
}

Tracer &
Tracer::global()
{
    static Tracer *instance = new Tracer();
    return *instance;
}

void
Tracer::setTrackCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trackCapacity_ = capacity ? capacity : 1;
}

void
Tracer::setCaptureWallTime(bool capture)
{
    std::lock_guard<std::mutex> lock(mutex_);
    captureWallTime_ = capture;
}

void
Tracer::nameTrack(uint32_t track, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trackNames_[track] = name;
}

Tracer::Track *
Tracer::trackFor(uint32_t track)
{
    const uint64_t generation =
        g_trackGeneration.load(std::memory_order_acquire);
    if (t_trackCache.buffer && t_trackCache.track == track &&
        t_trackCache.generation == generation) {
        return static_cast<Track *>(t_trackCache.buffer);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = tracks_[track];
    if (!slot) {
        slot = std::make_unique<Track>();
        slot->capacity = trackCapacity_;
        slot->events.reserve(trackCapacity_);
    }
    t_trackCache.track = track;
    t_trackCache.generation = generation;
    t_trackCache.buffer = slot.get();
    return slot.get();
}

void
Tracer::record(TraceEvent event)
{
    event.track = t_currentTrack;
    Track *track = trackFor(event.track);
    if (track->events.size() >= track->capacity) {
        track->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (captureWallTime_) {
        const auto now = std::chrono::steady_clock::now()
                             .time_since_epoch()
                             .count();
        int64_t epoch = wallEpochNs_.load(std::memory_order_relaxed);
        if (epoch < 0) {
            int64_t expected = -1;
            wallEpochNs_.compare_exchange_strong(
                expected, now, std::memory_order_relaxed);
            epoch = wallEpochNs_.load(std::memory_order_relaxed);
        }
        event.wallTs = static_cast<double>(now - epoch) * 1e-9;
    }
    track->events.push_back(event);
}

void
Tracer::complete(const char *category, const char *name, double ts,
                 double dur, TraceArg a0, TraceArg a1, TraceArg a2)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.category = category;
    event.name = name;
    event.type = TraceType::Complete;
    event.ts = ts;
    event.dur = dur;
    event.args[0] = a0;
    event.args[1] = a1;
    event.args[2] = a2;
    record(event);
}

void
Tracer::instant(const char *category, const char *name, double ts,
                TraceArg a0, TraceArg a1, TraceArg a2)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.category = category;
    event.name = name;
    event.type = TraceType::Instant;
    event.ts = ts;
    event.args[0] = a0;
    event.args[1] = a1;
    event.args[2] = a2;
    record(event);
}

void
Tracer::asyncBegin(const char *category, const char *name, uint64_t id,
                   double ts, TraceArg a0, TraceArg a1)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.category = category;
    event.name = name;
    event.type = TraceType::AsyncBegin;
    event.id = id;
    event.ts = ts;
    event.args[0] = a0;
    event.args[1] = a1;
    record(event);
}

void
Tracer::asyncEnd(const char *category, const char *name, uint64_t id,
                 double ts, TraceArg a0, TraceArg a1)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.category = category;
    event.name = name;
    event.type = TraceType::AsyncEnd;
    event.id = id;
    event.ts = ts;
    event.args[0] = a0;
    event.args[1] = a1;
    record(event);
}

uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto &[id, track] : tracks_) {
        (void)id;
        total += track->dropped.load(std::memory_order_relaxed);
    }
    return total;
}

size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t total = 0;
    for (const auto &[id, track] : tracks_) {
        (void)id;
        total += track->events.size();
    }
    return total;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    tracks_.clear();
    trackNames_.clear();
    wallEpochNs_.store(-1, std::memory_order_relaxed);
    // Invalidate every thread's cached track pointer (they reference
    // the Track objects just freed). clear() still requires recording
    // quiescence, same as export.
    g_trackGeneration.fetch_add(1, std::memory_order_acq_rel);
}

namespace {

void
writeEventJson(std::ostream &os, const TraceEvent &event,
               bool includeWall)
{
    os << "{\"name\":" << util::jsonQuote(event.name)
       << ",\"cat\":" << util::jsonQuote(event.category)
       << ",\"ph\":\"" << phaseOf(event.type) << "\""
       << ",\"pid\":0,\"tid\":" << event.track
       << ",\"ts\":" << util::jsonNumber(event.ts * 1e6);
    if (event.type == TraceType::Complete)
        os << ",\"dur\":" << util::jsonNumber(event.dur * 1e6);
    if (event.type == TraceType::AsyncBegin ||
        event.type == TraceType::AsyncEnd) {
        os << ",\"id\":" << event.id;
    }
    bool anyArg = false;
    for (const TraceArg &arg : event.args) {
        if (arg.name)
            anyArg = true;
    }
    const bool wall = includeWall && event.wallTs >= 0.0;
    if (anyArg || wall) {
        os << ",\"args\":{";
        bool first = true;
        for (const TraceArg &arg : event.args) {
            if (!arg.name)
                continue;
            if (!first)
                os << ",";
            first = false;
            os << util::jsonQuote(arg.name) << ":"
               << util::jsonNumber(arg.value);
        }
        if (wall) {
            if (!first)
                os << ",";
            os << "\"wall_s\":" << util::jsonNumber(event.wallTs);
        }
        os << "}";
    }
    os << "}";
}

} // namespace

void
Tracer::exportChromeJson(std::ostream &os, bool includeWall) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[id, name] : trackNames_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << id << ",\"args\":{\"name\":" << util::jsonQuote(name)
           << "}}";
    }
    // tracks_ iterates ascending by track id, and each track's events
    // are in recording order — deterministic for any thread schedule.
    for (const auto &[id, track] : tracks_) {
        (void)id;
        for (const TraceEvent &event : track->events) {
            if (!first)
                os << ",";
            first = false;
            writeEventJson(os, event, includeWall);
        }
    }
    os << "]}\n";
}

std::string
Tracer::canonicalString() const
{
    std::ostringstream oss;
    exportChromeJson(oss, /*includeWall=*/false);
    return oss.str();
}

} // namespace phoenix::obs
