/**
 * @file
 * Sim-time tracer: spans and instant events stamped with *simulated*
 * time, exported as Chrome trace-event JSON loadable in Perfetto or
 * chrome://tracing.
 *
 * Events are recorded into per-track ring buffers. A track is one
 * logical timeline — the exp engine assigns one track per sweep cell
 * — and, by the engine's per-cell contract, a track is only ever
 * written by the single thread currently running that cell, so
 * recording is lock-free after the track's first event. Each track's
 * ring has a fixed capacity; once full, further events in that track
 * are dropped (and counted), never displacing earlier ones — so the
 * retained event set per track depends only on the simulation, not on
 * which pool thread ran it or what else shared the process.
 *
 * Determinism contract (extends PR1's engine contract to the trace):
 * every field of the canonical export — track, category, name, sim
 * timestamp, sim duration, args — derives from the deterministic
 * simulation. Host wall time is optionally captured per event but is
 * excluded from the canonical export, exactly like the wall-clock
 * fields OpCounters keeps out of canonicalMetricString. The
 * trace-determinism ctest compares canonical exports across
 * --jobs {1,4,16}.
 *
 * Category and name strings must be string literals (or otherwise
 * outlive the tracer): events store the pointers, keeping recording
 * allocation-free.
 */

#ifndef PHOENIX_OBS_TRACE_H
#define PHOENIX_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace phoenix::obs {

/** Global tracing switch; events record only while enabled. */
bool traceEnabled();
void setTraceEnabled(bool enabled);

/** The track subsequent events on this thread are recorded to. The
 * exp engine sets this to the cell index before running a cell. */
void setCurrentTrack(uint32_t track);
uint32_t currentTrack();

/** Chrome trace-event phases we emit. */
enum class TraceType : uint8_t {
    Complete,   //!< ph "X": ts + dur
    Instant,    //!< ph "i"
    AsyncBegin, //!< ph "b": id-matched span open
    AsyncEnd,   //!< ph "e": id-matched span close
};

/** One optional numeric argument (argument names are literals). */
struct TraceArg
{
    const char *name = nullptr;
    double value = 0.0;
};

struct TraceEvent
{
    const char *category = nullptr;
    const char *name = nullptr;
    TraceType type = TraceType::Instant;
    uint32_t track = 0;
    /** Async begin/end matching id (unique per track). */
    uint64_t id = 0;
    double ts = 0.0;  //!< simulated seconds
    double dur = 0.0; //!< simulated seconds (Complete only)
    /** Host wall seconds since tracer construction; captured only
     * when captureWallTime is on, never canonical. */
    double wallTs = -1.0;
    TraceArg args[3];
};

class Tracer
{
  public:
    static Tracer &global();

    /** Ring capacity (events) applied to tracks created after the
     * call. Default 1 << 15 per track. */
    void setTrackCapacity(size_t capacity);

    /** Capture host wall time per event (non-canonical; off by
     * default so enabling it cannot perturb determinism checks). */
    void setCaptureWallTime(bool capture);

    /** Human-readable track label, emitted as Chrome thread_name
     * metadata. */
    void nameTrack(uint32_t track, const std::string &name);

    // --- Recording (no-ops while tracing is disabled) -------------
    void complete(const char *category, const char *name, double ts,
                  double dur, TraceArg a0 = {}, TraceArg a1 = {},
                  TraceArg a2 = {});
    void instant(const char *category, const char *name, double ts,
                 TraceArg a0 = {}, TraceArg a1 = {}, TraceArg a2 = {});
    void asyncBegin(const char *category, const char *name, uint64_t id,
                    double ts, TraceArg a0 = {}, TraceArg a1 = {});
    void asyncEnd(const char *category, const char *name, uint64_t id,
                  double ts, TraceArg a0 = {}, TraceArg a1 = {});

    /** Events dropped across all tracks (full rings). */
    uint64_t dropped() const;

    /** Total retained events. */
    size_t size() const;

    /** Drop every event, track registration, and track name. */
    void clear();

    /**
     * Chrome trace-event JSON: {"traceEvents":[...]} with ts/dur in
     * microseconds of simulated time, one Chrome "thread" per track.
     * @p includeWall adds a non-canonical "wall_s" arg to events that
     * captured one.
     */
    void exportChromeJson(std::ostream &os,
                          bool includeWall = false) const;

    /** The canonical byte string the determinism test compares:
     * exportChromeJson without wall time. */
    std::string canonicalString() const;

  private:
    Tracer() = default;

    struct Track
    {
        std::vector<TraceEvent> events; //!< reserved to capacity
        size_t capacity = 0;
        std::atomic<uint64_t> dropped{0};
    };

    void record(TraceEvent event);
    Track *trackFor(uint32_t track);

    mutable std::mutex mutex_; //!< guards the maps, not recording
    std::map<uint32_t, std::unique_ptr<Track>> tracks_;
    std::map<uint32_t, std::string> trackNames_;
    size_t trackCapacity_ = size_t{1} << 15;
    bool captureWallTime_ = false;
    std::atomic<int64_t> wallEpochNs_{-1};
};

} // namespace phoenix::obs

#endif // PHOENIX_OBS_TRACE_H
