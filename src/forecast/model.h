/**
 * @file
 * Demand/capacity trend models for predictive degradation.
 *
 * A TrendModel is the per-signal estimator the forecaster fits from
 * the controller's poll-cadence observations (ready capacity, per-zone
 * capacity, offered load): a sliding window of (t, value) samples with
 * a half-life EWMA for the level and an exact least-squares line fit
 * for the trend. project(h) extrapolates the window's trend h seconds
 * ahead, clamped at zero — capacity and load are non-negative.
 *
 * Everything is plain arithmetic over the observation stream: no
 * randomness, no wall-clock reads, no global state, so two runs (or
 * the same sweep cell on different --jobs widths) fit bit-identical
 * models from the same simulated history.
 */

#ifndef PHOENIX_FORECAST_MODEL_H
#define PHOENIX_FORECAST_MODEL_H

#include <cstddef>
#include <utility>
#include <vector>

namespace phoenix::forecast {

/** TrendModel tunables. */
struct TrendModelConfig
{
    /** Sliding-window length in samples (>= 2 for a usable slope). */
    size_t window = 8;
    /** EWMA half-life in seconds: an observation this old contributes
     * half the weight of a fresh one. */
    double ewmaHalfLife = 60.0;
};

/**
 * Windowed EWMA + linear-trend fit over one scalar signal. observe()
 * in non-decreasing time order; queries are O(window).
 */
class TrendModel
{
  public:
    explicit TrendModel(TrendModelConfig config = TrendModelConfig());

    /** Feed one observation at sim time @p t. */
    void observe(double t, double value);

    /** Samples currently in the window. */
    size_t sampleCount() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Most recent observed value (0 before any observation). */
    double last() const { return last_; }
    /** Instant of the most recent observation. */
    double lastTime() const { return lastT_; }

    /** Half-life EWMA of the signal level. */
    double ewma() const { return ewma_; }

    /**
     * Least-squares slope (value per second) over the window; 0 until
     * the window holds two samples at distinct instants.
     */
    double slope() const;

    /**
     * Extrapolate the window's trend @p horizonSeconds past the last
     * observation: last() + slope() * horizon, clamped at 0.
     */
    double project(double horizonSeconds) const;

    void reset();

  private:
    TrendModelConfig config_;
    /** Ring buffer of (t, value); head_ is the next write slot. */
    std::vector<std::pair<double, double>> samples_;
    size_t head_ = 0;
    size_t count_ = 0;
    double ewma_ = 0.0;
    double last_ = 0.0;
    double lastT_ = 0.0;
    bool any_ = false;
};

} // namespace phoenix::forecast

#endif // PHOENIX_FORECAST_MODEL_H
