#include "model.h"

#include <algorithm>
#include <cmath>

namespace phoenix::forecast {

TrendModel::TrendModel(TrendModelConfig config) : config_(config)
{
    if (config_.window < 2)
        config_.window = 2;
    samples_.resize(config_.window);
}

void
TrendModel::observe(double t, double value)
{
    if (any_) {
        const double dt = std::max(t - lastT_, 0.0);
        const double decay =
            config_.ewmaHalfLife > 0.0
                ? std::exp2(-dt / config_.ewmaHalfLife)
                : 0.0;
        ewma_ = value + (ewma_ - value) * decay;
    } else {
        ewma_ = value;
        any_ = true;
    }
    last_ = value;
    lastT_ = t;

    samples_[head_] = {t, value};
    head_ = (head_ + 1) % samples_.size();
    count_ = std::min(count_ + 1, samples_.size());
}

double
TrendModel::slope() const
{
    if (count_ < 2)
        return 0.0;
    double tSum = 0.0;
    double vSum = 0.0;
    for (size_t i = 0; i < count_; ++i) {
        tSum += samples_[i].first;
        vSum += samples_[i].second;
    }
    const double tMean = tSum / static_cast<double>(count_);
    const double vMean = vSum / static_cast<double>(count_);
    double num = 0.0;
    double den = 0.0;
    for (size_t i = 0; i < count_; ++i) {
        const double dt = samples_[i].first - tMean;
        num += dt * (samples_[i].second - vMean);
        den += dt * dt;
    }
    if (den <= 0.0)
        return 0.0;
    return num / den;
}

double
TrendModel::project(double horizonSeconds) const
{
    if (!any_)
        return 0.0;
    return std::max(0.0, last_ + slope() * horizonSeconds);
}

void
TrendModel::reset()
{
    head_ = 0;
    count_ = 0;
    ewma_ = 0.0;
    last_ = 0.0;
    lastT_ = 0.0;
    any_ = false;
}

} // namespace phoenix::forecast
