#include "forecaster.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace phoenix::forecast {

using sim::ClusterState;

namespace {

constexpr double kEps = 1e-12;

/** Order-sensitive FNV-1a, the repo's fingerprint idiom. */
struct Fnv
{
    uint64_t hash = 1469598103934665603ull;
    void
    mix(uint64_t v)
    {
        hash ^= v;
        hash *= 1099511628211ull;
    }
    void
    mixDouble(double v)
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }
};

} // namespace

Forecaster::Forecaster(kube::KubeCluster &cluster,
                       SchemeFactory schemeFactory, ForecastConfig config)
    : cluster_(cluster), factory_(std::move(schemeFactory)),
      config_(config), capacityModel_(config.trend),
      loadModel_(config.trend), decayGate_(config.capacityDecay),
      surgeGate_(config.loadSurge)
{
    auto &registry = obs::Registry::global();
    obs_.prestagedPlans = &registry.counter("forecast.prestaged_plans");
    obs_.restagedPlans = &registry.counter("forecast.restaged_plans");
    obs_.warmApplies = &registry.counter("forecast.warm_applies");
    obs_.stalePlans = &registry.counter("forecast.stale_plans");
    obs_.proactiveExecutions =
        &registry.counter("forecast.proactive_executions");
    obs_.forcedRestores = &registry.counter("forecast.forced_restores");
    obs_.risksZoneLoss = &registry.counter(
        "forecast.risks", "class", faultClassName(FaultClass::ZoneLoss));
    obs_.risksCapacityDecay =
        &registry.counter("forecast.risks", "class",
                          faultClassName(FaultClass::CapacityDecay));
    obs_.risksLoadSurge = &registry.counter(
        "forecast.risks", "class",
        faultClassName(FaultClass::LoadSurge));
}

core::ResilienceScheme &
Forecaster::projScheme()
{
    if (!projScheme_)
        projScheme_ = factory_();
    return *projScheme_;
}

core::ResilienceScheme &
Forecaster::verifyScheme()
{
    if (!verifyScheme_)
        verifyScheme_ = factory_();
    return *verifyScheme_;
}

uint64_t
Forecaster::fingerprintState(const ClusterState &state)
{
    Fnv fnv;
    fnv.mix(state.nodeCount());
    for (sim::NodeId id = 0; id < state.nodeCount(); ++id) {
        const sim::Node &node = state.node(id);
        fnv.mix(node.healthy ? 0x9e3779b97f4a7c15ull
                             : 0x2545f4914f6cdd1dull);
        fnv.mixDouble(node.capacity);
        fnv.mix(node.zone);
    }
    fnv.mix(state.assignment().size());
    for (const auto &[pod, node] : state.assignment()) {
        fnv.mix((static_cast<uint64_t>(pod.app) << 32) | pod.ms);
        fnv.mix(pod.replica);
        fnv.mix(node);
        fnv.mixDouble(state.podCpu(pod));
    }
    return fnv.hash;
}

uint64_t
Forecaster::fingerprintApps(const std::vector<sim::Application> &apps)
{
    Fnv fnv;
    fnv.mix(apps.size());
    for (const sim::Application &app : apps) {
        fnv.mix(app.id);
        fnv.mix(app.phoenixEnabled ? 1 : 0);
        fnv.mixDouble(app.pricePerUnit);
        fnv.mix(app.hasDependencyGraph ? 1 : 0);
        fnv.mix(app.services.size());
        for (const sim::Microservice &ms : app.services) {
            fnv.mix(ms.id);
            fnv.mixDouble(ms.cpu);
            fnv.mix(static_cast<uint64_t>(ms.criticality));
            fnv.mix(static_cast<uint64_t>(ms.replicas));
            fnv.mix(static_cast<uint64_t>(ms.quorum));
            fnv.mix(static_cast<uint64_t>(
                static_cast<int64_t>(ms.antiAffinityGroup)));
            fnv.mix(static_cast<uint64_t>(ms.maxPerNode));
            fnv.mix(static_cast<uint64_t>(ms.maxPerZone));
            fnv.mix(static_cast<uint64_t>(ms.minZoneSpread));
            fnv.mix(static_cast<uint64_t>(
                static_cast<int64_t>(ms.pdbMaxUnavailable)));
        }
        fnv.mix(app.placementGroups.size());
        for (const sim::PlacementGroup &group : app.placementGroups) {
            fnv.mix(static_cast<uint64_t>(static_cast<int64_t>(group.id)));
            fnv.mix(static_cast<uint64_t>(group.maxPerNode));
            fnv.mix(static_cast<uint64_t>(group.maxPerZone));
        }
        if (app.hasDependencyGraph) {
            fnv.mix(app.dag.nodeCount());
            for (size_t u = 0; u < app.dag.nodeCount(); ++u) {
                const auto &succ = app.dag.successors(
                    static_cast<graph::NodeId>(u));
                fnv.mix(succ.size());
                for (auto v : succ)
                    fnv.mix(static_cast<uint64_t>(v));
            }
        }
    }
    return fnv.hash;
}

bool
Forecaster::sameSchemeResult(const core::SchemeResult &a,
                             const core::SchemeResult &b)
{
    if (a.failed != b.failed)
        return false;
    if (a.plan != b.plan)
        return false;
    if (a.pack.complete != b.pack.complete ||
        a.pack.placed != b.pack.placed)
        return false;
    if (a.pack.actions.size() != b.pack.actions.size())
        return false;
    for (size_t i = 0; i < a.pack.actions.size(); ++i) {
        const core::Action &x = a.pack.actions[i];
        const core::Action &y = b.pack.actions[i];
        if (x.kind != y.kind || x.pod != y.pod || x.from != y.from ||
            x.to != y.to)
            return false;
    }
    if (a.pack.state.assignment() != b.pack.state.assignment())
        return false;
    return true;
}

void
Forecaster::stage(Staged &s, const ClusterState &projected,
                  uint64_t observedFp)
{
    const uint64_t fp = fingerprintState(projected);
    const uint64_t appsFp = fingerprintApps(cluster_.apps());
    if (s.valid && s.stateFp == fp && s.appsFp == appsFp)
        return; // staged plan still matches the projection
    if (fp == observedFp) {
        // The projection equals what the controller already sees:
        // there is nothing to anticipate (the fault has bitten or the
        // at-risk capacity is already vacated+failed). Staging here
        // would just precompute the cold plan the controller is about
        // to make anyway — skip, and drop any stale leftover.
        s.valid = false;
        return;
    }
    const bool restage = s.valid;
    s.result = projScheme().apply(cluster_.apps(), projected);
    s.stateFp = fp;
    s.appsFp = appsFp;
    s.stagedAt = cluster_.now();
    s.valid = true;
    if (restage) {
        ++counters_.restagedPlans;
        PHOENIX_COUNT(*obs_.restagedPlans, 1);
    } else {
        ++counters_.prestagedPlans;
        PHOENIX_COUNT(*obs_.prestagedPlans, 1);
    }
}

void
Forecaster::onArmed(Staged &s, const ClusterState &projected,
                    uint64_t observedFp)
{
    if (!config_.prestagePlans)
        return;
    stage(s, projected, observedFp);
    if (config_.proactiveExecution && s.valid && !s.executedEpisode &&
        !s.result.pack.actions.empty() && pendingProactive_ == nullptr)
        pendingProactive_ = &s;
}

void
Forecaster::onCleared(Staged &s)
{
    if (s.executedEpisode) {
        // The risk cleared without its fault: pods we shed or moved
        // proactively would otherwise stay that way forever (a
        // fault-free clearing changes no observed capacity, so nothing
        // triggers a replan). Force one cold restorative replan.
        forceReplan_ = true;
        ++counters_.forcedRestores;
        PHOENIX_COUNT(*obs_.forcedRestores, 1);
    }
    s.valid = false;
    s.executedEpisode = false;
}

void
Forecaster::tick()
{
    const double t = cluster_.now();
    const auto zones =
        cluster_.observedZoneCapacities(config_.fallbackZoneCount);
    if (zoneModels_.size() != zones.size()) {
        zoneModels_.assign(zones.size(), TrendModel(config_.trend));
        zoneGates_.assign(zones.size(),
                          HysteresisGate(config_.zoneLoss));
        zoneStaged_.assign(zones.size(), Staged{});
    }
    double staticTotal = 0.0;
    double readyTotal = 0.0;
    for (const auto &zone : zones) {
        staticTotal += zone.staticCapacity;
        readyTotal += zone.readyCapacity;
    }
    capacityModel_.observe(t, readyTotal);
    lastZones_ = zones;
    lastStaticTotal_ = staticTotal;
    lastReadyTotal_ = readyTotal;

    pendingProactive_ = nullptr;
    const uint64_t observedFp = fingerprintState(cluster_.observedState());

    // Per-zone correlated-loss gates: deficit-based (not slope-based)
    // so a slow-burn loss stays armed until capacity actually returns.
    for (size_t z = 0; z < zones.size(); ++z) {
        zoneModels_[z].observe(t, zones[z].readyCapacity);
        const double signal =
            zones[z].staticCapacity > kEps
                ? 1.0 - zones[z].readyCapacity / zones[z].staticCapacity
                : 0.0;
        const bool wasArmed = zoneGates_[z].armed();
        const bool armed = zoneGates_[z].observe(signal);
        if (armed && !wasArmed)
            PHOENIX_COUNT(*obs_.risksZoneLoss, 1);
        if (armed)
            onArmed(zoneStaged_[z],
                    cluster_.projectedZoneLossState(
                        z, config_.fallbackZoneCount),
                    observedFp);
        else if (wasArmed)
            onCleared(zoneStaged_[z]);
    }

    // Cluster-wide gradual decay gate.
    const double decaySignal =
        staticTotal > kEps ? 1.0 - readyTotal / staticTotal : 0.0;
    const bool decayWasArmed = decayGate_.armed();
    const bool decayArmed = decayGate_.observe(decaySignal);
    if (decayArmed && !decayWasArmed)
        PHOENIX_COUNT(*obs_.risksCapacityDecay, 1);
    if (decayArmed)
        onArmed(decayStaged_, cluster_.projectedDecayState(),
                observedFp);
    else if (decayWasArmed)
        onCleared(decayStaged_);
}

bool
Forecaster::takeForceReplan()
{
    const bool force = forceReplan_;
    forceReplan_ = false;
    return force;
}

const core::SchemeResult *
Forecaster::matchWarm(const std::vector<sim::Application> &apps,
                      const ClusterState &observed)
{
    const uint64_t observedFp = fingerprintState(observed);
    const uint64_t appsFp = fingerprintApps(apps);

    auto tryEntry = [&](Staged &s) -> const core::SchemeResult * {
        if (!s.valid || s.stateFp != observedFp || s.appsFp != appsFp)
            return nullptr;
        if (config_.verifyWarmPlans) {
            // Paranoid mode: re-derive cold on a private scheme and
            // byte-compare. A divergence means a fingerprint collision
            // or a scheme-purity bug — fall back cold either way.
            verifyScratch_ = verifyScheme().apply(apps, observed);
            if (!sameSchemeResult(verifyScratch_, s.result))
                return nullptr;
        }
        s.valid = false; // consumed
        return &s.result;
    };

    bool anyStaged = decayStaged_.valid;
    for (Staged &s : zoneStaged_)
        anyStaged = anyStaged || s.valid;

    for (Staged &s : zoneStaged_) {
        if (const core::SchemeResult *hit = tryEntry(s)) {
            ++counters_.warmApplies;
            PHOENIX_COUNT(*obs_.warmApplies, 1);
            return hit;
        }
    }
    if (const core::SchemeResult *hit = tryEntry(decayStaged_)) {
        ++counters_.warmApplies;
        PHOENIX_COUNT(*obs_.warmApplies, 1);
        return hit;
    }

    if (anyStaged) {
        // A warm plan existed but the world moved between staging and
        // trigger: fall back cold, and drop the stale plans — the
        // post-replan world invalidates them (they re-stage next tick
        // while their risk stays armed).
        ++counters_.stalePlans;
        PHOENIX_COUNT(*obs_.stalePlans, 1);
        for (Staged &s : zoneStaged_)
            s.valid = false;
        decayStaged_.valid = false;
    }
    return nullptr;
}

const core::SchemeResult *
Forecaster::takeProactive()
{
    Staged *s = pendingProactive_;
    pendingProactive_ = nullptr;
    if (s == nullptr || !s->valid)
        return nullptr;
    s->executedEpisode = true;
    ++counters_.proactiveExecutions;
    PHOENIX_COUNT(*obs_.proactiveExecutions, 1);
    return &s->result;
}

void
Forecaster::observeLoad(double offeredRps)
{
    const double t = cluster_.now();
    loadModel_.observe(t, offeredRps);
    const double surge =
        loadModel_.ewma() > kEps
            ? loadModel_.project(config_.horizonSeconds) /
                      loadModel_.ewma() -
                  1.0
            : 0.0;
    const bool wasArmed = surgeGate_.armed();
    const bool armed = surgeGate_.observe(surge);
    if (armed && !wasArmed)
        PHOENIX_COUNT(*obs_.risksLoadSurge, 1);
}

double
Forecaster::projectedCapacityFraction() const
{
    if (lastStaticTotal_ <= kEps)
        return 1.0;
    double fraction = lastReadyTotal_ / lastStaticTotal_;
    bool capacityRisk = decayGate_.armed();
    for (size_t z = 0; z < zoneGates_.size(); ++z) {
        if (!zoneGates_[z].armed())
            continue;
        capacityRisk = true;
        // Anticipated zone loss: provision for the residual capacity.
        if (z < lastZones_.size()) {
            fraction = std::min(
                fraction, (lastReadyTotal_ - lastZones_[z].readyCapacity) /
                              lastStaticTotal_);
        }
    }
    if (capacityRisk) {
        fraction = std::min(
            fraction, capacityModel_.project(config_.horizonSeconds) /
                          lastStaticTotal_);
    }
    if (surgeGate_.armed()) {
        // Surging demand shrinks the effective headroom: capacity per
        // unit of projected load.
        fraction /= 1.0 + std::max(surgeGate_.signal(), 0.0);
    }
    return std::clamp(fraction, 0.0, 1.0);
}

bool
Forecaster::capacityRiskArmed() const
{
    if (decayGate_.armed())
        return true;
    for (const HysteresisGate &gate : zoneGates_) {
        if (gate.armed())
            return true;
    }
    return false;
}

std::vector<RiskStatus>
Forecaster::risks() const
{
    std::vector<RiskStatus> all;
    all.reserve(zoneGates_.size() + 2);
    for (size_t z = 0; z < zoneGates_.size(); ++z) {
        RiskStatus risk;
        risk.cls = FaultClass::ZoneLoss;
        risk.zone = z;
        risk.armed = zoneGates_[z].armed();
        risk.signal = zoneGates_[z].signal();
        risk.staged = zoneStaged_[z].valid;
        risk.executed = zoneStaged_[z].executedEpisode;
        all.push_back(risk);
    }
    RiskStatus decay;
    decay.cls = FaultClass::CapacityDecay;
    decay.armed = decayGate_.armed();
    decay.signal = decayGate_.signal();
    decay.staged = decayStaged_.valid;
    decay.executed = decayStaged_.executedEpisode;
    all.push_back(decay);
    RiskStatus surge;
    surge.cls = FaultClass::LoadSurge;
    surge.armed = surgeGate_.armed();
    surge.signal = surgeGate_.signal();
    all.push_back(surge);
    return all;
}

std::string
Forecaster::statusString() const
{
    std::ostringstream out;
    out << "forecast: horizon=" << config_.horizonSeconds
        << "s prestage=" << (config_.prestagePlans ? "on" : "off")
        << " proactive=" << (config_.proactiveExecution ? "on" : "off")
        << "\n";
    for (const RiskStatus &risk : risks()) {
        out << "  " << faultClassName(risk.cls);
        if (risk.zone != static_cast<size_t>(-1))
            out << "[zone=" << risk.zone << "]";
        out << " " << (risk.armed ? "ARMED" : "clear")
            << " signal=" << risk.signal;
        if (risk.cls != FaultClass::LoadSurge) {
            out << " staged=" << (risk.staged ? "yes" : "no")
                << " executed=" << (risk.executed ? "yes" : "no");
        }
        out << "\n";
    }
    out << "  plans: prestaged=" << counters_.prestagedPlans
        << " restaged=" << counters_.restagedPlans
        << " warm_applies=" << counters_.warmApplies
        << " stale=" << counters_.stalePlans
        << " proactive=" << counters_.proactiveExecutions
        << " forced_restores=" << counters_.forcedRestores << "\n";
    return out.str();
}

} // namespace phoenix::forecast
