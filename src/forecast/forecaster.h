/**
 * @file
 * The forecast subsystem: predictive, proactive degradation with warm
 * pre-staged plans.
 *
 * The Forecaster implements core::ForecastHook and rides the
 * controller's poll loop. Each tick it
 *
 *  1. fits trend models (forecast/model.h) over observed ready
 *     capacity — total, per forecast zone, and offered load fed by the
 *     serving layer;
 *  2. classifies anticipated fault classes (forecast/detector.h) from
 *     deficit-based risk signals with hysteresis: zone-correlated loss
 *     (per-zone capacity deficit), gradual capacity decay (cluster
 *     deficit), load surge vs. SLO headroom (projected load over EWMA);
 *  3. for armed plan-able risks (zone loss, decay) runs the planner
 *     ahead of time against the projected post-fault state
 *     (kube::KubeCluster::projectedZoneLossState / projectedDecayState)
 *     and caches the result keyed by FNV-1a fingerprints of the full
 *     planner input (apps + projected cluster state).
 *
 * When the anticipated fault bites, the controller asks matchWarm():
 * a staged plan whose projected-state fingerprint equals the observed
 * state's applies in O(actions) — and is byte-identical to what a cold
 * replan would produce, because every scheme is a pure function of
 * (apps, state) (the incremental caches are proven bit-identical to
 * from-scratch). Any mismatch falls back cold and counts
 * forecast.stale_plans. Optionally (verifyWarmPlans) every warm hit is
 * re-derived cold on a private scheme and byte-compared before use.
 *
 * Ahead of the fault, takeProactive() hands the controller the staged
 * plan for immediate execution: pods are evacuated off the at-risk
 * capacity (and low-criticality services shed early) so the fault
 * itself becomes a non-event. If the risk clears without its fault,
 * takeForceReplan() forces one cold restorative replan.
 *
 * Everything is deterministic: no RNG, no wall-clock reads — state is
 * a pure function of the simulated observation stream, so sweep cells
 * are bit-identical across --jobs widths.
 */

#ifndef PHOENIX_FORECAST_FORECASTER_H
#define PHOENIX_FORECAST_FORECASTER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/schemes.h"
#include "forecast/detector.h"
#include "forecast/model.h"
#include "kube/kube.h"
#include "obs/obs.h"

namespace phoenix::forecast {

/**
 * Factory for the forecaster's private projection schemes. Must build
 * the same scheme the controller runs (warm ≡ cold relies on scheme
 * purity, not shared instances — the forecaster plans projections on
 * its own instance so the controller's incremental caches never see
 * hypothetical states).
 */
using SchemeFactory =
    std::function<std::unique_ptr<core::ResilienceScheme>()>;

/** Forecaster tunables. */
struct ForecastConfig
{
    /** Projection horizon for trend extrapolation (seconds). */
    double horizonSeconds = 120.0;
    /** Zone partition when the deployment declares no topology
     * (matches ScenarioOptions::zoneCount's default striping). */
    size_t fallbackZoneCount = 5;
    /** Trend-model window/EWMA settings (shared by all signals). */
    TrendModelConfig trend;
    /** Per-zone capacity-deficit gate (signal: 1 - ready/static). */
    HysteresisConfig zoneLoss{0.25, 0.10, 2};
    /** Cluster capacity-deficit gate (signal: 1 - ready/static). */
    HysteresisConfig capacityDecay{0.15, 0.05, 2};
    /** Offered-load surge gate (signal: projected/ewma - 1). */
    HysteresisConfig loadSurge{0.20, 0.08, 2};
    /** Pre-stage warm plans for armed plan-able risks. */
    bool prestagePlans = true;
    /** Execute staged plans ahead of the anticipated fault. */
    bool proactiveExecution = true;
    /** Re-derive every warm hit cold and byte-compare before use. */
    bool verifyWarmPlans = false;
};

/** Mirror of the forecast.* obs counters for programmatic access. */
struct ForecastCounters
{
    uint64_t prestagedPlans = 0;   //!< first staging of a risk episode
    uint64_t restagedPlans = 0;    //!< refresh after a fingerprint drift
    uint64_t warmApplies = 0;      //!< pre-staged plan applied at trigger
    uint64_t stalePlans = 0;       //!< fallback cold at trigger
    uint64_t proactiveExecutions = 0; //!< plans executed pre-fault
    uint64_t forcedRestores = 0;   //!< cold replans after a false alarm
};

/** One risk gate's externally visible state (forecast-status verb). */
struct RiskStatus
{
    FaultClass cls = FaultClass::ZoneLoss;
    /** Zone index for ZoneLoss; SIZE_MAX otherwise. */
    size_t zone = static_cast<size_t>(-1);
    bool armed = false;
    double signal = 0.0;
    bool staged = false;
    bool executed = false;
};

class Forecaster final : public core::ForecastHook
{
  public:
    Forecaster(kube::KubeCluster &cluster, SchemeFactory schemeFactory,
               ForecastConfig config = ForecastConfig());

    // --- core::ForecastHook ----------------------------------------
    void tick() override;
    bool takeForceReplan() override;
    const core::SchemeResult *
    matchWarm(const std::vector<sim::Application> &apps,
              const sim::ClusterState &observed) override;
    const core::SchemeResult *takeProactive() override;

    // --- Serving-layer surface -------------------------------------
    /** Feed the offered request rate (RPS) observed since the last
     * refresh; updates the load-surge gate. */
    void observeLoad(double offeredRps);

    /**
     * Capacity fraction the admission controller should provision for:
     * the observed ready fraction, tightened by armed risks — trend
     * projection and armed-zone residuals for capacity risks, surge
     * scaling for load risk. 1.0 when nothing is known or armed.
     */
    double projectedCapacityFraction() const;

    /** Any capacity risk (zone loss / decay) currently armed. */
    bool capacityRiskArmed() const;

    // --- Introspection ---------------------------------------------
    const ForecastCounters &counters() const { return counters_; }
    std::vector<RiskStatus> risks() const;
    /** Multi-line human-readable dump (phoenixd forecast-status). */
    std::string statusString() const;

    // --- Shared fingerprint/equality helpers (tests + oracle) ------
    /** FNV-1a over the full planner-visible cluster state: per-node
     * (healthy, capacity, zone) + the pod assignment with sizes. */
    static uint64_t fingerprintState(const sim::ClusterState &state);
    /** FNV-1a over the planner-visible application structure. */
    static uint64_t
    fingerprintApps(const std::vector<sim::Application> &apps);
    /** Byte-equality over the deterministic parts of a scheme result
     * (plan, actions, placement); wall-clock and op counts exempt. */
    static bool sameSchemeResult(const core::SchemeResult &a,
                                 const core::SchemeResult &b);

  private:
    /** One staged warm plan (per plan-able risk). */
    struct Staged
    {
        bool valid = false;
        /** Proactive execution already issued this armed episode. */
        bool executedEpisode = false;
        uint64_t stateFp = 0;
        uint64_t appsFp = 0;
        double stagedAt = 0.0;
        core::SchemeResult result;
    };

    core::ResilienceScheme &projScheme();
    core::ResilienceScheme &verifyScheme();
    /** (Re-)stage @p s against @p projected unless the fingerprint is
     * unchanged or the projection equals the observed state (nothing
     * to pre-empt — the fault already happened). */
    void stage(Staged &s, const sim::ClusterState &projected,
               uint64_t observedFp);
    /** Handle an armed gate's staging + proactive candidacy. */
    void onArmed(Staged &s, const sim::ClusterState &projected,
                 uint64_t observedFp);
    /** Handle a cleared gate: forced restore after proactive runs. */
    void onCleared(Staged &s);

    kube::KubeCluster &cluster_;
    SchemeFactory factory_;
    ForecastConfig config_;
    std::unique_ptr<core::ResilienceScheme> projScheme_;
    std::unique_ptr<core::ResilienceScheme> verifyScheme_;

    TrendModel capacityModel_;
    TrendModel loadModel_;
    std::vector<TrendModel> zoneModels_;
    HysteresisGate decayGate_;
    HysteresisGate surgeGate_;
    std::vector<HysteresisGate> zoneGates_;

    std::vector<Staged> zoneStaged_;
    Staged decayStaged_;

    /** Last tick's zone capacities (projectedCapacityFraction). */
    std::vector<kube::KubeCluster::ZoneCapacity> lastZones_;
    double lastStaticTotal_ = 0.0;
    double lastReadyTotal_ = 0.0;

    bool forceReplan_ = false;
    /** Proactive candidate staged this tick; consumed by
     * takeProactive(). */
    Staged *pendingProactive_ = nullptr;
    /** Scratch for verifyWarmPlans' cold re-derivation. */
    core::SchemeResult verifyScratch_;

    ForecastCounters counters_;

    /** obs handles, resolved once at construction. */
    struct ObsHandles
    {
        obs::Counter *prestagedPlans = nullptr;
        obs::Counter *restagedPlans = nullptr;
        obs::Counter *warmApplies = nullptr;
        obs::Counter *stalePlans = nullptr;
        obs::Counter *proactiveExecutions = nullptr;
        obs::Counter *forcedRestores = nullptr;
        obs::Counter *risksZoneLoss = nullptr;
        obs::Counter *risksCapacityDecay = nullptr;
        obs::Counter *risksLoadSurge = nullptr;
    };
    ObsHandles obs_;
};

} // namespace phoenix::forecast

#endif // PHOENIX_FORECAST_FORECASTER_H
