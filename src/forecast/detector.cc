#include "detector.h"

namespace phoenix::forecast {

const char*
faultClassName(FaultClass cls)
{
    switch (cls) {
    case FaultClass::ZoneLoss:
        return "zone-loss";
    case FaultClass::CapacityDecay:
        return "capacity-decay";
    case FaultClass::LoadSurge:
        return "load-surge";
    }
    return "unknown";
}

HysteresisGate::HysteresisGate(HysteresisConfig config) : config_(config)
{
    if (config_.armTicks < 1)
        config_.armTicks = 1;
}

bool
HysteresisGate::observe(double signal)
{
    signal_ = signal;
    if (armed_) {
        if (signal < config_.exit) {
            armed_ = false;
            streak_ = 0;
            ++clearCount_;
        }
        return armed_;
    }
    if (signal > config_.enter) {
        if (++streak_ >= config_.armTicks) {
            armed_ = true;
            streak_ = 0;
            ++armCount_;
        }
    } else {
        streak_ = 0;
    }
    return armed_;
}

void
HysteresisGate::reset()
{
    armed_ = false;
    streak_ = 0;
    signal_ = 0.0;
    armCount_ = 0;
    clearCount_ = 0;
}

} // namespace phoenix::forecast
