/**
 * @file
 * Risk detection for predictive degradation: fault-class taxonomy and
 * the hysteresis gate that turns a noisy scalar risk signal into a
 * stable armed/cleared state.
 *
 * A gate arms only after the signal has been strictly above the enter
 * threshold for `armTicks` consecutive observations, and clears only
 * when the signal drops strictly below the (lower) exit threshold. A
 * signal sitting exactly at either threshold changes nothing, so a
 * boundary-riding signal can never flap the gate.
 */

#ifndef PHOENIX_FORECAST_DETECTOR_H
#define PHOENIX_FORECAST_DETECTOR_H

#include <cstdint>

namespace phoenix::forecast {

/** Anticipated fault classes the detector can arm on. */
enum class FaultClass : uint8_t {
    /** Correlated capacity loss concentrated in one zone (precursor
     * node failures, rolling zone maintenance gone bad). */
    ZoneLoss = 0,
    /** Gradual cluster-wide capacity decay (gray failures, kubelet
     * degradation) heading for a cliff. */
    CapacityDecay = 1,
    /** Offered load surging toward the SLO headroom of current ready
     * capacity; consumed by serve admission, not the planner. */
    LoadSurge = 2,
};

const char* faultClassName(FaultClass cls);

/** Hysteresis thresholds for one risk signal. */
struct HysteresisConfig
{
    /** Arm when the signal is strictly above this for armTicks ticks. */
    double enter = 0.25;
    /** Clear when the signal is strictly below this. */
    double exit = 0.10;
    /** Consecutive above-enter observations required to arm. */
    int armTicks = 2;
};

/**
 * Two-threshold hysteresis gate with an arming streak. Deterministic:
 * state is a pure function of the observation sequence.
 */
class HysteresisGate
{
  public:
    explicit HysteresisGate(HysteresisConfig config = HysteresisConfig());

    /**
     * Feed one signal observation; returns the armed state after the
     * update. Arms on the armTicks-th consecutive strictly-above-enter
     * sample; clears on a strictly-below-exit sample; anything else
     * (including exactly-at-threshold) leaves the state untouched.
     */
    bool observe(double signal);

    bool armed() const { return armed_; }
    /** Last observed signal value. */
    double signal() const { return signal_; }
    /** Consecutive above-enter samples seen while disarmed. */
    int streak() const { return streak_; }
    /** Total cleared->armed transitions. */
    uint64_t armCount() const { return armCount_; }
    /** Total armed->cleared transitions. */
    uint64_t clearCount() const { return clearCount_; }

    void reset();

  private:
    HysteresisConfig config_;
    bool armed_ = false;
    int streak_ = 0;
    double signal_ = 0.0;
    uint64_t armCount_ = 0;
    uint64_t clearCount_ = 0;
};

} // namespace phoenix::forecast

#endif // PHOENIX_FORECAST_DETECTOR_H
