/**
 * @file
 * Branch-and-bound MILP solver over the simplex relaxation.
 *
 * Depth-first best-bound-tiebreak branching on the most fractional
 * integer variable, with incumbent pruning, a rounding primal heuristic,
 * and node/time limits. Gurobi stand-in for LPFair/LPCost (§4, App. C)
 * and the coverage LP of Appendix G at small instance sizes.
 */

#ifndef PHOENIX_LP_BRANCH_BOUND_H
#define PHOENIX_LP_BRANCH_BOUND_H

#include "lp/model.h"
#include "lp/simplex.h"

namespace phoenix::lp {

/** Tunables for a MILP solve. */
struct MilpOptions
{
    double timeLimitSec = 60.0;
    long maxNodes = 20000;
    double integralityTol = 1e-6;
    /** Stop when (bestBound - incumbent) / max(1,|incumbent|) < gap. */
    double relativeGap = 1e-6;
    SimplexOptions lp;
    /**
     * Optional warm start: a feasible point used as the initial
     * incumbent (checked; ignored when infeasible). Lets branch &
     * bound prune immediately on large instances.
     */
    std::vector<double> warmStart;
};

/** Solve @p model honouring integrality markers. */
Solution solveMilp(const Model &model, MilpOptions options = MilpOptions());

} // namespace phoenix::lp

#endif // PHOENIX_LP_BRANCH_BOUND_H
