/**
 * @file
 * Water-filling max-min fair share computation.
 *
 * LPFair (App. C) and the PhoenixFair global-ranking objective both rely
 * on a pre-computed water-fill fair share per application: capacity R is
 * divided among n applications; applications demanding less than the
 * equal share keep their demand and the excess is re-divided among the
 * rest.
 */

#ifndef PHOENIX_LP_WATERFILL_H
#define PHOENIX_LP_WATERFILL_H

#include <vector>

namespace phoenix::lp {

/**
 * Compute max-min water-fill shares.
 *
 * @param demands per-application resource demand (>= 0)
 * @param capacity total resources to distribute (>= 0)
 * @return per-application fair share; shares sum to
 *         min(capacity, sum(demands)) and no share exceeds its demand.
 */
std::vector<double> waterFill(const std::vector<double> &demands,
                              double capacity);

/**
 * Weighted water-fill: shares grow proportionally to weights until the
 * demand is met. Equal weights reduce to waterFill().
 */
std::vector<double> weightedWaterFill(const std::vector<double> &demands,
                                      const std::vector<double> &weights,
                                      double capacity);

} // namespace phoenix::lp

#endif // PHOENIX_LP_WATERFILL_H
