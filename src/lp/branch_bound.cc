#include "branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

namespace phoenix::lp {

namespace {

using Clock = std::chrono::steady_clock;

struct Node
{
    std::vector<double> lower;
    std::vector<double> upper;
    double bound; // relaxation objective in minimization space
};

/**
 * Try to repair an LP-fractional point into an integer-feasible one by
 * rounding; returns true and fills @p rounded on success.
 */
bool
tryRounding(const Model &model, const std::vector<double> &point,
            const std::vector<double> &lower,
            const std::vector<double> &upper,
            std::vector<double> &rounded)
{
    rounded = point;
    for (size_t j = 0; j < model.varCount(); ++j) {
        if (!model.vars()[j].integer)
            continue;
        double r = std::round(rounded[j]);
        r = std::clamp(r, lower[j], upper[j]);
        rounded[j] = r;
    }
    return model.isFeasible(rounded, true);
}

} // namespace

Solution
solveMilp(const Model &model, MilpOptions options)
{
    const auto deadline = Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options.timeLimitSec));

    SimplexSolver solver(model, options.lp);
    const double sense = model.maximize() ? -1.0 : 1.0;

    std::vector<double> root_lower(model.varCount());
    std::vector<double> root_upper(model.varCount());
    for (size_t j = 0; j < model.varCount(); ++j) {
        root_lower[j] = model.vars()[j].lower;
        root_upper[j] = model.vars()[j].upper;
        if (model.vars()[j].integer) {
            root_lower[j] = std::ceil(root_lower[j] - 1e-9);
            root_upper[j] = std::floor(root_upper[j] + 1e-9);
        }
    }

    Solution incumbent;
    incumbent.status = SolveStatus::Limit;
    double incumbent_min = kInfinity; // minimization-space value

    auto consider = [&](const std::vector<double> &point) {
        const double value = model.objectiveValue(point);
        const double min_value = sense * value;
        if (min_value < incumbent_min - 1e-12) {
            incumbent_min = min_value;
            incumbent.values = point;
            incumbent.objective = value;
            incumbent.status = SolveStatus::Feasible;
        }
    };

    if (!options.warmStart.empty() &&
        model.isFeasible(options.warmStart, true)) {
        consider(options.warmStart);
    }

    std::vector<Node> stack;
    stack.push_back(Node{root_lower, root_upper, -kInfinity});

    long nodes = 0;
    bool exhausted = true;
    while (!stack.empty()) {
        if (Clock::now() > deadline || nodes >= options.maxNodes) {
            exhausted = false;
            break;
        }
        Node node = std::move(stack.back());
        stack.pop_back();
        ++nodes;

        if (node.bound >= incumbent_min - 1e-9)
            continue; // pruned by bound

        Solution relax = solver.solve(&node.lower, &node.upper);
        if (relax.status == SolveStatus::Infeasible)
            continue;
        if (relax.status == SolveStatus::Limit) {
            exhausted = false;
            continue;
        }
        if (relax.status == SolveStatus::Unbounded) {
            // An unbounded relaxation at the root means the MILP is
            // unbounded or ill-posed; report it directly.
            incumbent.status = SolveStatus::Unbounded;
            return incumbent;
        }

        const double relax_min = sense * relax.objective;
        if (relax_min >= incumbent_min - 1e-9)
            continue;

        // Most fractional integer variable.
        int branch_var = -1;
        double worst_frac = options.integralityTol;
        for (size_t j = 0; j < model.varCount(); ++j) {
            if (!model.vars()[j].integer)
                continue;
            const double v = relax.values[j];
            const double frac = std::abs(v - std::round(v));
            if (frac > worst_frac) {
                const double dist = std::min(v - std::floor(v),
                                             std::ceil(v) - v);
                if (branch_var < 0 || dist > worst_frac) {
                    worst_frac = dist;
                    branch_var = static_cast<int>(j);
                }
            }
        }

        if (branch_var < 0) {
            // Integral relaxation: a candidate incumbent.
            consider(relax.values);
            continue;
        }

        // Primal heuristic before branching.
        std::vector<double> rounded;
        if (tryRounding(model, relax.values, node.lower, node.upper,
                        rounded)) {
            consider(rounded);
        }

        const double v = relax.values[branch_var];
        Node down = node;
        down.upper[branch_var] = std::floor(v);
        down.bound = relax_min;
        Node up = node;
        up.lower[branch_var] = std::ceil(v);
        up.bound = relax_min;

        // DFS, exploring the side nearer the relaxation value first.
        if (v - std::floor(v) <= 0.5) {
            stack.push_back(std::move(up));
            stack.push_back(std::move(down));
        } else {
            stack.push_back(std::move(down));
            stack.push_back(std::move(up));
        }
    }

    if (incumbent.hasSolution()) {
        if (exhausted)
            incumbent.status = SolveStatus::Optimal;
        return incumbent;
    }
    if (exhausted)
        incumbent.status = SolveStatus::Infeasible;
    return incumbent;
}

} // namespace phoenix::lp
