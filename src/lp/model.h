/**
 * @file
 * Linear/integer programming model builder.
 *
 * The paper solves its LPFair/LPCost formulations and the frequency-based
 * tagging coverage LP with Gurobi. This repository replaces Gurobi with an
 * in-tree solver: this header defines the model representation shared by
 * the simplex (lp/simplex.h) and branch-and-bound (lp/branch_bound.h)
 * layers.
 */

#ifndef PHOENIX_LP_MODEL_H
#define PHOENIX_LP_MODEL_H

#include <limits>
#include <string>
#include <vector>

namespace phoenix::lp {

/** Index of a decision variable within a Model. */
using VarId = int;

/** Relation of a linear constraint to its right-hand side. */
enum class Relation { LessEq, GreaterEq, Equal };

/** One term of a linear expression. */
struct LinTerm
{
    VarId var;
    double coef;
};

/** Sparse linear expression: sum of coef * var. */
using LinExpr = std::vector<LinTerm>;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** A decision variable with bounds and an integrality marker. */
struct Variable
{
    double lower = 0.0;
    double upper = kInfinity;
    bool integer = false;
    std::string name;
};

/** A linear constraint expr (relation) rhs. */
struct Constraint
{
    LinExpr expr;
    Relation rel = Relation::LessEq;
    double rhs = 0.0;
};

/** Termination status of a solve. */
enum class SolveStatus {
    Optimal,      //!< proven optimal (within tolerance)
    Feasible,     //!< a feasible incumbent, optimality not proven
    Infeasible,   //!< no feasible point exists
    Unbounded,    //!< objective unbounded
    Limit,        //!< hit an iteration/node/time limit with no incumbent
};

/** Result of an LP or MILP solve. */
struct Solution
{
    SolveStatus status = SolveStatus::Limit;
    double objective = 0.0;
    std::vector<double> values;

    bool hasSolution() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::Feasible;
    }
};

/**
 * An optimization model. Build variables and constraints, then hand the
 * model to SimplexSolver (LP relaxation) or MilpSolver (respecting
 * integrality).
 */
class Model
{
  public:
    /** Add a continuous variable in [lower, upper]. */
    VarId addVar(double lower, double upper, const std::string &name = "");

    /** Add a binary (0/1 integer) variable. */
    VarId addBinaryVar(const std::string &name = "");

    /** Add a general integer variable in [lower, upper]. */
    VarId addIntVar(double lower, double upper,
                    const std::string &name = "");

    /** Add a constraint; returns its row index. */
    int addConstraint(LinExpr expr, Relation rel, double rhs);

    /** Set the objective; @p maximize selects the sense. */
    void setObjective(LinExpr expr, bool maximize);

    size_t varCount() const { return vars_.size(); }
    size_t constraintCount() const { return constraints_.size(); }

    const std::vector<Variable> &vars() const { return vars_; }
    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }
    const LinExpr &objective() const { return objective_; }
    bool maximize() const { return maximize_; }

    /** Evaluate the objective at a point. */
    double objectiveValue(const std::vector<double> &point) const;

    /**
     * Check primal feasibility of a point against bounds, constraints
     * and (optionally) integrality, within @p tol.
     */
    bool isFeasible(const std::vector<double> &point,
                    bool check_integrality, double tol = 1e-6) const;

  private:
    std::vector<Variable> vars_;
    std::vector<Constraint> constraints_;
    LinExpr objective_;
    bool maximize_ = false;
};

} // namespace phoenix::lp

#endif // PHOENIX_LP_MODEL_H
