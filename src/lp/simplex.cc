#include "simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

namespace phoenix::lp {

namespace {

using Clock = std::chrono::steady_clock;

/** Where a nonbasic variable currently sits. */
enum class VarState : uint8_t { Basic, AtLower, AtUpper, AtZero };

/**
 * Internal working form:
 *   minimize c'x  s.t.  A x + s = b,  l <= x <= u, slack bounds by
 *   relation, plus phase-1 artificials for rows whose slack start is
 *   out of bounds.
 */
class Tableau
{
  public:
    Tableau(const Model &model, const SimplexOptions &options,
            const std::vector<double> *lower,
            const std::vector<double> *upper)
        : options_(options)
    {
        const size_t n = model.varCount();
        m_ = model.constraintCount();

        cols_.resize(n + m_);
        lb_.resize(n + m_);
        ub_.resize(n + m_);
        cost_.assign(n + m_, 0.0);
        b_.resize(m_);

        const double sense = model.maximize() ? -1.0 : 1.0;
        for (const auto &term : model.objective())
            cost_[term.var] += sense * term.coef;

        for (size_t j = 0; j < n; ++j) {
            lb_[j] = lower ? (*lower)[j] : model.vars()[j].lower;
            ub_[j] = upper ? (*upper)[j] : model.vars()[j].upper;
        }

        for (size_t i = 0; i < m_; ++i) {
            const auto &con = model.constraints()[i];
            for (const auto &term : con.expr) {
                cols_[term.var].emplace_back(static_cast<int>(i),
                                             term.coef);
            }
            b_[i] = con.rhs;
            const size_t slack = n + i;
            cols_[slack].emplace_back(static_cast<int>(i), 1.0);
            switch (con.rel) {
              case Relation::LessEq:
                lb_[slack] = 0.0;
                ub_[slack] = kInfinity;
                break;
              case Relation::GreaterEq:
                lb_[slack] = -kInfinity;
                ub_[slack] = 0.0;
                break;
              case Relation::Equal:
                lb_[slack] = 0.0;
                ub_[slack] = 0.0;
                break;
            }
        }
        structurals_ = n;
    }

    /** Run two-phase simplex; fill @p out with structural values. */
    SolveStatus
    run(std::vector<double> &out, double &objective,
        const Model &model)
    {
        deadline_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(options_.timeLimitSec));

        if (!initialize())
            return SolveStatus::Infeasible;

        if (artificialCount_ > 0) {
            // Phase 1: minimize the sum of artificials.
            std::vector<double> phase1(cols_.size(), 0.0);
            for (size_t j = cols_.size() - artificialCount_;
                 j < cols_.size(); ++j) {
                phase1[j] = 1.0;
            }
            const SolveStatus p1 = iterate(phase1);
            if (p1 == SolveStatus::Limit)
                return SolveStatus::Limit;
            double infeas = 0.0;
            for (size_t j = cols_.size() - artificialCount_;
                 j < cols_.size(); ++j) {
                infeas += value(j);
            }
            if (infeas > 1e-6)
                return SolveStatus::Infeasible;
            // Fix artificials at zero for phase 2.
            for (size_t j = cols_.size() - artificialCount_;
                 j < cols_.size(); ++j) {
                lb_[j] = 0.0;
                ub_[j] = 0.0;
            }
        }

        const SolveStatus p2 = iterate(cost_);
        if (p2 != SolveStatus::Optimal)
            return p2;

        out.assign(structurals_, 0.0);
        for (size_t j = 0; j < structurals_; ++j)
            out[j] = value(j);
        objective = model.objectiveValue(out);
        return SolveStatus::Optimal;
    }

  private:
    /** Current value of variable j. */
    double
    value(size_t j) const
    {
        switch (state_[j]) {
          case VarState::Basic:
            return xB_[basisRow_[j]];
          case VarState::AtLower:
            return lb_[j];
          case VarState::AtUpper:
            return ub_[j];
          case VarState::AtZero:
            return 0.0;
        }
        return 0.0;
    }

    /** Nonbasic rest value for variable j (closest finite bound). */
    double
    restValue(size_t j) const
    {
        if (std::isfinite(lb_[j]))
            return lb_[j];
        if (std::isfinite(ub_[j]))
            return ub_[j];
        return 0.0;
    }

    VarState
    restState(size_t j) const
    {
        if (std::isfinite(lb_[j]))
            return VarState::AtLower;
        if (std::isfinite(ub_[j]))
            return VarState::AtUpper;
        return VarState::AtZero;
    }

    /**
     * Build the starting basis: slacks where feasible, artificials
     * elsewhere. Returns false only on structural nonsense (a variable
     * with lower > upper).
     */
    bool
    initialize()
    {
        for (size_t j = 0; j < cols_.size(); ++j) {
            if (lb_[j] > ub_[j] + options_.tol)
                return false;
        }

        const size_t pre_artificial = cols_.size();
        state_.assign(cols_.size(), VarState::AtLower);
        for (size_t j = 0; j < cols_.size(); ++j)
            state_[j] = restState(j);

        // Residual per row with every variable at its rest value.
        std::vector<double> residual = b_;
        for (size_t j = 0; j < pre_artificial; ++j) {
            const double xj = restValue(j);
            if (xj == 0.0)
                continue;
            for (const auto &[row, coef] : cols_[j])
                residual[row] -= coef * xj;
        }

        basis_.assign(m_, -1);
        xB_.assign(m_, 0.0);
        basisRow_.assign(cols_.size(), 0);
        artificialCount_ = 0;

        for (size_t i = 0; i < m_; ++i) {
            const size_t slack = structurals_ + i;
            // Slack column is +1 in row i only; making it basic gives it
            // value restValue(slack) + residual. Check bounds.
            const double slack_value = restValue(slack) + residual[i];
            if (slack_value >= lb_[slack] - options_.tol &&
                slack_value <= ub_[slack] + options_.tol) {
                basis_[i] = static_cast<int>(slack);
                xB_[i] = slack_value;
                state_[slack] = VarState::Basic;
                basisRow_[slack] = i;
            } else {
                // Artificial with sign matching the residual keeps the
                // artificial value nonnegative. The slack stays nonbasic
                // at its rest bound and the artificial absorbs the rest
                // of the residual.
                const double sign = residual[i] >= 0.0 ? 1.0 : -1.0;
                cols_.emplace_back();
                cols_.back().emplace_back(static_cast<int>(i), sign);
                lb_.push_back(0.0);
                ub_.push_back(kInfinity);
                cost_.push_back(0.0);
                state_.push_back(VarState::Basic);
                basisRow_.push_back(i);
                basis_[i] = static_cast<int>(cols_.size() - 1);
                xB_[i] = std::abs(residual[i]);
                ++artificialCount_;
            }
        }

        buildInverse();
        return true;
    }

    /** Rebuild the dense basis inverse by Gauss-Jordan elimination. */
    void
    buildInverse()
    {
        binv_.assign(m_ * m_, 0.0);
        std::vector<double> mat(m_ * m_, 0.0);
        for (size_t i = 0; i < m_; ++i) {
            binv_[i * m_ + i] = 1.0;
            for (const auto &[row, coef] : cols_[basis_[i]])
                mat[static_cast<size_t>(row) * m_ + i] = coef;
        }
        // Gauss-Jordan with partial pivoting on mat, mirrored into binv_.
        for (size_t col = 0; col < m_; ++col) {
            size_t pivot = col;
            double best = std::abs(mat[col * m_ + col]);
            for (size_t r = col + 1; r < m_; ++r) {
                const double cand = std::abs(mat[r * m_ + col]);
                if (cand > best) {
                    best = cand;
                    pivot = r;
                }
            }
            if (best < 1e-12)
                continue; // singular basis; tolerate, refactor later
            if (pivot != col) {
                for (size_t c = 0; c < m_; ++c) {
                    std::swap(mat[pivot * m_ + c], mat[col * m_ + c]);
                    std::swap(binv_[pivot * m_ + c], binv_[col * m_ + c]);
                }
            }
            const double inv = 1.0 / mat[col * m_ + col];
            for (size_t c = 0; c < m_; ++c) {
                mat[col * m_ + c] *= inv;
                binv_[col * m_ + c] *= inv;
            }
            for (size_t r = 0; r < m_; ++r) {
                if (r == col)
                    continue;
                const double factor = mat[r * m_ + col];
                if (factor == 0.0)
                    continue;
                for (size_t c = 0; c < m_; ++c) {
                    mat[r * m_ + c] -= factor * mat[col * m_ + c];
                    binv_[r * m_ + c] -= factor * binv_[col * m_ + c];
                }
            }
        }
        recomputeBasics();
    }

    /** xB = Binv * (b - sum_nonbasic A_j x_j). */
    void
    recomputeBasics()
    {
        std::vector<double> rhs = b_;
        for (size_t j = 0; j < cols_.size(); ++j) {
            if (state_[j] == VarState::Basic)
                continue;
            const double xj = value(j);
            if (xj == 0.0)
                continue;
            for (const auto &[row, coef] : cols_[j])
                rhs[row] -= coef * xj;
        }
        for (size_t i = 0; i < m_; ++i) {
            double acc = 0.0;
            for (size_t k = 0; k < m_; ++k)
                acc += binv_[i * m_ + k] * rhs[k];
            xB_[i] = acc;
        }
    }

    /** Core simplex loop minimizing the given cost vector. */
    SolveStatus
    iterate(const std::vector<double> &cost)
    {
        const double tol = options_.tol;
        long iters_since_refactor = 0;
        long stall = 0;

        for (long iter = 0; iter < options_.maxIterations; ++iter) {
            if ((iter & 0x3f) == 0 && Clock::now() > deadline_)
                return SolveStatus::Limit;

            // y = cB' Binv
            std::vector<double> y(m_, 0.0);
            for (size_t i = 0; i < m_; ++i) {
                const double cb = cost[basis_[i]];
                if (cb == 0.0)
                    continue;
                for (size_t k = 0; k < m_; ++k)
                    y[k] += cb * binv_[i * m_ + k];
            }

            // Pricing.
            const bool bland = stall > 2000;
            int entering = -1;
            double best_score = tol;
            int direction = 0; // +1 increase, -1 decrease
            for (size_t j = 0; j < cols_.size(); ++j) {
                if (state_[j] == VarState::Basic)
                    continue;
                if (ub_[j] - lb_[j] < tol &&
                    std::isfinite(lb_[j]) && std::isfinite(ub_[j])) {
                    continue; // fixed variable
                }
                double dj = cost[j];
                for (const auto &[row, coef] : cols_[j])
                    dj -= y[row] * coef;

                int dir = 0;
                if (state_[j] == VarState::AtLower && dj < -tol)
                    dir = +1;
                else if (state_[j] == VarState::AtUpper && dj > tol)
                    dir = -1;
                else if (state_[j] == VarState::AtZero &&
                         std::abs(dj) > tol)
                    dir = dj < 0.0 ? +1 : -1;
                if (dir == 0)
                    continue;

                if (bland) {
                    entering = static_cast<int>(j);
                    direction = dir;
                    break;
                }
                if (std::abs(dj) > best_score) {
                    best_score = std::abs(dj);
                    entering = static_cast<int>(j);
                    direction = dir;
                }
            }

            if (entering < 0)
                return SolveStatus::Optimal;

            // alpha = Binv * A_entering
            std::vector<double> alpha(m_, 0.0);
            for (const auto &[row, coef] : cols_[entering]) {
                for (size_t i = 0; i < m_; ++i)
                    alpha[i] += binv_[i * m_ + row] * coef;
            }

            // Ratio test: movement t >= 0 of the entering variable in
            // `direction`; basic i changes by -direction * alpha_i * t.
            double t_max = kInfinity;
            if (std::isfinite(lb_[entering]) &&
                std::isfinite(ub_[entering])) {
                t_max = ub_[entering] - lb_[entering]; // bound flip span
            }
            int leaving_row = -1;
            double leaving_pivot = 0.0;
            bool leaving_to_upper = false;
            for (size_t i = 0; i < m_; ++i) {
                const double rate = -direction * alpha[i];
                if (std::abs(rate) < 1e-9)
                    continue;
                const int bj = basis_[i];
                double limit;
                bool to_upper;
                if (rate < 0.0) {
                    if (!std::isfinite(lb_[bj]))
                        continue;
                    limit = (xB_[i] - lb_[bj]) / (-rate);
                    to_upper = false;
                } else {
                    if (!std::isfinite(ub_[bj]))
                        continue;
                    limit = (ub_[bj] - xB_[i]) / rate;
                    to_upper = true;
                }
                if (limit < -1e-9)
                    limit = 0.0;
                if (limit < t_max - 1e-12 ||
                    (limit < t_max + 1e-12 && leaving_row >= 0 &&
                     std::abs(alpha[i]) > std::abs(leaving_pivot))) {
                    t_max = std::max(limit, 0.0);
                    leaving_row = static_cast<int>(i);
                    leaving_pivot = alpha[i];
                    leaving_to_upper = to_upper;
                }
            }

            if (!std::isfinite(t_max))
                return SolveStatus::Unbounded;

            stall = t_max < 1e-10 ? stall + 1 : 0;

            // Apply the move to basic values.
            if (t_max > 0.0) {
                for (size_t i = 0; i < m_; ++i)
                    xB_[i] -= direction * alpha[i] * t_max;
            }

            if (leaving_row < 0) {
                // Pure bound flip of the entering variable.
                state_[entering] = direction > 0 ? VarState::AtUpper
                                                 : VarState::AtLower;
                continue;
            }

            // Pivot: entering becomes basic, leaving goes to a bound.
            const int leaving = basis_[leaving_row];
            state_[leaving] = leaving_to_upper ? VarState::AtUpper
                                               : VarState::AtLower;
            const double entering_start =
                state_[entering] == VarState::AtUpper ? ub_[entering]
                : state_[entering] == VarState::AtLower ? lb_[entering]
                : 0.0;
            basis_[leaving_row] = entering;
            state_[entering] = VarState::Basic;
            basisRow_[entering] = leaving_row;
            xB_[leaving_row] = entering_start + direction * t_max;

            // Update the basis inverse (eta transformation).
            const double pivot = leaving_pivot;
            if (std::abs(pivot) < 1e-10 ||
                ++iters_since_refactor >= 200) {
                buildInverse();
                iters_since_refactor = 0;
            } else {
                const size_t r = static_cast<size_t>(leaving_row);
                const double inv = 1.0 / pivot;
                for (size_t c = 0; c < m_; ++c)
                    binv_[r * m_ + c] *= inv;
                for (size_t i = 0; i < m_; ++i) {
                    if (i == r)
                        continue;
                    const double factor = alpha[i];
                    if (factor == 0.0)
                        continue;
                    for (size_t c = 0; c < m_; ++c)
                        binv_[i * m_ + c] -= factor * binv_[r * m_ + c];
                }
            }
        }
        return SolveStatus::Limit;
    }

    SimplexOptions options_;
    size_t m_ = 0;
    size_t structurals_ = 0;
    size_t artificialCount_ = 0;

    std::vector<std::vector<std::pair<int, double>>> cols_;
    std::vector<double> lb_, ub_, cost_, b_;

    std::vector<int> basis_;       //!< var index per basis row
    std::vector<double> xB_;       //!< basic variable values
    std::vector<VarState> state_;  //!< per-variable state
    std::vector<size_t> basisRow_; //!< row of each basic variable
    std::vector<double> binv_;     //!< dense m x m basis inverse

    Clock::time_point deadline_;
};

} // namespace

SimplexSolver::SimplexSolver(const Model &model, SimplexOptions options)
    : model_(model), options_(options)
{
}

Solution
SimplexSolver::solve(const std::vector<double> *lower,
                     const std::vector<double> *upper) const
{
    Solution solution;
    Tableau tableau(model_, options_, lower, upper);
    solution.status =
        tableau.run(solution.values, solution.objective, model_);
    return solution;
}

} // namespace phoenix::lp
