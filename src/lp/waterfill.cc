#include "waterfill.h"

#include <algorithm>
#include <cstddef>

namespace phoenix::lp {

std::vector<double>
waterFill(const std::vector<double> &demands, double capacity)
{
    return weightedWaterFill(
        demands, std::vector<double>(demands.size(), 1.0), capacity);
}

std::vector<double>
weightedWaterFill(const std::vector<double> &demands,
                  const std::vector<double> &weights, double capacity)
{
    const size_t n = demands.size();
    std::vector<double> share(n, 0.0);
    if (n == 0 || capacity <= 0.0)
        return share;

    std::vector<bool> frozen(n, false);
    double remaining = capacity;
    size_t active = n;

    while (active > 0 && remaining > 1e-12) {
        double weight_sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (!frozen[i])
                weight_sum += std::max(weights[i], 0.0);
        }
        if (weight_sum <= 0.0)
            break;

        // The level at which the next application saturates.
        const double level = remaining / weight_sum;
        bool saturated_any = false;
        for (size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            const double offer = level * std::max(weights[i], 0.0);
            const double need = demands[i] - share[i];
            if (need <= offer + 1e-12) {
                share[i] = demands[i];
                remaining -= need;
                frozen[i] = true;
                --active;
                saturated_any = true;
            }
        }
        if (!saturated_any) {
            // Nobody saturates: hand out the level and finish.
            for (size_t i = 0; i < n; ++i) {
                if (frozen[i])
                    continue;
                const double offer = level * std::max(weights[i], 0.0);
                share[i] += offer;
                remaining -= offer;
            }
            break;
        }
    }
    return share;
}

} // namespace phoenix::lp
