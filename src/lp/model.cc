#include "model.h"

#include <cmath>

namespace phoenix::lp {

VarId
Model::addVar(double lower, double upper, const std::string &name)
{
    vars_.push_back(Variable{lower, upper, false, name});
    return static_cast<VarId>(vars_.size() - 1);
}

VarId
Model::addBinaryVar(const std::string &name)
{
    vars_.push_back(Variable{0.0, 1.0, true, name});
    return static_cast<VarId>(vars_.size() - 1);
}

VarId
Model::addIntVar(double lower, double upper, const std::string &name)
{
    vars_.push_back(Variable{lower, upper, true, name});
    return static_cast<VarId>(vars_.size() - 1);
}

int
Model::addConstraint(LinExpr expr, Relation rel, double rhs)
{
    constraints_.push_back(Constraint{std::move(expr), rel, rhs});
    return static_cast<int>(constraints_.size() - 1);
}

void
Model::setObjective(LinExpr expr, bool maximize)
{
    objective_ = std::move(expr);
    maximize_ = maximize;
}

double
Model::objectiveValue(const std::vector<double> &point) const
{
    double value = 0.0;
    for (const auto &term : objective_) {
        if (term.var >= 0 &&
            static_cast<size_t>(term.var) < point.size()) {
            value += term.coef * point[term.var];
        }
    }
    return value;
}

bool
Model::isFeasible(const std::vector<double> &point, bool check_integrality,
                  double tol) const
{
    if (point.size() != vars_.size())
        return false;
    for (size_t i = 0; i < vars_.size(); ++i) {
        const auto &v = vars_[i];
        if (point[i] < v.lower - tol || point[i] > v.upper + tol)
            return false;
        if (check_integrality && v.integer &&
            std::abs(point[i] - std::round(point[i])) > tol) {
            return false;
        }
    }
    for (const auto &con : constraints_) {
        double lhs = 0.0;
        for (const auto &term : con.expr)
            lhs += term.coef * point[term.var];
        switch (con.rel) {
          case Relation::LessEq:
            if (lhs > con.rhs + tol)
                return false;
            break;
          case Relation::GreaterEq:
            if (lhs < con.rhs - tol)
                return false;
            break;
          case Relation::Equal:
            if (std::abs(lhs - con.rhs) > tol)
                return false;
            break;
        }
    }
    return true;
}

} // namespace phoenix::lp
