/**
 * @file
 * Bounded-variable revised primal simplex.
 *
 * Solves the LP relaxation of a lp::Model. The implementation is a dense
 * two-phase revised simplex with explicit basis inverse, periodic
 * refactorization, bound flips, and a Bland's-rule fallback against
 * cycling. It is exact at the scales the paper evaluates LPFair/LPCost
 * (hundreds to a few thousand variables) and deliberately exhibits the
 * same scaling wall the paper reports for its Gurobi formulation at
 * ~1000-node clusters (Fig 8b): solves honour a wall-clock limit and
 * report SolveStatus::Limit when they exceed it.
 */

#ifndef PHOENIX_LP_SIMPLEX_H
#define PHOENIX_LP_SIMPLEX_H

#include <vector>

#include "lp/model.h"

namespace phoenix::lp {

/** Tunables for a simplex solve. */
struct SimplexOptions
{
    double timeLimitSec = 60.0;
    long maxIterations = 500000;
    double tol = 1e-7;
};

/**
 * LP solver facade. Construct once per model; solve() may be called
 * repeatedly with tightened variable bounds (used by branch & bound).
 */
class SimplexSolver
{
  public:
    explicit SimplexSolver(const Model &model,
                           SimplexOptions options = SimplexOptions());

    /**
     * Solve the LP relaxation. When @p lower / @p upper are non-null
     * they override the model's variable bounds (sizes must equal
     * varCount()).
     */
    Solution solve(const std::vector<double> *lower = nullptr,
                   const std::vector<double> *upper = nullptr) const;

  private:
    const Model &model_;
    SimplexOptions options_;
};

} // namespace phoenix::lp

#endif // PHOENIX_LP_SIMPLEX_H
