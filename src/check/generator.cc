#include "generator.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace phoenix::check {

using util::Rng;

namespace {

/** Uniform draw from the 0.25 grid in [lo, hi]. */
double
quarterGrid(Rng &rng, double lo, double hi)
{
    const auto lo_q = static_cast<int64_t>(lo * 4.0);
    const auto hi_q = static_cast<int64_t>(hi * 4.0);
    return static_cast<double>(rng.uniformInt(lo_q, hi_q)) * 0.25;
}

sim::Application
generateApp(Rng &rng, sim::AppId id, size_t index,
            const GeneratorOptions &options)
{
    sim::Application app;
    app.id = id;
    app.name = "app" + std::to_string(index);
    app.pricePerUnit = quarterGrid(rng, 0.25, 3.0);
    app.phoenixEnabled = !rng.bernoulli(options.partialTaggingProbability);

    const auto service_count = static_cast<size_t>(
        rng.uniformInt(1, options.maxServicesPerApp));
    for (size_t m = 0; m < service_count; ++m) {
        sim::Microservice ms;
        ms.id = static_cast<sim::MsId>(m);
        ms.name = "ms" + std::to_string(m);
        ms.cpu = quarterGrid(rng, 0.25, options.maxServiceCpu);
        ms.criticality = static_cast<int>(rng.uniformInt(1, 4));
        ms.replicas = 1;
        ms.quorum = 0;
        if (rng.bernoulli(options.multiReplicaProbability)) {
            ms.replicas = static_cast<int>(rng.uniformInt(2, 3));
            if (rng.bernoulli(0.5))
                ms.quorum = static_cast<int>(
                    rng.uniformInt(1, ms.replicas));
        }
        // Placement policy (guarded draws: probability 0 consumes no
        // randomness, so classic streams stay byte-identical).
        if (options.zoneSpreadProbability > 0.0 &&
            rng.bernoulli(options.zoneSpreadProbability)) {
            if (ms.replicas < 2)
                ms.replicas = static_cast<int>(rng.uniformInt(2, 3));
            const int64_t spread_max =
                std::min<int64_t>(ms.replicas,
                                  std::max(options.topologyZones, 2));
            ms.minZoneSpread =
                static_cast<int>(rng.uniformInt(2, spread_max));
        }
        if (options.pdbProbability > 0.0 &&
            rng.bernoulli(options.pdbProbability)) {
            if (ms.replicas < 2)
                ms.replicas = static_cast<int>(rng.uniformInt(2, 3));
            ms.pdbMaxUnavailable =
                static_cast<int>(rng.uniformInt(1, ms.replicas));
        }
        if (options.nodeCapProbability > 0.0 &&
            rng.bernoulli(options.nodeCapProbability)) {
            ms.maxPerNode = static_cast<int>(rng.uniformInt(1, 2));
        }
        app.services.push_back(ms);
    }

    if (options.antiAffinityProbability > 0.0 &&
        rng.bernoulli(options.antiAffinityProbability)) {
        sim::PlacementGroup group;
        group.id = 0;
        group.maxPerNode = static_cast<int>(rng.uniformInt(1, 2));
        if (rng.bernoulli(0.4))
            group.maxPerZone = static_cast<int>(rng.uniformInt(2, 4));
        app.placementGroups.push_back(group);
        bool any = false;
        for (auto &ms : app.services) {
            if (rng.bernoulli(0.5)) {
                ms.antiAffinityGroup = group.id;
                any = true;
            }
        }
        if (!any && !app.services.empty())
            app.services.front().antiAffinityGroup = group.id;
    }

    if (service_count >= 2 && rng.bernoulli(options.dagProbability)) {
        app.dag = graph::DiGraph(service_count);
        // Edges only point forward (i < j), so the graph is acyclic by
        // construction.
        for (graph::NodeId i = 0; i < service_count; ++i) {
            for (graph::NodeId j = i + 1; j < service_count; ++j) {
                if (rng.bernoulli(options.edgeProbability))
                    app.dag.addEdge(i, j);
            }
        }
        app.hasDependencyGraph = app.dag.edgeCount() > 0;
    }
    return app;
}

} // namespace

CheckCase
generateCase(uint64_t seed, const GeneratorOptions &options)
{
    Rng rng(seed);
    CheckCase out;
    out.seed = seed;

    const auto node_count = static_cast<size_t>(
        rng.uniformInt(options.minNodes, options.maxNodes));
    for (size_t n = 0; n < node_count; ++n) {
        out.nodeCapacities.push_back(static_cast<double>(
            rng.uniformInt(2, static_cast<int64_t>(
                                  options.maxNodeCapacity))));
    }

    // App ids are usually 0..n-1, but a slice of the stream uses
    // sparse ids (gaps, not starting at zero) because index/id mixups
    // are a recurring bug class in the schemes.
    const auto app_count = static_cast<size_t>(
        rng.uniformInt(options.minApps, options.maxApps));
    const bool sparse_ids = rng.bernoulli(options.sparseAppIdProbability);
    sim::AppId next_id = 0;
    for (size_t a = 0; a < app_count; ++a) {
        if (sparse_ids)
            next_id += static_cast<sim::AppId>(rng.uniformInt(1, 7));
        out.apps.push_back(generateApp(rng, next_id, a, options));
        ++next_id;
    }

    // Constrained cases carry explicit zone labels so spread
    // constraints bind to a real topology (and zone-scoped faults hit
    // the same zones the constraints name). No rng draws here.
    if (out.constrained() && options.topologyZones > 1) {
        const auto zones =
            static_cast<uint32_t>(options.topologyZones);
        for (size_t n = 0; n < node_count; ++n)
            out.nodeZones.push_back(static_cast<uint32_t>(n) % zones);
    }

    // Failure script. Lifecycle cases leave time for every pod to get
    // scheduled and reach Running (podStartupMax is 60s) before the
    // first fault lands.
    out.lifecycle = rng.bernoulli(options.lifecycleProbability);
    const double t0 = out.lifecycle ? 200.0 : 0.0;

    std::vector<sim::NodeId> failed;
    const bool zone_local =
        options.zoneFailureZones > 1 &&
        node_count > static_cast<size_t>(options.zoneFailureZones) &&
        rng.bernoulli(options.zoneFailureProbability);
    if (zone_local) {
        // Fail exactly one capacity-index zone: every node with one
        // residue modulo the zone count. With zones > 1 at least one
        // other residue class survives, so the cluster never empties.
        const auto zones =
            static_cast<sim::NodeId>(options.zoneFailureZones);
        const auto residue = static_cast<sim::NodeId>(
            rng.uniformInt(0, static_cast<int64_t>(zones) - 1));
        for (sim::NodeId n = 0; n < node_count; ++n) {
            if (n % zones == residue)
                failed.push_back(n);
        }
    } else {
        std::vector<sim::NodeId> order(node_count);
        std::iota(order.begin(), order.end(), sim::NodeId{0});
        rng.shuffle(order);
        auto fail_count = static_cast<size_t>(
            rng.uniformInt(1, static_cast<int64_t>(node_count)));
        if (fail_count == node_count && rng.bernoulli(0.8))
            --fail_count; // usually keep at least one node alive
        if (fail_count == 0)
            fail_count = 1;
        failed.assign(order.begin(),
                      order.begin() + static_cast<long>(fail_count));
    }

    CaseStep fault;
    fault.at = t0;
    fault.nodes = failed;
    if (rng.bernoulli(options.flapProbability)) {
        fault.kind = CaseStep::Kind::Flap;
        fault.downtime = static_cast<double>(rng.uniformInt(30, 120));
    } else {
        fault.kind = CaseStep::Kind::Fail;
    }
    out.steps.push_back(fault);

    if (fault.kind == CaseStep::Kind::Fail &&
        rng.bernoulli(options.recoverProbability)) {
        CaseStep recover;
        recover.kind = CaseStep::Kind::Recover;
        recover.at = t0 + static_cast<double>(rng.uniformInt(60, 300));
        const auto recover_count = static_cast<size_t>(
            rng.uniformInt(1, static_cast<int64_t>(failed.size())));
        recover.nodes.assign(failed.begin(),
                             failed.begin() +
                                 static_cast<long>(recover_count));
        out.steps.push_back(recover);
    }

    // Extended fault taxonomy: observation/degradation faults layered
    // over (and overlapping) the base failure script. Targets may
    // coincide with failed nodes on purpose — partition and degrade
    // state is independent of kubelet health.
    const auto pick_nodes = [&rng, node_count](size_t max_count) {
        std::vector<sim::NodeId> order(node_count);
        std::iota(order.begin(), order.end(), sim::NodeId{0});
        rng.shuffle(order);
        const auto count = static_cast<size_t>(rng.uniformInt(
            1, static_cast<int64_t>(std::max<size_t>(max_count, 1))));
        order.resize(std::min(count, order.size()));
        return order;
    };

    if (rng.bernoulli(options.partitionProbability)) {
        CaseStep part;
        part.kind = CaseStep::Kind::Partition;
        part.at = t0 + static_cast<double>(rng.uniformInt(0, 120));
        // Always a healing window: the post-failure state nets out,
        // and the lifecycle oracle asserts readiness converges.
        part.downtime = static_cast<double>(rng.uniformInt(120, 360));
        part.nodes = pick_nodes(node_count / 2);
        out.steps.push_back(std::move(part));
    }

    if (rng.bernoulli(options.degradeProbability)) {
        CaseStep degrade;
        degrade.kind = CaseStep::Kind::Degrade;
        degrade.at = t0 + static_cast<double>(rng.uniformInt(0, 120));
        // 0.25-grid factors keep the scale-by-2 metamorphic relation
        // exact in binary floating point.
        degrade.factor =
            0.25 * static_cast<double>(rng.uniformInt(1, 3));
        // Mostly windowed; sometimes permanent (<= 0), which reshapes
        // the post-failure state the schemes plan against.
        degrade.downtime =
            rng.bernoulli(0.7)
                ? static_cast<double>(rng.uniformInt(120, 600))
                : 0.0;
        degrade.nodes = pick_nodes(node_count / 2);
        out.steps.push_back(std::move(degrade));
    }

    if (rng.bernoulli(options.outageProbability)) {
        CaseStep outage;
        outage.kind = CaseStep::Kind::Outage;
        outage.at = t0 + static_cast<double>(rng.uniformInt(0, 60));
        outage.downtime =
            static_cast<double>(rng.uniformInt(60, 240));
        out.steps.push_back(std::move(outage));
    }

    if (rng.bernoulli(options.skewProbability)) {
        CaseStep skew;
        skew.kind = CaseStep::Kind::Skew;
        skew.at = t0 + static_cast<double>(rng.uniformInt(0, 60));
        skew.nodes = pick_nodes(1);
        // Usually inside the grace period (node stays Ready); a slice
        // of the stream goes far past it to exercise NotReady-despite-
        // running and fresh-from-the-future masking.
        const double magnitude =
            rng.bernoulli(0.3)
                ? static_cast<double>(rng.uniformInt(150, 400))
                : static_cast<double>(rng.uniformInt(10, 50));
        skew.skew = rng.bernoulli(0.5) ? magnitude : -magnitude;
        out.steps.push_back(std::move(skew));
    }
    return out;
}

} // namespace phoenix::check
