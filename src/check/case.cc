#include "case.h"

#include <algorithm>
#include <sstream>

#include "util/json.h"

namespace phoenix::check {

using sim::ClusterState;
using sim::NodeId;
using util::JsonValue;

sim::ClusterState
CheckCase::emptyCluster() const
{
    ClusterState state;
    for (size_t n = 0; n < nodeCapacities.size(); ++n) {
        state.addNode(nodeCapacities[n],
                      n < nodeZones.size() ? nodeZones[n] : 0);
    }
    return state;
}

sim::Scenario
CheckCase::scenario() const
{
    sim::Scenario scenario;
    for (const CaseStep &step : steps) {
        switch (step.kind) {
        case CaseStep::Kind::Fail:
            scenario.failNodes(step.at, step.nodes);
            break;
        case CaseStep::Kind::Recover:
            scenario.recoverNodes(step.at, step.nodes);
            break;
        case CaseStep::Kind::Flap:
            for (NodeId node : step.nodes)
                scenario.flapKubelet(step.at, node, step.downtime);
            break;
        case CaseStep::Kind::Partition:
            scenario.partitionNodes(step.at, step.nodes,
                                    step.downtime);
            break;
        case CaseStep::Kind::Degrade:
            scenario.degradeNodes(step.at, step.nodes, step.factor,
                                  step.downtime);
            break;
        case CaseStep::Kind::Outage:
            scenario.apiOutage(step.at, step.downtime);
            break;
        case CaseStep::Kind::Skew:
            for (NodeId node : step.nodes)
                scenario.skewClock(step.at, node, step.skew);
            break;
        }
    }
    return scenario;
}

void
CheckCase::replaySteps(sim::ClusterState &state) const
{
    // Expand flaps into their stop/restart pair, then apply everything
    // in (time, script order) — matching the EventQueue's FIFO
    // tie-break for simultaneous events.
    struct Event
    {
        enum class What { Fail, Restore, Rescale };
        double at;
        size_t seq;
        What what;
        NodeId node;
        /** Rescale only: capacity multiplier (1.0 = restore). */
        double factor;
    };
    using What = Event::What;
    std::vector<Event> events;
    size_t seq = 0;
    for (const CaseStep &step : steps) {
        for (NodeId node : step.nodes) {
            switch (step.kind) {
            case CaseStep::Kind::Fail:
                events.push_back({step.at, seq++, What::Fail, node,
                                  1.0});
                break;
            case CaseStep::Kind::Recover:
                events.push_back({step.at, seq++, What::Restore, node,
                                  1.0});
                break;
            case CaseStep::Kind::Flap:
                events.push_back({step.at, seq++, What::Fail, node,
                                  1.0});
                events.push_back({step.at + step.downtime, seq++,
                                  What::Restore, node, 1.0});
                break;
            case CaseStep::Kind::Partition:
                // Control-plane view: the node fails; with a window,
                // it comes back once heartbeats resume.
                events.push_back({step.at, seq++, What::Fail, node,
                                  1.0});
                if (step.downtime > 0.0) {
                    events.push_back({step.at + step.downtime, seq++,
                                      What::Restore, node, 1.0});
                }
                break;
            case CaseStep::Kind::Degrade:
                events.push_back({step.at, seq++, What::Rescale, node,
                                  step.factor});
                if (step.downtime > 0.0) {
                    events.push_back({step.at + step.downtime, seq++,
                                      What::Rescale, node, 1.0});
                }
                break;
            case CaseStep::Kind::Outage:
            case CaseStep::Kind::Skew:
                // Observation/timing distortions only: the converged
                // post-failure state is unchanged.
                break;
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  return a.seq < b.seq;
              });
    // Original capacities, for lifting a degrade back to factor 1.
    std::map<NodeId, double> baseline;
    for (const Event &event : events) {
        if (event.node >= state.nodeCount())
            continue;
        switch (event.what) {
        case What::Fail:
            if (state.isHealthy(event.node))
                state.failNode(event.node);
            break;
        case What::Restore:
            if (!state.isHealthy(event.node))
                state.restoreNode(event.node);
            break;
        case What::Rescale: {
            const auto [it, inserted] = baseline.emplace(
                event.node, state.node(event.node).capacity);
            (void)inserted;
            state.setNodeCapacity(event.node,
                                  it->second * event.factor);
            break;
        }
        }
    }
}

namespace {

const char *
stepKindName(CaseStep::Kind kind)
{
    switch (kind) {
    case CaseStep::Kind::Fail: return "fail";
    case CaseStep::Kind::Recover: return "recover";
    case CaseStep::Kind::Flap: return "flap";
    case CaseStep::Kind::Partition: return "partition";
    case CaseStep::Kind::Degrade: return "degrade";
    case CaseStep::Kind::Outage: return "outage";
    case CaseStep::Kind::Skew: return "skew";
    }
    return "fail";
}

bool
kindHasWindow(CaseStep::Kind kind)
{
    return kind == CaseStep::Kind::Flap ||
           kind == CaseStep::Kind::Partition ||
           kind == CaseStep::Kind::Degrade ||
           kind == CaseStep::Kind::Outage;
}

} // namespace

std::string
CheckCase::toJson() const
{
    using util::jsonNumber;
    using util::jsonQuote;

    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": " << jsonQuote(name) << ",\n";
    os << "  \"notes\": " << jsonQuote(notes) << ",\n";
    // uint64 seeds do not fit a double; keep them textual.
    os << "  \"seed\": " << jsonQuote(std::to_string(seed)) << ",\n";
    os << "  \"lifecycle\": " << (lifecycle ? "true" : "false") << ",\n";
    os << "  \"nodes\": [";
    for (size_t n = 0; n < nodeCapacities.size(); ++n)
        os << (n ? "," : "") << jsonNumber(nodeCapacities[n]);
    os << "],\n";
    if (!nodeZones.empty()) {
        os << "  \"zones\": [";
        for (size_t n = 0; n < nodeZones.size(); ++n)
            os << (n ? "," : "") << nodeZones[n];
        os << "],\n";
    }
    os << "  \"apps\": [";
    for (size_t a = 0; a < apps.size(); ++a) {
        const sim::Application &app = apps[a];
        os << (a ? ",\n    " : "\n    ");
        os << "{\"id\": " << app.id << ", \"price\": "
           << jsonNumber(app.pricePerUnit) << ", \"phoenix_enabled\": "
           << (app.phoenixEnabled ? "true" : "false");
        if (!app.placementGroups.empty()) {
            os << ",\n     \"groups\": [";
            for (size_t g = 0; g < app.placementGroups.size(); ++g) {
                const sim::PlacementGroup &group =
                    app.placementGroups[g];
                os << (g ? "," : "") << "{\"id\": " << group.id
                   << ", \"max_per_node\": " << group.maxPerNode
                   << ", \"max_per_zone\": " << group.maxPerZone
                   << "}";
            }
            os << "]";
        }
        os << ",\n     \"services\": [";
        for (size_t m = 0; m < app.services.size(); ++m) {
            const sim::Microservice &ms = app.services[m];
            os << (m ? "," : "") << "{\"cpu\": " << jsonNumber(ms.cpu)
               << ", \"criticality\": " << ms.criticality
               << ", \"replicas\": " << ms.replicas
               << ", \"quorum\": " << ms.quorum;
            // Placement policy fields ride along only when set, so
            // pre-topology corpus entries keep their exact bytes.
            if (ms.antiAffinityGroup >= 0)
                os << ", \"group\": " << ms.antiAffinityGroup;
            if (ms.maxPerNode > 0)
                os << ", \"max_per_node\": " << ms.maxPerNode;
            if (ms.maxPerZone > 0)
                os << ", \"max_per_zone\": " << ms.maxPerZone;
            if (ms.minZoneSpread > 0)
                os << ", \"min_zone_spread\": " << ms.minZoneSpread;
            if (ms.pdbMaxUnavailable >= 0)
                os << ", \"pdb_max_unavailable\": "
                   << ms.pdbMaxUnavailable;
            os << "}";
        }
        os << "],\n     \"edges\": [";
        bool first = true;
        if (app.hasDependencyGraph) {
            for (graph::NodeId u = 0; u < app.dag.nodeCount(); ++u) {
                for (graph::NodeId v : app.dag.successors(u)) {
                    os << (first ? "" : ",") << "[" << u << "," << v
                       << "]";
                    first = false;
                }
            }
        }
        os << "]}";
    }
    os << (apps.empty() ? "" : "\n  ") << "],\n";
    os << "  \"steps\": [";
    for (size_t s = 0; s < steps.size(); ++s) {
        const CaseStep &step = steps[s];
        os << (s ? ",\n    " : "\n    ");
        os << "{\"at\": " << jsonNumber(step.at) << ", \"kind\": "
           << jsonQuote(stepKindName(step.kind)) << ", \"nodes\": [";
        for (size_t n = 0; n < step.nodes.size(); ++n)
            os << (n ? "," : "") << step.nodes[n];
        os << "]";
        if (kindHasWindow(step.kind))
            os << ", \"downtime\": " << jsonNumber(step.downtime);
        if (step.kind == CaseStep::Kind::Degrade)
            os << ", \"factor\": " << jsonNumber(step.factor);
        if (step.kind == CaseStep::Kind::Skew)
            os << ", \"skew\": " << jsonNumber(step.skew);
        os << "}";
    }
    os << (steps.empty() ? "" : "\n  ") << "]\n";
    os << "}\n";
    return os.str();
}

namespace {

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
parseApp(const JsonValue &node, size_t index, sim::Application &app,
         std::string *error)
{
    if (!node.isObject())
        return fail(error, "app entry is not an object");
    app.id = static_cast<sim::AppId>(
        node.numberAt("id", static_cast<double>(index)));
    app.name = "app" + std::to_string(index);
    app.pricePerUnit = node.numberAt("price", 1.0);
    const JsonValue *enabled = node.field("phoenix_enabled");
    app.phoenixEnabled =
        !enabled || enabled->kind != JsonValue::Kind::Bool ||
        enabled->boolean;

    const JsonValue *services = node.field("services");
    if (!services || !services->isArray())
        return fail(error, "app has no services array");
    for (size_t m = 0; m < services->items.size(); ++m) {
        const JsonValue &entry = services->items[m];
        if (!entry.isObject())
            return fail(error, "service entry is not an object");
        sim::Microservice ms;
        ms.id = static_cast<sim::MsId>(m);
        ms.name = "ms" + std::to_string(m);
        ms.cpu = entry.numberAt("cpu", 1.0);
        ms.criticality =
            static_cast<int>(entry.numberAt("criticality", 1.0));
        ms.replicas = static_cast<int>(entry.numberAt("replicas", 1.0));
        ms.quorum = static_cast<int>(entry.numberAt("quorum", 0.0));
        ms.antiAffinityGroup =
            static_cast<int>(entry.numberAt("group", -1.0));
        ms.maxPerNode =
            static_cast<int>(entry.numberAt("max_per_node", 0.0));
        ms.maxPerZone =
            static_cast<int>(entry.numberAt("max_per_zone", 0.0));
        ms.minZoneSpread =
            static_cast<int>(entry.numberAt("min_zone_spread", 0.0));
        ms.pdbMaxUnavailable = static_cast<int>(
            entry.numberAt("pdb_max_unavailable", -1.0));
        if (ms.cpu < 0.0)
            return fail(error, "negative service cpu");
        if (ms.replicas < 1)
            ms.replicas = 1;
        app.services.push_back(ms);
    }

    const JsonValue *groups = node.field("groups");
    if (groups && groups->isArray()) {
        for (const JsonValue &entry : groups->items) {
            if (!entry.isObject())
                return fail(error, "group entry is not an object");
            sim::PlacementGroup group;
            group.id = static_cast<int>(entry.numberAt("id", 0.0));
            group.maxPerNode =
                static_cast<int>(entry.numberAt("max_per_node", 0.0));
            group.maxPerZone =
                static_cast<int>(entry.numberAt("max_per_zone", 0.0));
            app.placementGroups.push_back(group);
        }
    }

    const JsonValue *edges = node.field("edges");
    if (edges && edges->isArray() && !edges->items.empty()) {
        app.dag = graph::DiGraph(app.services.size());
        for (const JsonValue &edge : edges->items) {
            if (!edge.isArray() || edge.items.size() != 2 ||
                !edge.items[0].isNumber() || !edge.items[1].isNumber())
                return fail(error, "malformed dependency edge");
            const auto u =
                static_cast<graph::NodeId>(edge.items[0].number);
            const auto v =
                static_cast<graph::NodeId>(edge.items[1].number);
            if (u >= app.services.size() || v >= app.services.size())
                return fail(error, "dependency edge out of range");
            app.dag.addEdge(u, v);
        }
        if (!app.dag.isAcyclic())
            return fail(error, "dependency graph has a cycle");
        app.hasDependencyGraph = true;
    }
    return true;
}

bool
parseStep(const JsonValue &node, size_t node_count, CaseStep &step,
          std::string *error)
{
    if (!node.isObject())
        return fail(error, "step entry is not an object");
    step.at = node.numberAt("at", 0.0);
    const std::string kind = node.stringAt("kind", "fail");
    if (kind == "fail")
        step.kind = CaseStep::Kind::Fail;
    else if (kind == "recover")
        step.kind = CaseStep::Kind::Recover;
    else if (kind == "flap")
        step.kind = CaseStep::Kind::Flap;
    else if (kind == "partition")
        step.kind = CaseStep::Kind::Partition;
    else if (kind == "degrade")
        step.kind = CaseStep::Kind::Degrade;
    else if (kind == "outage")
        step.kind = CaseStep::Kind::Outage;
    else if (kind == "skew")
        step.kind = CaseStep::Kind::Skew;
    else
        return fail(error, "unknown step kind: " + kind);
    step.downtime = node.numberAt("downtime", 0.0);
    step.factor = node.numberAt("factor", 1.0);
    step.skew = node.numberAt("skew", 0.0);
    if (step.kind == CaseStep::Kind::Degrade &&
        (step.factor < sim::kMinDegradeFactor || step.factor > 1.0))
        return fail(error, "degrade factor out of range");
    const JsonValue *nodes = node.field("nodes");
    if (!nodes || !nodes->isArray())
        return fail(error, "step has no nodes array");
    for (const JsonValue &entry : nodes->items) {
        if (!entry.isNumber())
            return fail(error, "step node is not a number");
        const auto id = static_cast<sim::NodeId>(entry.number);
        if (id >= node_count)
            return fail(error, "step references missing node");
        step.nodes.push_back(id);
    }
    return true;
}

} // namespace

std::optional<CheckCase>
CheckCase::fromJson(const std::string &text, std::string *error)
{
    JsonValue root;
    if (!util::parseJson(text, root) || !root.isObject()) {
        fail(error, "not a JSON object");
        return std::nullopt;
    }

    CheckCase out;
    out.name = root.stringAt("name");
    out.notes = root.stringAt("notes");
    out.seed = std::strtoull(root.stringAt("seed", "0").c_str(),
                             nullptr, 10);
    const JsonValue *lifecycle = root.field("lifecycle");
    out.lifecycle = lifecycle &&
                    lifecycle->kind == JsonValue::Kind::Bool &&
                    lifecycle->boolean;

    const JsonValue *nodes = root.field("nodes");
    if (!nodes || !nodes->isArray()) {
        fail(error, "missing nodes array");
        return std::nullopt;
    }
    for (const JsonValue &entry : nodes->items) {
        if (!entry.isNumber() || entry.number < 0.0) {
            fail(error, "malformed node capacity");
            return std::nullopt;
        }
        out.nodeCapacities.push_back(entry.number);
    }

    if (const JsonValue *zones = root.field("zones");
        zones && zones->isArray()) {
        for (const JsonValue &entry : zones->items) {
            if (!entry.isNumber() || entry.number < 0.0) {
                fail(error, "malformed node zone");
                return std::nullopt;
            }
            out.nodeZones.push_back(
                static_cast<uint32_t>(entry.number));
        }
        if (out.nodeZones.size() != out.nodeCapacities.size()) {
            fail(error, "zones array does not match nodes array");
            return std::nullopt;
        }
    }

    const JsonValue *apps = root.field("apps");
    if (!apps || !apps->isArray()) {
        fail(error, "missing apps array");
        return std::nullopt;
    }
    for (size_t a = 0; a < apps->items.size(); ++a) {
        sim::Application app;
        if (!parseApp(apps->items[a], a, app, error))
            return std::nullopt;
        out.apps.push_back(std::move(app));
    }

    if (const JsonValue *steps = root.field("steps");
        steps && steps->isArray()) {
        for (const JsonValue &entry : steps->items) {
            CaseStep step;
            if (!parseStep(entry, out.nodeCapacities.size(), step,
                           error))
                return std::nullopt;
            out.steps.push_back(std::move(step));
        }
    }
    return out;
}

} // namespace phoenix::check
