/**
 * @file
 * Differential oracle: every property a scheme result must satisfy on
 * a generated case, with the exact ILP stack as the reference
 * implementation where one exists.
 *
 * Property classes, and why each is sound:
 *
 *  - Structural: planned states never exceed node capacity, never
 *    place on unhealthy nodes, never reference pods outside the app
 *    descriptors, and record the descriptor's cpu for every pod.
 *  - Replay: the emitted action sequence (deletes, migrations,
 *    restarts), applied to the post-failure state, reproduces the
 *    planned state exactly — the agent executes actions, not states.
 *  - Order: checked where it is actually an invariant. The heuristic
 *    planner guarantees order on its *per-app activation ranking*
 *    (every prefix respects dependencies; effective-criticality
 *    sorted when no DG exists) — not on the final state, where
 *    surviving pods of partially evicted apps and the planner's
 *    capacity skip legitimately break pairwise tag order. The LP
 *    schemes encode Eq. 1/Eq. 2 as hard constraints, so for them the
 *    active-set versions are asserted directly.
 *  - Differential: when the case is small enough, LPCost/LPFair solve
 *    the exact Appendix-C MILPs. A heuristic activation that is
 *    feasible for the MILP (raw-tag order + dependencies hold) cannot
 *    earn more than a *proven optimal* solve; gap floors assert the
 *    heuristic is not arbitrarily worse either — modulo one largest
 *    item of slack, since the planner's aggregate-capacity admission
 *    is a greedy knapsack whose gap is otherwise unbounded. Incumbents
 *    cut off by the time limit skip the comparisons (provenOptimal
 *    gates them).
 *  - Metamorphic: doubling every capacity and demand is exact in
 *    binary floating point (the generator quantizes sizes), so plans,
 *    actions, and assignments must be bit-identical; relabeling nodes
 *    of the post-failure state permutes best-fit-only packing's
 *    remaining-capacity multiset without changing it (asserted only
 *    on eviction-free runs: below-quorum cleanup frees cpu on a
 *    survivor's tie-break-dependent host), so the active
 *    set and revenue must match; restoring a failed node must not
 *    regress a scheme's *own* objective (Fair: availability, Cost:
 *    normalized revenue on uniform-criticality cases — on mixed tags
 *    the lexicographic key legally trades unbounded revenue for
 *    criticality coverage) beyond an indivisibility slack — greedy
 *    packing is not point-wise monotone under fragmentation, and each
 *    scheme freely sacrifices the other metric by design.
 *  - Warm-plan soundness (warm-cold-divergence): a scheme instance
 *    that just planned a projected further-degraded state (the shape
 *    the forecast subsystem pre-stages against) must return the
 *    byte-identical cold answer for the real post-failure state —
 *    scheme output is a pure function of (apps, state) regardless of
 *    what the instance planned before. This is what makes applying a
 *    pre-staged plan equivalent to a cold replan at trigger time.
 *  - Lifecycle: replaying the failure script against the
 *    mini-Kubernetes cluster with a Phoenix controller loop must
 *    produce zero kube invariant violations, and no pod may reach
 *    Running sooner than the minimum startup delay after (re)binding
 *    to its node — the "free startup" class a migrate-while-Starting
 *    bug produces.
 *  - Fault convergence (one dimension per taxonomy class): after the
 *    horizon runs past every fault window, the observation surface
 *    must equal live truth again (stale-observation-vs-fresh — an
 *    API outage that never thaws is a bug), every node's readiness
 *    must match what the failure/partition script implies (nodes a
 *    clock-skew fault touched are exempt: detaching readiness from
 *    kubelet health is that fault's point), and degrade factors must
 *    match the script's end state.
 */

#ifndef PHOENIX_CHECK_ORACLE_H
#define PHOENIX_CHECK_ORACLE_H

#include <string>
#include <vector>

#include "check/case.h"

namespace phoenix::check {

struct OracleOptions
{
    /** Run the LPCost/LPFair differential on small instances. */
    bool runLp = true;
    /** Skip the LP when services x healthy-nodes exceeds this. */
    size_t lpMaxCells = 160;
    double lpTimeLimitSec = 2.0;
    /** Heuristic revenue must reach this fraction of LPCost's proven
     * optimum — asserted only on like-for-like cases (uniform
     * criticality tags, every service fits some node), since
     * PhoenixCost subordinates revenue to criticality by design. */
    double costGapFraction = 0.5;
    /** PhoenixFair's minimum per-app allocation must reach this
     * fraction of LPFair's proven F*, minus one largest-service slack
     * for indivisibility. */
    double fairGapFraction = 0.4;

    /** Run the scale/permutation/monotonicity relations. */
    bool metamorphic = true;
    /** Extra availability / normalized-revenue drop allowed when a
     * failed node is restored, on top of the structural
     * indivisibility slack (one app of availability, one largest item
     * of revenue) the oracle always grants. */
    double monotonicityTolerance = 0.051;

    /** Run the kube-lifecycle oracle for lifecycle-flagged cases. */
    bool lifecycle = true;

    /** Shard count for the sharded/incremental schemes-under-test:
     * plan shards, capacity-index zones, and the warm scheme's reuse
     * path are all run at this width and asserted bit-identical to the
     * flat planner. <= 1 skips those comparisons. */
    int shards = 3;

    /**
     * Fault-injection knob for testing the checker itself: when > 0,
     * additionally assert used(node) <= fraction * capacity — a
     * deliberately wrong invariant every reasonably full plan
     * violates. Used to demo/exercise the shrinker.
     */
    double injectTightCapacityFraction = 0.0;
};

/** One failed property. */
struct Violation
{
    /** Stable property id ("capacity", "action-replay", ...). The
     * shrinker matches candidates on this. */
    std::string property;
    /** Scheme that produced the state, or "" for case-level checks. */
    std::string scheme;
    std::string detail;
};

struct OracleResult
{
    std::vector<Violation> violations;
    bool lpCostRan = false;
    bool lpFairRan = false;
    bool lifecycleRan = false;
    /** Heuristic revenue / LPCost proven optimum (0 when LP not run). */
    double costGap = 0.0;

    /** Host-wall seconds spent per oracle tier on this case (also
     * recorded as check.phase_seconds{phase=...} obs histograms, so
     * bench_fuzzcheck reports them per cell). */
    double schemesSeconds = 0.0;     //!< structural/replay/flat-vs-ref
    double lpSeconds = 0.0;          //!< LP differential
    double metamorphicSeconds = 0.0; //!< metamorphic relations
    double lifecycleSeconds = 0.0;   //!< kube lifecycle replay

    bool ok() const { return violations.empty(); }

    bool
    hasProperty(const std::string &property) const
    {
        for (const auto &v : violations) {
            if (v.property == property)
                return true;
        }
        return false;
    }
};

/**
 * The seed placement every check starts from: DefaultScheme (spread)
 * placement of all apps on the empty healthy cluster, then the case's
 * failure script replayed on top. Exposed for tests.
 */
sim::ClusterState postFailureState(const CheckCase &c);

/** Run every applicable property on one case. */
OracleResult checkCase(const CheckCase &c,
                       const OracleOptions &options = {});

} // namespace phoenix::check

#endif // PHOENIX_CHECK_ORACLE_H
