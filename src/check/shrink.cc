#include "shrink.h"

#include <algorithm>
#include <set>

namespace phoenix::check {

namespace {

/** Properties the original failure exhibited. */
std::set<std::string>
violatedProperties(const OracleResult &result)
{
    std::set<std::string> properties;
    for (const auto &v : result.violations)
        properties.insert(v.property);
    return properties;
}

bool
stillFails(const CheckCase &candidate, const OracleOptions &oracle,
           const std::set<std::string> &targets, size_t &checks)
{
    ++checks;
    const OracleResult result = checkCase(candidate, oracle);
    for (const auto &v : result.violations) {
        if (targets.count(v.property))
            return true;
    }
    return false;
}

CheckCase
withoutApp(const CheckCase &c, size_t app)
{
    CheckCase out = c;
    out.apps.erase(out.apps.begin() + static_cast<long>(app));
    return out;
}

CheckCase
withoutService(const CheckCase &c, size_t app, sim::MsId ms)
{
    CheckCase out = c;
    auto &target = out.apps[app];
    if (target.hasDependencyGraph) {
        std::vector<graph::NodeId> keep;
        for (graph::NodeId m = 0; m < target.services.size(); ++m) {
            if (m != ms)
                keep.push_back(m);
        }
        target.dag = target.dag.subgraph(keep);
        target.hasDependencyGraph = target.dag.edgeCount() > 0;
    }
    target.services.erase(target.services.begin() + ms);
    for (sim::MsId m = 0; m < target.services.size(); ++m)
        target.services[m].id = m;
    return out;
}

CheckCase
withoutNode(const CheckCase &c, sim::NodeId node)
{
    CheckCase out = c;
    out.nodeCapacities.erase(out.nodeCapacities.begin() + node);
    std::vector<CaseStep> steps;
    for (CaseStep step : out.steps) {
        std::vector<sim::NodeId> nodes;
        for (sim::NodeId n : step.nodes) {
            if (n == node)
                continue;
            nodes.push_back(n > node ? n - 1 : n);
        }
        if (nodes.empty())
            continue;
        step.nodes = std::move(nodes);
        steps.push_back(std::move(step));
    }
    out.steps = std::move(steps);
    return out;
}

CheckCase
withoutStep(const CheckCase &c, size_t step)
{
    CheckCase out = c;
    out.steps.erase(out.steps.begin() + static_cast<long>(step));
    return out;
}

CheckCase
withoutDag(const CheckCase &c, size_t app)
{
    CheckCase out = c;
    out.apps[app].dag = graph::DiGraph();
    out.apps[app].hasDependencyGraph = false;
    return out;
}

CheckCase
withSingleReplicas(const CheckCase &c)
{
    CheckCase out = c;
    for (auto &app : out.apps) {
        for (auto &ms : app.services) {
            ms.replicas = 1;
            ms.quorum = 0;
        }
    }
    return out;
}

CheckCase
withoutLifecycle(const CheckCase &c)
{
    CheckCase out = c;
    out.lifecycle = false;
    return out;
}

} // namespace

ShrinkOutcome
shrinkCase(const CheckCase &failing,
           const OracleOptions &oracle_options,
           const ShrinkOptions &options)
{
    ShrinkOutcome outcome;
    outcome.shrunk = failing;
    const std::set<std::string> targets =
        violatedProperties(checkCase(failing, oracle_options));
    outcome.checks = 1;
    if (targets.empty())
        return outcome; // nothing to preserve; caller passed a pass

    CheckCase &current = outcome.shrunk;
    const auto accept = [&](const CheckCase &candidate) {
        if (outcome.checks >= options.maxChecks)
            return false;
        if (!stillFails(candidate, oracle_options, targets,
                        outcome.checks))
            return false;
        current = candidate;
        ++outcome.stepsApplied;
        return true;
    };

    bool progressed = true;
    while (progressed && outcome.checks < options.maxChecks) {
        progressed = false;

        // Whole applications first: the largest cut.
        for (size_t a = 0; current.apps.size() > 1 &&
                           a < current.apps.size();) {
            if (accept(withoutApp(current, a)))
                progressed = true;
            else
                ++a;
        }
        // Then individual services.
        for (size_t a = 0; a < current.apps.size(); ++a) {
            for (sim::MsId m = 0;
                 current.apps[a].services.size() > 1 &&
                 m < current.apps[a].services.size();) {
                if (accept(withoutService(current, a, m)))
                    progressed = true;
                else
                    ++m;
            }
        }
        // Nodes (renumbering failure-step references).
        for (sim::NodeId n = 0; current.nodeCapacities.size() > 1 &&
                                n < current.nodeCapacities.size();) {
            if (accept(withoutNode(current, n)))
                progressed = true;
            else
                ++n;
        }
        // Failure steps.
        for (size_t s = 0; s < current.steps.size();) {
            if (accept(withoutStep(current, s)))
                progressed = true;
            else
                ++s;
        }
        // Structure simplifications.
        for (size_t a = 0; a < current.apps.size(); ++a) {
            if (current.apps[a].hasDependencyGraph &&
                accept(withoutDag(current, a)))
                progressed = true;
        }
        if (!current.singleReplica() &&
            accept(withSingleReplicas(current)))
            progressed = true;
        if (current.lifecycle && accept(withoutLifecycle(current)))
            progressed = true;
    }

    const OracleResult final_result =
        checkCase(current, oracle_options);
    ++outcome.checks;
    for (const auto &property : violatedProperties(final_result)) {
        if (targets.count(property))
            outcome.properties.push_back(property);
    }
    return outcome;
}

} // namespace phoenix::check
