/**
 * @file
 * Self-contained test case for the differential oracle (src/check).
 *
 * A CheckCase is everything one fuzz case needs to be re-run
 * bit-for-bit from a file: node capacities, the full application set
 * (services, tags, replicas, dependency edges, prices, subscription
 * flags), and an explicit timed failure/recovery script. Randomness
 * lives entirely in the generator — a serialized case contains no
 * seeds that still need expanding, so a corpus entry replays
 * identically on any machine.
 *
 * The failure script doubles as both oracle surfaces:
 *  - statically, replaying the steps against a ClusterState produces
 *    the post-failure state the resilience schemes plan against;
 *  - dynamically, the same steps build a sim::Scenario that the
 *    kube-lifecycle oracle drives through ScenarioRunner against a
 *    real KubeCluster.
 */

#ifndef PHOENIX_CHECK_CASE_H
#define PHOENIX_CHECK_CASE_H

#include <optional>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/scenario.h"
#include "sim/types.h"

namespace phoenix::check {

/** One scripted fault event with explicit node targets. */
struct CaseStep
{
    enum class Kind {
        Fail,      //!< kubelet stop / node failure for every listed node
        Recover,   //!< kubelet start / node restore for every listed node
        Flap,      //!< stop then restart `downtime` later (one node each)
        Partition, //!< heartbeats stop reaching the control plane; heal
                   //!< `downtime` later (<= 0: never)
        Degrade,   //!< capacity * factor (slow-not-dead); restore
                   //!< `downtime` later (<= 0: never)
        Outage,    //!< API-server outage: observation frozen for
                   //!< `downtime` seconds (nodes unused)
        Skew,      //!< set heartbeat clock skew to `skew` seconds
    };

    double at = 0.0;
    Kind kind = Kind::Fail;
    std::vector<sim::NodeId> nodes;
    /** Flap: seconds between the stop and the restart. Partition /
     * Degrade / Outage: window length. */
    double downtime = 0.0;
    /** Degrade only: capacity multiplier in (0, 1]. */
    double factor = 1.0;
    /** Skew only: heartbeat clock skew in seconds. */
    double skew = 0.0;
};

struct CheckCase
{
    /** Corpus id / provenance ("fuzz-17", "pr2-noncontiguous-appid"). */
    std::string name;
    /** Free-form provenance note (what bug this reproduces, etc.). */
    std::string notes;
    /** Generator seed the case came from (0 for handmade cases). */
    uint64_t seed = 0;
    /** Run the kube-lifecycle oracle too (needs steps). */
    bool lifecycle = false;

    std::vector<double> nodeCapacities;
    /** Explicit zone labels, parallel to nodeCapacities. Empty means
     * no topology: zone-scoped machinery falls back to the classic
     * id % zones synthetic layout. */
    std::vector<uint32_t> nodeZones;
    std::vector<sim::Application> apps;
    std::vector<CaseStep> steps;

    size_t
    serviceCount() const
    {
        size_t count = 0;
        for (const auto &app : apps)
            count += app.services.size();
        return count;
    }

    /** Any app carries a placement policy (the oracle swaps in its
     * constraint-feasibility dimension and drops the checks that
     * assume capacity-only packing). */
    bool
    constrained() const
    {
        for (const auto &app : apps) {
            if (app.topologyConstrained())
                return true;
        }
        return false;
    }

    bool
    singleReplica() const
    {
        for (const auto &app : apps) {
            for (const auto &ms : app.services) {
                if (ms.replicas > 1)
                    return false;
            }
        }
        return true;
    }

    /** All-healthy cluster with no pods. */
    sim::ClusterState emptyCluster() const;

    /**
     * The failure script as a declarative sim::Scenario (explicit
     * failNodes/recoverNodes/flapKubelet steps only — a serialized
     * case never re-randomizes).
     */
    sim::Scenario scenario() const;

    /**
     * Replay the steps against @p state in (time, file order): Fail
     * fails the node (evicting its pods), Recover restores it (empty),
     * and a Flap whose downtime has passed by the end nets out to a
     * restored node. A Partition is a control-plane failure (fail,
     * restore at window end when it has one); a Degrade rescales the
     * node's capacity for its window. Outage and Skew are static
     * no-ops — they distort *when* the controller observes, not what
     * the converged post-failure state is. Used by the static oracle
     * to derive the post-failure state schemes plan against.
     */
    void replaySteps(sim::ClusterState &state) const;

    /** Serialize to a self-contained JSON document. */
    std::string toJson() const;

    /**
     * Parse a serialized case. Returns nullopt on malformed input and
     * stores a diagnostic in @p error when given.
     */
    static std::optional<CheckCase>
    fromJson(const std::string &text, std::string *error = nullptr);
};

} // namespace phoenix::check

#endif // PHOENIX_CHECK_CASE_H
