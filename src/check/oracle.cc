#include "oracle.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>

#include "core/preemption.h"
#include "core/schemes.h"
#include "kube/kube.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace phoenix::check {

using core::Action;
using core::ActionKind;
using core::Objective;
using core::PackingOptions;
using core::PhoenixScheme;
using core::PlannerOptions;
using core::SchemeResult;
using sim::ActiveSet;
using sim::Application;
using sim::ClusterState;
using sim::NodeId;
using sim::PodRef;

namespace {

constexpr double kEps = 1e-6;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Per-tier phase-seconds histograms, resolved once. */
struct PhaseObs
{
    obs::LogHistogram *schemes;
    obs::LogHistogram *lp;
    obs::LogHistogram *metamorphic;
    obs::LogHistogram *lifecycle;
};

PhaseObs &
phaseObs()
{
    static PhaseObs p = [] {
        auto &registry = obs::Registry::global();
        const auto named = [&](const char *phase) {
            return &registry.histogram(obs::Registry::labeled(
                "check.phase_seconds", "phase", phase));
        };
        return PhaseObs{named("schemes"), named("lp"),
                        named("metamorphic"), named("lifecycle")};
    }();
    return p;
}

void
report(std::vector<Violation> &out, std::string property,
       std::string scheme, std::string detail)
{
    Violation v;
    v.property = std::move(property);
    v.scheme = std::move(scheme);
    v.detail = std::move(detail);
    out.push_back(std::move(v));
}

std::string
podName(const PodRef &pod)
{
    std::ostringstream os;
    os << "pod(" << pod.app << "," << pod.ms << "," << pod.replica
       << ")";
    return os.str();
}

/**
 * Structural invariants of a planned state. Violation properties:
 * "capacity", "unhealthy-node", "pod-ref", "injected-tight-capacity".
 */
void
checkStateInvariants(const std::string &scheme,
                     const std::vector<Application> &apps,
                     const ClusterState &state,
                     const OracleOptions &options,
                     std::vector<Violation> &out)
{
    for (NodeId n = 0; n < state.nodeCount(); ++n) {
        const auto &node = state.node(n);
        if (state.used(n) > node.capacity + kEps) {
            std::ostringstream os;
            os << "node " << n << " used " << state.used(n)
               << " > capacity " << node.capacity;
            report(out, "capacity", scheme, os.str());
        }
        if (!node.healthy && !state.podsOn(n).empty()) {
            std::ostringstream os;
            os << state.podsOn(n).size() << " pods on failed node "
               << n;
            report(out, "unhealthy-node", scheme, os.str());
        }
        if (options.injectTightCapacityFraction > 0.0 &&
            state.used(n) > options.injectTightCapacityFraction *
                                    node.capacity +
                                kEps) {
            std::ostringstream os;
            os << "node " << n << " used " << state.used(n)
               << " > " << options.injectTightCapacityFraction
               << " * capacity " << node.capacity;
            report(out, "injected-tight-capacity", scheme, os.str());
        }
    }
    for (const auto &[pod, node] : state.assignment()) {
        (void)node;
        if (pod.app >= apps.size() ||
            pod.ms >= apps[pod.app].services.size()) {
            report(out, "pod-ref", scheme,
                   podName(pod) + " outside the app descriptors");
            continue;
        }
        const auto &ms = apps[pod.app].services[pod.ms];
        if (pod.replica >=
            static_cast<uint32_t>(std::max(ms.replicas, 1))) {
            report(out, "pod-ref", scheme,
                   podName(pod) + " replica out of range");
        }
        if (state.podCpu(pod) != ms.cpu) {
            std::ostringstream os;
            os << podName(pod) << " cpu " << state.podCpu(pod)
               << " != descriptor " << ms.cpu;
            report(out, "pod-ref", scheme, os.str());
        }
    }
}

/**
 * The agent executes actions, not states: replaying the emitted
 * sequence from the post-failure state must land exactly on the
 * planned state. Property: "action-replay".
 */
void
checkActionReplay(const std::string &scheme,
                  const std::vector<Application> &apps,
                  const ClusterState &post, const SchemeResult &result,
                  std::vector<Violation> &out)
{
    ClusterState replay = post;
    for (const Action &action : result.pack.actions) {
        const PodRef &pod = action.pod;
        switch (action.kind) {
        case ActionKind::Delete:
            if (!replay.evict(pod)) {
                report(out, "action-replay", scheme,
                       "delete of absent " + podName(pod));
                return;
            }
            break;
        case ActionKind::Migrate: {
            if (!replay.isActive(pod)) {
                report(out, "action-replay", scheme,
                       "migrate of absent " + podName(pod));
                return;
            }
            const double cpu = replay.podCpu(pod);
            replay.evict(pod);
            if (!replay.place(pod, action.to, cpu)) {
                report(out, "action-replay", scheme,
                       "migrate of " + podName(pod) +
                           " to a node that rejects it");
                return;
            }
            break;
        }
        case ActionKind::Restart: {
            if (pod.app >= apps.size() ||
                pod.ms >= apps[pod.app].services.size()) {
                report(out, "action-replay", scheme,
                       "restart of unknown " + podName(pod));
                return;
            }
            const double cpu = apps[pod.app].services[pod.ms].cpu;
            if (!replay.place(pod, action.to, cpu)) {
                report(out, "action-replay", scheme,
                       "restart of " + podName(pod) +
                           " rejected by node");
                return;
            }
            break;
        }
        }
    }
    if (replay.assignment() != result.pack.state.assignment()) {
        std::ostringstream os;
        os << "replayed assignment has " << replay.assignment().size()
           << " pods, planned state has "
           << result.pack.state.assignment().size();
        report(out, "action-replay", scheme, os.str());
    }
}

/**
 * Eq. 1 / Eq. 2 as *active-set* invariants. These only hold for the
 * LP schemes, whose MILP encodes them as hard constraints; the
 * heuristics legitimately break them at whole-state level (surviving
 * pods of a partially evicted app stay placed, and the planner's
 * capacity skip may drop a too-big critical service while smaller
 * ones proceed). Properties: "criticality-order", "dependency-order".
 */
void
checkLpActiveSetOrder(const std::string &scheme,
                      const std::vector<Application> &apps,
                      const ActiveSet &active,
                      std::vector<Violation> &out)
{
    if (!sim::respectsCriticalityOrder(apps, active))
        report(out, "criticality-order", scheme,
               "a service is active while a strictly more critical "
               "one of the same app is inactive");
    if (!sim::respectsDependencies(apps, active))
        report(out, "dependency-order", scheme,
               "an active service has no active predecessor");
}

/**
 * The sound order property for the heuristic planner: every prefix of
 * the per-app activation order respects dependencies, and for apps
 * without a dependency graph the order is sorted by effective
 * criticality (the DG preorder may legitimately pull a
 * low-criticality ancestor forward, so tag order is only required
 * when no DG exists). This mirrors what the packing stages preserve:
 * they only ever place/keep subsequences of this order per app.
 * Properties: "plan-criticality-order", "plan-dependency-order".
 */
void
checkAppRankOrder(const std::vector<Application> &apps,
                  std::vector<Violation> &out)
{
    const core::AppRank ranks = core::Planner::priorityEstimator(apps);
    for (size_t a = 0; a < apps.size(); ++a) {
        if (ranks[a].size() != apps[a].services.size()) {
            std::ostringstream os;
            os << "app " << apps[a].id << ": rank has "
               << ranks[a].size() << " entries for "
               << apps[a].services.size() << " services";
            report(out, "plan-criticality-order", "planner", os.str());
            continue;
        }
        if (apps[a].hasDependencyGraph) {
            ActiveSet active = sim::emptyActiveSet(apps);
            for (sim::MsId m : ranks[a]) {
                active[a][m] = true;
                if (!sim::respectsDependencies(apps, active)) {
                    std::ostringstream os;
                    os << "app " << apps[a].id << ": ms " << m
                       << " ranked before any of its predecessors";
                    report(out, "plan-dependency-order", "planner",
                           os.str());
                    break;
                }
            }
        } else {
            for (size_t i = 1; i < ranks[a].size(); ++i) {
                const auto prev = core::effectiveCriticality(
                    apps[a], apps[a].services[ranks[a][i - 1]]);
                const auto next = core::effectiveCriticality(
                    apps[a], apps[a].services[ranks[a][i]]);
                if (next < prev) {
                    std::ostringstream os;
                    os << "app " << apps[a].id << ": ms "
                       << ranks[a][i] << " (C" << next
                       << ") ranked after ms " << ranks[a][i - 1]
                       << " (C" << prev << ")";
                    report(out, "plan-criticality-order", "planner",
                           os.str());
                    break;
                }
            }
        }
    }
}

/**
 * Independent re-derivation of the placement-policy caps (kept
 * deliberately separate from core::VacancyAllocator so a bug in the
 * allocator cannot hide itself): per-service maxPerNode and effective
 * zone cap (minZoneSpread folded in), plus anti-affinity group caps
 * over member services. Returns the first violation found.
 */
std::optional<std::string>
capViolation(const std::vector<Application> &apps,
             const ClusterState &state)
{
    const size_t zones = std::max<size_t>(state.zoneCount(), 1);
    // Pods per (app position, service), in assignment order.
    std::map<std::pair<size_t, sim::MsId>, std::vector<NodeId>> placed;
    for (const auto &[pod, node] : state.assignment()) {
        if (pod.app < apps.size() &&
            pod.ms < apps[pod.app].services.size())
            placed[{pod.app, pod.ms}].push_back(node);
    }

    const auto check = [&](const std::vector<NodeId> &nodes,
                           int max_node, int max_zone,
                           const std::string &what)
        -> std::optional<std::string> {
        std::map<NodeId, int> per_node;
        std::vector<int> per_zone(zones, 0);
        for (NodeId n : nodes) {
            const int on_node = ++per_node[n];
            const int in_zone = ++per_zone[state.zoneOf(n) % zones];
            if (max_node > 0 && on_node > max_node) {
                std::ostringstream os;
                os << what << ": " << on_node << " pods on node " << n
                   << " > maxPerNode " << max_node;
                return os.str();
            }
            if (max_zone > 0 && in_zone > max_zone) {
                std::ostringstream os;
                os << what << ": " << in_zone << " pods in zone "
                   << state.zoneOf(n) << " > zone cap " << max_zone;
                return os.str();
            }
        }
        return std::nullopt;
    };

    for (size_t a = 0; a < apps.size(); ++a) {
        const Application &app = apps[a];
        if (!app.topologyConstrained())
            continue;
        for (const auto &ms : app.services) {
            const int cap_zone = ms.effectiveZoneCap();
            if (ms.maxPerNode <= 0 && cap_zone <= 0)
                continue;
            const auto it = placed.find({a, ms.id});
            if (it == placed.end())
                continue;
            std::ostringstream what;
            what << "app " << a << " ms " << ms.id;
            if (auto v = check(it->second, ms.maxPerNode, cap_zone,
                               what.str()))
                return v;
        }
        for (const auto &group : app.placementGroups) {
            if (group.maxPerNode <= 0 && group.maxPerZone <= 0)
                continue;
            std::vector<NodeId> members;
            for (const auto &ms : app.services) {
                if (ms.antiAffinityGroup != group.id)
                    continue;
                const auto it = placed.find({a, ms.id});
                if (it != placed.end())
                    members.insert(members.end(), it->second.begin(),
                                   it->second.end());
            }
            std::ostringstream what;
            what << "app " << a << " group " << group.id;
            if (auto v = check(members, group.maxPerNode,
                               group.maxPerZone, what.str()))
                return v;
        }
    }
    return std::nullopt;
}

/**
 * Constraint-feasibility dimension: the planned final state honors
 * every vacancy/spread cap, every intermediate state of the emitted
 * action sequence honors them too (preemption may not park two
 * replicas on one node even transiently), and the plan's deletes
 * never exceed a service's PodDisruptionBudget unless the plan shut
 * the service down entirely (below-quorum cleanup). Properties:
 * "constraint-feasibility", "pdb-budget".
 */
void
checkConstraintFeasibility(const std::string &scheme,
                           const std::vector<Application> &apps,
                           const ClusterState &post,
                           const SchemeResult &result,
                           std::vector<Violation> &out)
{
    if (auto v = capViolation(apps, result.pack.state)) {
        report(out, "constraint-feasibility", scheme,
               "final state: " + *v);
        return;
    }

    // Replay the action sequence, re-checking caps after every state
    // change (replay legality itself is checkActionReplay's job).
    ClusterState replay = post;
    for (size_t i = 0; i < result.pack.actions.size(); ++i) {
        const Action &action = result.pack.actions[i];
        const PodRef &pod = action.pod;
        switch (action.kind) {
        case ActionKind::Delete:
            replay.evict(pod);
            break;
        case ActionKind::Migrate: {
            if (!replay.isActive(pod))
                return;
            const double cpu = replay.podCpu(pod);
            replay.evict(pod);
            if (!replay.place(pod, action.to, cpu))
                return;
            break;
        }
        case ActionKind::Restart: {
            if (pod.app >= apps.size() ||
                pod.ms >= apps[pod.app].services.size())
                return;
            if (!replay.place(pod, action.to,
                              apps[pod.app].services[pod.ms].cpu))
                return;
            break;
        }
        }
        if (auto v = capViolation(apps, replay)) {
            std::ostringstream os;
            os << "after action " << i << ": " << *v;
            report(out, "constraint-feasibility", scheme, os.str());
            return;
        }
    }

    // PDB: deletes per service, exempting full shutdowns.
    std::map<std::pair<size_t, sim::MsId>, int> deletes;
    for (const Action &action : result.pack.actions) {
        if (action.kind == ActionKind::Delete)
            ++deletes[{action.pod.app, action.pod.ms}];
    }
    for (const auto &[key, count] : deletes) {
        const auto [a, m] = key;
        if (a >= apps.size() || m >= apps[a].services.size())
            continue;
        const int budget = apps[a].services[m].pdbMaxUnavailable;
        if (budget < 0 || count <= budget)
            continue;
        size_t final_placed = 0;
        for (const auto &[pod, node] :
             result.pack.state.assignment()) {
            (void)node;
            if (pod.app == a && pod.ms == m)
                ++final_placed;
        }
        if (final_placed == 0)
            continue; // below-quorum self-cleanup is PDB-exempt
        std::ostringstream os;
        os << "app " << a << " ms " << m << ": " << count
           << " deletes > pdbMaxUnavailable " << budget << " with "
           << final_placed << " replicas kept";
        report(out, "pdb-budget", scheme, os.str());
    }
}

ClusterState
permuteNodes(const ClusterState &state,
             const std::vector<NodeId> &perm)
{
    std::vector<double> capacities(state.nodeCount(), 0.0);
    for (NodeId n = 0; n < state.nodeCount(); ++n)
        capacities[perm[n]] = state.node(n).capacity;
    ClusterState out;
    for (double capacity : capacities)
        out.addNode(capacity);
    for (NodeId n = 0; n < state.nodeCount(); ++n) {
        if (!state.isHealthy(n))
            out.failNode(perm[n]);
    }
    for (const auto &[pod, node] : state.assignment())
        out.place(pod, perm[node], state.podCpu(pod));
    return out;
}

CheckCase
scaledCopy(const CheckCase &c, double factor)
{
    CheckCase scaled = c;
    for (double &capacity : scaled.nodeCapacities)
        capacity *= factor;
    for (auto &app : scaled.apps) {
        for (auto &ms : app.services)
            ms.cpu *= factor;
    }
    return scaled;
}

bool
sameActions(const std::vector<Action> &a, const std::vector<Action> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].pod != b[i].pod ||
            a[i].from != b[i].from || a[i].to != b[i].to)
            return false;
    }
    return true;
}

double
minAllocation(const std::vector<Application> &apps,
              const ActiveSet &active)
{
    const auto usage = sim::perAppUsage(apps, active);
    double lowest = 0.0;
    bool first = true;
    for (double u : usage) {
        if (first || u < lowest) {
            lowest = u;
            first = false;
        }
    }
    return lowest;
}

double
largestServiceCpu(const std::vector<Application> &apps)
{
    double largest = 0.0;
    for (const auto &app : apps) {
        for (const auto &ms : app.services)
            largest = std::max(largest, ms.cpu);
    }
    return largest;
}

// ---------------------------------------------------------------------
// Kube lifecycle oracle
// ---------------------------------------------------------------------

/** Phoenix controller loop: replan against the observed state every
 * period and execute the action sequence through the agent verbs. */
struct ControllerLoop
{
    sim::EventQueue &events;
    kube::KubeCluster &cluster;
    PhoenixScheme scheme{Objective::Cost};
    double period = 60.0;

    void
    arm(double at)
    {
        events.schedule(at, [this] { tick(); });
    }

    void
    tick()
    {
        const ClusterState observed = cluster.observedState();
        const SchemeResult result =
            scheme.apply(cluster.apps(), observed);
        for (const Action &action : result.pack.actions) {
            switch (action.kind) {
            case ActionKind::Delete:
                cluster.deletePod(action.pod);
                break;
            case ActionKind::Migrate:
                cluster.migratePod(action.pod, action.to);
                break;
            case ActionKind::Restart:
                cluster.startPod(action.pod, action.to);
                break;
            }
        }
        events.scheduleAfter(period, [this] { tick(); });
    }
};

/**
 * Phase sampler: watches every pod at a period far below the minimum
 * startup delay and asserts no pod reaches Running sooner than
 * podStartupMin after (re)binding to its current node. A migration
 * that forgets to restart the startup clock — the
 * migrate-while-Starting bug class — trips this.
 */
struct StartupSampler
{
    sim::EventQueue &events;
    kube::KubeCluster &cluster;
    const double startupMin;
    double period = 1.0;
    std::vector<Violation> *out = nullptr;

    struct Obs
    {
        kube::PodPhase phase = kube::PodPhase::Pending;
        NodeId node = 0;
        double startingSince = -1.0;
    };
    std::map<PodRef, Obs> seen;

    void
    arm(double at)
    {
        events.schedule(at, [this] { tick(); });
    }

    void
    tick()
    {
        const double now = events.now();
        for (size_t a = 0; a < cluster.apps().size(); ++a) {
            for (const auto &ms : cluster.apps()[a].services) {
                const PodRef ref{static_cast<sim::AppId>(a), ms.id};
                const kube::Pod *pod = cluster.pod(ref);
                if (!pod)
                    continue;
                observe(ref, *pod, now);
            }
        }
        events.scheduleAfter(period, [this] { tick(); });
    }

    void
    observe(const PodRef &ref, const kube::Pod &pod, double now)
    {
        Obs &obs = seen[ref];
        const bool was_starting =
            obs.phase == kube::PodPhase::Starting;
        if (pod.phase == kube::PodPhase::Starting &&
            (!was_starting || obs.node != pod.node)) {
            // Fresh bind (or rebind to another node): the startup
            // clock must restart from here.
            obs.startingSince = now;
        }
        if (pod.phase == kube::PodPhase::Running &&
            obs.phase != kube::PodPhase::Running) {
            // A node change alone is not a violation: the model's
            // Running-pod migration is a legal zero-downtime rebind,
            // so "finished startup on A, live-migrated to B" can land
            // inside one sample window. Only Running with no observed
            // Starting at all, or Running sooner than the startup
            // minimum since the last (re)bind, is the free-startup
            // bug class.
            if (!was_starting || obs.startingSince < 0.0) {
                report(*out, "lifecycle-free-startup", "kube",
                       podName(ref) +
                           " reached Running without Starting on its "
                           "node");
            } else if (now - obs.startingSince <
                       startupMin - period - kEps) {
                std::ostringstream os;
                os << podName(ref) << " reached Running "
                   << now - obs.startingSince
                   << "s after binding (startup minimum "
                   << startupMin << "s)";
                report(*out, "lifecycle-free-startup", "kube",
                       os.str());
            }
        }
        obs.phase = pod.phase;
        obs.node = pod.node;
    }
};

void
runLifecycleOracle(const CheckCase &c, OracleResult &result)
{
    sim::EventQueue events;
    kube::KubeConfig config;
    config.validateInvariants = true;
    config.seed = c.seed;
    kube::KubeCluster cluster(events, config);
    for (double capacity : c.nodeCapacities)
        cluster.addNode(capacity);
    // Kube indexes pods by position in its app list; reindex so the
    // cluster's PodRefs match the scheme convention (app == index).
    for (size_t a = 0; a < c.apps.size(); ++a) {
        Application app = c.apps[a];
        app.id = static_cast<sim::AppId>(a);
        cluster.addApplication(app);
    }

    sim::ScenarioOptions scenario_options;
    scenario_options.seed = c.seed;
    sim::ScenarioRunner runner(events, cluster, c.scenario(),
                               scenario_options);

    ControllerLoop controller{events, cluster};
    controller.arm(30.0);
    StartupSampler sampler{events, cluster, config.podStartupMin, 1.0,
                           &result.violations, {}};
    sampler.arm(1.0);

    double horizon = 0.0;
    for (const CaseStep &step : c.steps)
        horizon = std::max(horizon, step.at + step.downtime);
    events.runUntil(horizon + 500.0);

    if (cluster.invariantViolations() > 0) {
        std::ostringstream os;
        os << cluster.invariantViolations()
           << " kube invariant violations";
        report(result.violations, "kube-invariants", "kube", os.str());
    }

    // --- Fault-convergence dimensions (one per taxonomy class) -----
    // The horizon runs 500 s past the last fault window, so every
    // windowed fault must have converged by now.

    // Stale-observation-vs-fresh: all outage windows have closed, so
    // the observation surface must equal live truth again.
    if (cluster.apiOutageActive()) {
        report(result.violations, "stale-observation", "kube",
               "API outage still active past the horizon");
    } else {
        const ClusterState observed = cluster.observedState();
        const ClusterState live = cluster.liveState();
        bool diverged = observed.nodeCount() != live.nodeCount() ||
                        observed.assignment() != live.assignment();
        for (NodeId n = 0; !diverged && n < live.nodeCount(); ++n) {
            diverged =
                observed.isHealthy(n) != live.isHealthy(n) ||
                std::abs(observed.node(n).capacity -
                         live.node(n).capacity) > kEps;
        }
        if (diverged)
            report(result.violations, "stale-observation", "kube",
                   "observed state diverges from live state after "
                   "the outage window closed");
    }

    // Partition/degrade/failure convergence: derive every node's
    // expected end state from the script and compare. Nodes a Skew
    // step ever touched are exempt — a skewed heartbeat legitimately
    // detaches control-plane readiness from kubelet health (that is
    // the fault), and a past positive skew can stamp heartbeats
    // beyond any fixed horizon.
    struct NodeEnd
    {
        bool kubelet = true;
        bool partitioned = false;
        bool skewed = false;
        double factor = 1.0;
    };
    std::vector<NodeEnd> expected(c.nodeCapacities.size());
    struct Ev
    {
        double at;
        size_t seq;
        int what; // 0 fail, 1 recover, 2 partition, 3 heal, 4 degrade
        NodeId node;
        double value;
    };
    std::vector<Ev> evs;
    size_t seq = 0;
    for (const CaseStep &step : c.steps) {
        for (NodeId node : step.nodes) {
            if (node >= expected.size())
                continue;
            switch (step.kind) {
            case CaseStep::Kind::Fail:
                evs.push_back({step.at, seq++, 0, node, 0.0});
                break;
            case CaseStep::Kind::Recover:
                evs.push_back({step.at, seq++, 1, node, 0.0});
                break;
            case CaseStep::Kind::Flap:
                evs.push_back({step.at, seq++, 0, node, 0.0});
                evs.push_back(
                    {step.at + step.downtime, seq++, 1, node, 0.0});
                break;
            case CaseStep::Kind::Partition:
                evs.push_back({step.at, seq++, 2, node, 0.0});
                if (step.downtime > 0.0)
                    evs.push_back({step.at + step.downtime, seq++, 3,
                                   node, 0.0});
                break;
            case CaseStep::Kind::Degrade:
                evs.push_back(
                    {step.at, seq++, 4, node, step.factor});
                if (step.downtime > 0.0)
                    evs.push_back({step.at + step.downtime, seq++, 4,
                                   node, 1.0});
                break;
            case CaseStep::Kind::Outage:
                break;
            case CaseStep::Kind::Skew:
                expected[node].skewed = true;
                break;
            }
        }
    }
    std::sort(evs.begin(), evs.end(), [](const Ev &a, const Ev &b) {
        if (a.at != b.at)
            return a.at < b.at;
        return a.seq < b.seq;
    });
    for (const Ev &ev : evs) {
        switch (ev.what) {
        case 0: expected[ev.node].kubelet = false; break;
        case 1: expected[ev.node].kubelet = true; break;
        case 2: expected[ev.node].partitioned = true; break;
        case 3: expected[ev.node].partitioned = false; break;
        case 4: expected[ev.node].factor = ev.value; break;
        }
    }
    for (NodeId n = 0; n < expected.size(); ++n) {
        const NodeEnd &end = expected[n];
        if (!end.skewed) {
            const bool expect_ready = end.kubelet && !end.partitioned;
            if (cluster.isReady(n) != expect_ready) {
                std::ostringstream os;
                os << "node " << n << " ended "
                   << (cluster.isReady(n) ? "Ready" : "NotReady")
                   << ", script implies "
                   << (expect_ready ? "Ready" : "NotReady");
                report(result.violations, "fault-convergence", "kube",
                       os.str());
            }
        }
        if (std::abs(cluster.degradeFactor(n) - end.factor) > kEps) {
            std::ostringstream os;
            os << "node " << n << " degrade factor "
               << cluster.degradeFactor(n) << ", script implies "
               << end.factor;
            report(result.violations, "fault-convergence", "kube",
                   os.str());
        }
    }

    result.lifecycleRan = true;
}

} // namespace

ClusterState
postFailureState(const CheckCase &c)
{
    ClusterState state = c.emptyCluster();
    core::DefaultScheme seed_scheme;
    state = seed_scheme.apply(c.apps, state).pack.state;
    c.replaySteps(state);
    return state;
}

OracleResult
checkCase(const CheckCase &c, const OracleOptions &options)
{
    OracleResult result;
    if (c.nodeCapacities.empty() || c.apps.empty())
        return result;

    const ClusterState post = postFailureState(c);

    const Clock::time_point schemes_start = Clock::now();

    // --- Planner order properties ----------------------------------
    checkAppRankOrder(c.apps, result.violations);

    // --- Heuristic schemes -----------------------------------------
    struct Entry
    {
        std::string name;
        std::unique_ptr<core::ResilienceScheme> scheme;
    };
    std::vector<Entry> entries;
    entries.push_back(
        {"PhoenixFair", std::make_unique<PhoenixScheme>(Objective::Fair)});
    entries.push_back(
        {"PhoenixCost", std::make_unique<PhoenixScheme>(Objective::Cost)});
    entries.push_back({"Fair", std::make_unique<core::FairScheme>()});
    entries.push_back(
        {"Priority", std::make_unique<core::PriorityScheme>()});
    entries.push_back(
        {"Default", std::make_unique<core::DefaultScheme>()});
    entries.push_back({"K8sPreemption",
                       std::make_unique<core::KubePreemptionScheme>()});

    std::map<std::string, SchemeResult> results;
    for (Entry &entry : entries) {
        SchemeResult r = entry.scheme->apply(c.apps, post);
        checkStateInvariants(entry.name, c.apps, r.pack.state, options,
                             result.violations);
        checkActionReplay(entry.name, c.apps, post, r,
                          result.violations);
        // K8sPreemption is the constraint-blind baseline by design —
        // its violations under a zone kill are the demo contrast, not
        // a bug.
        if (entry.name != "K8sPreemption")
            checkConstraintFeasibility(entry.name, c.apps, post, r,
                                       result.violations);
        results.emplace(entry.name, std::move(r));
    }

    // --- Flat vs reference bit identity ----------------------------
    for (Objective objective : {Objective::Fair, Objective::Cost}) {
        PlannerOptions ref_planner;
        ref_planner.referenceImpl = true;
        PackingOptions ref_packing;
        ref_packing.referenceImpl = true;
        PhoenixScheme reference(objective, ref_planner, ref_packing);
        const SchemeResult ref = reference.apply(c.apps, post);
        const std::string name = objective == Objective::Fair
                                     ? "PhoenixFair"
                                     : "PhoenixCost";
        const SchemeResult &flat = results.at(name);
        if (ref.plan != flat.plan)
            report(result.violations, "flat-vs-reference", name,
                   "plans diverge");
        else if (!sameActions(ref.pack.actions, flat.pack.actions))
            report(result.violations, "flat-vs-reference", name,
                   "action sequences diverge");
        else if (ref.pack.state.assignment() !=
                 flat.pack.state.assignment())
            report(result.violations, "flat-vs-reference", name,
                   "planned assignments diverge");

        if (options.shards <= 1)
            continue;

        // Sharded plan + zone-sharded capacity index: identical
        // outputs AND identical deterministic op counters (summed in
        // shard order, probed once per best-fit call).
        {
            PlannerOptions sharded_planner;
            sharded_planner.shardCount = options.shards;
            PackingOptions sharded_packing;
            sharded_packing.zoneShards =
                static_cast<size_t>(options.shards);
            PhoenixScheme sharded(objective, sharded_planner,
                                  sharded_packing);
            const SchemeResult sh = sharded.apply(c.apps, post);
            if (sh.plan != flat.plan ||
                !sameActions(sh.pack.actions, flat.pack.actions) ||
                sh.pack.state.assignment() !=
                    flat.pack.state.assignment())
                report(result.violations, "sharded-vs-flat", name,
                       "sharded outputs diverge from flat");
            else if (sh.planOps.heapPushes !=
                         flat.planOps.heapPushes ||
                     sh.pack.ops.bestFitProbes !=
                         flat.pack.ops.bestFitProbes ||
                     sh.pack.ops.kvOps != flat.pack.ops.kvOps)
                report(result.violations, "sharded-vs-flat", name,
                       "sharded op counters diverge from flat");
        }

        // Incremental replan: warm the scheme on the pre-failure seed
        // placement, then replan the post-failure state — the cache
        // reuse + exact index reconcile across that diff must be
        // byte-identical to a cold plan (op counters legally differ).
        {
            ClusterState seed_state = c.emptyCluster();
            core::DefaultScheme seeder;
            seed_state = seeder.apply(c.apps, seed_state).pack.state;

            PlannerOptions inc_planner;
            inc_planner.incremental = true;
            inc_planner.shardCount = options.shards;
            PackingOptions inc_packing;
            inc_packing.incremental = true;
            inc_packing.zoneShards =
                static_cast<size_t>(options.shards);
            PhoenixScheme warm(objective, inc_planner, inc_packing);
            (void)warm.apply(c.apps, seed_state);
            const SchemeResult inc = warm.apply(c.apps, post);
            if (inc.plan != flat.plan ||
                !sameActions(inc.pack.actions, flat.pack.actions) ||
                inc.pack.state.assignment() !=
                    flat.pack.state.assignment())
                report(result.violations, "incremental-vs-flat", name,
                       "warm replan diverges from cold plan");
        }

        // Forecast warm-plan soundness: a scheme that just planned a
        // *projection* (the post state with one more node failed —
        // the shape the forecast subsystem pre-stages against) must
        // still produce the cold answer when asked to plan the real
        // post state. This is the property that makes applying a
        // pre-staged plan at trigger time equivalent to a cold
        // replan: scheme output is a pure function of (apps, state),
        // whatever the instance planned before.
        {
            ClusterState projection = post;
            const std::vector<NodeId> healthy = post.healthyNodes();
            if (!healthy.empty())
                projection.failNode(healthy.front());

            PlannerOptions staged_planner;
            staged_planner.incremental = true;
            staged_planner.shardCount = options.shards;
            PackingOptions staged_packing;
            staged_packing.incremental = true;
            staged_packing.zoneShards =
                static_cast<size_t>(options.shards);
            PhoenixScheme staged(objective, staged_planner,
                                 staged_packing);
            (void)staged.apply(c.apps, projection);
            const SchemeResult rewarm = staged.apply(c.apps, post);
            if (rewarm.failed != flat.failed ||
                rewarm.plan != flat.plan ||
                !sameActions(rewarm.pack.actions,
                             flat.pack.actions) ||
                rewarm.pack.complete != flat.pack.complete ||
                rewarm.pack.state.assignment() !=
                    flat.pack.state.assignment())
                report(result.violations, "warm-cold-divergence", name,
                       "plan after projection planning diverges from "
                       "cold plan");
        }
    }

    result.schemesSeconds = secondsSince(schemes_start);
    PHOENIX_OBSERVE(*phaseObs().schemes, result.schemesSeconds);

    // --- LP differential -------------------------------------------
    const Clock::time_point lp_start = Clock::now();
    const size_t healthy_nodes = post.healthyNodes().size();
    // The MILP has no vacancy/spread encoding, so its optimum is not
    // an upper bound on constrained cases — the differential is
    // skipped for them.
    const bool lp_eligible =
        options.runLp && c.singleReplica() && !c.constrained() &&
        healthy_nodes > 0 &&
        c.serviceCount() * healthy_nodes <= options.lpMaxCells;
    if (lp_eligible) {
        core::LpSchemeOptions lp_options;
        lp_options.timeLimitSec = options.lpTimeLimitSec;

        core::LpScheme lp_cost(Objective::Cost, lp_options);
        const SchemeResult lr = lp_cost.apply(c.apps, post);
        if (!lr.failed) {
            result.lpCostRan = true;
            checkStateInvariants("LPCost", c.apps, lr.pack.state,
                                 options, result.violations);
            checkActionReplay("LPCost", c.apps, post, lr,
                              result.violations);
            const ActiveSet lp_active = lr.activeSet(c.apps);
            checkLpActiveSetOrder("LPCost", c.apps, lp_active,
                                  result.violations);
            if (lr.provenOptimal) {
                const ActiveSet heuristic =
                    results.at("PhoenixCost").activeSet(c.apps);
                const double lp_revenue =
                    sim::revenue(c.apps, lp_active);
                const double heuristic_revenue =
                    sim::revenue(c.apps, heuristic);
                result.costGap = lp_revenue > 0.0
                                     ? heuristic_revenue / lp_revenue
                                     : 1.0;
                // Upper bound: only sound when the heuristic's active
                // set is feasible for the MILP itself (raw-tag order
                // and dependencies), since the optimum only dominates
                // its own polytope.
                const bool heuristic_lp_feasible =
                    sim::respectsCriticalityOrder(c.apps, heuristic) &&
                    sim::respectsDependencies(c.apps, heuristic);
                if (heuristic_lp_feasible &&
                    heuristic_revenue > lp_revenue + kEps) {
                    std::ostringstream os;
                    os << "heuristic revenue " << heuristic_revenue
                       << " beats proven LP optimum " << lp_revenue;
                    report(result.violations, "lp-cost-upper",
                           "PhoenixCost", os.str());
                }
                // The revenue floor is only sound on like-for-like
                // cases. PhoenixCost maximizes revenue
                // lexicographically *below* criticality — a cheap
                // tenant's C1 outranks an expensive tenant's C2 by
                // design — so on mixed-tag cases the pure-revenue LP
                // optimum does not bound it. And the planner's
                // aggregate-capacity cut can admit a service no
                // single node can hold, displacing packable ones the
                // LP serves. Uniform tags plus per-node packability
                // remove both mechanisms; other cases still record
                // costGap as a diagnostic.
                double max_node_capacity = 0.0;
                for (NodeId n : post.healthyNodes()) {
                    max_node_capacity = std::max(
                        max_node_capacity, post.node(n).capacity);
                }
                bool like_for_like = true;
                int tag = 0;
                double largest_item_revenue = 0.0;
                for (const auto &app : c.apps) {
                    for (const auto &ms : app.services) {
                        const int t =
                            core::effectiveCriticality(app, ms);
                        if (tag == 0)
                            tag = t;
                        like_for_like = like_for_like && t == tag &&
                                        ms.cpu <=
                                            max_node_capacity + kEps;
                        largest_item_revenue = std::max(
                            largest_item_revenue,
                            app.pricePerUnit * ms.totalCpu());
                    }
                }
                // One-largest-item slack: the planner admits services
                // by density against *aggregate* capacity, the classic
                // greedy knapsack whose gap vs the optimum is bounded
                // only up to the largest single item (two equal-density
                // services of cpu 0.75 and 3 on one 3-cpu node: greedy
                // admits the small one first and cuts the big one).
                if (like_for_like &&
                    heuristic_revenue <
                        options.costGapFraction * lp_revenue -
                            largest_item_revenue - kEps) {
                    std::ostringstream os;
                    os << "heuristic revenue " << heuristic_revenue
                       << " below " << options.costGapFraction
                       << " * LP optimum " << lp_revenue;
                    report(result.violations, "lp-cost-lower",
                           "PhoenixCost", os.str());
                }
            }
        }

        core::LpScheme lp_fair(Objective::Fair, lp_options);
        const SchemeResult lf = lp_fair.apply(c.apps, post);
        if (!lf.failed) {
            result.lpFairRan = true;
            checkStateInvariants("LPFair", c.apps, lf.pack.state,
                                 options, result.violations);
            checkActionReplay("LPFair", c.apps, post, lf,
                              result.violations);
            const ActiveSet lp_active = lf.activeSet(c.apps);
            checkLpActiveSetOrder("LPFair", c.apps, lp_active,
                                  result.violations);
            if (lf.provenOptimal) {
                // Only the floor is sound: PhoenixFair has no strict
                // water-fill cap, so its minimum allocation may
                // legitimately exceed LPFair's F*. Indivisibility can
                // cost up to one largest service.
                const double lp_min =
                    minAllocation(c.apps, lp_active);
                const double heuristic_min = minAllocation(
                    c.apps,
                    results.at("PhoenixFair").activeSet(c.apps));
                const double floor =
                    options.fairGapFraction * lp_min -
                    largestServiceCpu(c.apps) - kEps;
                if (heuristic_min < floor) {
                    std::ostringstream os;
                    os << "heuristic min allocation " << heuristic_min
                       << " below floor " << floor
                       << " (LPFair F*=" << lp_min << ")";
                    report(result.violations, "lp-fair-lower",
                           "PhoenixFair", os.str());
                }
            }
        }
    }

    result.lpSeconds = secondsSince(lp_start);
    if (lp_eligible)
        PHOENIX_OBSERVE(*phaseObs().lp, result.lpSeconds);

    // --- Metamorphic relations -------------------------------------
    const Clock::time_point meta_start = Clock::now();
    if (options.metamorphic) {
        // Scale x2: exact in binary FP given grid-quantized sizes, so
        // plan/actions/assignment must be bit-identical.
        const CheckCase scaled = scaledCopy(c, 2.0);
        const ClusterState scaled_post = postFailureState(scaled);
        for (Objective objective :
             {Objective::Fair, Objective::Cost}) {
            const std::string name = objective == Objective::Fair
                                         ? "PhoenixFair"
                                         : "PhoenixCost";
            PhoenixScheme scheme(objective);
            const SchemeResult sr =
                scheme.apply(scaled.apps, scaled_post);
            const SchemeResult &base = results.at(name);
            if (sr.plan != base.plan)
                report(result.violations, "scale-invariance", name,
                       "plan changed under x2 scaling");
            else if (!sameActions(sr.pack.actions, base.pack.actions))
                report(result.violations, "scale-invariance", name,
                       "actions changed under x2 scaling");
        }

        // Node relabeling: best-fit-only packing sees the same
        // remaining-capacity multiset, so the active set and revenue
        // must match. Constrained cases are exempt — relabeling moves
        // nodes across zones, which legitimately changes what the
        // vacancy caps admit.
        if (post.nodeCount() > 1 && !c.constrained()) {
            std::vector<NodeId> perm(post.nodeCount());
            for (NodeId n = 0; n < perm.size(); ++n)
                perm[n] = n;
            util::Rng perm_rng(util::cellSeed(c.seed, 0xBEEF));
            perm_rng.shuffle(perm);
            const ClusterState permuted = permuteNodes(post, perm);
            for (Objective objective :
                 {Objective::Fair, Objective::Cost}) {
                PackingOptions best_fit_only;
                best_fit_only.allowMigrations = false;
                best_fit_only.allowDeletions = false;
                PhoenixScheme plain(objective, {}, best_fit_only);
                PhoenixScheme relabeled(objective, {}, best_fit_only);
                const SchemeResult ra = plain.apply(c.apps, post);
                const SchemeResult rb =
                    relabeled.apply(c.apps, permuted);
                // Below-quorum cleanup evicts a failed service's
                // survivors even in best-fit-only mode, and a
                // survivor's host is coupled to earlier tie-break
                // choices — freeing its cpu breaks the
                // remaining-capacity multiset induction the property
                // rests on. Only the eviction-free run is invariant.
                const auto has_delete = [](const SchemeResult &r) {
                    for (const Action &a : r.pack.actions) {
                        if (a.kind == core::ActionKind::Delete)
                            return true;
                    }
                    return false;
                };
                if (has_delete(ra) || has_delete(rb))
                    continue;
                const std::string name = objective == Objective::Fair
                                             ? "PhoenixFair"
                                             : "PhoenixCost";
                if (ra.activeSet(c.apps) != rb.activeSet(c.apps)) {
                    report(result.violations, "permutation-invariance",
                           name,
                           "active set changed under node relabeling");
                }
            }
        }

        // Restoring a failed node must not make things worse.
        // Constrained cases are exempt: a restored node reopens a
        // zone, and honoring a spread cap there can legally shed a
        // co-located replica the capacity-only argument would keep.
        std::optional<NodeId> down;
        for (NodeId n = 0; !c.constrained() && n < post.nodeCount();
             ++n) {
            if (!post.isHealthy(n)) {
                down = n;
                break;
            }
        }
        if (down) {
            ClusterState restored = post;
            restored.restoreNode(*down);
            // Two fuzz-found soundness limits shape this check.
            // First, greedy packing under fragmentation is not
            // point-wise monotone: a restored node changes the plan,
            // and the new plan can strand one indivisible container
            // the old one placed (11+7 nodes where no two of
            // {4,4,3.25} share the 7-unit node), so each metric gets
            // an indivisibility slack. Second, each scheme is only
            // monotone in its *own* objective: PhoenixCost will
            // happily trade half the cluster's availability for an
            // expensive app's replica set, and PhoenixFair will shed
            // revenue for balance — so Fair is checked on
            // availability and Cost on normalized revenue only.
            const double avail_slack =
                1.0 / static_cast<double>(c.apps.size()) +
                options.monotonicityTolerance;
            double full_revenue = 0.0;
            double largest_item_revenue = 0.0;
            for (const auto &app : c.apps) {
                for (const auto &ms : app.services) {
                    const double item =
                        app.pricePerUnit * ms.totalCpu();
                    full_revenue += item;
                    largest_item_revenue =
                        std::max(largest_item_revenue, item);
                }
            }
            const double revenue_slack =
                (full_revenue > 0.0
                     ? largest_item_revenue / full_revenue
                     : 0.0) +
                options.monotonicityTolerance;
            // Revenue is only PhoenixCost's objective *within* a
            // criticality level. On mixed-tag cases the restored
            // capacity can let the plan admit a huge cheap critical
            // service whose packing then crowds out an expensive
            // low-criticality one — a legal trade under the
            // lexicographic key with an unbounded revenue cost (fuzz:
            // a 0.25-priced 3x3.75-cpu C2 set displacing 2.5-priced
            // services once a second node returned). Uniform effective
            // tags reduce the key to pure price density, where revenue
            // monotonicity modulo indivisibility is the real claim.
            bool uniform_tags = true;
            int mono_tag = 0;
            for (const auto &app : c.apps) {
                for (const auto &ms : app.services) {
                    const int t = core::effectiveCriticality(app, ms);
                    if (mono_tag == 0)
                        mono_tag = t;
                    uniform_tags = uniform_tags && t == mono_tag;
                }
            }
            for (Objective objective :
                 {Objective::Fair, Objective::Cost}) {
                const std::string name = objective == Objective::Fair
                                             ? "PhoenixFair"
                                             : "PhoenixCost";
                PhoenixScheme scheme(objective);
                const SchemeResult after =
                    scheme.apply(c.apps, restored);
                const ActiveSet active_before =
                    results.at(name).activeSet(c.apps);
                const ActiveSet active_after = after.activeSet(c.apps);
                const double avail_before =
                    sim::criticalFractionAvailability(c.apps,
                                                      active_before);
                const double avail_after =
                    sim::criticalFractionAvailability(c.apps,
                                                      active_after);
                const double revenue_before =
                    sim::revenueNormalized(c.apps, active_before);
                const double revenue_after =
                    sim::revenueNormalized(c.apps, active_after);
                const bool violated =
                    objective == Objective::Fair
                        ? avail_after < avail_before - avail_slack
                        : uniform_tags &&
                              revenue_after <
                                  revenue_before - revenue_slack;
                if (violated) {
                    std::ostringstream os;
                    os << "restoring node " << *down
                       << " dropped availability " << avail_before
                       << " -> " << avail_after << ", revenue "
                       << revenue_before << " -> " << revenue_after;
                    report(result.violations, "monotonicity", name,
                           os.str());
                }
            }
        }
    }

    if (options.metamorphic) {
        result.metamorphicSeconds = secondsSince(meta_start);
        PHOENIX_OBSERVE(*phaseObs().metamorphic,
                        result.metamorphicSeconds);
    }

    // --- Kube lifecycle --------------------------------------------
    if (options.lifecycle && c.lifecycle && !c.steps.empty() &&
        c.singleReplica()) {
        const Clock::time_point lifecycle_start = Clock::now();
        runLifecycleOracle(c, result);
        result.lifecycleSeconds = secondsSince(lifecycle_start);
        PHOENIX_OBSERVE(*phaseObs().lifecycle,
                        result.lifecycleSeconds);
    }

    return result;
}

} // namespace phoenix::check
