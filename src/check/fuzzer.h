/**
 * @file
 * Fuzzing loop: generate -> check -> shrink -> serialize.
 *
 * Case i of a run draws its seed from util::cellSeed(baseSeed, i) —
 * the same per-cell derivation the experiment engine uses — so a run
 * is a pure function of (baseSeed, cases) and any failing index can
 * be regenerated in isolation. Failures are shrunk and written to the
 * output directory as self-contained JSON repros ready to move into
 * tests/corpus/.
 */

#ifndef PHOENIX_CHECK_FUZZER_H
#define PHOENIX_CHECK_FUZZER_H

#include <iosfwd>
#include <string>
#include <vector>

#include "check/generator.h"
#include "check/oracle.h"
#include "check/shrink.h"

namespace phoenix::check {

struct FuzzOptions
{
    uint64_t seed = 1;
    size_t cases = 200;
    bool shrink = true;
    /** Directory for failing-case repro files ("" = don't write). */
    std::string outDir;
    bool verbose = false;

    GeneratorOptions gen;
    OracleOptions oracle;
    ShrinkOptions shrinkOptions;
};

/** One failing case, after shrinking. */
struct FuzzFailure
{
    size_t caseIndex = 0;
    uint64_t caseSeed = 0;
    /** Violated properties of the shrunk case. */
    std::vector<std::string> properties;
    /** First violation of the original (pre-shrink) run. */
    Violation firstViolation;
    CheckCase shrunk;
    /** Repro path when outDir was set. */
    std::string reproFile;
};

struct FuzzStats
{
    size_t casesRun = 0;
    size_t failures = 0;
    size_t lpCostRuns = 0;
    size_t lpFairRuns = 0;
    size_t lifecycleRuns = 0;
    std::vector<FuzzFailure> failureList;

    bool ok() const { return failures == 0; }
};

/** Run the loop; progress/diagnostics go to @p log. */
FuzzStats runFuzz(const FuzzOptions &options, std::ostream &log);

} // namespace phoenix::check

#endif // PHOENIX_CHECK_FUZZER_H
