/**
 * @file
 * Greedy failing-case shrinker.
 *
 * Given a CheckCase the oracle rejects, repeatedly try structural
 * simplifications — drop an application, drop a service, drop a node,
 * drop a failure step, clear a dependency graph, collapse replicas —
 * keeping a candidate only when the oracle still reports at least one
 * of the *original* violated properties (so the shrink cannot wander
 * onto an unrelated failure). Loops to fixpoint under a bounded
 * oracle-call budget; the result is the minimal repro serialized into
 * the regression corpus.
 */

#ifndef PHOENIX_CHECK_SHRINK_H
#define PHOENIX_CHECK_SHRINK_H

#include "check/case.h"
#include "check/oracle.h"

namespace phoenix::check {

struct ShrinkOptions
{
    /** Upper bound on oracle invocations across the whole shrink. */
    size_t maxChecks = 400;
};

struct ShrinkOutcome
{
    CheckCase shrunk;
    /** Properties of the original failure the shrunk case still
     * violates. */
    std::vector<std::string> properties;
    /** Oracle invocations spent. */
    size_t checks = 0;
    /** Accepted simplification steps. */
    size_t stepsApplied = 0;
};

/**
 * Shrink @p failing (which must already violate the oracle under
 * @p oracle_options) to a smaller case violating the same property.
 */
ShrinkOutcome shrinkCase(const CheckCase &failing,
                         const OracleOptions &oracle_options,
                         const ShrinkOptions &options = {});

} // namespace phoenix::check

#endif // PHOENIX_CHECK_SHRINK_H
