#include "fuzzer.h"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "util/rng.h"

namespace phoenix::check {

namespace {

std::string
writeRepro(const std::string &dir, const CheckCase &shrunk,
           std::ostream &log)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/" + shrunk.name + ".json";
    std::ofstream out(path);
    if (!out) {
        log << "fuzzcheck: cannot write " << path << "\n";
        return "";
    }
    out << shrunk.toJson();
    return path;
}

} // namespace

FuzzStats
runFuzz(const FuzzOptions &options, std::ostream &log)
{
    FuzzStats stats;
    for (size_t i = 0; i < options.cases; ++i) {
        const uint64_t case_seed = util::cellSeed(options.seed, i);
        CheckCase c = generateCase(case_seed, options.gen);
        c.name = "fuzz-" + std::to_string(options.seed) + "-" +
                 std::to_string(i);

        const OracleResult result = checkCase(c, options.oracle);
        ++stats.casesRun;
        stats.lpCostRuns += result.lpCostRan ? 1 : 0;
        stats.lpFairRuns += result.lpFairRan ? 1 : 0;
        stats.lifecycleRuns += result.lifecycleRan ? 1 : 0;
        if (options.verbose && i % 50 == 0)
            log << "fuzzcheck: case " << i << "/" << options.cases
                << ", " << stats.failures << " failures\n";
        if (result.ok())
            continue;

        ++stats.failures;
        FuzzFailure failure;
        failure.caseIndex = i;
        failure.caseSeed = case_seed;
        failure.firstViolation = result.violations.front();
        log << "fuzzcheck: case " << i << " (seed " << case_seed
            << ") FAILED: " << failure.firstViolation.property << " ["
            << failure.firstViolation.scheme << "] "
            << failure.firstViolation.detail << "\n";

        if (options.shrink) {
            ShrinkOutcome shrunk = shrinkCase(c, options.oracle,
                                              options.shrinkOptions);
            failure.properties = shrunk.properties;
            failure.shrunk = std::move(shrunk.shrunk);
            failure.shrunk.name = c.name;
            failure.shrunk.notes =
                "shrunk repro; violates: " +
                failure.firstViolation.property + " [" +
                failure.firstViolation.scheme + "]";
            log << "fuzzcheck: shrunk to "
                << failure.shrunk.nodeCapacities.size() << " nodes, "
                << failure.shrunk.apps.size() << " apps, "
                << failure.shrunk.serviceCount() << " services ("
                << shrunk.checks << " oracle calls)\n";
        } else {
            failure.shrunk = c;
            for (const auto &v : result.violations)
                failure.properties.push_back(v.property);
        }

        if (!options.outDir.empty())
            failure.reproFile =
                writeRepro(options.outDir, failure.shrunk, log);
        stats.failureList.push_back(std::move(failure));
    }
    return stats;
}

} // namespace phoenix::check
