/**
 * @file
 * Seeded random case generation for the differential oracle.
 *
 * generateCase(seed) is a pure function of its arguments: the same
 * (seed, options) pair produces the same CheckCase on every build and
 * machine, because all randomness flows through util::Rng (xoshiro
 * seeded via splitmix64) and the fuzzer derives per-case seeds with
 * util::cellSeed. That makes "fuzz run 1234, case 57" a stable name
 * for a test case even before it is serialized.
 *
 * Sizes are grid-quantized on purpose: service cpu demands are
 * multiples of 0.25 and node capacities multiples of 1.0, so the
 * scale-by-2 metamorphic check (see oracle.h) is exact in binary
 * floating point and cannot flip an epsilon comparison inside the
 * planner between the two runs.
 */

#ifndef PHOENIX_CHECK_GENERATOR_H
#define PHOENIX_CHECK_GENERATOR_H

#include <cstdint>

#include "check/case.h"

namespace phoenix::check {

struct GeneratorOptions
{
    int minNodes = 2;
    int maxNodes = 10;
    int minApps = 1;
    int maxApps = 4;
    int maxServicesPerApp = 6;
    /** Service cpu ceiling; demands land on a 0.25 grid. */
    double maxServiceCpu = 4.0;
    /** Node capacity ceiling; capacities land on a 1.0 grid. */
    double maxNodeCapacity = 16.0;

    /** Probability that an app carries a dependency graph. */
    double dagProbability = 0.6;
    /** Per-(i,j) edge probability inside a DAG (i < j only). */
    double edgeProbability = 0.35;
    /** Probability that app ids are sparse/non-contiguous. */
    double sparseAppIdProbability = 0.25;
    /** Probability that an app opts out of Phoenix tagging. */
    double partialTaggingProbability = 0.15;
    /** Probability that a service runs more than one replica. */
    double multiReplicaProbability = 0.15;
    /** Probability that a case also exercises the kube lifecycle. */
    double lifecycleProbability = 0.35;
    /** Probability of a recover step following the failure. */
    double recoverProbability = 0.35;
    /** Probability of a kubelet flap instead of a clean failure. */
    double flapProbability = 0.2;

    /** Probability of a network-partition wave layered on top of the
     * base failure script (always healed after a window). */
    double partitionProbability = 0.25;
    /** Probability of a degraded (slow-not-dead) node wave. */
    double degradeProbability = 0.25;
    /** Probability of an API-server outage window. */
    double outageProbability = 0.2;
    /** Probability of a heartbeat clock-skew fault on one node. */
    double skewProbability = 0.15;

    /**
     * Placement-policy emission (topology-aware packing). All four
     * default to 0 so the classic rng stream is untouched — a draw is
     * only consumed when the probability is positive, keeping every
     * historical (seed, options) case byte-identical.
     */
    /** Per-app probability of an anti-affinity group (per-node and
     * sometimes per-zone caps) enrolling a subset of its services. */
    double antiAffinityProbability = 0.0;
    /** Per-service probability of a PodDisruptionBudget (forces
     * replicas >= 2). */
    double pdbProbability = 0.0;
    /** Per-service probability of a minZoneSpread constraint (forces
     * replicas >= 2; spread <= topologyZones). */
    double zoneSpreadProbability = 0.0;
    /** Per-service probability of a standalone maxPerNode cap. */
    double nodeCapProbability = 0.0;
    /** Explicit zone count for constrained cases: when any placement
     * policy was emitted, nodes get explicit zone labels
     * (id % topologyZones) so spread constraints are meaningful. */
    int topologyZones = 3;

    /** Probability that the failure step is zone-local: every failed
     * node shares one residue id % zoneFailureZones — the blast shape
     * the zone-sharded capacity index routes and the incremental
     * replanner's dirty-zone hints describe. */
    double zoneFailureProbability = 0.3;
    /** Zone count used to pick zone-local failure targets (must match
     * the oracle's shard knob to make the failure single-zone for the
     * schemes under test). */
    int zoneFailureZones = 3;
};

/** Deterministically expand @p seed into a complete CheckCase. */
CheckCase generateCase(uint64_t seed,
                       const GeneratorOptions &options = {});

} // namespace phoenix::check

#endif // PHOENIX_CHECK_GENERATOR_H
