/**
 * @file
 * Statistical stand-in for the Alibaba cluster-trace-microservices-v2021
 * dataset.
 *
 * The paper derives 18 application dependency graphs (10-3000
 * microservices) plus per-request call graphs from ~20M traced calls.
 * That dataset is proprietary-sized and not available offline, so this
 * generator synthesizes applications calibrated to the statistics the
 * paper itself reports (§3.2, Appendix G, Fig 17):
 *
 *  - 18 applications with long-tailed DG sizes (10..3000 services);
 *  - request popularity concentrated on the top ~4 applications;
 *  - 74-82% of non-entry microservices having a single upstream caller;
 *  - call graphs that are small subtrees of the DG (most under 10
 *    services) with Zipf-distributed template popularity, so a small
 *    fraction of microservices covers most requests ("80% of requests
 *    via 3% of services").
 */

#ifndef PHOENIX_WORKLOADS_ALIBABA_H
#define PHOENIX_WORKLOADS_ALIBABA_H

#include <cstdint>
#include <vector>

#include "sim/types.h"
#include "util/rng.h"

namespace phoenix::workloads {

/**
 * One call-graph template: the set of microservices a class of user
 * requests touches, with the fraction of the application's requests
 * that follow it.
 */
struct CallGraphTemplate
{
    std::vector<sim::MsId> services;
    double weight = 0.0; //!< fraction of the app's requests
};

/** A generated application plus its request-level behaviour. */
struct GeneratedApp
{
    sim::Application app;
    std::vector<CallGraphTemplate> callGraphs;
    /** Requests per day served by this application (popularity). */
    double requestRate = 0.0;
};

/** Generator configuration. */
struct AlibabaConfig
{
    uint64_t seed = 2021;
    int appCount = 18;
    /** Scale factor on DG sizes (1.0 = paper sizes, 10..3000). */
    double sizeScale = 1.0;
    /** Probability that a non-entry node has exactly one upstream. */
    double singleUpstreamProb = 0.82;
    /** Call-graph templates per application (before weighting). */
    int templatesPerApp = 128;
    /** Zipf skew of template popularity. Calibrated against Fig 17:
     * low enough that request weight spreads over many templates (the
     * real trace has 20M distinct call graphs), high enough that a
     * small microservice set still covers most requests. */
    double templateSkew = 1.12;
    /** Zipf skew of application popularity. */
    double appSkew = 1.6;
    /** Total request volume across applications (per day). */
    double totalRequests = 2.0e7;
};

/** Synthesize the 18-application workload. */
class AlibabaGenerator
{
  public:
    explicit AlibabaGenerator(AlibabaConfig config = AlibabaConfig())
        : config_(config)
    {
    }

    std::vector<GeneratedApp> generate() const;

    /** The DG sizes used for the given app count (descending). */
    static std::vector<size_t> paperSizes(int app_count,
                                          double size_scale);

  private:
    /** Build one application's dependency DAG. */
    sim::Application buildApp(sim::AppId id, size_t services,
                              util::Rng &rng) const;

    /** Sample call-graph templates over the app's DG. */
    std::vector<CallGraphTemplate>
    buildCallGraphs(const sim::Application &app, util::Rng &rng) const;

    AlibabaConfig config_;
};

/**
 * Calls-per-minute of every microservice of @p app: the sum over
 * templates containing it of template weight times the app request
 * rate (per minute).
 */
std::vector<double> callsPerMinute(const GeneratedApp &app);

} // namespace phoenix::workloads

#endif // PHOENIX_WORKLOADS_ALIBABA_H
