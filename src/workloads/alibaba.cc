#include "alibaba.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace phoenix::workloads {

using sim::Application;
using sim::Microservice;
using sim::MsId;

std::vector<size_t>
AlibabaGenerator::paperSizes(int app_count, double size_scale)
{
    // Geometric decay from 3000 down to 10 across the requested app
    // count; matches the shape of Fig 17a (few large apps, many small).
    std::vector<size_t> sizes;
    const double hi = 3000.0 * size_scale;
    const double lo = std::max(4.0, 10.0 * size_scale);
    const int n = std::max(app_count, 1);
    for (int i = 0; i < n; ++i) {
        const double frac =
            n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
        const double size = hi * std::pow(lo / hi, frac);
        sizes.push_back(static_cast<size_t>(std::max(4.0, size)));
    }
    return sizes;
}

Application
AlibabaGenerator::buildApp(sim::AppId id, size_t services,
                           util::Rng &rng) const
{
    Application app;
    app.id = id;
    app.name = "App" + std::to_string(id + 1);
    app.hasDependencyGraph = true;
    app.dag = graph::DiGraph(services);
    app.services.resize(services);
    for (MsId m = 0; m < services; ++m) {
        app.services[m].id = m;
        app.services[m].name =
            app.name + "/ms" + std::to_string(m);
        app.services[m].criticality = sim::kDefaultCriticality;
    }

    // Node 0 is the entry (API gateway). Every later node attaches to
    // one upstream with probability singleUpstreamProb, otherwise to
    // 2-3 upstreams. Upstream choice is preferential toward low ids so
    // early nodes become hubs, matching the skewed fan-outs of real
    // call graphs.
    for (MsId m = 1; m < services; ++m) {
        const int upstreams =
            rng.bernoulli(config_.singleUpstreamProb)
                ? 1
                : static_cast<int>(rng.uniformInt(2, 3));
        std::set<MsId> parents;
        for (int u = 0; u < upstreams; ++u) {
            const uint64_t rank = rng.zipf(m, 1.1);
            parents.insert(static_cast<MsId>(rank - 1));
        }
        for (MsId p : parents)
            app.dag.addEdge(p, m);
    }
    return app;
}

std::vector<CallGraphTemplate>
AlibabaGenerator::buildCallGraphs(const Application &app,
                                  util::Rng &rng) const
{
    const size_t n = app.services.size();
    const int templates =
        static_cast<int>(std::min<size_t>(config_.templatesPerApp,
                                          std::max<size_t>(n / 2, 2)));

    // Zipf template popularity.
    std::vector<double> weights(templates);
    double total = 0.0;
    for (int t = 0; t < templates; ++t) {
        weights[t] = 1.0 / std::pow(t + 1.0, config_.templateSkew);
        total += weights[t];
    }
    for (auto &w : weights)
        w /= total;

    std::vector<CallGraphTemplate> out;
    out.reserve(templates);
    for (int t = 0; t < templates; ++t) {
        // Popular (low-rank) templates stay small; the tail includes a
        // few deep fan-out requests. Sizes track Fig 17b: most call
        // graphs contain < 10 microservices.
        const double mean_size =
            2.0 + 6.0 * static_cast<double>(t) / templates;
        size_t target = 1 + static_cast<size_t>(
                                rng.exponential(1.0 / mean_size));
        target = std::min(target, std::max<size_t>(n / 2, 2));

        // Truncated preorder walk from the entry, preferring hot
        // (low-id) children so popular templates overlap heavily.
        CallGraphTemplate tpl;
        tpl.weight = weights[t];
        std::set<MsId> member;
        std::vector<MsId> frontier{0};
        member.insert(0);
        while (!frontier.empty() && member.size() < target) {
            const size_t pick = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(frontier.size()) -
                                      1));
            const MsId node = frontier[pick];
            frontier.erase(frontier.begin() +
                           static_cast<ptrdiff_t>(pick));

            std::vector<MsId> children(app.dag.successors(node).begin(),
                                       app.dag.successors(node).end());
            std::sort(children.begin(), children.end());
            for (size_t c = 0;
                 c < children.size() && member.size() < target; ++c) {
                // Earlier (hub) children are much more likely to be
                // part of the request path.
                const double p = 0.9 / (1.0 + 0.6 * c);
                if (!member.count(children[c]) && rng.bernoulli(p)) {
                    member.insert(children[c]);
                    frontier.push_back(children[c]);
                }
            }
        }
        tpl.services.assign(member.begin(), member.end());
        out.push_back(std::move(tpl));
    }

    // Renormalize (defensive; weights already sum to 1).
    double sum = 0.0;
    for (const auto &tpl : out)
        sum += tpl.weight;
    if (sum > 0.0) {
        for (auto &tpl : out)
            tpl.weight /= sum;
    }
    return out;
}

std::vector<GeneratedApp>
AlibabaGenerator::generate() const
{
    util::Rng rng(config_.seed);
    const auto sizes =
        paperSizes(config_.appCount, config_.sizeScale);

    // Popularity: Zipf over the size rank (biggest app serves the most
    // requests, App. G's App1).
    std::vector<double> popularity(sizes.size());
    double pop_total = 0.0;
    for (size_t i = 0; i < sizes.size(); ++i) {
        popularity[i] = 1.0 / std::pow(i + 1.0, config_.appSkew);
        pop_total += popularity[i];
    }

    std::vector<GeneratedApp> apps;
    apps.reserve(sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
        util::Rng app_rng = rng.fork();
        GeneratedApp generated;
        generated.app = buildApp(static_cast<sim::AppId>(i), sizes[i],
                                 app_rng);
        generated.callGraphs =
            buildCallGraphs(generated.app, app_rng);
        generated.requestRate =
            config_.totalRequests * popularity[i] / pop_total;
        apps.push_back(std::move(generated));
    }
    return apps;
}

std::vector<double>
callsPerMinute(const GeneratedApp &app)
{
    std::vector<double> cpm(app.app.services.size(), 0.0);
    const double per_minute = app.requestRate / (24.0 * 60.0);
    for (const auto &tpl : app.callGraphs) {
        for (MsId m : tpl.services)
            cpm[m] += tpl.weight * per_minute;
    }
    return cpm;
}

} // namespace phoenix::workloads
