#include "coverage.h"

#include <algorithm>
#include <set>

#include "lp/branch_bound.h"

namespace phoenix::workloads {

using sim::MsId;

double
coveredFraction(const std::vector<CallGraphTemplate> &templates,
                const std::vector<bool> &enabled)
{
    double covered = 0.0;
    double total = 0.0;
    for (const auto &tpl : templates) {
        total += tpl.weight;
        bool all = true;
        for (MsId m : tpl.services) {
            if (m >= enabled.size() || !enabled[m]) {
                all = false;
                break;
            }
        }
        if (all)
            covered += tpl.weight;
    }
    if (total <= 0.0)
        return 0.0;
    return covered / total;
}

namespace {

/**
 * Greedy order of templates: repeatedly pick the uncovered template
 * with the best weight-per-newly-enabled-service ratio. Returns the
 * template order.
 */
std::vector<size_t>
greedyTemplateOrder(const std::vector<CallGraphTemplate> &templates,
                    size_t service_count)
{
    std::vector<bool> enabled(service_count, false);
    std::vector<bool> taken(templates.size(), false);
    std::vector<size_t> order;

    for (size_t round = 0; round < templates.size(); ++round) {
        double best_ratio = -1.0;
        size_t best = templates.size();
        size_t best_new = 0;
        for (size_t t = 0; t < templates.size(); ++t) {
            if (taken[t])
                continue;
            size_t fresh = 0;
            for (MsId m : templates[t].services) {
                if (m < service_count && !enabled[m])
                    ++fresh;
            }
            const double ratio =
                templates[t].weight / static_cast<double>(fresh + 1);
            if (ratio > best_ratio) {
                best_ratio = ratio;
                best = t;
                best_new = fresh;
            }
        }
        if (best == templates.size())
            break;
        (void)best_new;
        taken[best] = true;
        order.push_back(best);
        for (MsId m : templates[best].services) {
            if (m < service_count)
                enabled[m] = true;
        }
    }
    return order;
}

} // namespace

std::vector<MsId>
minServicesForCoverage(const std::vector<CallGraphTemplate> &templates,
                       size_t service_count, double target_fraction)
{
    double total = 0.0;
    for (const auto &tpl : templates)
        total += tpl.weight;

    const auto order = greedyTemplateOrder(templates, service_count);
    std::vector<bool> enabled(service_count, false);
    double covered = 0.0;
    std::set<MsId> chosen;
    for (size_t t : order) {
        if (total > 0.0 && covered / total >= target_fraction - 1e-12)
            break;
        for (MsId m : templates[t].services) {
            if (m < service_count && !enabled[m]) {
                enabled[m] = true;
                chosen.insert(m);
            }
        }
        covered += templates[t].weight;
    }
    return std::vector<MsId>(chosen.begin(), chosen.end());
}

std::vector<CoveragePoint>
coverageCurve(const std::vector<CallGraphTemplate> &templates,
              size_t service_count)
{
    std::vector<CoveragePoint> curve;
    double total = 0.0;
    for (const auto &tpl : templates)
        total += tpl.weight;
    if (total <= 0.0)
        return curve;

    const auto order = greedyTemplateOrder(templates, service_count);
    std::vector<bool> enabled(service_count, false);
    size_t enabled_count = 0;
    double covered = 0.0;
    curve.push_back(CoveragePoint{0, 0.0});
    for (size_t t : order) {
        for (MsId m : templates[t].services) {
            if (m < service_count && !enabled[m]) {
                enabled[m] = true;
                ++enabled_count;
            }
        }
        covered += templates[t].weight;
        curve.push_back(CoveragePoint{enabled_count, covered / total});
    }
    return curve;
}

std::optional<std::vector<MsId>>
exactMinServicesForCoverage(
    const std::vector<CallGraphTemplate> &templates, size_t service_count,
    double target_fraction, size_t max_vars, double time_limit_sec)
{
    if (service_count + templates.size() > max_vars)
        return std::nullopt;

    double total = 0.0;
    for (const auto &tpl : templates)
        total += tpl.weight;
    if (total <= 0.0)
        return std::vector<MsId>{};

    // minimize sum e_m  s.t.  c_t <= e_m for m in t,
    //                          sum w_t c_t >= target * total
    lp::Model model;
    std::vector<lp::VarId> enable(service_count);
    for (size_t m = 0; m < service_count; ++m)
        enable[m] = model.addBinaryVar();
    std::vector<lp::VarId> covered(templates.size());
    lp::LinExpr coverage;
    for (size_t t = 0; t < templates.size(); ++t) {
        covered[t] = model.addBinaryVar();
        for (MsId m : templates[t].services) {
            model.addConstraint(
                {{covered[t], 1.0}, {enable[m], -1.0}},
                lp::Relation::LessEq, 0.0);
        }
        coverage.push_back({covered[t], templates[t].weight});
    }
    model.addConstraint(coverage, lp::Relation::GreaterEq,
                        target_fraction * total - 1e-9);
    lp::LinExpr objective;
    for (size_t m = 0; m < service_count; ++m)
        objective.push_back({enable[m], 1.0});
    model.setObjective(objective, false);

    lp::MilpOptions options;
    options.timeLimitSec = time_limit_sec;
    const lp::Solution solution = lp::solveMilp(model, options);
    if (!solution.hasSolution())
        return std::nullopt;

    std::vector<MsId> chosen;
    for (size_t m = 0; m < service_count; ++m) {
        if (solution.values[enable[m]] > 0.5)
            chosen.push_back(static_cast<MsId>(m));
    }
    return chosen;
}

} // namespace phoenix::workloads
