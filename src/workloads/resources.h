/**
 * @file
 * The two resource-assignment models of §6.2:
 *
 *  (i)  CPM: microservice resources proportional to its calls-per-minute
 *       (Luo et al. 2022's observation on the same Alibaba dataset);
 *  (ii) LongTailed: sizes sampled from a bounded-Pareto model of the
 *       Azure Packing 2020 trace (most containers tiny, a heavy tail
 *       of large ones).
 *
 * Both models then scale every application so that total demand equals
 * a target fraction of cluster capacity (the paper's experiments fix
 * aggregate demand relative to the healthy cluster).
 */

#ifndef PHOENIX_WORKLOADS_RESOURCES_H
#define PHOENIX_WORKLOADS_RESOURCES_H

#include <cstdint>
#include <vector>

#include "workloads/alibaba.h"

namespace phoenix::workloads {

enum class ResourceModel { CallsPerMinute, LongTailed };

const char *resourceModelName(ResourceModel model);

/** Parameters for resource assignment. */
struct ResourceConfig
{
    ResourceModel model = ResourceModel::CallsPerMinute;
    uint64_t seed = 7;
    /** Minimum container size (normalized units / millicores). */
    double minCpu = 0.1;
    /** Maximum container size. */
    double maxCpu = 32.0;
    /** Pareto tail index for the long-tailed model. */
    double paretoAlpha = 1.15;
};

/**
 * Assign microservice CPU demands in place.
 */
void assignResources(std::vector<GeneratedApp> &apps,
                     const ResourceConfig &config);

/**
 * Rescale every microservice so that total demand across @p apps equals
 * @p target_total resources. Returns the scale factor applied.
 */
double scaleTotalDemand(std::vector<GeneratedApp> &apps,
                        double target_total);

} // namespace phoenix::workloads

#endif // PHOENIX_WORKLOADS_RESOURCES_H
