#include "resources.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace phoenix::workloads {

const char *
resourceModelName(ResourceModel model)
{
    switch (model) {
      case ResourceModel::CallsPerMinute: return "CPM";
      case ResourceModel::LongTailed: return "LongTailed";
    }
    return "?";
}

void
assignResources(std::vector<GeneratedApp> &apps,
                const ResourceConfig &config)
{
    util::Rng rng(config.seed);

    if (config.model == ResourceModel::CallsPerMinute) {
        // Resources proportional to calls-per-minute times a
        // per-service cost-per-call factor (an API gateway handles
        // every request cheaply; an ML-inference backend does not), so
        // the hottest service is not automatically the biggest
        // container. Normalized per app against its most expensive
        // service so each app spans the size envelope.
        for (auto &generated : apps) {
            util::Rng app_rng = rng.fork();
            const auto cpm = callsPerMinute(generated);
            std::vector<double> raw(cpm.size(), 0.0);
            double peak = 0.0;
            for (size_t m = 0; m < cpm.size(); ++m) {
                const double cost_per_call =
                    app_rng.logNormal(0.0, 1.0);
                raw[m] = cpm[m] * cost_per_call;
                peak = std::max(peak, raw[m]);
            }
            if (peak <= 0.0)
                peak = 1.0;
            for (auto &ms : generated.app.services) {
                const double frac = raw[ms.id] / peak;
                ms.cpu = std::clamp(
                    config.minCpu +
                        frac * (config.maxCpu - config.minCpu),
                    config.minCpu, config.maxCpu);
            }
        }
        return;
    }

    // Long-tailed (Azure Packing 2020 shape): bounded Pareto sizes.
    for (auto &generated : apps) {
        util::Rng app_rng = rng.fork();
        for (auto &ms : generated.app.services) {
            ms.cpu = app_rng.boundedPareto(config.minCpu, config.maxCpu,
                                           config.paretoAlpha);
        }
    }
}

double
scaleTotalDemand(std::vector<GeneratedApp> &apps, double target_total)
{
    double total = 0.0;
    for (const auto &generated : apps)
        total += generated.app.totalDemand();
    if (total <= 0.0 || target_total <= 0.0)
        return 1.0;
    const double scale = target_total / total;
    for (auto &generated : apps) {
        for (auto &ms : generated.app.services)
            ms.cpu *= scale;
    }
    return scale;
}

} // namespace phoenix::workloads
