#include "tagging.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "workloads/coverage.h"

namespace phoenix::workloads {

using sim::Criticality;
using sim::MsId;

std::string
taggingName(const TaggingConfig &config)
{
    std::string base = config.scheme == TaggingScheme::ServiceLevel
                           ? "Service-Level"
                           : "Freq-Based";
    const int pct = static_cast<int>(std::round(config.percentile * 100));
    return base + "-P" + std::to_string(pct);
}

namespace {

/** C1 set from the ServiceLevel rule: top templates by weight until the
 * percentile is reached; union of their microservices. */
std::set<MsId>
serviceLevelCritical(const GeneratedApp &app, double percentile)
{
    std::vector<size_t> order(app.callGraphs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return app.callGraphs[x].weight > app.callGraphs[y].weight;
    });

    double total = 0.0;
    for (const auto &tpl : app.callGraphs)
        total += tpl.weight;

    std::set<MsId> critical;
    double covered = 0.0;
    for (size_t t : order) {
        if (total > 0.0 && covered / total >= percentile - 1e-12)
            break;
        covered += app.callGraphs[t].weight;
        for (MsId m : app.callGraphs[t].services)
            critical.insert(m);
    }
    return critical;
}

std::set<MsId>
frequencyBasedCritical(const GeneratedApp &app, double percentile)
{
    const auto chosen = minServicesForCoverage(
        app.callGraphs, app.app.services.size(), percentile);
    return std::set<MsId>(chosen.begin(), chosen.end());
}

} // namespace

void
assignCriticality(std::vector<GeneratedApp> &apps,
                  const TaggingConfig &config)
{
    util::Rng rng(config.seed);
    for (auto &generated : apps) {
        util::Rng app_rng = rng.fork();
        auto &services = generated.app.services;

        std::set<MsId> critical =
            config.scheme == TaggingScheme::ServiceLevel
                ? serviceLevelCritical(generated, config.percentile)
                : frequencyBasedCritical(generated, config.percentile);

        // Rare-but-critical background services.
        for (MsId m = 0; m < services.size(); ++m) {
            if (!critical.count(m) &&
                app_rng.bernoulli(config.rareCriticalFraction)) {
                critical.insert(m);
            }
        }

        // Non-critical services bucket into C2..C<levels> by
        // popularity: hotter services keep a lower (more critical) tag.
        const auto cpm = callsPerMinute(generated);
        std::vector<MsId> rest;
        for (MsId m = 0; m < services.size(); ++m) {
            if (!critical.count(m))
                rest.push_back(m);
        }
        std::sort(rest.begin(), rest.end(), [&](MsId x, MsId y) {
            if (cpm[x] != cpm[y])
                return cpm[x] > cpm[y];
            return x < y;
        });

        for (MsId m = 0; m < services.size(); ++m)
            services[m].criticality = sim::kC1;
        const int buckets = std::max(config.levels - 1, 1);
        for (size_t i = 0; i < rest.size(); ++i) {
            const int bucket = static_cast<int>(
                i * static_cast<size_t>(buckets) /
                std::max<size_t>(rest.size(), 1));
            services[rest[i]].criticality = 2 + bucket;
        }
    }
}

std::vector<TaggingConfig>
paperTaggingConfigs()
{
    std::vector<TaggingConfig> configs;
    for (auto scheme :
         {TaggingScheme::ServiceLevel, TaggingScheme::FrequencyBased}) {
        for (double pct : {0.5, 0.9}) {
            TaggingConfig config;
            config.scheme = scheme;
            config.percentile = pct;
            configs.push_back(config);
        }
    }
    return configs;
}

} // namespace phoenix::workloads
