/**
 * @file
 * The criticality tagging schemes of §6.2:
 *
 *  - ServiceLevel: the most frequently invoked "services" (call-graph
 *    templates) are selected until they cover the target percentile of
 *    requests; all their member microservices become C1.
 *  - FrequencyBased: the (greedy-)minimal microservice set serving the
 *    target percentile of requests becomes C1 (Appendix G coverage).
 *
 * Both are generated at the 50th and 90th percentile (P50/P90). All
 * schemes additionally promote a tiny random fraction of infrequently
 * invoked services to C1 (critical background routines such as garbage
 * collection). Non-C1 services receive C2..C<levels> by popularity
 * bucket.
 */

#ifndef PHOENIX_WORKLOADS_TAGGING_H
#define PHOENIX_WORKLOADS_TAGGING_H

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/alibaba.h"

namespace phoenix::workloads {

enum class TaggingScheme { ServiceLevel, FrequencyBased };

/** Parameters for criticality assignment. */
struct TaggingConfig
{
    TaggingScheme scheme = TaggingScheme::ServiceLevel;
    /** Target request percentile (0.5 for P50, 0.9 for P90). */
    double percentile = 0.9;
    uint64_t seed = 11;
    /** Fraction of non-C1 services randomly promoted to C1
     * (infrequent-but-critical background routines). */
    double rareCriticalFraction = 0.01;
    /** Number of criticality levels (C1..C<levels>). */
    int levels = 5;
};

/** Human-readable scheme name, e.g. "Service-Level-P90". */
std::string taggingName(const TaggingConfig &config);

/** Assign criticality tags to every microservice of every app. */
void assignCriticality(std::vector<GeneratedApp> &apps,
                       const TaggingConfig &config);

/** The four paper configurations (SL-P50, SL-P90, FB-P50, FB-P90). */
std::vector<TaggingConfig> paperTaggingConfigs();

} // namespace phoenix::workloads

#endif // PHOENIX_WORKLOADS_TAGGING_H
