/**
 * @file
 * Request-coverage analysis (Appendix G).
 *
 * A call-graph template is "covered" when every microservice it touches
 * is enabled. The paper uses a Gurobi LP to find, per application, the
 * smallest microservice set serving a target fraction of requests
 * (frequency-based tagging) and the coverage-vs-enabled-services curve
 * (Fig 17c). Here the workhorse is a weighted greedy max-coverage
 * heuristic (the classic (1-1/e) algorithm); an exact MILP variant via
 * the in-tree solver is provided for small instances and used to
 * validate the greedy in tests.
 */

#ifndef PHOENIX_WORKLOADS_COVERAGE_H
#define PHOENIX_WORKLOADS_COVERAGE_H

#include <optional>
#include <vector>

#include "workloads/alibaba.h"

namespace phoenix::workloads {

/** Fraction of request weight covered by an enabled-service set. */
double coveredFraction(const std::vector<CallGraphTemplate> &templates,
                       const std::vector<bool> &enabled);

/**
 * Greedy minimal service set covering at least @p target_fraction of
 * request weight. Returns the enabled microservice ids.
 */
std::vector<sim::MsId>
minServicesForCoverage(const std::vector<CallGraphTemplate> &templates,
                       size_t service_count, double target_fraction);

/** One point of the Fig 17c curve. */
struct CoveragePoint
{
    size_t servicesEnabled = 0;
    double fractionCovered = 0.0;
};

/**
 * Coverage as a function of the number of enabled services, from the
 * greedy template order (nested sets, so the curve is monotone).
 */
std::vector<CoveragePoint>
coverageCurve(const std::vector<CallGraphTemplate> &templates,
              size_t service_count);

/**
 * Exact smallest service set covering @p target_fraction, solved as a
 * MILP. Returns nullopt when the instance exceeds @p max_vars or the
 * solver hits its limits. Intended for small instances (tests,
 * Fig 17c verification).
 */
std::optional<std::vector<sim::MsId>>
exactMinServicesForCoverage(
    const std::vector<CallGraphTemplate> &templates, size_t service_count,
    double target_fraction, size_t max_vars = 4000,
    double time_limit_sec = 30.0);

} // namespace phoenix::workloads

#endif // PHOENIX_WORKLOADS_COVERAGE_H
