#include "recovery.h"

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "core/chaos.h"
#include "core/controller.h"
#include "core/schemes.h"
#include "exp/timeseries.h"
#include "sim/metrics.h"

namespace phoenix::exp {

using sim::PodRef;

const char *
recoverySchemeName(RecoveryScheme scheme)
{
    switch (scheme) {
    case RecoveryScheme::Default: return "Default";
    case RecoveryScheme::PhoenixCost: return "PhoenixCost";
    case RecoveryScheme::PhoenixFair: return "PhoenixFair";
    }
    return "?";
}

namespace {

/** RecoverySample time accessor for the shared derivation. */
double
sampleTime(const RecoverySample &sample)
{
    return sample.t;
}

} // namespace

void
applyTopologyOverlay(std::vector<sim::Application> &apps)
{
    for (auto &app : apps) {
        for (auto &ms : app.services) {
            if (ms.criticality != sim::kC1 || ms.replicas > 1)
                continue;
            // Two half-size replicas: aggregate demand is unchanged
            // (totalCpu = cpu * replicas), quorum 1 keeps the service
            // active on either survivor, and the implied per-zone cap
            // (replicas - minZoneSpread + 1 = 1) forces the pair into
            // distinct failure domains.
            ms.cpu *= 0.5;
            ms.replicas = 2;
            ms.quorum = 1;
            ms.minZoneSpread = 2;
            ms.pdbMaxUnavailable = 1;
        }
    }
}

RecoveryResult
runRecovery(const RecoveryConfig &config)
{
    // Per-run metric capture (this thread's shard only; exact under
    // the exp engine's one-cell-one-thread contract).
    std::optional<obs::ThreadMetricDelta> delta;
    if (obs::metricsEnabled())
        delta.emplace();

    sim::EventQueue events;
    kube::KubeConfig kube_config = config.kube;
    // The invariant checker is what turns a lifecycle bug into a hard
    // failure in every scenario run — never let a caller disable it.
    kube_config.validateInvariants = true;
    kube::KubeCluster cluster(events, kube_config);

    const apps::CloudLabTestbed testbed =
        apps::makeCloudLabTestbed(config.testbed);
    for (size_t n = 0; n < testbed.config.nodeCount; ++n) {
        cluster.addNode(testbed.config.cpusPerNode,
                        config.zoneCount > 0
                            ? static_cast<uint32_t>(n % config.zoneCount)
                            : 0);
    }
    std::vector<sim::Application> apps = testbed.applications();
    if (config.zoneCount >= 2)
        applyTopologyOverlay(apps);
    for (const auto &app : apps)
        cluster.addApplication(app);

    std::unique_ptr<core::PhoenixController> controller;
    std::unique_ptr<forecast::Forecaster> forecaster;
    if (config.scheme != RecoveryScheme::Default) {
        const core::Objective objective =
            config.scheme == RecoveryScheme::PhoenixCost
                ? core::Objective::Cost
                : core::Objective::Fair;
        controller = std::make_unique<core::PhoenixController>(
            events, cluster,
            std::make_unique<core::PhoenixScheme>(objective));
        if (config.forecast) {
            forecast::ForecastConfig forecastConfig =
                config.forecastConfig;
            if (config.zoneCount > 0)
                forecastConfig.fallbackZoneCount = config.zoneCount;
            forecaster = std::make_unique<forecast::Forecaster>(
                cluster,
                [objective] {
                    return std::make_unique<core::PhoenixScheme>(
                        objective);
                },
                forecastConfig);
            controller->attachForecast(forecaster.get());
        }
    }

    // C1 pod lookup (MsIds may be sparse: map, not vector index).
    std::set<PodRef> critical;
    for (const auto &app : cluster.apps()) {
        for (const auto &ms : app.services) {
            if (ms.criticality == sim::kC1)
                critical.insert(PodRef{app.id, ms.id});
        }
    }

    RecoveryResult result;
    sim::ScenarioRunner runner(events, cluster, config.scenario,
                               config.scenarioOptions);
    result.firstFailureAt = runner.firstFailureAt();

    auto sample = [&] {
        RecoverySample point;
        point.t = events.now();
        point.readyCapacity = cluster.readyCapacity();
        point.pending = cluster.pendingCount();

        sim::ActiveSet active = sim::emptyActiveSet(cluster.apps());
        const auto running = cluster.runningPods();
        point.running = running.size();
        for (const PodRef &pod : running) {
            active[pod.app][pod.ms] = true;
            if (critical.count(pod))
                ++point.runningCritical;
        }
        point.availability = sim::criticalServiceAvailability(
            cluster.apps(), active);

        // Metrics sampling is omniscient: read live state, not the
        // (possibly API-outage-frozen) observation surface.
        const double utilization = cluster.liveState().utilization();
        double utility = 0.0;
        for (const auto &sapp : testbed.serviceApps) {
            std::set<sim::MsId> up;
            for (const PodRef &pod : running) {
                if (pod.app == sapp.app.id)
                    up.insert(pod.ms);
            }
            utility += core::defaultUtility(
                apps::evaluateTraffic(sapp, up, utilization));
        }
        if (!testbed.serviceApps.empty())
            utility /= static_cast<double>(testbed.serviceApps.size());
        point.utility = utility;

        PHOENIX_TRACE_INSTANT(
            "recovery", "sample", point.t,
            (obs::TraceArg{"availability", point.availability}),
            (obs::TraceArg{"running",
                           static_cast<double>(point.running)}),
            (obs::TraceArg{"pending",
                           static_cast<double>(point.pending)}));
        result.samples.push_back(point);
    };
    for (double t = config.samplePeriod; t <= config.endTime;
         t += config.samplePeriod)
        events.schedule(t, sample);

    events.runUntil(config.endTime);

    // ---- Derivations ---------------------------------------------
    for (const RecoverySample &point : result.samples) {
        if (result.firstFailureAt >= 0.0 &&
            point.t < result.firstFailureAt) {
            result.preFailureRunning = point.running;
        }
        if (point.t >= result.firstFailureAt) {
            result.minAvailability =
                std::min(result.minAvailability, point.availability);
            result.maxPending =
                std::max(result.maxPending, point.pending);
        }
    }
    if (!result.samples.empty())
        result.finalAvailability = result.samples.back().availability;

    result.timeToCriticalRecovery = recoveryTimeSince(
        result.samples, result.firstFailureAt, sampleTime,
        [](const RecoverySample &s) {
            return s.availability >= 1.0 - 1e-9;
        });
    const size_t full = result.preFailureRunning;
    result.timeToFullRecovery = recoveryTimeSince(
        result.samples, result.firstFailureAt, sampleTime,
        [full](const RecoverySample &s) { return s.running >= full; });

    result.invariantViolations = cluster.invariantViolations();
    if (controller) {
        result.replans = controller->history().size();
        for (const auto &record : controller->history()) {
            result.planSecondsTotal += record.planSeconds;
            result.deletes += record.deletes;
            result.migrations += record.migrations;
            result.restarts += record.restarts;
            if (record.warm)
                ++result.warmReplans;
            if (record.proactive)
                ++result.proactiveReplans;
        }
    }
    if (forecaster)
        result.forecast = forecaster->counters();
    if (delta)
        result.obsMetrics = delta->finish();
    return result;
}

} // namespace phoenix::exp
