/**
 * @file
 * Declarative experiment grids. A sweep is the cross product
 *
 *     scheme x failure-rate x trial
 *
 * over one environment; each cell is an independent failure trial
 * whose RNG seed is a SplitMix64 hash of the sweep's base seed and
 * the cell's (failure-rate, trial) coordinates (adaptlab::trialSeed).
 * Schemes are represented as factories, not instances: every cell
 * constructs its own scheme object, so no mutable scheme state is
 * ever shared between concurrently executing cells.
 */

#ifndef PHOENIX_EXP_GRID_H
#define PHOENIX_EXP_GRID_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/schemes.h"

namespace phoenix::exp {

/** A named scheme factory; make() yields a fresh instance per cell. */
struct SchemeSpec
{
    std::string name;
    std::function<std::unique_ptr<core::ResilienceScheme>()> make;
};

/** Convenience: spec for a default-constructible scheme type. */
template <typename Scheme, typename... Args>
SchemeSpec
schemeSpec(const std::string &name, Args... args)
{
    return SchemeSpec{name, [args...] {
                          return std::make_unique<Scheme>(args...);
                      }};
}

/**
 * Factories for every scheme evaluated in the paper, in figure order
 * (mirrors core::makeAllSchemes).
 */
std::vector<SchemeSpec>
paperSchemeSpecs(bool include_lps,
                 core::LpSchemeOptions lp_options = {});

/** One sweep grid over a fixed environment. */
struct SweepGridSpec
{
    std::vector<SchemeSpec> schemes;
    std::vector<double> failureRates;
    int trials = 5;
    uint64_t seedBase = 100;

    size_t
    cellCount() const
    {
        return schemes.size() * failureRates.size() *
               static_cast<size_t>(trials < 0 ? 0 : trials);
    }
};

/** Coordinates of one cell of a SweepGridSpec. */
struct GridCell
{
    size_t scheme = 0;
    size_t rate = 0;
    int trial = 0;
};

/**
 * All cells in canonical order: scheme-major, then failure rate, then
 * trial — exactly the nesting of the legacy serial sweep loops, so
 * aggregation in this order reproduces them bit for bit.
 */
std::vector<GridCell> enumerateCells(const SweepGridSpec &spec);

/**
 * Keep only schemes whose name contains @p substring, compared
 * case-insensitively (empty keeps all) — the engine side of the
 * shared --filter flag, so `--filter phoenix` matches PhoenixFair.
 */
SweepGridSpec filterSchemes(SweepGridSpec spec,
                            const std::string &substring);

} // namespace phoenix::exp

#endif // PHOENIX_EXP_GRID_H
