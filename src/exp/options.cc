#include "options.h"

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace phoenix::exp {

namespace {

void
usage(const std::string &benchName, std::ostream &os)
{
    os << "usage: " << benchName << " [options]\n"
       << "  --jobs N      worker threads (0 = all cores, 1 = serial;"
          " default 0)\n"
       << "  --json PATH   JSON report path (default BENCH_"
       << benchName << ".json, 'none' disables)\n"
       << "  --csv PATH    CSV report path (default none)\n"
       << "  --filter SUB  only schemes whose name contains SUB\n"
       << "  --trials N    override trial count\n"
       << "  --seed N      override sweep base seed\n"
       << "  --metrics     collect obs metrics into the report\n"
       << "  --trace-out P write a Chrome/Perfetto trace JSON to P\n"
       << "  --help        this message\n";
}

[[noreturn]] void
fail(const std::string &benchName, const std::string &message)
{
    std::cerr << benchName << ": " << message << "\n";
    usage(benchName, std::cerr);
    std::exit(2);
}

long long
parseInt(const std::string &benchName, const std::string &flag,
         const char *text)
{
    char *end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        fail(benchName, flag + " expects an integer, got '" +
                            std::string(text) + "'");
    return value;
}

} // namespace

Options
parseOptions(int argc, char **argv, const std::string &benchName)
{
    Options options;
    options.benchName = benchName;
    options.jsonPath = "BENCH_" + benchName + ".json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fail(benchName, arg + " expects a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(benchName, std::cout);
            std::exit(0);
        } else if (arg == "--jobs") {
            options.jobs =
                static_cast<int>(parseInt(benchName, arg, value()));
            if (options.jobs < 0)
                fail(benchName, "--jobs must be >= 0");
        } else if (arg == "--json") {
            options.jsonPath = value();
        } else if (arg == "--csv") {
            options.csvPath = value();
        } else if (arg == "--filter") {
            options.filter = value();
        } else if (arg == "--trials") {
            options.trials =
                static_cast<int>(parseInt(benchName, arg, value()));
            if (options.trials < 0)
                fail(benchName, "--trials must be >= 0");
        } else if (arg == "--seed") {
            options.seed = parseInt(benchName, arg, value());
            if (options.seed < 0)
                fail(benchName, "--seed must be >= 0");
        } else if (arg == "--metrics") {
            options.metrics = true;
        } else if (arg == "--trace-out") {
            options.traceOut = value();
        } else {
            fail(benchName, "unknown flag '" + arg + "'");
        }
    }
    return options;
}

} // namespace phoenix::exp
