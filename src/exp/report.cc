#include "report.h"

#include <fstream>
#include <functional>
#include <iostream>

#include "util/json.h"

namespace phoenix::exp {

// The canonical implementations moved to util/json so that the JSON
// readers (perfdiff, fuzzcheck corpus replay) and writers share one
// encoding; these wrappers keep the exp:: API stable.
std::string
jsonQuote(const std::string &text)
{
    return util::jsonQuote(text);
}

std::string
jsonNumber(double value)
{
    return util::jsonNumber(value);
}

Report::Report(std::string benchName) : benchName_(std::move(benchName))
{
}

void
Report::meta(const std::string &key, const std::string &value)
{
    meta_.emplace_back(key, jsonQuote(value));
}

void
Report::meta(const std::string &key, double value)
{
    meta_.emplace_back(key, jsonNumber(value));
}

void
Report::meta(const std::string &key, int64_t value)
{
    meta_.emplace_back(key, std::to_string(value));
}

void
Report::addTable(const std::string &section, const util::Table &table)
{
    Section s;
    s.name = section;
    s.table = table;
    sections_.push_back(std::move(s));
}

void
Report::addSweep(const std::string &section,
                 const std::vector<SweepAggregate> &aggregates)
{
    Section s;
    s.name = section;
    s.isSweep = true;
    s.sweep = aggregates;
    sections_.push_back(std::move(s));
}

namespace {

void
writeStats(std::ostream &os, const char *name, const MetricStats &stats)
{
    os << jsonQuote(name) << ":{\"mean\":" << jsonNumber(stats.mean)
       << ",\"stddev\":" << jsonNumber(stats.stddev)
       << ",\"min\":" << jsonNumber(stats.min)
       << ",\"max\":" << jsonNumber(stats.max) << "}";
}

void
writeAggregate(std::ostream &os, const SweepAggregate &agg)
{
    os << "{\"scheme\":" << jsonQuote(agg.scheme)
       << ",\"failure_rate\":" << jsonNumber(agg.failureRate)
       << ",\"trials\":" << agg.trials
       << ",\"failed_trials\":" << agg.failedTrials
       << ",\"wall_seconds\":" << jsonNumber(agg.wallSeconds) << ",";
    writeStats(os, "availability", agg.availability);
    os << ",";
    writeStats(os, "availability_strict", agg.availabilityStrict);
    os << ",";
    writeStats(os, "revenue", agg.revenue);
    os << ",";
    writeStats(os, "fairness_positive", agg.fairnessPositive);
    os << ",";
    writeStats(os, "fairness_negative", agg.fairnessNegative);
    os << ",";
    writeStats(os, "planner_utilization", agg.plannerUtilization);
    os << ",";
    writeStats(os, "utilization", agg.utilization);
    os << ",";
    writeStats(os, "plan_seconds", agg.planSeconds);
    os << ",";
    writeStats(os, "pack_seconds", agg.packSeconds);
    os << ",";
    writeStats(os, "requests_served", agg.requestsServed);
    os << ",";
    writeStats(os, "ops_heap_pushes", agg.opsHeapPushes);
    os << ",";
    writeStats(os, "ops_best_fit_probes", agg.opsBestFitProbes);
    os << ",";
    writeStats(os, "ops_child_sort_elems", agg.opsChildSortElems);
    if (!agg.obs.empty()) {
        os << ",\"obs\":{";
        for (size_t i = 0; i < agg.obs.size(); ++i) {
            if (i)
                os << ",";
            os << jsonQuote(agg.obs[i].first) << ":"
               << jsonNumber(agg.obs[i].second);
        }
        os << "}";
    }
    os << "}";
}

void
writeTableJson(std::ostream &os, const util::Table &table)
{
    os << "{\"columns\":[";
    for (size_t c = 0; c < table.header().size(); ++c) {
        if (c)
            os << ",";
        os << jsonQuote(table.header()[c]);
    }
    os << "],\"rows\":[";
    for (size_t r = 0; r < table.rows().size(); ++r) {
        if (r)
            os << ",";
        os << "[";
        const auto &row = table.rows()[r];
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << jsonQuote(row[c]);
        }
        os << "]";
    }
    os << "]}";
}

} // namespace

void
Report::writeJson(std::ostream &os) const
{
    os << "{\"bench\":" << jsonQuote(benchName_) << ",\"meta\":{";
    for (size_t i = 0; i < meta_.size(); ++i) {
        if (i)
            os << ",";
        os << jsonQuote(meta_[i].first) << ":" << meta_[i].second;
    }
    os << "},\"sections\":[";
    for (size_t i = 0; i < sections_.size(); ++i) {
        const Section &section = sections_[i];
        if (i)
            os << ",";
        os << "{\"name\":" << jsonQuote(section.name) << ",";
        if (section.isSweep) {
            os << "\"sweep\":[";
            for (size_t j = 0; j < section.sweep.size(); ++j) {
                if (j)
                    os << ",";
                writeAggregate(os, section.sweep[j]);
            }
            os << "]";
        } else {
            os << "\"table\":";
            writeTableJson(os, section.table);
        }
        os << "}";
    }
    os << "]}\n";
}

namespace {

std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string quoted = "\"";
    for (char c : text) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

void
Report::writeCsv(std::ostream &os) const
{
    for (const Section &section : sections_) {
        os << "# " << benchName_ << " | " << section.name << "\n";
        if (section.isSweep) {
            os << "scheme,failure_rate,trials,failed_trials,"
                  "wall_seconds,availability_mean,availability_stddev,"
                  "availability_min,availability_max,revenue_mean,"
                  "revenue_stddev,fairness_positive_mean,"
                  "fairness_negative_mean,utilization_mean,"
                  "plan_seconds_mean,pack_seconds_mean,"
                  "requests_served_mean\n";
            for (const SweepAggregate &agg : section.sweep) {
                os << csvField(agg.scheme) << ","
                   << jsonNumber(agg.failureRate) << "," << agg.trials
                   << "," << agg.failedTrials << ","
                   << jsonNumber(agg.wallSeconds) << ","
                   << jsonNumber(agg.availability.mean) << ","
                   << jsonNumber(agg.availability.stddev) << ","
                   << jsonNumber(agg.availability.min) << ","
                   << jsonNumber(agg.availability.max) << ","
                   << jsonNumber(agg.revenue.mean) << ","
                   << jsonNumber(agg.revenue.stddev) << ","
                   << jsonNumber(agg.fairnessPositive.mean) << ","
                   << jsonNumber(agg.fairnessNegative.mean) << ","
                   << jsonNumber(agg.utilization.mean) << ","
                   << jsonNumber(agg.planSeconds.mean) << ","
                   << jsonNumber(agg.packSeconds.mean) << ","
                   << jsonNumber(agg.requestsServed.mean) << "\n";
            }
        } else {
            section.table.printCsv(os);
        }
        os << "\n";
    }
}

namespace {

bool
writeFile(const std::string &path, const char *what,
          const std::function<void(std::ostream &)> &emit)
{
    if (path.empty() || path == "none")
        return false;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << what << " to " << path
                  << "\n";
        return false;
    }
    emit(out);
    return true;
}

} // namespace

bool
Report::writeJsonFile(const std::string &path) const
{
    return writeFile(path, "JSON report",
                     [this](std::ostream &os) { writeJson(os); });
}

bool
Report::writeCsvFile(const std::string &path) const
{
    return writeFile(path, "CSV report",
                     [this](std::ostream &os) { writeCsv(os); });
}

} // namespace phoenix::exp
