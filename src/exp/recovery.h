/**
 * @file
 * End-to-end recovery harness (Fig 6, §6.1): runs a declarative
 * failure Scenario against the mini-Kubernetes substrate — with or
 * without a Phoenix controller — sampling a per-tick time series
 * (ready capacity, Running-critical count, availability, utility,
 * pending pods) and deriving the paper's headline recovery metrics:
 * time-to-critical-recovery (all C1 services Running again) and
 * time-to-full-recovery (pre-failure Running count restored), both
 * measured from the instant the first failure is injected — so they
 * include the ~100 s detection window, replanning, and pod startup.
 *
 * The kube invariant checker is force-enabled for every harness run:
 * a scenario that drives the cluster into an illegal lifecycle state
 * shows up as invariantViolations > 0 in the result.
 */

#ifndef PHOENIX_EXP_RECOVERY_H
#define PHOENIX_EXP_RECOVERY_H

#include <string>
#include <utility>
#include <vector>

#include "apps/cloudlab.h"
#include "forecast/forecaster.h"
#include "kube/kube.h"
#include "sim/scenario.h"

namespace phoenix::exp {

/** Which resilience scheme drives the run. */
enum class RecoveryScheme { Default, PhoenixCost, PhoenixFair };

const char *recoverySchemeName(RecoveryScheme scheme);

/** One harness run: testbed + scenario + sampling cadence. */
struct RecoveryConfig
{
    RecoveryScheme scheme = RecoveryScheme::PhoenixCost;
    /** CloudLab-style testbed (five app instances, Fig 4 goals). */
    apps::CloudLabConfig testbed;
    kube::KubeConfig kube; //!< validateInvariants is forced on
    sim::Scenario scenario;
    sim::ScenarioOptions scenarioOptions;
    /** Time-series sampling period (seconds). */
    double samplePeriod = 15.0;
    /** Simulation horizon. */
    double endTime = 2400.0;
    /**
     * Zones the nodes are striped over (node n -> zone n % zoneCount);
     * 0 keeps the classic untopologied testbed. With >= 2 zones the
     * C1 services additionally get the spread/PDB overlay
     * (applyTopologyOverlay), so zone-correlated scenarios exercise
     * constrained placement end to end.
     */
    size_t zoneCount = 0;
    /** Attach the forecast subsystem to the controller: risks are
     * tracked over the observed capacity stream, plans are pre-staged
     * against projected post-fault states, and armed risks trigger
     * proactive execution ahead of the anticipated failure. Ignored
     * for RecoveryScheme::Default (no controller to attach to). */
    bool forecast = false;
    forecast::ForecastConfig forecastConfig;
};

/**
 * Make the testbed topology-constrained without changing its demand:
 * every single-replica C1 service is split into two half-size
 * replicas with quorum 1, minZoneSpread 2 (the implied per-zone cap
 * keeps the pair in distinct zones) and pdbMaxUnavailable 1. Requires
 * a deployment with at least two zones to be satisfiable.
 */
void applyTopologyOverlay(std::vector<sim::Application> &apps);

/** One point of the recovery time series. */
struct RecoverySample
{
    double t = 0.0;
    double readyCapacity = 0.0;
    /** Strict critical availability (fraction of apps with all C1
     * services Running). */
    double availability = 0.0;
    /** Mean served-RPS-weighted utility across the app instances. */
    double utility = 0.0;
    size_t runningCritical = 0; //!< Running C1 pods
    size_t running = 0;         //!< Running pods (any criticality)
    size_t pending = 0;         //!< Pending, not scaled down
};

/** Harness outcome: the series plus the derived recovery metrics. */
struct RecoveryResult
{
    std::vector<RecoverySample> samples;
    /** Instant the scenario injected its first failure; -1 if none. */
    double firstFailureAt = -1.0;
    /** Running pods just before the first failure. */
    size_t preFailureRunning = 0;
    /**
     * Seconds from first failure until critical availability is back
     * at 1.0 for good. 0 = never dropped; -1 = never recovered within
     * the horizon.
     */
    double timeToCriticalRecovery = -1.0;
    /** Same derivation for the pre-failure Running count. */
    double timeToFullRecovery = -1.0;
    double minAvailability = 1.0;
    double finalAvailability = 0.0;
    size_t maxPending = 0;
    /** Kube invariant-checker violations (0 in a healthy run). */
    size_t invariantViolations = 0;
    /** Controller activity (zero for RecoveryScheme::Default). */
    size_t replans = 0;
    double planSecondsTotal = 0.0;
    size_t deletes = 0;
    size_t migrations = 0;
    size_t restarts = 0;
    /** Replans applied from a pre-staged (warm) plan / executed
     * proactively before the fault (zero with forecast off). */
    size_t warmReplans = 0;
    size_t proactiveReplans = 0;
    /** Forecast subsystem counters (zero with forecast off). */
    forecast::ForecastCounters forecast;
    /**
     * obs counters/histogram-counts this run incremented, as (name,
     * delta) pairs, name-sorted (empty with metrics disabled).
     * Captured via obs::ThreadMetricDelta — exact because one run
     * executes start-to-finish on one thread.
     */
    std::vector<std::pair<std::string, double>> obsMetrics;
};

/** Run one scenario end to end. */
RecoveryResult runRecovery(const RecoveryConfig &config);

} // namespace phoenix::exp

#endif // PHOENIX_EXP_RECOVERY_H
