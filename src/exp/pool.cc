#include "pool.h"

#include <algorithm>

namespace phoenix::exp {

namespace {

/** Worker index of the current thread, or SIZE_MAX off-pool. */
thread_local size_t tls_worker_index = static_cast<size_t>(-1);
thread_local const WorkStealingPool *tls_worker_pool = nullptr;

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

WorkStealingPool::WorkStealingPool(int threads)
{
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        threads_.emplace_back(
            [this, i] { workerLoop(static_cast<size_t>(i)); });
}

WorkStealingPool::~WorkStealingPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
WorkStealingPool::submit(std::function<void()> task)
{
    // The push happens under stateMutex_ so it cannot interleave with
    // a worker's empty-recheck in workerLoop (which also holds it) —
    // otherwise a notify could fire while the worker is between its
    // recheck and its wait, and the task would sleep until the next
    // submission.
    std::lock_guard<std::mutex> lock(stateMutex_);
    ++pending_;
    // A worker submitting from inside a task keeps the child local to
    // its own deque; external callers deal round-robin.
    const size_t target = tls_worker_pool == this
                              ? tls_worker_index
                              : nextWorker_++ % workers_.size();
    {
        std::lock_guard<std::mutex> wlock(workers_[target]->mutex);
        workers_[target]->tasks.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

void
WorkStealingPool::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

bool
WorkStealingPool::popOwn(size_t self, std::function<void()> &task)
{
    Worker &worker = *workers_[self];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.tasks.empty())
        return false;
    task = std::move(worker.tasks.back());
    worker.tasks.pop_back();
    return true;
}

bool
WorkStealingPool::steal(size_t self, std::function<void()> &task)
{
    const size_t n = workers_.size();
    for (size_t offset = 1; offset < n; ++offset) {
        Worker &victim = *workers_[(self + offset) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void
WorkStealingPool::workerLoop(size_t self)
{
    tls_worker_index = self;
    tls_worker_pool = this;
    for (;;) {
        std::function<void()> task;
        if (popOwn(self, task) || steal(self, task)) {
            task();
            std::lock_guard<std::mutex> lock(stateMutex_);
            if (--pending_ == 0)
                allDone_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex_);
        if (stopping_)
            return;
        // Re-check the deques under the state lock: a submit between
        // our failed scan and this wait would otherwise be missed.
        bool any = false;
        for (const auto &worker : workers_) {
            std::lock_guard<std::mutex> wlock(worker->mutex);
            if (!worker->tasks.empty()) {
                any = true;
                break;
            }
        }
        if (any)
            continue;
        workAvailable_.wait(lock);
    }
}

int
parallelFor(int jobs, size_t count, const std::function<void(size_t)> &fn)
{
    const int resolved = resolveJobs(jobs);
    if (resolved == 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return 1;
    }
    const int threads =
        static_cast<int>(std::min<size_t>(
            count, static_cast<size_t>(resolved)));
    WorkStealingPool pool(threads);
    for (size_t i = 0; i < count; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
    return threads;
}

} // namespace phoenix::exp
