/**
 * @file
 * Structured result export for the benchmark harnesses. A Report
 * collects run metadata, display tables, and typed sweep aggregates;
 * it serializes to JSON (one document per bench run, the machine
 * readable record CI tracks as BENCH_<name>.json) and to CSV (one
 * block per section) — alongside, never instead of, the ASCII tables
 * the harnesses print.
 */

#ifndef PHOENIX_EXP_REPORT_H
#define PHOENIX_EXP_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "exp/engine.h"
#include "util/table.h"

namespace phoenix::exp {

/** Escape and quote a string as a JSON literal. */
std::string jsonQuote(const std::string &text);

/** Shortest round-trippable JSON rendering of a double. */
std::string jsonNumber(double value);

class Report
{
  public:
    explicit Report(std::string benchName);

    /** Attach a metadata key (nodes, scale, jobs, ...). */
    void meta(const std::string &key, const std::string &value);
    void meta(const std::string &key, double value);
    void meta(const std::string &key, int64_t value);

    /** Add a display table as a section (cells exported as strings). */
    void addTable(const std::string &section, const util::Table &table);

    /** Add sweep aggregates as a typed section. */
    void addSweep(const std::string &section,
                  const std::vector<SweepAggregate> &aggregates);

    void writeJson(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;

    /** Write to @p path; empty or "none" is a no-op. Returns whether
     * a file was written (failures are reported on stderr). */
    bool writeJsonFile(const std::string &path) const;
    bool writeCsvFile(const std::string &path) const;

  private:
    struct Section
    {
        std::string name;
        bool isSweep = false;
        util::Table table{std::vector<std::string>{}};
        std::vector<SweepAggregate> sweep;
    };

    std::string benchName_;
    std::vector<std::pair<std::string, std::string>> meta_; // pre-encoded
    std::vector<Section> sections_;
};

} // namespace phoenix::exp

#endif // PHOENIX_EXP_REPORT_H
