#include "soak.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>

#include "core/controller.h"
#include "core/schemes.h"
#include "exp/timeseries.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace phoenix::exp {

using sim::NodeId;
using sim::PodRef;

const char *
soakWaveKindName(SoakWaveKind kind)
{
    switch (kind) {
    case SoakWaveKind::Fail: return "fail";
    case SoakWaveKind::Flap: return "flap";
    case SoakWaveKind::Partition: return "partition";
    case SoakWaveKind::Degrade: return "degrade";
    case SoakWaveKind::ApiOutage: return "api-outage";
    case SoakWaveKind::ClockSkew: return "clock-skew";
    case SoakWaveKind::ZoneFail: return "zone-fail";
    }
    return "?";
}

std::vector<SoakWave>
generateSoakWaves(const SoakConfig &config)
{
    util::Rng rng(config.seed);
    const size_t node_count = config.testbed.nodeCount;
    const double horizon = config.hours * 3600.0;
    const double max_duration = 480.0;
    // Leave the tail quiet so the final convergence checks always see
    // a settled cluster before the horizon cuts the run off.
    const double tail = max_duration + config.settleSeconds + 120.0;

    const auto max_disturbed = static_cast<size_t>(std::max(
        1.0, std::floor(config.maxDisturbedFraction *
                        static_cast<double>(node_count))));

    // Per-node exclusive claims: a node joins a wave only when its
    // previous wave (plus a small gap) has fully healed, so fault
    // windows never interleave *on one node* and convergence stays
    // decidable from the schedule alone. Cross-node overlap is the
    // point of the soak and is bounded by max_disturbed.
    std::vector<double> claimed_until(node_count, 0.0);

    std::vector<SoakWave> waves;
    double t = config.warmupSeconds;
    while (true) {
        t += config.meanWaveGap * rng.uniform(0.5, 1.5);
        if (t + tail > horizon)
            break;

        SoakWave wave;
        wave.at = t;

        // Zone-correlated failures: with topology declared, a wave may
        // upgrade to killing one whole failure domain. The draw is
        // guarded so the classic (zoneCount == 0) stream stays
        // byte-identical. A zone whose nodes are partly claimed, or
        // that would blow the disturbance bound, demotes to an
        // observation-only fault — same cadence, no over-razing.
        if (config.zoneCount > 0 &&
            rng.bernoulli(config.zoneFailProbability)) {
            wave.kind = SoakWaveKind::ZoneFail;
            wave.duration =
                static_cast<double>(rng.uniformInt(60, 480));
            const auto zone = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(config.zoneCount) - 1));
            std::vector<NodeId> zone_nodes;
            bool claimed = false;
            size_t busy = 0;
            for (NodeId n = 0; n < node_count; ++n) {
                if (n % config.zoneCount == zone) {
                    zone_nodes.push_back(n);
                    claimed = claimed || claimed_until[n] > t;
                } else if (claimed_until[n] > t) {
                    ++busy;
                }
            }
            if (claimed || busy + zone_nodes.size() > max_disturbed) {
                wave.kind = SoakWaveKind::ApiOutage;
                wave.nodes.clear();
                waves.push_back(std::move(wave));
                continue;
            }
            wave.nodes = std::move(zone_nodes);
            for (NodeId n : wave.nodes)
                claimed_until[n] = t + wave.duration + 30.0;
            waves.push_back(std::move(wave));
            continue;
        }

        const double pick = rng.uniform();
        if (pick < 0.25)
            wave.kind = SoakWaveKind::Fail;
        else if (pick < 0.35)
            wave.kind = SoakWaveKind::Flap;
        else if (pick < 0.55)
            wave.kind = SoakWaveKind::Partition;
        else if (pick < 0.75)
            wave.kind = SoakWaveKind::Degrade;
        else if (pick < 0.90)
            wave.kind = SoakWaveKind::ApiOutage;
        else
            wave.kind = SoakWaveKind::ClockSkew;

        wave.duration = static_cast<double>(rng.uniformInt(60, 480));

        if (wave.kind == SoakWaveKind::ApiOutage) {
            waves.push_back(std::move(wave));
            continue;
        }

        // Draw the node set among unclaimed nodes, within the global
        // disturbance bound for this wave's window.
        std::vector<NodeId> eligible;
        size_t busy = 0;
        for (NodeId n = 0; n < node_count; ++n) {
            if (claimed_until[n] <= t)
                eligible.push_back(n);
            else if (claimed_until[n] > t)
                ++busy;
        }
        const size_t room =
            busy >= max_disturbed ? 0 : max_disturbed - busy;
        if (eligible.empty() || room == 0) {
            // Saturated: demote to an observation-only fault so the
            // schedule keeps its cadence without over-razing.
            wave.kind = SoakWaveKind::ApiOutage;
            waves.push_back(std::move(wave));
            continue;
        }
        rng.shuffle(eligible);
        size_t count = static_cast<size_t>(rng.uniformInt(
            1, static_cast<int64_t>(std::min<size_t>(room, 6))));
        if (wave.kind == SoakWaveKind::Flap ||
            wave.kind == SoakWaveKind::ClockSkew)
            count = 1; // single-node fault classes
        count = std::min(count, eligible.size());
        wave.nodes.assign(eligible.begin(),
                          eligible.begin() + static_cast<long>(count));
        std::sort(wave.nodes.begin(), wave.nodes.end());
        for (NodeId n : wave.nodes)
            claimed_until[n] = t + wave.duration + 30.0;

        switch (wave.kind) {
        case SoakWaveKind::Flap:
            // Half the flaps stay inside the 100 s grace period
            // (invisible to the node controller), half go past it.
            wave.duration = static_cast<double>(
                rng.bernoulli(0.5) ? rng.uniformInt(20, 80)
                                   : rng.uniformInt(120, 300));
            break;
        case SoakWaveKind::Degrade:
            // 0.25-grid factors, matching the check generator.
            wave.factor =
                0.25 * static_cast<double>(rng.uniformInt(1, 3));
            break;
        case SoakWaveKind::ClockSkew: {
            const double magnitude =
                rng.bernoulli(0.3)
                    ? static_cast<double>(rng.uniformInt(150, 400))
                    : static_cast<double>(rng.uniformInt(10, 50));
            wave.skew = rng.bernoulli(0.5) ? magnitude : -magnitude;
            break;
        }
        default:
            break;
        }
        waves.push_back(std::move(wave));
    }
    return waves;
}

size_t
disturbedNodesAt(const std::vector<SoakWave> &waves, double t)
{
    std::set<NodeId> disturbed;
    for (const SoakWave &wave : waves) {
        if (wave.at <= t && t < wave.at + wave.duration)
            disturbed.insert(wave.nodes.begin(), wave.nodes.end());
    }
    return disturbed.size();
}

namespace {

sim::Scenario
buildScenario(const std::vector<SoakWave> &waves)
{
    sim::Scenario scenario;
    for (const SoakWave &wave : waves) {
        switch (wave.kind) {
        case SoakWaveKind::Fail:
        case SoakWaveKind::ZoneFail:
            scenario.failNodes(wave.at, wave.nodes);
            scenario.recoverNodes(wave.at + wave.duration, wave.nodes);
            break;
        case SoakWaveKind::Flap:
            for (NodeId node : wave.nodes)
                scenario.flapKubelet(wave.at, node, wave.duration);
            break;
        case SoakWaveKind::Partition:
            scenario.partitionNodes(wave.at, wave.nodes,
                                    wave.duration);
            break;
        case SoakWaveKind::Degrade:
            scenario.degradeNodes(wave.at, wave.nodes, wave.factor,
                                  wave.duration);
            break;
        case SoakWaveKind::ApiOutage:
            scenario.apiOutage(wave.at, wave.duration);
            break;
        case SoakWaveKind::ClockSkew:
            for (NodeId node : wave.nodes) {
                scenario.skewClock(wave.at, node, wave.skew);
                scenario.skewClock(wave.at + wave.duration, node, 0.0);
            }
            break;
        }
    }
    return scenario;
}

/** True when no wave touches @p node anywhere in [from, to]. */
bool
nodeQuietOver(const std::vector<SoakWave> &waves, NodeId node,
              double from, double to)
{
    for (const SoakWave &wave : waves) {
        if (wave.at > to || wave.at + wave.duration < from)
            continue;
        if (std::find(wave.nodes.begin(), wave.nodes.end(), node) !=
            wave.nodes.end())
            return false;
    }
    return true;
}

/** True when no wave at all (including outages) overlaps [from, to]. */
bool
clusterQuietOver(const std::vector<SoakWave> &waves, double from,
                 double to)
{
    for (const SoakWave &wave : waves) {
        if (wave.at <= to && wave.at + wave.duration >= from)
            return false;
    }
    return true;
}

} // namespace

SoakResult
runSoak(const SoakConfig &config)
{
    std::optional<obs::ThreadMetricDelta> delta;
    if (obs::metricsEnabled())
        delta.emplace();

    sim::EventQueue events;
    kube::KubeConfig kube_config = config.kube;
    // The whole point of the soak is the continuous oracle — never
    // let a caller turn the invariant checker off.
    kube_config.validateInvariants = true;
    kube::KubeCluster cluster(events, kube_config);

    const apps::CloudLabTestbed testbed =
        apps::makeCloudLabTestbed(config.testbed);
    for (size_t n = 0; n < testbed.config.nodeCount; ++n) {
        cluster.addNode(testbed.config.cpusPerNode,
                        config.zoneCount > 0
                            ? static_cast<uint32_t>(n % config.zoneCount)
                            : 0);
    }
    std::vector<sim::Application> testbed_apps = testbed.applications();
    if (config.zoneCount >= 2)
        applyTopologyOverlay(testbed_apps);
    for (const auto &app : testbed_apps)
        cluster.addApplication(app);

    std::unique_ptr<core::PhoenixController> controller;
    if (config.scheme != RecoveryScheme::Default) {
        const core::Objective objective =
            config.scheme == RecoveryScheme::PhoenixCost
                ? core::Objective::Cost
                : core::Objective::Fair;
        controller = std::make_unique<core::PhoenixController>(
            events, cluster,
            std::make_unique<core::PhoenixScheme>(objective));
    }

    std::set<PodRef> critical;
    for (const auto &app : cluster.apps()) {
        for (const auto &ms : app.services) {
            if (ms.criticality == sim::kC1)
                critical.insert(PodRef{app.id, ms.id});
        }
    }

    SoakResult result;
    result.simSeconds = config.hours * 3600.0;
    result.waves = generateSoakWaves(config);

    auto violate = [&result, &events](const std::string &property,
                                      std::string detail) {
        if (result.firstViolationAt < 0.0)
            result.firstViolationAt = events.now();
        ++result.violationCount;
        if (result.violations.size() < 64) {
            result.violations.push_back(
                {events.now(), property, std::move(detail)});
        }
        PHOENIX_TRACE_INSTANT("soak", "violation", events.now());
    };

    // --- Per-wave records -------------------------------------------
    // Start snapshots are armed *before* the ScenarioRunner so the
    // same-instant FIFO tie-break samples the pre-wave cluster; end
    // snapshots land 1 s after the window so heal events have fired.
    result.waveRecords.resize(result.waves.size());
    for (size_t i = 0; i < result.waves.size(); ++i) {
        result.waveRecords[i].wave = i;
        events.schedule(result.waves[i].at, [&result, &cluster, i] {
            SoakWaveRecord &record = result.waveRecords[i];
            record.readyCapacityStart = cluster.readyCapacity();
            record.pendingStart = cluster.pendingCount();
            record.evictionsDuring = cluster.evictedPodCount();
            record.invariantViolationsDuring =
                cluster.invariantViolations();
        });
    }

    sim::ScenarioOptions scenario_options;
    scenario_options.seed = config.seed;
    sim::ScenarioRunner runner(events, cluster,
                               buildScenario(result.waves),
                               scenario_options);

    for (size_t i = 0; i < result.waves.size(); ++i) {
        const double end =
            result.waves[i].at + result.waves[i].duration + 1.0;
        events.schedule(end, [&result, &cluster, i] {
            SoakWaveRecord &record = result.waveRecords[i];
            record.readyCapacityEnd = cluster.readyCapacity();
            record.pendingEnd = cluster.pendingCount();
            record.evictionsDuring =
                cluster.evictedPodCount() - record.evictionsDuring;
            record.invariantViolationsDuring =
                cluster.invariantViolations() -
                record.invariantViolationsDuring;
        });
    }

    // --- Continuous checks ------------------------------------------
    size_t last_invariants = 0;
    std::optional<uint64_t> frozen_fingerprint;
    double availability_sum = 0.0;
    size_t availability_samples = 0;
    std::vector<SeriesPoint> availability_series;

    auto check = [&] {
        ++result.checkTicks;
        const double now = events.now();
        const auto running = cluster.runningPods();

        // Kube invariant checker (runs inside the cluster on every
        // transition; here we surface new violations as they land).
        const size_t invariants = cluster.invariantViolations();
        if (invariants > last_invariants) {
            violate("kube-invariant",
                    std::to_string(invariants - last_invariants) +
                        " new invariant violations");
            last_invariants = invariants;
        }

        // Stale-observation-vs-fresh oracle dimension.
        if (!cluster.apiOutageActive()) {
            frozen_fingerprint.reset();
            const double observed = cluster.observedReadyCapacity();
            const double live = cluster.readyCapacity();
            if (std::abs(observed - live) > 1e-6) {
                violate("stale-observation",
                        "observed ready capacity " +
                            std::to_string(observed) + " != live " +
                            std::to_string(live) +
                            " outside an outage window");
            }
        } else {
            // Only compare ticks inside the same continuous outage
            // span: when one window ends and the next begins between
            // two ticks (gaps shorter than the check period happen
            // once enough waves demote to ApiOutage), the observation
            // legitimately snapped to live and re-froze at a new
            // value — that is a boundary, not drift.
            bool boundary_between_ticks = false;
            for (const SoakWave &wave : result.waves) {
                if (wave.kind != SoakWaveKind::ApiOutage)
                    continue;
                const double last_tick = now - config.checkPeriod;
                const double end = wave.at + wave.duration;
                if ((wave.at > last_tick && wave.at <= now) ||
                    (end > last_tick && end <= now)) {
                    boundary_between_ticks = true;
                    break;
                }
            }
            const uint64_t fingerprint =
                cluster.observedReadyFingerprint();
            if (frozen_fingerprint && !boundary_between_ticks &&
                *frozen_fingerprint != fingerprint) {
                violate("frozen-observation-drift",
                        "observation changed inside an outage window");
            }
            frozen_fingerprint = fingerprint;
        }

        // Per-node convergence: quiet nodes must have healed.
        const double from = now - config.settleSeconds;
        if (from > 0.0) {
            for (NodeId n = 0; n < cluster.nodeCount(); ++n) {
                if (!nodeQuietOver(result.waves, n, from, now))
                    continue;
                if (!cluster.isReady(n)) {
                    violate("unconverged-node",
                            "node " + std::to_string(n) +
                                " NotReady after quiet settle window");
                } else if (std::abs(cluster.degradeFactor(n) - 1.0) >
                           1e-9) {
                    violate("unconverged-node",
                            "node " + std::to_string(n) +
                                " still degraded after settle");
                } else if (cluster.isPartitioned(n)) {
                    violate("unconverged-node",
                            "node " + std::to_string(n) +
                                " still partitioned after settle");
                } else if (std::abs(cluster.clockSkew(n)) > 1e-9) {
                    violate("unconverged-node",
                            "node " + std::to_string(n) +
                                " clock still skewed after settle");
                }
            }

            // Stranded pods: a fault-quiet cluster must drain.
            if (clusterQuietOver(result.waves, from, now) &&
                cluster.pendingCount() > 0) {
                violate("stranded-pending",
                        std::to_string(cluster.pendingCount()) +
                            " pods Pending after quiet settle window");
            }

            // Constrained placement: once the cluster has been
            // fault-quiet for the settle window, topology must be
            // restored — every cap respected and every
            // spread-constrained service spanning its zones again —
            // not merely every pod running somewhere.
            if (config.zoneCount > 0 &&
                clusterQuietOver(result.waves, from, now)) {
                for (const auto &app : cluster.apps()) {
                    std::map<int, std::map<NodeId, int>> group_node;
                    std::map<int, std::map<int, int>> group_zone;
                    for (const auto &ms : app.services) {
                        std::map<NodeId, int> per_node;
                        std::map<int, int> per_zone;
                        int running_count = 0;
                        const int replicas =
                            ms.replicas > 1 ? ms.replicas : 1;
                        for (int r = 0; r < replicas; ++r) {
                            const PodRef ref{
                                app.id, ms.id,
                                static_cast<uint32_t>(r)};
                            if (!running.count(ref))
                                continue;
                            const kube::Pod *pod = cluster.pod(ref);
                            if (!pod)
                                continue;
                            const int zone =
                                cluster.nodeZone(pod->node);
                            ++running_count;
                            ++per_node[pod->node];
                            ++per_zone[zone];
                            if (ms.antiAffinityGroup >= 0) {
                                ++group_node[ms.antiAffinityGroup]
                                            [pod->node];
                                ++group_zone[ms.antiAffinityGroup]
                                            [zone];
                            }
                        }
                        if (ms.maxPerNode > 0) {
                            for (const auto &[node, count] : per_node) {
                                if (count > ms.maxPerNode) {
                                    violate(
                                        "constraint-cap",
                                        "app " + app.name + " ms " +
                                            std::to_string(ms.id) +
                                            ": " +
                                            std::to_string(count) +
                                            " replicas on node " +
                                            std::to_string(node));
                                }
                            }
                        }
                        const int zone_cap = ms.effectiveZoneCap();
                        if (zone_cap > 0) {
                            for (const auto &[zone, count] : per_zone) {
                                if (count > zone_cap) {
                                    violate(
                                        "constraint-cap",
                                        "app " + app.name + " ms " +
                                            std::to_string(ms.id) +
                                            ": " +
                                            std::to_string(count) +
                                            " replicas in zone " +
                                            std::to_string(zone));
                                }
                            }
                        }
                        if (ms.minZoneSpread > 1 && running_count > 0) {
                            const int want = std::min(
                                ms.minZoneSpread, running_count);
                            if (static_cast<int>(per_zone.size()) <
                                want) {
                                violate(
                                    "stranded-constraint",
                                    "app " + app.name + " ms " +
                                        std::to_string(ms.id) +
                                        " spans " +
                                        std::to_string(
                                            per_zone.size()) +
                                        " zones < required " +
                                        std::to_string(want) +
                                        " after quiet settle");
                            }
                        }
                    }
                    for (const auto &group : app.placementGroups) {
                        if (group.maxPerNode > 0) {
                            for (const auto &[node, count] :
                                 group_node[group.id]) {
                                if (count > group.maxPerNode) {
                                    violate(
                                        "constraint-cap",
                                        "app " + app.name + " group " +
                                            std::to_string(group.id) +
                                            ": " +
                                            std::to_string(count) +
                                            " pods on node " +
                                            std::to_string(node));
                                }
                            }
                        }
                        if (group.maxPerZone > 0) {
                            for (const auto &[zone, count] :
                                 group_zone[group.id]) {
                                if (count > group.maxPerZone) {
                                    violate(
                                        "constraint-cap",
                                        "app " + app.name + " group " +
                                            std::to_string(group.id) +
                                            ": " +
                                            std::to_string(count) +
                                            " pods in zone " +
                                            std::to_string(zone));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Deliberately wrong invariant, for exercising the
        // violation -> trace + shrunk-repro path end to end.
        if (config.injectFault) {
            const sim::ClusterState live = cluster.liveState();
            for (NodeId n = 0; n < live.nodeCount(); ++n) {
                if (live.used(n) >
                    config.injectTightCapacityFraction *
                            live.node(n).capacity +
                        1e-9) {
                    violate("injected-tight-capacity",
                            "node " + std::to_string(n) + " used " +
                                std::to_string(live.used(n)) +
                                " exceeds injected bound");
                    break;
                }
            }
        }

        // Availability bookkeeping (recorded, not asserted).
        sim::ActiveSet active = sim::emptyActiveSet(cluster.apps());
        size_t running_critical = 0;
        for (const PodRef &pod : running) {
            active[pod.app][pod.ms] = true;
            if (critical.count(pod))
                ++running_critical;
        }
        const double availability =
            sim::criticalServiceAvailability(cluster.apps(), active);
        availability_series.push_back(
            {now, availability >= 1.0 - 1e-9});
        if (now >= config.warmupSeconds) {
            result.minAvailability =
                std::min(result.minAvailability, availability);
            availability_sum += availability;
            ++availability_samples;
            result.maxPending =
                std::max(result.maxPending, cluster.pendingCount());
        }
        PHOENIX_TRACE_INSTANT(
            "soak", "check", now,
            (obs::TraceArg{"availability", availability}),
            (obs::TraceArg{"pending",
                           static_cast<double>(
                               cluster.pendingCount())}),
            (obs::TraceArg{"violations",
                           static_cast<double>(
                               result.violationCount)}));
    };
    for (double t = config.checkPeriod; t <= result.simSeconds;
         t += config.checkPeriod)
        events.schedule(t, check);

    events.runUntil(result.simSeconds);

    result.invariantViolations = cluster.invariantViolations();
    result.evictedPods = cluster.evictedPodCount();
    if (availability_samples > 0) {
        result.meanAvailability =
            availability_sum /
            static_cast<double>(availability_samples);
    }
    // Same derivation (and semantics) as the recovery harness's
    // time-to-critical-recovery, measured from the first wave.
    result.timeToAvailabilityRecovery = recoveryTimeSince(
        availability_series,
        result.waves.empty() ? -1.0 : result.waves.front().at);
    if (controller) {
        result.replans = controller->history().size();
        for (const auto &record : controller->history()) {
            result.deletes += record.deletes;
            result.migrations += record.migrations;
            result.restarts += record.restarts;
        }
    }
    if (delta)
        result.obsMetrics = delta->finish();
    (void)runner;
    return result;
}

check::CheckCase
makeSoakRepro(const SoakConfig &config,
              const std::vector<SoakWave> &waves, double upTo)
{
    const apps::CloudLabTestbed testbed =
        apps::makeCloudLabTestbed(config.testbed);

    check::CheckCase repro;
    repro.seed = config.seed;
    repro.lifecycle = false;
    for (size_t n = 0; n < testbed.config.nodeCount; ++n) {
        repro.nodeCapacities.push_back(testbed.config.cpusPerNode);
        if (config.zoneCount > 0) {
            repro.nodeZones.push_back(
                static_cast<uint32_t>(n % config.zoneCount));
        }
    }
    repro.apps = testbed.applications();
    if (config.zoneCount >= 2)
        applyTopologyOverlay(repro.apps);

    for (const SoakWave &wave : waves) {
        if (wave.at > upTo)
            continue;
        check::CaseStep step;
        step.at = wave.at;
        step.nodes = wave.nodes;
        switch (wave.kind) {
        case SoakWaveKind::Fail:
        case SoakWaveKind::ZoneFail: {
            step.kind = check::CaseStep::Kind::Fail;
            check::CaseStep recover;
            recover.kind = check::CaseStep::Kind::Recover;
            recover.at = wave.at + wave.duration;
            recover.nodes = wave.nodes;
            repro.steps.push_back(step);
            repro.steps.push_back(std::move(recover));
            continue;
        }
        case SoakWaveKind::Flap:
            step.kind = check::CaseStep::Kind::Flap;
            step.downtime = wave.duration;
            break;
        case SoakWaveKind::Partition:
            step.kind = check::CaseStep::Kind::Partition;
            step.downtime = wave.duration;
            break;
        case SoakWaveKind::Degrade:
            step.kind = check::CaseStep::Kind::Degrade;
            step.downtime = wave.duration;
            step.factor = wave.factor;
            break;
        case SoakWaveKind::ApiOutage:
            step.kind = check::CaseStep::Kind::Outage;
            step.downtime = wave.duration;
            break;
        case SoakWaveKind::ClockSkew: {
            step.kind = check::CaseStep::Kind::Skew;
            step.skew = wave.skew;
            check::CaseStep reset;
            reset.kind = check::CaseStep::Kind::Skew;
            reset.at = wave.at + wave.duration;
            reset.nodes = wave.nodes;
            reset.skew = 0.0;
            repro.steps.push_back(step);
            repro.steps.push_back(std::move(reset));
            continue;
        }
        }
        repro.steps.push_back(std::move(step));
    }
    return repro;
}

} // namespace phoenix::exp
