/**
 * @file
 * Shared time-series derivations for the experiment harnesses.
 *
 * Both the recovery harness and the chaos soak answer the same
 * question over a sampled series: "how long after the failure did this
 * predicate hold *for good*?" (time-to-critical-recovery over
 * availability, time-to-full-recovery over the Running count,
 * time-to-availability-recovery in the soak). Keeping the derivation
 * here — one non-template core over (t, ok) points — pins both
 * harnesses to identical semantics:
 *
 *   0   the predicate never stopped holding after the failure;
 *  -1   the horizon ended with it still false;
 *  else the first sample instant after the last bad sample, relative
 *       to the failure instant.
 *
 * A negative @p failureAt means "no failure was injected" and yields 0.
 */

#ifndef PHOENIX_EXP_TIMESERIES_H
#define PHOENIX_EXP_TIMESERIES_H

#include <vector>

namespace phoenix::exp {

/** One sampled instant: did the recovery predicate hold at @p t? */
struct SeriesPoint
{
    double t = 0.0;
    bool ok = false;
};

/**
 * Seconds from @p failureAt until the predicate holds for good (see
 * file comment for the 0 / -1 conventions). Points must be in
 * nondecreasing time order; points before @p failureAt are ignored.
 */
double recoveryTimeSince(const std::vector<SeriesPoint> &points,
                         double failureAt);

/**
 * Convenience adapter over an arbitrary sample type: @p timeOf maps a
 * sample to its instant, @p ok evaluates the recovery predicate.
 */
template <typename Sample, typename TimeFn, typename Pred>
double
recoveryTimeSince(const std::vector<Sample> &samples, double failureAt,
                  TimeFn timeOf, Pred ok)
{
    std::vector<SeriesPoint> points;
    points.reserve(samples.size());
    for (const Sample &sample : samples)
        points.push_back({timeOf(sample), ok(sample)});
    return recoveryTimeSince(points, failureAt);
}

} // namespace phoenix::exp

#endif // PHOENIX_EXP_TIMESERIES_H
