#include "grid.h"

namespace phoenix::exp {

std::vector<SchemeSpec>
paperSchemeSpecs(bool include_lps, core::LpSchemeOptions lp_options)
{
    using core::Objective;
    std::vector<SchemeSpec> specs;
    specs.push_back(SchemeSpec{"PhoenixFair", [] {
        return std::make_unique<core::PhoenixScheme>(Objective::Fair);
    }});
    specs.push_back(SchemeSpec{"PhoenixCost", [] {
        return std::make_unique<core::PhoenixScheme>(Objective::Cost);
    }});
    specs.push_back(schemeSpec<core::FairScheme>("Fair"));
    specs.push_back(schemeSpec<core::PriorityScheme>("Priority"));
    specs.push_back(schemeSpec<core::DefaultScheme>("Default"));
    if (include_lps) {
        specs.push_back(SchemeSpec{"LPFair", [lp_options] {
            return std::make_unique<core::LpScheme>(Objective::Fair,
                                                    lp_options);
        }});
        specs.push_back(SchemeSpec{"LPCost", [lp_options] {
            return std::make_unique<core::LpScheme>(Objective::Cost,
                                                    lp_options);
        }});
    }
    return specs;
}

std::vector<GridCell>
enumerateCells(const SweepGridSpec &spec)
{
    std::vector<GridCell> cells;
    cells.reserve(spec.cellCount());
    for (size_t s = 0; s < spec.schemes.size(); ++s) {
        for (size_t r = 0; r < spec.failureRates.size(); ++r) {
            for (int t = 0; t < spec.trials; ++t)
                cells.push_back(GridCell{s, r, t});
        }
    }
    return cells;
}

namespace {

char
asciiLower(char c)
{
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool
containsIgnoreCase(const std::string &haystack, const std::string &needle)
{
    if (needle.empty())
        return true;
    if (needle.size() > haystack.size())
        return false;
    for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
        size_t j = 0;
        while (j < needle.size() &&
               asciiLower(haystack[i + j]) == asciiLower(needle[j]))
            ++j;
        if (j == needle.size())
            return true;
    }
    return false;
}

} // namespace

SweepGridSpec
filterSchemes(SweepGridSpec spec, const std::string &substring)
{
    if (substring.empty())
        return spec;
    std::vector<SchemeSpec> kept;
    for (auto &scheme : spec.schemes) {
        if (containsIgnoreCase(scheme.name, substring))
            kept.push_back(std::move(scheme));
    }
    spec.schemes = std::move(kept);
    return spec;
}

} // namespace phoenix::exp
