/**
 * @file
 * Continuous chaos soak: hours of simulated time against the
 * mini-Kubernetes substrate with overlapping, seeded waves drawn from
 * the full fault taxonomy — clean node failures, kubelet flaps,
 * network partitions, degraded (slow-not-dead) nodes, API-server
 * outage windows, and heartbeat clock skew.
 *
 * Unlike the recovery harness (one declarative scenario, one metric
 * derivation), the soak is an *oracle*: the kube invariant checker is
 * force-enabled, and a battery of convergence properties runs on a
 * fixed cadence for the whole run —
 *
 *  - stale-observation-vs-fresh: outside an API-outage window the
 *    observation surface must equal live truth; inside one it must
 *    not drift (frozen means frozen);
 *  - per-node convergence: a node no fault wave has touched for the
 *    settle window must be Ready, undegraded, unpartitioned, and
 *    honest-clocked again (every wave heals by construction);
 *  - stranded-pod detection: a cluster that has been fault-quiet for
 *    the settle window must have drained its pending set — the
 *    observation→execution races of satellite faults must degrade
 *    into deferred work, never lost pods;
 *  - constrained placement (zoneCount > 0): after a fault-quiet
 *    settle window, running replicas must respect every per-node /
 *    per-zone / group cap and spread-constrained services must span
 *    their required zones again — topology restored, not merely pods
 *    restarted somewhere;
 *  - optionally an injected, deliberately wrong invariant
 *    (used <= fraction * capacity) that a busy cluster violates —
 *    the end-to-end demo that a violation produces a Perfetto trace
 *    window and a shrunk CheckCase repro.
 *
 * The wave schedule is generated up front from the seed (pure
 * function: same seed + config => identical schedule, checks, and
 * records), with per-node exclusive claims and a bounded
 * concurrently-disturbed capacity fraction so the cluster is stressed
 * but never fully razed.
 */

#ifndef PHOENIX_EXP_SOAK_H
#define PHOENIX_EXP_SOAK_H

#include <string>
#include <utility>
#include <vector>

#include "apps/cloudlab.h"
#include "check/case.h"
#include "exp/recovery.h"
#include "kube/kube.h"

namespace phoenix::exp {

/** One fault class of the taxonomy (one wave injects one class). */
enum class SoakWaveKind {
    Fail,      //!< kubelet stop, restart at window end
    Flap,      //!< stop + restart inside/outside the grace period
    Partition, //!< heartbeats suppressed, pods keep running
    Degrade,   //!< capacity * factor, slow-not-dead
    ApiOutage, //!< observation frozen for the window
    ClockSkew, //!< heartbeats stamped now + skew for the window
    ZoneFail,  //!< zone-correlated: a whole failure domain at once
};

const char *soakWaveKindName(SoakWaveKind kind);

/** One scheduled wave: a window of one fault class on a node set. */
struct SoakWave
{
    SoakWaveKind kind = SoakWaveKind::Fail;
    double at = 0.0;
    double duration = 0.0; //!< window length; every wave heals
    std::vector<sim::NodeId> nodes; //!< empty for ApiOutage
    double factor = 1.0;            //!< Degrade only
    double skew = 0.0;              //!< ClockSkew only
};

struct SoakConfig
{
    RecoveryScheme scheme = RecoveryScheme::PhoenixCost;
    apps::CloudLabConfig testbed;
    kube::KubeConfig kube; //!< validateInvariants is forced on
    uint64_t seed = 7;
    /** Simulated soak length in hours. */
    double hours = 2.0;
    /** Mean seconds between wave starts (actual gaps are uniform in
     * [0.5, 1.5) of this). */
    double meanWaveGap = 240.0;
    /** Convergence-check cadence (seconds). */
    double checkPeriod = 60.0;
    /** Fault-quiet time a node (or the cluster) needs before the
     * convergence / stranded-pod properties are asserted. Must cover
     * grace + heartbeat + controller poll + pod startup. */
    double settleSeconds = 600.0;
    /** Cap on the fraction of nodes disturbed at any instant. */
    double maxDisturbedFraction = 0.4;
    /** Quiet lead-in before the first wave (lets every pod start). */
    double warmupSeconds = 300.0;
    /** Inject a deliberately wrong invariant (used <= fraction *
     * capacity on live state) to demo the violation->repro path. */
    bool injectFault = false;
    double injectTightCapacityFraction = 0.5;
    /**
     * Zones the nodes are striped over (node n -> zone n % zoneCount).
     * 0 (default) keeps the classic untopologied soak and its wave
     * stream byte-identical. With >= 2 zones the testbed gets the
     * spread/PDB overlay (exp::applyTopologyOverlay), the schedule may
     * upgrade waves to zone-correlated failures, and the
     * constraint-cap / stranded-constraint properties arm.
     */
    size_t zoneCount = 0;
    /** Probability a wave becomes a zone-correlated failure (every
     * node of one zone fails together); only with zoneCount > 0. */
    double zoneFailProbability = 0.3;
};

/** One failed soak property. */
struct SoakViolation
{
    double at = 0.0;
    /** Stable property id ("kube-invariant", "stale-observation",
     * "frozen-observation-drift", "unconverged-node",
     * "stranded-pending", "constraint-cap", "stranded-constraint",
     * "injected-tight-capacity"). */
    std::string property;
    std::string detail;
};

/** Counter deltas across one wave's window (start -> end + 1s). */
struct SoakWaveRecord
{
    size_t wave = 0; //!< index into SoakResult::waves
    double readyCapacityStart = 0.0;
    double readyCapacityEnd = 0.0;
    size_t pendingStart = 0;
    size_t pendingEnd = 0;
    size_t evictionsDuring = 0;
    size_t invariantViolationsDuring = 0;
};

struct SoakResult
{
    double simSeconds = 0.0;
    std::vector<SoakWave> waves; //!< the generated schedule
    std::vector<SoakWaveRecord> waveRecords;
    size_t checkTicks = 0;
    std::vector<SoakViolation> violations; //!< capped at 64 entries
    size_t violationCount = 0;             //!< uncapped
    double firstViolationAt = -1.0;
    size_t invariantViolations = 0;
    size_t evictedPods = 0;
    size_t replans = 0;
    size_t deletes = 0;
    size_t migrations = 0;
    size_t restarts = 0;
    double minAvailability = 1.0;
    double meanAvailability = 0.0;
    /** Seconds from the first wave until critical availability holds
     * at 1.0 for good (exp::recoveryTimeSince conventions: 0 = never
     * dropped, -1 = still degraded at the horizon). */
    double timeToAvailabilityRecovery = 0.0;
    size_t maxPending = 0;
    /** obs counter deltas for the whole run (see RecoveryResult). */
    std::vector<std::pair<std::string, double>> obsMetrics;

    bool
    ok() const
    {
        return violationCount == 0 && invariantViolations == 0;
    }
};

/** Pure function of (config): the wave schedule runSoak will use. */
std::vector<SoakWave> generateSoakWaves(const SoakConfig &config);

/** Nodes disturbed by some wave at instant @p t. */
size_t disturbedNodesAt(const std::vector<SoakWave> &waves, double t);

/** Run the soak end to end. */
SoakResult runSoak(const SoakConfig &config);

/**
 * Self-contained CheckCase reproducing the soak's fault script up to
 * @p upTo seconds (every wave starting by then, with its full healing
 * window): the bridge from a soak violation to the src/check
 * shrinker and the regression corpus.
 */
check::CheckCase makeSoakRepro(const SoakConfig &config,
                               const std::vector<SoakWave> &waves,
                               double upTo);

} // namespace phoenix::exp

#endif // PHOENIX_EXP_SOAK_H
